#!/usr/bin/env python3
"""Golden-findings test for aegis-lint.

Runs the checker over every fixture in fixtures/ and compares the
findings (file:line:col + rule id) against fixtures/expected.txt.
Fixtures with expected findings must exit 1; fixtures without must
exit 0.  Run with --src-clean to also assert the checker reports
nothing on the repo's real src/ tree.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO_ROOT = HERE.parent.parent
LINTER = HERE / "aegis_lint.py"
FIXTURES = HERE / "fixtures"
EXPECTED = FIXTURES / "expected.txt"

FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+):(?P<col>\d+): error: \[(?P<rule>[A-Z0-9-]+)\]"
)


def run_linter(paths):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--repo-root", str(REPO_ROOT), "--quiet"]
        + [str(p) for p in paths],
        capture_output=True,
        text=True,
    )
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append(
                (Path(m.group("path")).name, int(m.group("line")),
                 int(m.group("col")), m.group("rule"))
            )
    return proc.returncode, findings, proc.stdout + proc.stderr


def load_expected():
    expected = []
    for raw in EXPECTED.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        loc, rule = line.rsplit(None, 1)
        name, lineno, col = loc.rsplit(":", 2)
        expected.append((name, int(lineno), int(col), rule))
    return expected


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--print-actual", action="store_true",
                    help="print actual findings in expected.txt format and exit")
    ap.add_argument("--src-clean", action="store_true",
                    help="also require zero findings on the repo's src/ tree")
    args = ap.parse_args()

    fixtures = sorted(FIXTURES.glob("*.cc"))
    if not fixtures:
        print("FAIL: no fixtures found in", FIXTURES)
        return 1

    failures = []
    actual_all = []
    for fx in fixtures:
        code, findings, output = run_linter([fx])
        actual_all.extend(findings)
        expected = [e for e in load_expected() if e[0] == fx.name]
        want_exit = 1 if expected else 0
        if code != want_exit:
            failures.append(f"{fx.name}: exit code {code}, expected {want_exit}\n{output}")
        if sorted(findings) != sorted(expected):
            missing = sorted(set(expected) - set(findings))
            extra = sorted(set(findings) - set(expected))
            msg = [f"{fx.name}: findings mismatch"]
            for m in missing:
                msg.append(f"  missing: {m[0]}:{m[1]}:{m[2]} {m[3]}")
            for e in extra:
                msg.append(f"  extra:   {e[0]}:{e[1]}:{e[2]} {e[3]}")
            failures.append("\n".join(msg))

    if args.print_actual:
        for name, line, col, rule in actual_all:
            print(f"{name}:{line}:{col} {rule}")
        return 0

    if args.src_clean:
        code, findings, output = run_linter([REPO_ROOT / "src"])
        if code != 0 or findings:
            failures.append(f"src/ is not lint-clean (exit {code}):\n{output}")

    if failures:
        print("FAIL: aegis-lint fixture test")
        for f in failures:
            print(f)
        return 1

    n = len(load_expected())
    print(f"PASS: {len(fixtures)} fixtures, {n} golden findings matched"
          + (", src/ clean" if args.src_clean else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
