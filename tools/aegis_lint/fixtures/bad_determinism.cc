// Fixture: every determinism sin DET-RAND / DET-CHRONO must catch.
// Not part of any build; aegis-lint's fixture test scans it.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int
noisySeed()
{
    std::random_device rd;
    return static_cast<int>(rd());
}

int
libcRand()
{
    srand(42);
    return rand();
}

long
stamp()
{
    return static_cast<long>(std::time(nullptr));
}

double
elapsedGuess()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t1.time_since_epoch()).count() -
           std::chrono::duration<double>(t0.time_since_epoch()).count();
}
