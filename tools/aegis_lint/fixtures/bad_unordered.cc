// Fixture: DET-UNORD must flag both iteration spellings over
// unordered containers; the std::map walk at the end must NOT fire.

#include <cstddef>
#include <map>
#include <unordered_map>
#include <unordered_set>

std::size_t
sumValues(const std::unordered_map<int, int> &table)
{
    std::size_t n = 0;
    for (const auto &kv : table)
        n += static_cast<std::size_t>(kv.second);
    return n;
}

int
firstElement(const std::unordered_set<int> &keys)
{
    return *keys.begin();
}

std::size_t
orderedWalkIsFine(const std::map<int, int> &ordered)
{
    std::size_t n = 0;
    for (const auto &kv : ordered)
        n += static_cast<std::size_t>(kv.second);
    return n;
}
