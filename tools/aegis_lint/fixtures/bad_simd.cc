// Fixture: raw SIMD use SIMD-CONFINE must catch. Outside
// src/util/simd/ both the intrinsics headers and the _mm*/__m256
// spellings are findings; a justified allow() silences one.

#include <immintrin.h>
#include <x86intrin.h>
#include <cstdint>

std::uint64_t
rawLaneXor(const std::uint64_t *a, const std::uint64_t *b)
{
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b));
    const __m256i vx = _mm256_xor_si256(va, vb);
    std::uint64_t out[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), vx);
    return out[0] ^ out[1] ^ out[2] ^ out[3];
}

int
blessedProbe()
{
    // aegis-lint: allow(SIMD-CONFINE fixture demonstrating a justified escape)
    return static_cast<int>(_mm_popcnt_u64(0xffull));
}
