// Fixture: HOT-ALLOC must reject allocation-capable constructs inside
// AEGIS_HOT functions AND inside file-local helpers they reach; the
// unmarked function at the end must NOT fire.

#include <cstddef>
#include <string>
#include <vector>

#define AEGIS_HOT

namespace {

// Not marked itself — reached from hotAppend, so still in scope.
void
growSink(std::vector<int> &sink, int v)
{
    sink.push_back(v);
}

} // namespace

AEGIS_HOT void
hotAppend(std::vector<int> &sink, int v)
{
    growSink(sink, v);
}

AEGIS_HOT std::size_t
hotFormat(int v)
{
    std::string text = std::to_string(v);
    int *boxed = new int(v);
    const std::size_t r = text.size() + static_cast<std::size_t>(*boxed);
    delete boxed;
    return r;
}

AEGIS_HOT std::size_t
hotScratch()
{
    std::vector<unsigned> scratch(64, 0u);
    return scratch.size();
}

// Cold code may allocate freely.
std::size_t
coldPathIsFine()
{
    std::vector<unsigned> scratch(64, 0u);
    scratch.push_back(1u);
    return scratch.size();
}
