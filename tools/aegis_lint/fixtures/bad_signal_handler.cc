// Fixture: SIG-SAFE must flag non-async-signal-safe calls in a
// handler installed via std::signal, including through a file-local
// helper; the atomic store and re-raise must NOT fire.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace {

std::atomic<int> g_flag{0};

void
logInterrupt(int sig)
{
    std::printf("interrupted: %d\n", sig);
    std::fflush(stdout);
}

void
onInterrupt(int sig)
{
    g_flag.store(sig);
    logInterrupt(sig);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

void
installHandlers()
{
    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);
}
