// Fixture: idiomatic repo code the checker must accept untouched —
// capacity-reusing assign/clear in a hot function, ordered folds,
// integer arithmetic.

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#define AEGIS_HOT

AEGIS_HOT void
refillScratch(std::vector<std::uint32_t> &scratch, std::uint32_t n)
{
    scratch.clear();
    scratch.assign(n, 0u);
    for (std::uint32_t i = 0; i < n; ++i)
        scratch[i] = i * i;
}

std::uint64_t
orderedFold(const std::map<std::uint64_t, std::uint64_t> &table)
{
    std::uint64_t total = 0;
    for (const auto &kv : table)
        total += kv.second;
    return total;
}

double
singleAssignmentIsFine(double base, double scale)
{
    const double scaled = base * scale;
    return scaled;
}
