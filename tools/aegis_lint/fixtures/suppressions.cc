// Fixture: suppression mechanics. The two allow() comments with
// reasons silence their findings; the reasonless one, the
// unknown-rule one, and the unused one must each raise LINT-SUPPRESS.

#include <cstdlib>

int
blessedEntropy()
{
    // aegis-lint: allow(DET-RAND fixture demonstrating a justified suppression)
    return rand();
}

int
sameLineSuppression()
{
    return rand();    // aegis-lint: allow(DET-RAND same-line spelling works too)
}

int
reasonlessSuppression()
{
    // aegis-lint: allow(DET-RAND)
    return rand();
}

int
unknownRule()
{
    // aegis-lint: allow(NOT-A-RULE whatever)
    return 7;
}

int
unusedSuppression()
{
    // aegis-lint: allow(DET-CHRONO nothing on the next line reads a clock)
    return 9;
}
