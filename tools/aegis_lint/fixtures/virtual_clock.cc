// Fixture: DET-CHRONO's virtual-clock allowlist. sim_clock::now()
// reads simulated ticks and is allowed; a real chrono clock in the
// same file must still be flagged.
// Not part of any build; aegis-lint's fixture test scans it.

#include <chrono>
#include <cstdint>

#include "sim/timing/clock.h"

std::uint64_t
simulatedNow()
{
    return aegis::sim::timing::sim_clock::now();    // allowed
}

long
realNow()
{
    const auto t = std::chrono::steady_clock::now();    // flagged
    return static_cast<long>(t.time_since_epoch().count());
}
