// Fixture: DET-CHRONO's virtual-clock allowlist. sim_clock::now()
// reads simulated ticks and is allowed; a real chrono clock in the
// same file must still be flagged.
// Not part of any build; aegis-lint's fixture test scans it.

#include <chrono>
#include <cstdint>

#include "sim/timing/clock.h"

std::uint64_t
simulatedNow()
{
    return aegis::sim::timing::sim_clock::now();    // allowed
}

long
realNow()
{
    const auto t = std::chrono::steady_clock::now();    // flagged
    return static_cast<long>(t.time_since_epoch().count());
}

// trace_clock is the obs-layer twin of sim_clock: its now() reads the
// bound trace track's tick source. Appended after the flagged chrono
// call so earlier finding line numbers stay put.
namespace trace_clock {
std::uint64_t now();
} // namespace trace_clock

std::uint64_t
traceNow()
{
    return trace_clock::now();    // allowed
}
