// Fixture: DET-FLOAT must flag +=/-= folds into floats and into
// elements of float vectors; the integer fold must NOT fire.

#include <cstddef>
#include <vector>

double
meanOfSquares(const double *xs, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += xs[i] * xs[i];
    return n ? acc / static_cast<double>(n) : 0.0;
}

void
subtractBaseline(std::vector<double> &levels, double baseline)
{
    for (std::size_t i = 0; i < levels.size(); ++i)
        levels[i] -= baseline;
}

long
integerFoldIsFine(const std::vector<long> &xs)
{
    long total = 0;
    for (long x : xs)
        total += x;
    return total;
}
