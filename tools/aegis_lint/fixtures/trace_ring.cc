// Fixture: the trace-sink ring-buffer recording idiom. The hot path
// stores into a preallocated slot by index and bumps a drop counter
// on overflow — HOT-ALLOC must accept that verbatim. The variant
// that grows the buffer with push_back instead must be flagged.
// Not part of any build; aegis-lint's fixture test scans it.

#include <cstddef>
#include <cstdint>
#include <vector>

#define AEGIS_HOT

struct Event {
    std::uint64_t ts;
    std::uint64_t value;
};

struct Ring {
    std::vector<Event> events;    // sized once at arm time
    std::size_t count = 0;
    std::uint64_t dropped = 0;
};

// Allocation-free steady state: index-store into capacity reserved
// when the sink was armed, count the overflow instead of growing.
AEGIS_HOT void
recordClean(Ring &ring, Event e)
{
    if (ring.count < ring.events.size())
        ring.events[ring.count++] = e;
    else
        ++ring.dropped;
}

// Same shape, but growing on demand — allocates mid-recording.
AEGIS_HOT void
recordGrows(Ring &ring, Event e)
{
    ring.events.push_back(e);    // flagged
}

// Cold setup may size the ring freely.
void
armRing(Ring &ring, std::size_t capacity)
{
    ring.events.resize(capacity);
    ring.count = 0;
    ring.dropped = 0;
}
