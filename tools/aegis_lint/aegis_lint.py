#!/usr/bin/env python3
"""aegis-lint: repo-specific invariant checker for the aegis-pcm tree.

Generic linters cannot express the contracts this reproduction's
numbers rest on, so this tool enforces them statically:

  determinism   every manifest cell must be bit-identical for every
                --jobs value and across reruns.
  hot paths     the scheme data plane (PR 5) is allocation-free in
                steady state; AEGIS_HOT marks the functions under
                contract.
  signal safety SIGINT/SIGTERM handlers may only touch async-signal-
                safe state (one atomic CAS today).

Rule catalogue (run with --list-rules for the same text):

  DET-RAND    ban rand/srand/std::time/std::random_device outside
              src/obs/ and src/util/chaos.cc. Hidden entropy makes
              results vary across runs; all randomness must flow from
              the per-page counter-based Rng seeded by the manifest
              seed.
  DET-CHRONO  ban argless std::chrono::*_clock::now() outside src/obs/
              and src/util/chaos.cc. Wall-clock reads feeding results
              make manifests machine- and load-dependent.
  DET-UNORD   flag iteration over std::unordered_{map,set,multimap,
              multiset}. Iteration order is unspecified (and varies
              with libstdc++ version and address layout), so any fold,
              merge() or serialization fed by it leaks that order into
              results.
  DET-FLOAT   flag +=/-= accumulation into float/double outside
              RunningStat (src/util/stats.cc). FP addition is not
              associative; only the chunk-grid-ordered RunningStat and
              its Chan merge are blessed to fold across jobs.
  HOT-ALLOC   inside functions marked AEGIS_HOT (and everything they
              reach at file-local depth), reject allocation-capable
              constructs: new, make_unique/make_shared, malloc-family,
              push_back/emplace/resize/reserve/insert, std::string,
              std::to_string, std::function, stringstreams, and local
              std::vector construction. The runtime counterpart is
              tests/test_alloc_guard.cc.
  SIG-SAFE    inside functions installed via std::signal/sigaction
              (and everything they reach at file-local depth), allow
              only async-signal-safe calls (POSIX list) plus the
              blessed lock-free CancelToken operations.
  SIMD-CONFINE  ban raw SIMD intrinsics (the _mm*/__m128/__m256/__m512
              families) and *intrin.h includes outside src/util/simd/.
              Everything else must go through the runtime-dispatched
              kernel layer (util/simd/simd.h), or forced-scalar runs
              (AEGIS_SIMD=scalar) silently diverge from production.
  LINT-SUPPRESS  an aegis-lint: allow(...) comment with no reason, an
              unknown rule id, or one that suppresses nothing.

Suppression: put on the offending line, or the line directly above:

    // aegis-lint: allow(RULE-ID why this occurrence is sound)

The reason is mandatory; reviewers read it, the tool only checks it is
non-empty.

Findings are printed in GCC diagnostic format
(file:line:col: error: [RULE-ID] message) so editors and CI annotate
them. Exit status: 0 clean, 1 findings, 2 usage or parse failure.

Engines: the reference engine is a self-contained C++ tokenizer
("tokens"). When the libclang Python bindings are importable, --engine
clang (or auto) tokenizes through libclang instead — same rule logic,
identical findings on this tree — so the gate never depends on clang
being installed.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Rule catalogue
# --------------------------------------------------------------------

RULES = {
    "DET-RAND": "hidden entropy source; all randomness must flow from "
                "the manifest-seeded counter-based Rng",
    "DET-CHRONO": "wall-clock read; results must not depend on time "
                  "or machine load",
    "DET-UNORD": "unordered-container iteration order is unspecified "
                 "and leaks into any fold/merge/serialization it feeds",
    "DET-FLOAT": "float accumulation is order-sensitive; only "
                 "RunningStat's chunk-ordered fold is jobs-invariant",
    "HOT-ALLOC": "allocation-capable construct reachable from an "
                 "AEGIS_HOT function; steady-state hot paths must not "
                 "touch the heap",
    "SIG-SAFE": "only async-signal-safe calls are allowed in signal "
                "handlers",
    "SIMD-CONFINE": "raw SIMD intrinsics are confined to "
                    "src/util/simd/; use the dispatched kernels in "
                    "util/simd/simd.h",
    "LINT-SUPPRESS": "malformed or unused aegis-lint suppression",
}

# Paths (relative to the repo root, '/'-separated) where the
# determinism rules do not apply: observability is *supposed* to read
# clocks, the chaos harness injects controlled nondeterminism, and the
# sweep supervisor's timeout/stall/backoff machinery is wall-clock-
# driven control flow that never touches result cells.
DET_EXEMPT_PREFIXES = ("src/obs/", "src/sweep/")
DET_EXEMPT_FILES = ("src/util/chaos.cc", "src/util/chaos.h")

# The only place allowed to touch raw SIMD intrinsics. Everything
# else must call the runtime-dispatched kernels (util/simd/simd.h),
# or the AEGIS_SIMD=scalar override no longer covers the code that
# production executes and forced-scalar runs silently diverge.
SIMD_EXEMPT_PREFIXES = ("src/util/simd/",)

# Intrinsic spellings: _mm_/_mm256_/_mm512_... calls and the __m128/
# __m256/__m512 vector types (with i/d/h suffixes).
SIMD_IDENT_RE = re.compile(r"^(_mm\d*_\w+|__m(128|256|512)\w*)$")

# Intrinsics headers. The tokenizer drops preprocessor lines, so
# includes are matched against the raw text line by line.
SIMD_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s*[<"]([^<">]*intrin[^<">]*\.h)[>"]')

# Virtual clocks whose now() reads *simulated* time (deterministic
# ticks), not the wall clock. sim_clock (sim/timing/clock.h) is named
# like a chrono clock on purpose so that real chrono clocks remain
# lintable in the same files. trace_clock (obs/trace_sink.h) mirrors
# it for event-trace timestamps: it reads whatever tick source the
# bound trace track exposes, never the wall clock.
DET_CHRONO_VIRTUAL_CLOCKS = ("sim_clock", "trace_clock")

# Methods that may (re)allocate on any standard container/string.
ALLOCATING_METHODS = {
    "push_back", "emplace_back", "emplace", "emplace_front",
    "push_front", "resize", "reserve", "insert", "append",
    "shrink_to_fit",
}

# Free functions/types that allocate or own allocations.
ALLOCATING_IDENTS = {
    "make_unique", "make_shared", "malloc", "calloc", "realloc",
    "strdup", "to_string", "stoi", "stod", "stoull",
}
ALLOCATING_STD_TYPES = {
    "string", "function", "stringstream", "ostringstream",
    "istringstream", "wstring",
}

# POSIX async-signal-safe functions we expect to see (subset), plus
# the repo's blessed lock-free cancellation operations.
SIGNAL_SAFE_CALLS = {
    "signal", "sigaction", "raise", "kill", "write", "_exit", "_Exit",
    "abort",
    # CancelToken is one lock-free std::atomic; processCancelToken()'s
    # local static is constructed before the handler can be installed.
    "processCancelToken", "requestCancel",
    # std::atomic operations are lock-free for the types we use.
    "load", "store", "exchange", "compare_exchange_strong",
    "compare_exchange_weak", "fetch_add", "fetch_sub", "fetch_or",
    "test_and_set",
}

UNORDERED_TYPES = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "static_assert", "noexcept",
    "throw", "new", "delete", "do", "else", "case", "default",
    "template", "typename", "class", "struct", "enum", "namespace",
    "using", "public", "private", "protected", "const", "constexpr",
    "static", "inline", "virtual", "override", "final", "operator",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
}


class Finding:
    def __init__(self, path, line, col, rule, message):
        self.path = path
        self.line = line
        self.col = col
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d:%d: error: [%s] %s (%s)" % (
            self.path, self.line, self.col, self.rule, self.message,
            RULES[self.rule])


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind    # id | num | str | char | punct
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):    # pragma: no cover - debugging aid
        return "%s(%r)@%d:%d" % (self.kind, self.text, self.line,
                                 self.col)


# --------------------------------------------------------------------
# Tokenizer (reference engine)
# --------------------------------------------------------------------

_ID_START = re.compile(r"[A-Za-z_]")
_ID_CONT = re.compile(r"[A-Za-z0-9_]")

SUPPRESS_RE = re.compile(
    r"aegis-lint:\s*allow\(\s*([A-Za-z0-9-]+)([^)]*)\)")


def tokenize(text, path, suppressions, bad_suppressions):
    """Tokenize C++ source. Comments are consumed here and mined for
    suppression annotations; preprocessor directives are skipped as
    whole (continuation-aware) lines."""
    tokens = []
    i, n = 0, len(text)
    line, col = 1, 1

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    def note_comment(body, at_line):
        for m in SUPPRESS_RE.finditer(body):
            rule = m.group(1)
            reason = m.group(2).strip()
            if rule not in RULES or rule == "LINT-SUPPRESS":
                bad_suppressions.append(Finding(
                    path, at_line, 1, "LINT-SUPPRESS",
                    "unknown rule id '%s' in suppression" % rule))
            elif not reason:
                bad_suppressions.append(Finding(
                    path, at_line, 1, "LINT-SUPPRESS",
                    "suppression of %s has no reason; write "
                    "aegis-lint: allow(%s <why>)" % (rule, rule)))
            else:
                suppressions.setdefault(at_line, set()).add(rule)

    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            advance(1)
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            advance(1)
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: skip, honoring continuations.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    advance(n - i)
                    break
                cont = text[i:j].rstrip().endswith("\\")
                advance(j - i + 1)
                if not cont:
                    break
            at_line_start = True
            continue
        at_line_start = False
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            note_comment(text[i:j], line)
            advance(j - i)
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                raise SyntaxError("%s:%d: unterminated block comment"
                                  % (path, line))
            note_comment(text[i:j + 2], line)
            advance(j + 2 - i)
            continue
        if c == '"' or (c == "R" and text.startswith('R"', i)):
            start_line, start_col = line, col
            if c == "R":
                m = re.match(r'R"([^()\\ ]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i + m.end())
                    if j < 0:
                        raise SyntaxError(
                            "%s:%d: unterminated raw string"
                            % (path, line))
                    advance(j + len(close) - i)
                    tokens.append(Token("str", "<raw>", start_line,
                                        start_col))
                    continue
                # An identifier starting with R.
            if c == '"':
                j = i + 1
                while j < n:
                    if text[j] == "\\":
                        j += 2
                        continue
                    if text[j] == '"':
                        break
                    j += 1
                if j >= n:
                    raise SyntaxError("%s:%d: unterminated string"
                                      % (path, line))
                advance(j + 1 - i)
                tokens.append(Token("str", "<str>", start_line,
                                    start_col))
                continue
        if c == "'":
            start_line, start_col = line, col
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                j += 1
            if j >= n:
                raise SyntaxError("%s:%d: unterminated char literal"
                                  % (path, line))
            advance(j + 1 - i)
            tokens.append(Token("char", "<char>", start_line,
                                start_col))
            continue
        if _ID_START.match(c):
            j = i
            while j < n and _ID_CONT.match(text[j]):
                j += 1
            tok = text[i:j]
            tokens.append(Token("id", tok, line, col))
            advance(j - i)
            continue
        if c.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._'+-"):
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            tokens.append(Token("num", text[i:j], line, col))
            advance(j - i)
            continue
        # Punctuation: greedily match the few multi-char tokens the
        # rules care about.
        for punct in ("->*", "<<=", ">>=", "...", "::", "->", "+=",
                      "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&",
                      "||", "<<", ">>", "++", "--"):
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, line, col))
                advance(len(punct))
                break
        else:
            tokens.append(Token("punct", c, line, col))
            advance(1)
    return tokens


def tokenize_with_libclang(text, path, suppressions, bad_suppressions):
    """Tokenize through libclang. Comments come back as first-class
    tokens, so suppression mining works identically; everything else
    maps onto the reference Token stream."""
    from clang import cindex    # caller guarantees importability

    index = cindex.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"],
                     unsaved_files=[(path, text)],
                     options=cindex.TranslationUnit
                     .PARSE_DETAILED_PROCESSING_RECORD)
    tokens = []
    kinds = cindex.TokenKind
    for t in tu.get_tokens(extent=tu.cursor.extent):
        loc = t.location
        if str(loc.file) != path:
            continue
        if t.kind == kinds.COMMENT:
            for m in SUPPRESS_RE.finditer(t.spelling):
                rule, reason = m.group(1), m.group(2).strip()
                if rule not in RULES or rule == "LINT-SUPPRESS":
                    bad_suppressions.append(Finding(
                        path, loc.line, 1, "LINT-SUPPRESS",
                        "unknown rule id '%s' in suppression" % rule))
                elif not reason:
                    bad_suppressions.append(Finding(
                        path, loc.line, 1, "LINT-SUPPRESS",
                        "suppression of %s has no reason" % rule))
                else:
                    suppressions.setdefault(loc.line, set()).add(rule)
            continue
        kind = {kinds.IDENTIFIER: "id", kinds.KEYWORD: "id",
                kinds.LITERAL: "num",
                kinds.PUNCTUATION: "punct"}.get(t.kind, "punct")
        text_ = t.spelling
        if kind == "num" and text_ and text_[0] in "\"'":
            kind = "str" if text_[0] == '"' else "char"
            text_ = "<str>" if kind == "str" else "<char>"
        tokens.append(Token(kind, text_, loc.line, loc.column))
    return tokens


# --------------------------------------------------------------------
# Token-stream helpers
# --------------------------------------------------------------------

def prev_tok(tokens, idx):
    return tokens[idx - 1] if idx > 0 else None


def next_tok(tokens, idx):
    return tokens[idx + 1] if idx + 1 < len(tokens) else None


def match_forward(tokens, idx, opener, closer):
    """Index of the token matching tokens[idx] (an opener), or -1."""
    depth = 0
    for j in range(idx, len(tokens)):
        t = tokens[j]
        if t.kind == "punct" and t.text == opener:
            depth += 1
        elif t.kind == "punct" and t.text == closer:
            depth -= 1
            if depth == 0:
                return j
    return -1


class FunctionDef:
    """One function definition: name + [body_start, body_end] token
    indices (inclusive of the braces)."""

    def __init__(self, name, qualifier, head_line, body_start,
                 body_end):
        self.name = name
        self.qualifier = qualifier
        self.head_line = head_line
        self.body_start = body_start
        self.body_end = body_end
        self.calls = set()


def find_function_defs(tokens):
    """Heuristic scan for function definitions: ID '(' ... ')'
    [qualifiers] '{'. Control-flow keywords and obvious non-functions
    are excluded. Good enough for this codebase's formatting (and the
    lint fixtures pin the behaviour)."""
    defs = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind != "id" or t.text in CPP_KEYWORDS:
            i += 1
            continue
        nxt = next_tok(tokens, i)
        if nxt is None or nxt.text != "(":
            i += 1
            continue
        close = match_forward(tokens, i + 1, "(", ")")
        if close < 0:
            i += 1
            continue
        # Skip trailer: const, noexcept(...), override, ->, type ids.
        j = close + 1
        while j < n:
            tj = tokens[j]
            if tj.kind == "punct" and tj.text == "{":
                break
            if tj.kind == "punct" and tj.text in (";", "=", ",", ")",
                                                  "}"):
                j = -1
                break
            if tj.kind == "punct" and tj.text == "(":
                j2 = match_forward(tokens, j, "(", ")")
                if j2 < 0:
                    j = -1
                    break
                j = j2 + 1
                continue
            if tj.kind in ("id", "punct"):
                j += 1
                continue
            j = -1
            break
        if j < 0 or j >= n:
            i += 1
            continue
        body_end = match_forward(tokens, j, "{", "}")
        if body_end < 0:
            i += 1
            continue
        qual = None
        p = prev_tok(tokens, i)
        if p is not None and p.kind == "punct" and p.text == "::" \
                and i >= 2:
            qual = tokens[i - 2].text
        defs.append(FunctionDef(t.text, qual, t.line, j, body_end))
        # Continue scanning *inside* the body too (lambdas, local
        # classes) — nested hits are separate defs, harmless.
        i += 1
    return defs


def collect_calls(tokens, fdef):
    """Names called (ID followed by '(') inside a function body."""
    calls = set()
    for i in range(fdef.body_start + 1, fdef.body_end):
        t = tokens[i]
        if t.kind != "id" or t.text in CPP_KEYWORDS:
            continue
        nxt = next_tok(tokens, i)
        if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
            calls.add(t.text)
    return calls


def reachable_defs(defs, roots):
    """File-local closure: all defs reachable from root names."""
    by_name = {}
    for d in defs:
        by_name.setdefault(d.name, []).append(d)
    seen_names = set()
    work = list(roots)
    out = []
    while work:
        name = work.pop()
        if name in seen_names:
            continue
        seen_names.add(name)
        for d in by_name.get(name, []):
            out.append(d)
            for callee in d.calls:
                if callee not in seen_names and callee in by_name:
                    work.append(callee)
    return out, seen_names


# --------------------------------------------------------------------
# Declared-variable scanning (for DET-UNORD / DET-FLOAT)
# --------------------------------------------------------------------

def scan_declared_names(tokens):
    """Map variable name -> coarse declared type tag.

    Tags: 'unordered' for std::unordered_* containers,
    'float' for float/double and std::vector<float|double>."""
    names = {}
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        if t.text in UNORDERED_TYPES or (
                t.text == "vector" and _vector_of_float(tokens, i)):
            tag = "unordered" if t.text in UNORDERED_TYPES else "float"
            j = i + 1
            if j < n and tokens[j].text == "<":
                j = _skip_template_args(tokens, j)
                if j < 0:
                    continue
            # Declarator: optional &, * then the variable name.
            while j < n and tokens[j].kind == "punct" \
                    and tokens[j].text in ("&", "*"):
                j += 1
            if j < n and tokens[j].kind == "id" \
                    and tokens[j].text not in CPP_KEYWORDS:
                names[tokens[j].text] = tag
        elif t.text in ("float", "double"):
            p = prev_tok(tokens, i)
            if p is not None and p.kind == "punct" and p.text in (
                    "(", ",", "<"):
                # Parameter or template argument, not an accumulator
                # declaration we can track reliably; parameters are
                # still caught when a tracked member is involved.
                pass
            j = i + 1
            while j < n and tokens[j].kind == "id" \
                    and tokens[j].text in ("const", "static",
                                           "constexpr", "long"):
                j += 1
            if j < n and tokens[j].kind == "id" \
                    and tokens[j].text not in CPP_KEYWORDS:
                nxt = next_tok(tokens, j)
                if nxt is not None and nxt.text in ("=", ";", "{", ",",
                                                    ")"):
                    names[tokens[j].text] = "float"
    return names


def _skip_template_args(tokens, idx):
    """tokens[idx] is '<'; return index after the matching '>'."""
    depth = 0
    for j in range(idx, len(tokens)):
        txt = tokens[j].text
        if txt == "<":
            depth += 1
        elif txt == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif txt == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif txt in (";", "{"):
            return -1
    return -1


def _vector_of_float(tokens, idx):
    nxt = next_tok(tokens, idx)
    if nxt is None or nxt.text != "<":
        return False
    nn = next_tok(tokens, idx + 1)
    return nn is not None and nn.text in ("float", "double")


# --------------------------------------------------------------------
# The rules
# --------------------------------------------------------------------

def det_exempt(relpath):
    rel = relpath.replace(os.sep, "/")
    return rel.startswith(DET_EXEMPT_PREFIXES) or \
        rel in DET_EXEMPT_FILES


def check_det_rand(tokens, relpath, findings):
    if det_exempt(relpath):
        return
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        p = prev_tok(tokens, i)
        after_member = p is not None and p.text in (".", "->")
        after_scope = p is not None and p.text == "::"
        std_qualified = after_scope and i >= 2 \
            and tokens[i - 2].text == "std"
        foreign_scope = after_scope and not std_qualified
        if t.text == "random_device":
            if not after_member and not foreign_scope:
                findings.append(Finding(
                    relpath, t.line, t.col, "DET-RAND",
                    "std::random_device draws entropy from the OS"))
            continue
        nxt = next_tok(tokens, i)
        is_call = nxt is not None and nxt.text == "("
        if not is_call or after_member or foreign_scope:
            continue
        if t.text in ("rand", "srand"):
            findings.append(Finding(
                relpath, t.line, t.col, "DET-RAND",
                "call to '%s'; use aegis::Rng seeded from the "
                "manifest seed" % t.text))
        elif t.text == "time" and std_qualified:
            findings.append(Finding(
                relpath, t.line, t.col, "DET-RAND",
                "call to 'std::time'; wall-clock values must not "
                "reach scheme or sim code"))


def check_det_chrono(tokens, relpath, findings):
    if det_exempt(relpath):
        return
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text != "now":
            continue
        nxt = next_tok(tokens, i)
        nn = next_tok(tokens, i + 1)
        if nxt is None or nxt.text != "(" or nn is None \
                or nn.text != ")":
            continue
        p = prev_tok(tokens, i)
        if p is None or p.text != "::" or i < 2:
            continue
        owner = tokens[i - 2].text
        if owner in DET_CHRONO_VIRTUAL_CLOCKS:
            continue
        if owner.endswith("_clock") or owner == "chrono":
            findings.append(Finding(
                relpath, t.line, t.col, "DET-CHRONO",
                "argless %s::now() outside src/obs/" % owner))


def check_det_unord(tokens, relpath, declared, findings):
    for i, t in enumerate(tokens):
        if t.kind != "id":
            continue
        if t.text == "for":
            # range-for over a tracked name: for ( decl : NAME )
            nxt = next_tok(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            close = match_forward(tokens, i + 1, "(", ")")
            if close < 0:
                continue
            inner = tokens[i + 2:close]
            for k, it in enumerate(inner):
                if it.kind == "punct" and it.text == ":":
                    rest = [x for x in inner[k + 1:] if x.kind == "id"]
                    if rest and declared.get(rest[-1].text) == \
                            "unordered":
                        findings.append(Finding(
                            relpath, t.line, t.col, "DET-UNORD",
                            "range-for over unordered container "
                            "'%s'" % rest[-1].text))
                    break
        elif t.text in ("begin", "cbegin") and i >= 2:
            p = prev_tok(tokens, i)
            if p is not None and p.text in (".", "->") and \
                    declared.get(tokens[i - 2].text) == "unordered":
                findings.append(Finding(
                    relpath, t.line, t.col, "DET-UNORD",
                    "iterator walk over unordered container '%s'"
                    % tokens[i - 2].text))


def check_det_float(tokens, relpath, declared, findings):
    rel = relpath.replace(os.sep, "/")
    if rel == "src/util/stats.cc":
        return    # RunningStat / Chan merge: the blessed accumulator
    for i, t in enumerate(tokens):
        if t.kind != "punct" or t.text not in ("+=", "-="):
            continue
        p = prev_tok(tokens, i)
        if p is None or p.kind != "id":
            # Possibly name[expr] += : walk back over the subscript.
            if p is not None and p.text == "]":
                depth = 0
                for j in range(i - 1, -1, -1):
                    txt = tokens[j].text
                    if txt == "]":
                        depth += 1
                    elif txt == "[":
                        depth -= 1
                        if depth == 0:
                            tgt = prev_tok(tokens, j)
                            if tgt is not None and declared.get(
                                    tgt.text) == "float":
                                findings.append(Finding(
                                    relpath, tgt.line, tgt.col,
                                    "DET-FLOAT",
                                    "accumulation into float element "
                                    "'%s[...]'" % tgt.text))
                            break
            continue
        if declared.get(p.text) == "float":
            findings.append(Finding(
                relpath, p.line, p.col, "DET-FLOAT",
                "accumulation into floating-point '%s'" % p.text))


def check_hot_alloc(tokens, relpath, findings):
    # Roots: names of functions whose definition head is preceded by
    # an AEGIS_HOT marker (on the declaration or the definition).
    hot_names = set()
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.text == "AEGIS_HOT":
            for j in range(i + 1, min(i + 40, len(tokens))):
                if tokens[j].kind == "id" and \
                        tokens[j].text not in CPP_KEYWORDS and \
                        j + 1 < len(tokens) and \
                        tokens[j + 1].text == "(":
                    hot_names.add(tokens[j].text)
                    break
    if not hot_names:
        return
    defs = find_function_defs(tokens)
    for d in defs:
        d.calls = collect_calls(tokens, d)
    hot_defs, hot_closure = reachable_defs(defs, hot_names)
    for d in hot_defs:
        root_note = "" if d.name in hot_names else \
            " (reached from an AEGIS_HOT function)"
        for i in range(d.body_start + 1, d.body_end):
            t = tokens[i]
            if t.kind != "id":
                continue
            p = prev_tok(tokens, i)
            nxt = next_tok(tokens, i)
            if t.text == "new":
                findings.append(Finding(
                    relpath, t.line, t.col, "HOT-ALLOC",
                    "operator new in hot function '%s'%s"
                    % (d.name, root_note)))
            elif t.text in ALLOCATING_METHODS and p is not None \
                    and p.text in (".", "->") and nxt is not None \
                    and nxt.text == "(":
                findings.append(Finding(
                    relpath, t.line, t.col, "HOT-ALLOC",
                    "call to allocation-capable '%s' in hot function "
                    "'%s'%s" % (t.text, d.name, root_note)))
            elif t.text in ALLOCATING_IDENTS and nxt is not None \
                    and nxt.text in ("(", "<"):
                findings.append(Finding(
                    relpath, t.line, t.col, "HOT-ALLOC",
                    "call to '%s' in hot function '%s'%s"
                    % (t.text, d.name, root_note)))
            elif t.text in ALLOCATING_STD_TYPES and p is not None \
                    and p.text == "::" and i >= 2 \
                    and tokens[i - 2].text == "std":
                findings.append(Finding(
                    relpath, t.line, t.col, "HOT-ALLOC",
                    "std::%s in hot function '%s'%s"
                    % (t.text, d.name, root_note)))
            elif t.text == "vector" and p is not None \
                    and p.text == "::" and i >= 2 \
                    and tokens[i - 2].text == "std" \
                    and nxt is not None and nxt.text == "<" \
                    and not _is_ref_or_ptr_declarator(tokens, i):
                findings.append(Finding(
                    relpath, t.line, t.col, "HOT-ALLOC",
                    "local std::vector constructed in hot function "
                    "'%s'%s" % (d.name, root_note)))


def _is_ref_or_ptr_declarator(tokens, i):
    """True when the std::vector<...> at token *i* declares a reference
    or pointer (binds to existing storage — no construction)."""
    j = i + 1
    if j >= len(tokens) or tokens[j].text != "<":
        return False
    depth = 0
    while j < len(tokens):
        text = tokens[j].text
        if text == "<":
            depth += 1
        elif text == ">":
            depth -= 1
            if depth == 0:
                break
        elif text == ">>":
            depth -= 2
            if depth <= 0:
                break
        j += 1
    nxt = next_tok(tokens, j)
    return nxt is not None and nxt.text in ("&", "*")


def check_sig_safe(tokens, relpath, findings):
    # Handlers: function names appearing as an argument of
    # std::signal(...) / sigaction(...).
    defs = find_function_defs(tokens)
    def_names = {d.name for d in defs}
    handlers = set()
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.text in ("signal", "sigaction"):
            nxt = next_tok(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            close = match_forward(tokens, i + 1, "(", ")")
            if close < 0:
                continue
            for a in tokens[i + 2:close]:
                if a.kind == "id" and a.text in def_names:
                    handlers.add(a.text)
    if not handlers:
        return
    for d in defs:
        d.calls = collect_calls(tokens, d)
    handler_defs, _ = reachable_defs(defs, handlers)
    for d in handler_defs:
        for i in range(d.body_start + 1, d.body_end):
            t = tokens[i]
            if t.kind != "id" or t.text in CPP_KEYWORDS:
                continue
            nxt = next_tok(tokens, i)
            if nxt is None or nxt.text != "(":
                continue
            if t.text in SIGNAL_SAFE_CALLS or t.text in def_names:
                continue
            findings.append(Finding(
                relpath, t.line, t.col, "SIG-SAFE",
                "'%s' called from signal handler '%s' is not "
                "async-signal-safe" % (t.text, d.name)))


def simd_exempt(relpath):
    return relpath.replace(os.sep, "/").startswith(
        SIMD_EXEMPT_PREFIXES)


def check_simd_confine(tokens, text, relpath, findings):
    if simd_exempt(relpath):
        return
    for line_no, line in enumerate(text.splitlines(), start=1):
        m = SIMD_INCLUDE_RE.match(line)
        if m:
            findings.append(Finding(
                relpath, line_no, m.start(1) + 1, "SIMD-CONFINE",
                "intrinsics header '%s' included outside "
                "src/util/simd/" % m.group(1)))
    for t in tokens:
        if t.kind == "id" and SIMD_IDENT_RE.match(t.text):
            findings.append(Finding(
                relpath, t.line, t.col, "SIMD-CONFINE",
                "raw SIMD intrinsic '%s'; call the dispatched "
                "kernels in util/simd/simd.h instead" % t.text))


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def paired_header_tokens(path, engine, repo_root):
    """Tokens of the .h next to a .cc (member declarations feed the
    declared-name scan), or []. Suppression comments in the header
    apply to the header's own lint run, not the .cc's."""
    if not path.endswith(".cc"):
        return []
    header = path[:-3] + ".h"
    if not os.path.isfile(header):
        return []
    return lint_tokens_for(header, engine, repo_root,
                           sink_suppressions=False)[0]


_token_cache = {}


def lint_tokens_for(path, engine, repo_root, sink_suppressions=True):
    key = (os.path.abspath(path), engine)
    if key in _token_cache:
        return _token_cache[key]
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    suppressions = {}
    bad = []
    if engine == "clang":
        tokens = tokenize_with_libclang(text, path, suppressions, bad)
    else:
        tokens = tokenize(text, path, suppressions, bad)
    _token_cache[key] = (tokens, suppressions, bad, text)
    return _token_cache[key]


def lint_file(path, repo_root, engine):
    relpath = os.path.relpath(os.path.abspath(path), repo_root)
    tokens, suppressions, bad_sup, text = lint_tokens_for(path, engine,
                                                          repo_root)
    findings = []
    check_det_rand(tokens, relpath, findings)
    check_det_chrono(tokens, relpath, findings)

    declared = scan_declared_names(tokens)
    declared.update({k: v for k, v in scan_declared_names(
        paired_header_tokens(path, engine, repo_root)).items()
        if k not in declared})
    check_det_unord(tokens, relpath, declared, findings)
    check_det_float(tokens, relpath, declared, findings)

    check_hot_alloc(tokens, relpath, findings)
    check_sig_safe(tokens, relpath, findings)
    check_simd_confine(tokens, text, relpath, findings)

    # Apply suppressions: a finding is silenced when its line, or the
    # line below a comment-only line (i.e. the annotation sits right
    # above), carries an allow() for its rule.
    kept = []
    used = set()
    for f in findings:
        sup_here = suppressions.get(f.line, set())
        sup_above = suppressions.get(f.line - 1, set())
        if f.rule in sup_here:
            used.add((f.line, f.rule))
            continue
        if f.rule in sup_above:
            used.add((f.line - 1, f.rule))
            continue
        kept.append(f)
    for line, rules in sorted(suppressions.items()):
        for rule in sorted(rules):
            if (line, rule) not in used:
                kept.append(Finding(
                    relpath, line, 1, "LINT-SUPPRESS",
                    "suppression of %s matches no finding on this or "
                    "the next line; delete it" % rule))
    for f in bad_sup:
        f.path = relpath
        kept.append(f)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept


def default_files(repo_root):
    out = []
    src = os.path.join(repo_root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def pick_engine(requested):
    if requested == "tokens":
        return "tokens"
    try:
        from clang import cindex
        cindex.Index.create()
        return "clang"
    except Exception:
        if requested == "clang":
            print("aegis-lint: libclang bindings unavailable",
                  file=sys.stderr)
            sys.exit(2)
        return "tokens"


def main(argv):
    ap = argparse.ArgumentParser(
        prog="aegis-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="files to check (default: src/**/*.{cc,h})")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: the tool's "
                         "grandparent directory)")
    ap.add_argument("--engine", choices=["auto", "tokens", "clang"],
                    default="auto")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-13s %s" % (rule, RULES[rule]))
        return 0

    repo_root = os.path.abspath(
        args.repo_root if args.repo_root else
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", ".."))
    engine = pick_engine(args.engine)
    files = []
    for arg in (args.files if args.files else default_files(repo_root)):
        if os.path.isdir(arg):
            for dirpath, _dirnames, filenames in sorted(os.walk(arg)):
                for name in sorted(filenames):
                    files.append(os.path.join(dirpath, name))
        else:
            files.append(arg)

    total = 0
    checked = 0
    for path in files:
        if not path.endswith((".cc", ".h")) or not os.path.isfile(path):
            continue
        checked += 1
        try:
            findings = lint_file(path, repo_root, engine)
        except SyntaxError as e:
            print("aegis-lint: %s" % e, file=sys.stderr)
            return 2
        for f in findings:
            print(f.render())
        total += len(findings)
    if not args.quiet:
        print("aegis-lint: %d finding%s in %d file%s [engine=%s]"
              % (total, "" if total == 1 else "s", checked,
                 "" if checked == 1 else "s", engine),
              file=sys.stderr)
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
