/**
 * @file
 * aegis-sweep: fault-tolerant sharded sweep driver.
 *
 *   aegis-sweep run --out-dir DIR [options] -- <bench invocation>
 *     Shard the bench across N worker subprocesses with retry /
 *     timeout / backoff supervision, merge the shard checkpoints and
 *     finalize a single manifest bit-identical (modulo wall-clock
 *     fields) to a single-process run. See sweep/supervisor.h.
 *
 *   aegis-sweep merge --out FILE [--allow-missing] <shard.ckpt>...
 *     Just the merge step, for sweeps whose shards ran elsewhere
 *     (e.g. different machines sharing a filesystem).
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sweep/merge.h"
#include "sweep/supervisor.h"
#include "util/atomic_file.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

using namespace aegis;

constexpr FlagSpec kRunFlags[] = {
    {"out-dir", FlagKind::String, "",
     "directory for all sweep artifacts (required; created if "
     "absent)"},
    {"shards", FlagKind::Uint, "4", "worker subprocesses to shard "
     "the chunk grid across"},
    {"retries", FlagKind::Uint, "2",
     "retry budget per shard after its first attempt"},
    {"timeout", FlagKind::Double, "0",
     "per-attempt wall-clock deadline in seconds (0 = none)"},
    {"stall-timeout", FlagKind::Double, "30",
     "kill an attempt when its checkpoint has not advanced for this "
     "many seconds (0 = no stall detection)"},
    {"poll", FlagKind::Double, "0.05",
     "supervisor poll interval in seconds"},
    {"backoff", FlagKind::Double, "0.5",
     "initial retry backoff in seconds (doubles per retry)"},
    {"backoff-cap", FlagKind::Double, "8",
     "upper bound on the retry backoff in seconds"},
    {"checkpoint-every", FlagKind::Uint, "1",
     "worker snapshot cadence in chunks (dense snapshots double as "
     "the liveness signal)"},
    {"chaos", FlagKind::String, "",
     "fault injection: '<shard>=<AEGIS_CHAOS spec>' entries "
     "separated by ';', applied to that shard's first attempt only"},
    {"merged-checkpoint", FlagKind::String, "",
     "merged checkpoint path (default <out-dir>/merged.ckpt)"},
    {"merged-json", FlagKind::String, "",
     "merged manifest path (default <out-dir>/merged.json)"},
};

void
printUsage()
{
    std::cout
        << "usage: aegis-sweep run --out-dir DIR [options] -- "
           "<bench invocation>\n"
           "       aegis-sweep merge --out FILE [--allow-missing] "
           "<shard.ckpt>...\n"
           "\n"
           "`aegis-sweep run --help' lists the run options.\n";
}

int
runCommand(int argc, const char *const *argv)
{
    // Split at "--": supervisor flags on the left, the bench
    // invocation to shard on the right.
    int split = argc;
    for (int i = 0; i < argc; ++i)
        if (std::strcmp(argv[i], "--") == 0) {
            split = i;
            break;
        }

    std::vector<const char *> left;
    left.push_back("aegis-sweep run");
    for (int i = 0; i < split; ++i)
        left.push_back(argv[i]);

    CliParser cli("aegis-sweep run",
                  "Shard a Monte-Carlo bench across fault-tolerant "
                  "worker subprocesses");
    cli.addAll(kRunFlags);
    const Expected<CliParser::ParseResult> parsed =
        cli.tryParse(static_cast<int>(left.size()), left.data());
    if (!parsed.ok()) {
        std::cerr << "error: " << parsed.error() << "\n";
        return 2;
    }
    if (parsed.value() == CliParser::ParseResult::Help)
        return 0;
    if (cli.getString("out-dir").empty()) {
        std::cerr << "error: --out-dir is required\n";
        return 2;
    }
    if (split >= argc) {
        std::cerr << "error: no bench invocation given (append `-- "
                     "<bench> <flags...>')\n";
        return 2;
    }
    if (cli.getUint("shards") == 0) {
        std::cerr << "error: --shards must be at least 1\n";
        return 2;
    }

    sweep::SupervisorOptions options;
    for (int i = split + 1; i < argc; ++i)
        options.benchCommand.push_back(argv[i]);
    options.outDir = cli.getString("out-dir");
    options.shards = static_cast<std::uint32_t>(cli.getUint("shards"));
    options.retries =
        static_cast<std::uint32_t>(cli.getUint("retries"));
    options.timeoutSec = cli.getDouble("timeout");
    options.stallTimeoutSec = cli.getDouble("stall-timeout");
    options.pollSec = cli.getDouble("poll");
    options.backoff.initialSec = cli.getDouble("backoff");
    options.backoff.capSec = cli.getDouble("backoff-cap");
    options.checkpointEvery =
        static_cast<std::uint32_t>(cli.getUint("checkpoint-every"));
    options.chaosSpec = cli.getString("chaos");
    options.mergedCheckpoint = cli.getString("merged-checkpoint");
    options.mergedJson = cli.getString("merged-json");
    return sweep::runSweepSupervisor(options);
}

int
mergeCommand(int argc, const char *const *argv)
{
    std::string outPath;
    sweep::MergeOptions options;
    std::vector<std::string> paths;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--allow-missing") {
            options.allowMissing = true;
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                std::cerr << "error: --out needs a path\n";
                return 2;
            }
            outPath = argv[++i];
        } else if (arg == "--help") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "error: unknown merge option `" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (outPath.empty() || paths.empty()) {
        std::cerr << "error: usage: aegis-sweep merge --out FILE "
                     "[--allow-missing] <shard.ckpt>...\n";
        return 2;
    }

    sweep::MergeReport report;
    const Expected<sim::CheckpointData> merged =
        sweep::mergeShardCheckpoints(paths, options, &report);
    if (!merged.ok()) {
        std::cerr << "error: " << merged.error() << "\n";
        return 1;
    }
    for (const std::string &w : report.warnings)
        std::cerr << "warning: " << w << "\n";
    const Status wrote =
        atomicWriteFile(outPath, sim::encodeCheckpoint(*merged));
    if (!wrote.ok()) {
        std::cerr << "error: " << wrote.error() << "\n";
        return 1;
    }
    std::fprintf(stderr,
                 "merged %zu shard checkpoint(s) into `%s': %zu "
                 "sweep(s), %llu chunk(s)%s\n",
                 report.shardFiles, outPath.c_str(), report.units,
                 static_cast<unsigned long long>(report.chunks),
                 report.missingChunks != 0 ? " (degraded)" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printUsage();
        return 2;
    }
    const std::string command = argv[1];
    const char *const *rest = argv + 2;
    const int restCount = argc - 2;
    try {
        if (command == "run")
            return runCommand(restCount, rest);
        if (command == "merge")
            return mergeCommand(restCount, rest);
        if (command == "--help" || command == "help") {
            printUsage();
            return 0;
        }
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
    std::cerr << "error: unknown command `" << command
              << "' (expected run or merge)\n";
    printUsage();
    return 2;
}
