#!/usr/bin/env bash
# Static-analysis runner for aegis-pcm.
#
# Primary mode: clang-tidy over the library sources in src/ using the
# repository .clang-tidy config and a compile_commands.json exported
# from a fresh configure. When clang-tidy is not installed (the minimal
# gcc-only container), falls back to a strict-warning gcc syntax pass
# with the same hardened flag set the build enforces, so the script is
# always a meaningful gate and exits non-zero on findings.
#
# Usage:
#   tools/lint.sh [--build-dir DIR] [--aegis] [file.cc ...]
#
# With file arguments only those files are checked (CI uses this for
# changed-files linting); otherwise every .cc under src/ is checked.
#
# --aegis runs the repo-specific invariant checker
# (tools/aegis_lint/aegis_lint.py: determinism, hot-path allocations,
# signal safety) instead of clang-tidy. Headers are lintable in this
# mode.

set -u -o pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

build_dir="build-lint"
aegis_mode=0
files=()
while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir)
            build_dir="$2"
            shift 2
            ;;
        --aegis)
            aegis_mode=1
            shift
            ;;
        -h | --help)
            sed -n '2,21p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            files+=("$1")
            shift
            ;;
    esac
done

if [ "$aegis_mode" -eq 1 ]; then
    # The invariant checker takes headers too; it skips anything that
    # is not a .cc/.h under the repo, so a raw changed-files list is
    # fine to pass through.
    lintable=()
    for f in "${files[@]}"; do
        case "$f" in
            src/*.cc | src/*.h)
                [ -f "$f" ] && lintable+=("$f")
                ;;
        esac
    done
    if [ "${#files[@]}" -gt 0 ] && [ "${#lintable[@]}" -eq 0 ]; then
        echo "lint.sh: nothing to lint"
        exit 0
    fi
    exec python3 "$repo_root/tools/aegis_lint/aegis_lint.py" \
        --repo-root "$repo_root" "${lintable[@]}"
fi

if [ "${#files[@]}" -eq 0 ]; then
    while IFS= read -r f; do
        files+=("$f")
    done < <(find src -name '*.cc' | sort)
fi

# Keep only C++ translation units under src/ (changed-files lists may
# contain headers, tests or deleted paths).
lintable=()
for f in "${files[@]}"; do
    case "$f" in
        src/*.cc)
            [ -f "$f" ] && lintable+=("$f")
            ;;
    esac
done
if [ "${#lintable[@]}" -eq 0 ]; then
    echo "lint.sh: nothing to lint"
    exit 0
fi

tidy_bin=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
    clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        tidy_bin="$candidate"
        break
    fi
done

if [ -n "$tidy_bin" ]; then
    echo "lint.sh: running $tidy_bin on ${#lintable[@]} files"
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        cmake -B "$build_dir" -S . \
            -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            -DAEGIS_BUILD_BENCH=OFF -DAEGIS_BUILD_EXAMPLES=OFF \
            > /dev/null || exit 1
    fi
    "$tidy_bin" -p "$build_dir" --quiet "${lintable[@]}"
    exit $?
fi

echo "lint.sh: clang-tidy not found; falling back to a strict gcc" \
    "warning pass"
status=0
for f in "${lintable[@]}"; do
    if ! g++ -std=c++20 -fsyntax-only -I"$repo_root/src" \
        -Wall -Wextra -Wshadow -Wconversion -Wsign-conversion \
        -Wold-style-cast -Werror "$f"; then
        status=1
    fi
done
if [ "$status" -eq 0 ]; then
    echo "lint.sh: ${#lintable[@]} files clean"
fi
exit "$status"
