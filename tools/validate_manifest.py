#!/usr/bin/env python3
"""Validate an aegis bench run manifest against tools/manifest_schema.json.

Standard-library only (the CI images carry no jsonschema package), so
this implements the small draft-07 subset the schema actually uses:
type, required, properties, items, enum, pattern and minimum. Unknown
keywords are ignored, matching jsonschema's permissive default.

Usage: validate_manifest.py <manifest.json> [schema.json]
Exit status 0 when valid; 1 with one line per violation otherwise.
"""

import json
import os
import re
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def check_type(value, expected):
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return isinstance(value, TYPES[expected])


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected is not None and not check_type(value, expected):
        errors.append("%s: expected %s, got %s"
                      % (path, expected, type(value).__name__))
        return

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        errors.append("%s: %r not one of %r" % (path, value, enum))

    pattern = schema.get("pattern")
    if pattern is not None and isinstance(value, str):
        if re.search(pattern, value) is None:
            errors.append("%s: %r does not match /%s/"
                          % (path, value, pattern))

    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)):
        if value < minimum:
            errors.append("%s: %r below minimum %r"
                          % (path, value, minimum))

    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append("%s: missing required key %r"
                              % (path, name))
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                validate(value[name], sub, "%s.%s" % (path, name),
                         errors)

    if isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(value):
                validate(element, items, "%s[%d]" % (path, i), errors)


def check_timeseries(manifest, errors):
    """Cross-field check the schema subset cannot express: every row of
    a timeseries entry must be exactly as wide as its columns list, and
    a v4 manifest must carry the section (possibly empty)."""
    version = manifest.get("schemaVersion")
    if isinstance(version, int) and version >= 4:
        if "timeseries" not in manifest:
            errors.append("$: schemaVersion %d requires a timeseries "
                          "section" % version)
    if isinstance(version, int) and version >= 5:
        if "shards" not in manifest:
            errors.append("$: schemaVersion %d requires a shards "
                          "section" % version)
    for i, series in enumerate(manifest.get("timeseries", [])):
        if not isinstance(series, dict):
            continue
        width = len(series.get("columns", []))
        for r, row in enumerate(series.get("rows", [])):
            if isinstance(row, list) and len(row) != width:
                errors.append(
                    "$.timeseries[%d] (%s) row %d: %d values for %d "
                    "columns" % (i, series.get("name", "?"), r,
                                 len(row), width))


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    manifest_path = argv[1]
    schema_path = (argv[2] if len(argv) == 3 else
                   os.path.join(os.path.dirname(os.path.abspath(argv[0])),
                                "manifest_schema.json"))

    with open(manifest_path) as f:
        manifest = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    validate(manifest, schema, "$", errors)
    check_timeseries(manifest, errors)
    if errors:
        for e in errors:
            print("INVALID %s: %s" % (manifest_path, e))
        return 1
    print("OK %s (schema %s v%s, program %s)"
          % (manifest_path, manifest.get("schema"),
             manifest.get("schemaVersion"), manifest.get("program")))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
