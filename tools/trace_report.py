#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file written by --trace-out.

Standard-library only. Reads the trace the benches emit via the obs
trace sink (src/obs/trace_sink.cc) and prints:

  - span totals by event name: count, total/self time, max duration
    (self time subtracts nested same-track-and-lane spans, so
    "write.pv" totals exclude the "write.repartition" stalls they
    contain);
  - per-lane busy time and utilization per track (tracks are Chrome
    processes — one simulated cell; lanes are Chrome threads — lane 0
    the metadata bus, lane 1+b bank b);
  - drop statistics from the sink's otherData block: a trace with
    dropped events is still valid but incomplete, so drops are always
    surfaced.

Usage: trace_report.py [--top N] <trace.json>
Exit status 0 on success, 1 when the file is malformed (not JSON, no
traceEvents array, or events missing mandatory keys).
"""

import json
import sys


def load_trace(path):
    with open(path) as f:
        data = json.load(f)
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("no traceEvents array")
    return data, events


def lane_label(meta_names, pid, tid):
    name = meta_names.get((pid, tid))
    return name if name else "lane %d" % tid


def self_times(spans):
    """Per-span self time: duration minus nested spans on the same
    (pid, tid) row. Spans on one row never partially overlap (the sink
    records a serial schedule per lane), so a sweep with a stack of
    open intervals suffices."""
    selfs = {}
    by_row = {}
    for i, (pid, tid, name, ts, dur) in enumerate(spans):
        by_row.setdefault((pid, tid), []).append((ts, ts + dur, i))
    for row in by_row.values():
        # Sort by start, longest first at equal starts, so a parent
        # precedes the children it contains.
        row.sort(key=lambda e: (e[0], -(e[1] - e[0])))
        stack = []
        for start, end, i in row:
            while stack and stack[-1][1] <= start:
                stack.pop()
            nested = end - start
            if stack:
                parent = stack[-1][2]
                selfs[parent] = selfs.get(parent, 0) - nested
            stack.append((start, end, i))
            selfs[i] = selfs.get(i, 0) + nested
    return selfs


def main(argv):
    args = argv[1:]
    top = 20
    while args and args[0].startswith("--"):
        if args[0] == "--top" and len(args) >= 2:
            top = int(args[1])
            args = args[2:]
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        data, events = load_trace(args[0])
    except (OSError, ValueError) as ex:
        print("MALFORMED %s: %s" % (args[0], ex))
        return 1

    spans = []        # (pid, tid, name, ts, dur)
    counters = {}     # name -> samples
    instants = {}     # name -> count
    meta_names = {}   # (pid, tid) -> thread name; (pid, None) -> process
    try:
        for e in events:
            ph = e["ph"]
            if ph == "X":
                spans.append((e["pid"], e["tid"], e["name"], e["ts"],
                              e["dur"]))
            elif ph == "C":
                counters[e["name"]] = counters.get(e["name"], 0) + 1
            elif ph == "i":
                instants[e["name"]] = instants.get(e["name"], 0) + 1
            elif ph == "M":
                if e["name"] == "process_name":
                    meta_names[(e["pid"], None)] = e["args"]["name"]
                elif e["name"] == "thread_name":
                    meta_names[(e["pid"], e["tid"])] = e["args"]["name"]
    except (KeyError, TypeError) as ex:
        print("MALFORMED %s: event missing key %s" % (args[0], ex))
        return 1

    other = data.get("otherData", {})
    print("trace: %s" % args[0])
    print("  events: %d recorded, %s dropped"
          % (len(events), other.get("droppedEvents", "?")))
    if isinstance(other.get("droppedEvents"), int) \
            and other["droppedEvents"] > 0:
        print("  WARNING: ring buffers overflowed; totals below are "
              "lower bounds (raise --trace-capacity)")

    selfs = self_times(spans)
    by_name = {}
    for i, (pid, tid, name, ts, dur) in enumerate(spans):
        agg = by_name.setdefault(name, [0, 0, 0, 0])
        agg[0] += 1
        agg[1] += dur
        agg[2] += selfs.get(i, dur)
        agg[3] = max(agg[3], dur)

    if by_name:
        print("\nspans by total time (top %d):" % top)
        print("  %-24s %10s %14s %14s %10s"
              % ("name", "count", "total ticks", "self ticks", "max"))
        ranked = sorted(by_name.items(), key=lambda kv: -kv[1][1])
        for name, (count, total, self_t, mx) in ranked[:top]:
            print("  %-24s %10d %14d %14d %10d"
                  % (name, count, total, self_t, mx))
        if len(ranked) > top:
            print("  ... %d more span names" % (len(ranked) - top))

    rows = {}
    for pid, tid, name, ts, dur in spans:
        busy, end = rows.get((pid, tid), (0, 0))
        rows[(pid, tid)] = (busy + dur, max(end, ts + dur))
    if rows:
        print("\nlane utilization (busy/elapsed per track row, top %d):"
              % top)
        print("  %-24s %-16s %14s %14s %6s"
              % ("track", "lane", "busy ticks", "last tick", "util"))
        ranked = sorted(rows.items(), key=lambda kv: -kv[1][0])
        for (pid, tid), (busy, end) in ranked[:top]:
            track = meta_names.get((pid, None), "track %d" % pid)
            util = 100.0 * busy / end if end > 0 else 0.0
            print("  %-24s %-16s %14d %14d %5.1f%%"
                  % (track, lane_label(meta_names, pid, tid), busy,
                     end, util))
        if len(ranked) > top:
            print("  ... %d more lanes" % (len(ranked) - top))

    if counters:
        print("\ncounter series (samples):")
        for name in sorted(counters):
            print("  %-32s %10d" % (name, counters[name]))
    if instants:
        print("\ninstant events:")
        for name in sorted(instants):
            print("  %-32s %10d" % (name, instants[name]))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)  # output piped into head; not an error
