#!/usr/bin/env python3
"""Compare the deterministic sections of two aegis bench manifests.

A resumed run must be bit-identical to an uninterrupted one, but only
in the fields that are deterministic by design: the master seed, the
result tables (every cell, verbatim), the metrics *counters*, and the
timeseries section. Timestamps, phase wall-clock seconds, timer
nanoseconds, the status field, the per-shard outcome section (a merged
sharded sweep records its worker attempts there) and the flag record
(a resumed invocation adds --resume) are all legitimately different
and excluded.

Usage: compare_manifests.py [--ignore-wallclock] <golden.json>
<candidate.json>
Exit status 0 when the deterministic sections match; 1 with one line
per difference otherwise.

--ignore-wallclock additionally masks wall-clock columns (wall_ms) in
the timeseries diff: the Monte-Carlo chunk timelines stamp each row
with an advisory completion time that legitimately varies across
--jobs and machines.

Perf-gate mode: compare_manifests.py --perf [--tolerance PCT] then the
two manifests. Instead of bit-exact equality, rows of the
"microbenchmarks" table are matched by benchmark name and the
candidate's cpu_ns_per_iter must not exceed the golden's by more than
the tolerance (default 10%). Benchmarks present in only one manifest
are reported but do not fail the gate (the set evolves); slower-than-
tolerance rows do.
"""

import json
import sys

PERF_TABLE = "microbenchmarks"
PERF_METRIC = "cpu_ns_per_iter"


def perf_rows(manifest, errors, label):
    """Map benchmark name -> cpu ns/iter from the microbenchmarks table."""
    for table in manifest.get("tables", []):
        if table.get("title") != PERF_TABLE:
            continue
        header = table.get("header", [])
        try:
            name_col = header.index("benchmark")
            metric_col = header.index(PERF_METRIC)
        except ValueError:
            errors.append("%s: %r table lacks benchmark/%s columns"
                          % (label, PERF_TABLE, PERF_METRIC))
            return {}
        rows = {}
        for row in table.get("rows", []):
            # Cells are human-formatted strings ("1,760,247" / "391.91").
            rows[row[name_col]] = float(row[metric_col].replace(",", ""))
        return rows
    errors.append("%s: no %r table" % (label, PERF_TABLE))
    return {}


def perf_gate(golden, candidate, tolerance_pct):
    errors = []
    g = perf_rows(golden, errors, "golden")
    c = perf_rows(candidate, errors, "candidate")
    if errors:
        for e in errors:
            print("PERF-GATE ERROR: %s" % e)
        return 2

    regressions = []
    limit = 1.0 + tolerance_pct / 100.0
    for name in sorted(set(g) | set(c)):
        if name not in c:
            print("PERF-GATE NOTE: %s only in golden (skipped)" % name)
            continue
        if name not in g:
            print("PERF-GATE NOTE: %s only in candidate (skipped)" % name)
            continue
        ratio = c[name] / g[name] if g[name] > 0 else float("inf")
        verdict = "FAIL" if ratio > limit else "ok"
        print("PERF-GATE %-4s %-45s %10.2f -> %10.2f ns/iter (%+6.1f%%)"
              % (verdict, name, g[name], c[name], (ratio - 1.0) * 100.0))
        if ratio > limit:
            regressions.append(name)

    if regressions:
        print("PERF-GATE: %d benchmark(s) regressed beyond %.0f%%: %s"
              % (len(regressions), tolerance_pct, ", ".join(regressions)))
        return 1
    print("PERF-GATE: all shared benchmarks within %.0f%% of golden"
          % tolerance_pct)
    return 0


def diff_tables(golden, candidate, errors):
    if len(golden) != len(candidate):
        errors.append("table count: %d vs %d"
                      % (len(golden), len(candidate)))
        return
    for t, (g, c) in enumerate(zip(golden, candidate)):
        where = "tables[%d] (%s)" % (t, g.get("title", "?"))
        if g.get("title") != c.get("title"):
            errors.append("%s: title %r vs %r"
                          % (where, g.get("title"), c.get("title")))
        if g.get("header") != c.get("header"):
            errors.append("%s: header %r vs %r"
                          % (where, g.get("header"), c.get("header")))
        grows, crows = g.get("rows", []), c.get("rows", [])
        if len(grows) != len(crows):
            errors.append("%s: %d rows vs %d rows"
                          % (where, len(grows), len(crows)))
            continue
        for r, (grow, crow) in enumerate(zip(grows, crows)):
            if grow != crow:
                errors.append("%s row %d: %r vs %r"
                              % (where, r, grow, crow))


def diff_counters(golden, candidate, errors):
    for name in sorted(set(golden) | set(candidate)):
        g, c = golden.get(name), candidate.get(name)
        if g != c:
            errors.append("counter %s: %r vs %r" % (name, g, c))


WALLCLOCK_COLUMNS = ("wall_ms",)


def masked_rows(series, ignore_wallclock):
    """Rows with wall-clock columns zeroed when asked to ignore them."""
    columns = series.get("columns", [])
    masked = [i for i, name in enumerate(columns)
              if ignore_wallclock and name in WALLCLOCK_COLUMNS]
    if not masked:
        return series.get("rows", [])
    return [[0 if i in masked else v for i, v in enumerate(row)]
            for row in series.get("rows", [])]


def diff_timeseries(golden, candidate, errors, ignore_wallclock):
    if len(golden) != len(candidate):
        errors.append("timeseries count: %d vs %d"
                      % (len(golden), len(candidate)))
        return
    for t, (g, c) in enumerate(zip(golden, candidate)):
        where = "timeseries[%d] (%s)" % (t, g.get("name", "?"))
        if g.get("name") != c.get("name"):
            errors.append("%s: name %r vs %r"
                          % (where, g.get("name"), c.get("name")))
        if g.get("columns") != c.get("columns"):
            errors.append("%s: columns %r vs %r"
                          % (where, g.get("columns"), c.get("columns")))
            continue
        grows = masked_rows(g, ignore_wallclock)
        crows = masked_rows(c, ignore_wallclock)
        if len(grows) != len(crows):
            errors.append("%s: %d rows vs %d rows"
                          % (where, len(grows), len(crows)))
            continue
        for r, (grow, crow) in enumerate(zip(grows, crows)):
            if grow != crow:
                errors.append("%s row %d: %r vs %r"
                              % (where, r, grow, crow))


def main(argv):
    args = argv[1:]
    perf_mode = False
    ignore_wallclock = False
    tolerance = 10.0
    while args and args[0].startswith("--"):
        if args[0] == "--perf":
            perf_mode = True
            args = args[1:]
        elif args[0] == "--ignore-wallclock":
            ignore_wallclock = True
            args = args[1:]
        elif args[0] == "--tolerance" and len(args) >= 2:
            tolerance = float(args[1])
            args = args[2:]
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0]) as f:
        golden = json.load(f)
    with open(args[1]) as f:
        candidate = json.load(f)

    if perf_mode:
        return perf_gate(golden, candidate, tolerance)
    argv = [argv[0], args[0], args[1]]

    errors = []
    if golden.get("seed") != candidate.get("seed"):
        errors.append("seed: %r vs %r"
                      % (golden.get("seed"), candidate.get("seed")))
    if golden.get("program") != candidate.get("program"):
        errors.append("program: %r vs %r"
                      % (golden.get("program"),
                         candidate.get("program")))
    diff_tables(golden.get("tables", []),
                candidate.get("tables", []), errors)
    diff_counters(golden.get("metrics", {}).get("counters", {}),
                  candidate.get("metrics", {}).get("counters", {}),
                  errors)
    diff_timeseries(golden.get("timeseries", []),
                    candidate.get("timeseries", []), errors,
                    ignore_wallclock)

    if errors:
        for e in errors:
            print("DIFFER %s vs %s: %s" % (argv[1], argv[2], e))
        return 1
    print("MATCH %s vs %s (seed, %d tables, counters, %d timeseries%s)"
          % (argv[1], argv[2], len(golden.get("tables", [])),
             len(golden.get("timeseries", [])),
             ", wall-clock columns ignored" if ignore_wallclock else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
