#!/usr/bin/env python3
"""Compare the deterministic sections of two aegis bench manifests.

A resumed run must be bit-identical to an uninterrupted one, but only
in the fields that are deterministic by design: the master seed, the
result tables (every cell, verbatim), and the metrics *counters*.
Timestamps, phase wall-clock seconds, timer nanoseconds, the status
field and the flag record (a resumed invocation adds --resume) are all
legitimately different and excluded.

Usage: compare_manifests.py <golden.json> <candidate.json>
Exit status 0 when the deterministic sections match; 1 with one line
per difference otherwise.
"""

import json
import sys


def diff_tables(golden, candidate, errors):
    if len(golden) != len(candidate):
        errors.append("table count: %d vs %d"
                      % (len(golden), len(candidate)))
        return
    for t, (g, c) in enumerate(zip(golden, candidate)):
        where = "tables[%d] (%s)" % (t, g.get("title", "?"))
        if g.get("title") != c.get("title"):
            errors.append("%s: title %r vs %r"
                          % (where, g.get("title"), c.get("title")))
        if g.get("header") != c.get("header"):
            errors.append("%s: header %r vs %r"
                          % (where, g.get("header"), c.get("header")))
        grows, crows = g.get("rows", []), c.get("rows", [])
        if len(grows) != len(crows):
            errors.append("%s: %d rows vs %d rows"
                          % (where, len(grows), len(crows)))
            continue
        for r, (grow, crow) in enumerate(zip(grows, crows)):
            if grow != crow:
                errors.append("%s row %d: %r vs %r"
                              % (where, r, grow, crow))


def diff_counters(golden, candidate, errors):
    for name in sorted(set(golden) | set(candidate)):
        g, c = golden.get(name), candidate.get(name)
        if g != c:
            errors.append("counter %s: %r vs %r" % (name, g, c))


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        golden = json.load(f)
    with open(argv[2]) as f:
        candidate = json.load(f)

    errors = []
    if golden.get("seed") != candidate.get("seed"):
        errors.append("seed: %r vs %r"
                      % (golden.get("seed"), candidate.get("seed")))
    if golden.get("program") != candidate.get("program"):
        errors.append("program: %r vs %r"
                      % (golden.get("program"),
                         candidate.get("program")))
    diff_tables(golden.get("tables", []),
                candidate.get("tables", []), errors)
    diff_counters(golden.get("metrics", {}).get("counters", {}),
                  candidate.get("metrics", {}).get("counters", {}),
                  errors)

    if errors:
        for e in errors:
            print("DIFFER %s vs %s: %s" % (argv[1], argv[2], e))
        return 1
    print("MATCH %s vs %s (seed, %d tables, counters)"
          % (argv[1], argv[2], len(golden.get("tables", []))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
