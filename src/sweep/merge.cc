#include "sweep/merge.h"

#include <algorithm>
#include <map>

#include "sim/shard.h"

namespace aegis::sweep {

namespace {

using sim::CheckpointChunk;
using sim::CheckpointData;
using sim::CheckpointPartial;

/** One unit's chunk grid being reassembled across shards. */
struct UnitAssembly
{
    std::uint64_t fingerprint = 0;
    std::uint8_t kind = 0;
    std::uint64_t items = 0;
    std::uint64_t grain = 0;
    /** chunk index -> (blob, contributing shard) */
    std::map<std::uint32_t, std::string> chunks;
};

std::string
describeIdentity(const CheckpointData &d)
{
    return "program `" + d.program + "', seed " +
           std::to_string(d.masterSeed);
}

} // namespace

Expected<CheckpointData>
mergeShardCheckpoints(const std::vector<std::string> &paths,
                      const MergeOptions &options, MergeReport *report)
{
    using Result = Expected<CheckpointData>;
    MergeReport localReport;
    MergeReport &rep = report != nullptr ? *report : localReport;
    rep = MergeReport{};

    if (paths.empty())
        return Result::failure("merge: no shard checkpoints given");

    // Load every input, skipping (with a warning) only when degraded
    // operation was requested — a failed shard may leave a torn file
    // behind, and its surviving chunks are in older snapshots anyway.
    std::vector<std::pair<std::string, CheckpointData>> inputs;
    for (const std::string &path : paths) {
        Expected<CheckpointData> loaded =
            sim::loadCheckpointFile(path);
        if (!loaded.ok()) {
            if (!options.allowMissing)
                return Result::failure("merge: " + loaded.error());
            rep.warnings.push_back("skipping `" + path +
                                   "': " + loaded.error());
            continue;
        }
        inputs.emplace_back(path, std::move(*loaded));
    }
    if (inputs.empty())
        return Result::failure(
            "merge: no usable shard checkpoint among " +
            std::to_string(paths.size()) + " input(s)");

    // Same-sweep validation against the first usable input.
    const CheckpointData &ref = inputs.front().second;
    const std::string &refPath = inputs.front().first;
    for (const auto &[path, data] : inputs) {
        if (data.program != ref.program ||
            data.flagsFingerprint != ref.flagsFingerprint ||
            data.masterSeed != ref.masterSeed)
            return Result::failure(
                "merge: `" + path + "' (" + describeIdentity(data) +
                ") belongs to a different sweep than `" + refPath +
                "' (" + describeIdentity(ref) +
                "); stale artifact?");
        if (data.shardCount != ref.shardCount)
            return Result::failure(
                "merge: `" + path + "' was written by a sweep of " +
                std::to_string(data.shardCount) + " shards, `" +
                refPath + "' by one of " +
                std::to_string(ref.shardCount));
    }
    std::vector<std::uint8_t> shardSeen(ref.shardCount, 0);
    for (const auto &[path, data] : inputs) {
        if (shardSeen[data.shardIndex] != 0)
            return Result::failure(
                "merge: two inputs claim shard " +
                std::to_string(data.shardIndex) + " (one is `" + path +
                "'); duplicate or stale artifact");
        shardSeen[data.shardIndex] = 1;
    }

    // A single-process checkpoint (shard count 1) passes through:
    // there is nothing to reassemble.
    if (ref.shardCount == 1) {
        if (inputs.size() != 1)
            return Result::failure(
                "merge: multiple single-process checkpoints given; "
                "nothing to merge");
        rep.shardFiles = 1;
        rep.units = ref.completed.size() + ref.partials.size();
        for (const CheckpointPartial &p : ref.partials)
            rep.chunks += p.chunks.size();
        return inputs.front().second;
    }

    // Reassemble every unit's grid chunk by chunk.
    std::map<std::uint32_t, UnitAssembly> units;
    for (const auto &[path, data] : inputs) {
        if (!data.completed.empty())
            return Result::failure(
                "merge: `" + path + "' holds completed units, which a "
                "shard worker never produces; stale or cross-wired "
                "artifact");
        const sim::ShardSpec shard{data.shardIndex, data.shardCount};
        for (const CheckpointPartial &p : data.partials) {
            UnitAssembly &unit = units[p.index];
            if (unit.grain == 0) {
                unit.fingerprint = p.fingerprint;
                unit.kind = p.kind;
                unit.items = p.items;
                unit.grain = p.grain;
            } else if (unit.fingerprint != p.fingerprint ||
                       unit.kind != p.kind || unit.items != p.items ||
                       unit.grain != p.grain) {
                return Result::failure(
                    "merge: `" + path + "' disagrees about sweep #" +
                    std::to_string(p.index) +
                    " (configuration or chunk grid); the shards did "
                    "not run the same sweep");
            }
            if (unit.grain == 0)
                return Result::failure("merge: `" + path +
                                       "' records a zero-grain sweep");
            const std::uint64_t gridChunks =
                (p.items + unit.grain - 1) / unit.grain;
            for (const CheckpointChunk &c : p.chunks) {
                if (c.index >= gridChunks)
                    return Result::failure(
                        "merge: `" + path + "' records chunk " +
                        std::to_string(c.index) +
                        " outside sweep #" + std::to_string(p.index) +
                        "'s grid of " + std::to_string(gridChunks));
                if (!shard.owns(c.index))
                    return Result::failure(
                        "merge: `" + path + "' (shard " +
                        shard.label() + ") records chunk " +
                        std::to_string(c.index) +
                        ", which belongs to shard " +
                        std::to_string(c.index % data.shardCount) +
                        "; stale or cross-wired artifact");
                if (!unit.chunks.emplace(c.index, c.blob).second)
                    return Result::failure(
                        "merge: chunk " + std::to_string(c.index) +
                        " of sweep #" + std::to_string(p.index) +
                        " appears twice (second copy in `" + path +
                        "')");
            }
        }
    }

    // Coverage: full grids unless degradation was allowed.
    if (!options.allowMissing) {
        for (std::uint32_t s = 0; s < ref.shardCount; ++s)
            if (shardSeen[s] == 0)
                return Result::failure(
                    "merge: no checkpoint for shard " +
                    std::to_string(s) + "/" +
                    std::to_string(ref.shardCount) +
                    " (pass --allow-missing to merge a degraded "
                    "sweep)");
        std::uint32_t expectUnit = 0;
        for (const auto &[index, unit] : units) {
            (void)unit;
            if (index != expectUnit++)
                return Result::failure(
                    "merge: sweep #" + std::to_string(expectUnit - 1) +
                    " is missing from every shard checkpoint");
        }
    }
    CheckpointData out;
    out.program = ref.program;
    out.flagsFingerprint = ref.flagsFingerprint;
    out.masterSeed = ref.masterSeed;
    out.shardIndex = 0;
    out.shardCount = 1;
    for (auto &[index, unit] : units) {
        const std::uint64_t gridChunks =
            (unit.items + unit.grain - 1) / unit.grain;
        const std::uint64_t present = unit.chunks.size();
        if (present < gridChunks) {
            if (!options.allowMissing)
                return Result::failure(
                    "merge: sweep #" + std::to_string(index) +
                    " covers only " + std::to_string(present) +
                    " of " + std::to_string(gridChunks) +
                    " chunks (pass --allow-missing to merge a "
                    "degraded sweep)");
            rep.missingChunks += gridChunks - present;
        }
        CheckpointPartial merged;
        merged.index = index;
        merged.fingerprint = unit.fingerprint;
        merged.kind = unit.kind;
        merged.items = unit.items;
        merged.grain = unit.grain;
        merged.chunks.reserve(unit.chunks.size());
        for (auto &[chunkIndex, blob] : unit.chunks)
            merged.chunks.push_back(
                CheckpointChunk{chunkIndex, std::move(blob)});
        rep.chunks += merged.chunks.size();
        out.partials.push_back(std::move(merged));
    }
    rep.shardFiles = inputs.size();
    rep.units = out.partials.size();
    return out;
}

} // namespace aegis::sweep
