/**
 * @file
 * Text codec for the per-shard outcome report the sweep supervisor
 * writes and the finalizing bench run reads (via --shards-report) to
 * embed a `shards` section in the merged manifest. A tiny line
 * format, not JSON: the repo's JSON support is writer-only by design
 * (deterministic emission), and two processes of the same build
 * exchanging a handful of fields do not justify a parser.
 *
 * Format (one entry per line, detail is the rest of the line):
 *   aegis-shard-report v1
 *   shard <index> <ok|failed> <attempts> <exitCode> <wallSeconds> [detail]
 */

#ifndef AEGIS_SWEEP_SHARD_REPORT_H
#define AEGIS_SWEEP_SHARD_REPORT_H

#include <string>
#include <string_view>
#include <vector>

#include "obs/manifest.h"
#include "util/expected.h"

namespace aegis::sweep {

/** Serialize @p entries as the report text. */
std::string encodeShardReport(
    const std::vector<obs::ShardEntry> &entries);

/** Parse report text; malformed input fails naming @p path. */
Expected<std::vector<obs::ShardEntry>>
decodeShardReport(std::string_view text, const std::string &path);

/** Read and decode the report at @p path. */
Expected<std::vector<obs::ShardEntry>>
loadShardReportFile(const std::string &path);

/** Atomically write @p entries to @p path. */
Status writeShardReportFile(const std::string &path,
                            const std::vector<obs::ShardEntry> &entries);

} // namespace aegis::sweep

#endif // AEGIS_SWEEP_SHARD_REPORT_H
