#include "sweep/shard_report.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "util/atomic_file.h"

namespace aegis::sweep {

namespace {

constexpr std::string_view kHeader = "aegis-shard-report v1";

bool
takeToken(std::string_view &line, std::string_view &token)
{
    while (!line.empty() && line.front() == ' ')
        line.remove_prefix(1);
    if (line.empty())
        return false;
    const std::size_t end = line.find(' ');
    token = line.substr(0, end);
    line.remove_prefix(end == std::string_view::npos ? line.size()
                                                     : end);
    return true;
}

template <typename Int>
bool
parseInt(std::string_view text, Int &out)
{
    if (text.empty())
        return false;
    const std::from_chars_result r =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return r.ec == std::errc() && r.ptr == text.data() + text.size();
}

bool
parseDouble(std::string_view text, double &out)
{
    if (text.empty())
        return false;
    const std::from_chars_result r =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return r.ec == std::errc() && r.ptr == text.data() + text.size();
}

} // namespace

std::string
encodeShardReport(const std::vector<obs::ShardEntry> &entries)
{
    std::string out(kHeader);
    out += '\n';
    char buf[96];
    for (const obs::ShardEntry &e : entries) {
        std::snprintf(buf, sizeof buf,
                      "shard %" PRIu32 " %s %" PRIu32 " %" PRId32
                      " %.3f",
                      e.index, e.status.c_str(), e.attempts,
                      e.exitCode, e.wallSeconds);
        out += buf;
        if (!e.detail.empty()) {
            out += ' ';
            out += e.detail;
        }
        out += '\n';
    }
    return out;
}

Expected<std::vector<obs::ShardEntry>>
decodeShardReport(std::string_view text, const std::string &path)
{
    using Result = Expected<std::vector<obs::ShardEntry>>;
    const auto malformed = [&path](const std::string &what) {
        return Result::failure("shard report `" + path + "' " + what);
    };

    std::vector<obs::ShardEntry> entries;
    bool sawHeader = false;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string_view::npos)
            end = text.size();
        std::string_view line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        if (!sawHeader) {
            if (line != kHeader)
                return malformed("has a bad header (is this really a "
                                 "shard report?)");
            sawHeader = true;
            continue;
        }
        std::string_view tag, index, status, attempts, exitCode, wall;
        if (!takeToken(line, tag) || tag != "shard" ||
            !takeToken(line, index) || !takeToken(line, status) ||
            !takeToken(line, attempts) || !takeToken(line, exitCode) ||
            !takeToken(line, wall))
            return malformed("has a malformed entry line");
        obs::ShardEntry e;
        e.status = std::string(status);
        if (!parseInt(index, e.index) ||
            (e.status != "ok" && e.status != "failed") ||
            !parseInt(attempts, e.attempts) ||
            !parseInt(exitCode, e.exitCode) ||
            !parseDouble(wall, e.wallSeconds))
            return malformed("has a malformed entry field");
        while (!line.empty() && line.front() == ' ')
            line.remove_prefix(1);
        e.detail = std::string(line);
        entries.push_back(std::move(e));
    }
    if (!sawHeader)
        return malformed("is empty");
    return entries;
}

Expected<std::vector<obs::ShardEntry>>
loadShardReportFile(const std::string &path)
{
    Expected<std::string> bytes = readFile(path);
    if (!bytes.ok())
        return Expected<std::vector<obs::ShardEntry>>::failure(
            bytes.error());
    return decodeShardReport(*bytes, path);
}

Status
writeShardReportFile(const std::string &path,
                     const std::vector<obs::ShardEntry> &entries)
{
    return atomicWriteFile(path, encodeShardReport(entries));
}

} // namespace aegis::sweep
