/**
 * @file
 * Bit-exact merge of per-shard checkpoints back into one checkpoint.
 *
 * Each shard worker leaves an AEGISCKP file whose units are chunk
 * grids covering only the chunks that shard owns (index ≡ shard mod
 * N, see sim/shard.h). Merging is pure reassembly: the chunk blobs
 * are byte-identical to what a single process would have produced,
 * so concatenating the grids per unit — after validating that every
 * input belongs to the same sweep, that chunk provenance matches the
 * owning shard, and that nothing is duplicated — yields a checkpoint
 * a plain `--resume` run restores into the exact single-process
 * study. No study deserialization happens here; corruption is caught
 * by the per-file checksum plus the structural checks below, and the
 * finalizing bench run re-verifies every blob as it restores it.
 */

#ifndef AEGIS_SWEEP_MERGE_H
#define AEGIS_SWEEP_MERGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "util/expected.h"

namespace aegis::sweep {

struct MergeOptions
{
    /**
     * Tolerate missing coverage: unreadable/corrupt shard files are
     * skipped with a warning, and units may end up with chunk gaps
     * (failed shards' lost work). The supervisor sets this when some
     * shard exhausted its retries — the merged checkpoint then
     * finalizes into a "partial" manifest instead of no manifest.
     * When false, any gap or bad input fails the merge.
     */
    bool allowMissing = false;
};

/** What a merge did, for log lines and degradation decisions. */
struct MergeReport
{
    std::size_t shardFiles = 0;      ///< inputs merged
    std::size_t units = 0;           ///< units in the output
    std::uint64_t chunks = 0;        ///< chunks in the output
    std::uint64_t missingChunks = 0; ///< expected but absent
    std::vector<std::string> warnings;

    bool complete() const { return missingChunks == 0; }
};

/**
 * Merge the shard checkpoints at @p paths into one unsharded
 * checkpoint (shard 0/1) whose units are full chunk grids, ready for
 * a `--resume` (or `--resume --finalize-partial`) run to restore.
 *
 * Validation (all failures name the offending file):
 *  - every input decodes, checksums, and belongs to the same
 *    program / flags fingerprint / master seed;
 *  - every input declares the same shard count, and no two inputs
 *    claim the same shard index;
 *  - per unit, every input agrees on fingerprint, kind, items and
 *    grain;
 *  - every chunk is owned by the shard that recorded it (stale or
 *    cross-wired artifacts are rejected) and appears exactly once;
 *  - without allowMissing: every unit's grid is fully covered and
 *    every shard contributed a file.
 */
Expected<sim::CheckpointData>
mergeShardCheckpoints(const std::vector<std::string> &paths,
                      const MergeOptions &options,
                      MergeReport *report = nullptr);

} // namespace aegis::sweep

#endif // AEGIS_SWEEP_MERGE_H
