/**
 * @file
 * Fault-tolerant sweep supervisor: runs one Monte-Carlo bench as N
 * shard subprocesses over the fixed chunk grid, survives worker
 * crashes, hangs and I/O failures, and reassembles a bit-identical
 * result.
 *
 * Lifecycle per shard: spawn `bench --shard i/N --checkpoint ...`,
 * watch it with three detectors — exit status, a per-attempt deadline
 * and a liveness check on the shard checkpoint's mtime (a worker that
 * stops snapshotting has stalled even if it never exits) — and on
 * failure re-dispatch after a deterministic exponential backoff, with
 * `--resume` so the retry continues from the last snapshot instead of
 * restarting. A shard that exhausts its retry budget is recorded as
 * failed and the sweep degrades gracefully: the merge tolerates the
 * gap and the final manifest says "status": "partial" with a `shards`
 * section naming the casualty, instead of the supervisor crashing.
 *
 * After the shards settle, the per-shard checkpoints merge
 * (sweep/merge.h) into one checkpoint, and a final bench run with
 * `--resume --finalize-partial` restores it through the existing
 * bit-exact chunk-merge path — producing the same manifest bytes
 * (modulo advisory wall-clock fields) as a single-process run.
 */

#ifndef AEGIS_SWEEP_SUPERVISOR_H
#define AEGIS_SWEEP_SUPERVISOR_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/expected.h"
#include "util/subprocess.h"

namespace aegis::sweep {

struct SupervisorOptions
{
    /** The bench invocation to shard: binary plus its own flags. Must
     *  not already carry the flags the supervisor appends (--shard,
     *  --checkpoint, --resume, --json, ...). */
    std::vector<std::string> benchCommand;
    /** Directory for every sweep artifact (created if absent). */
    std::string outDir;
    std::uint32_t shards = 4;
    /** Retries per shard after its first attempt. */
    std::uint32_t retries = 2;
    /** Per-attempt wall-clock deadline in seconds (0 = none). */
    double timeoutSec = 0.0;
    /** Kill an attempt when its checkpoint mtime has not advanced for
     *  this many seconds (0 = no stall detection). */
    double stallTimeoutSec = 30.0;
    /** Supervisor poll interval in seconds. */
    double pollSec = 0.05;
    BackoffPolicy backoff;
    /** --checkpoint-every passed to the workers. Dense snapshots (1)
     *  double as the liveness signal for stall detection. */
    std::uint32_t checkpointEvery = 1;
    /**
     * Fault injection for tests: "<shard>=<AEGIS_CHAOS spec>" entries
     * separated by ';' (specs contain commas), e.g.
     * "1=kill-after-chunks=3;2=hang-after-chunks=2". The spec applies
     * to that shard's FIRST attempt only — retries run clean, so the
     * recovery path is what gets tested. When any --chaos is given
     * the supervisor fully controls AEGIS_CHAOS in every worker.
     */
    std::string chaosSpec;
    /** Output paths; default "<outDir>/merged.ckpt" / ".json". */
    std::string mergedCheckpoint;
    std::string mergedJson;
};

/** Parsed per-shard chaos injections (exposed for tests). Throws
 *  ConfigError on malformed input or shard indexes out of range. */
std::map<std::uint32_t, std::string>
parseShardChaos(const std::string &spec, std::uint32_t shards);

/**
 * Run the sharded sweep end to end: shards, retries, merge, finalize.
 * Returns the supervisor's exit code — 0 when a merged manifest was
 * produced (including degraded "partial" sweeps with failed shards),
 * 1 on supervisor-fatal errors (nothing to merge, unwritable output,
 * finalize failure), 2 on configuration errors.
 */
int runSweepSupervisor(const SupervisorOptions &options);

} // namespace aegis::sweep

#endif // AEGIS_SWEEP_SUPERVISOR_H
