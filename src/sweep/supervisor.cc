#include "sweep/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include <sys/stat.h>

#include "obs/manifest.h"
#include "sim/checkpoint.h"
#include "sim/shard.h"
#include "sweep/merge.h"
#include "sweep/shard_report.h"
#include "util/atomic_file.h"
#include "util/chaos.h"
#include "util/error.h"

namespace aegis::sweep {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    const std::chrono::duration<double> dt = Clock::now() - start;
    return dt.count();
}

/** Checkpoint mtime in nanoseconds, -1 when the file is absent. The
 *  worker's periodic atomic snapshots bump it; a flat mtime is the
 *  stall signal. */
std::int64_t
fileMtimeNs(const std::string &path)
{
    struct ::stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<std::int64_t>(st.st_mtim.tv_sec) *
               1000000000 +
           st.st_mtim.tv_nsec;
}

bool
fileExists(const std::string &path)
{
    struct ::stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

void
note(const std::string &line)
{
    std::fprintf(stderr, "aegis-sweep: %s\n", line.c_str());
}

/** One shard's supervision state. */
struct ShardState
{
    enum class Phase { Pending, Running, Backoff, Done, Failed };

    Phase phase = Phase::Pending;
    pid_t pid = -1;
    std::uint32_t attempts = 0; ///< spawns so far
    Clock::time_point attemptStart{};
    Clock::time_point backoffUntil{};
    Clock::time_point lastProgress{};
    std::int64_t lastMtimeNs = -1;
    double wallSeconds = 0.0;
    int lastExit = 0;
    std::string detail;

    bool
    settled() const
    {
        return phase == Phase::Done || phase == Phase::Failed;
    }
};

/** Flags the supervisor owns; the bench command must not set them. */
constexpr const char *kReservedFlags[] = {
    "--shard",         "--checkpoint", "--checkpoint-every",
    "--resume",        "--json",       "--shards-report",
    "--finalize-partial"};

class Supervisor
{
  public:
    explicit Supervisor(const SupervisorOptions &options)
        : opt(options), states(options.shards)
    {}

    int run();

  private:
    std::string ckptPath(std::uint32_t i) const;
    void spawnShard(std::uint32_t i);
    void noteAttemptEnd(std::uint32_t i, const ExitStatus &status);
    void noteFailure(std::uint32_t i, int exitCode,
                     const std::string &why, bool fatal);
    void pollRunning(std::uint32_t i);
    std::vector<obs::ShardEntry> reportEntries() const;
    int mergeAndFinalize(bool anyFailed);

    const SupervisorOptions &opt;
    std::vector<ShardState> states;
    std::map<std::uint32_t, std::string> chaos;
};

std::string
Supervisor::ckptPath(std::uint32_t i) const
{
    return sim::shardArtifactStem(opt.outDir, i) + ".ckpt";
}

void
Supervisor::spawnShard(std::uint32_t i)
{
    ShardState &st = states[i];
    const std::string stem = sim::shardArtifactStem(opt.outDir, i);
    const sim::ShardSpec shard{i, opt.shards};

    SpawnSpec spec;
    spec.argv = opt.benchCommand;
    spec.argv.insert(spec.argv.end(),
                     {"--shard", shard.label(),
                      "--checkpoint", stem + ".ckpt",
                      "--checkpoint-every",
                      std::to_string(opt.checkpointEvery),
                      "--json", stem + ".json", "--quiet"});
    const bool resume = fileExists(stem + ".ckpt");
    if (resume)
        spec.argv.push_back("--resume");
    spec.stdoutPath = stem + ".out";
    spec.stderrPath = stem + ".err";

    // Chaos is injected into the target shard's FIRST attempt only —
    // a retry that re-inherits the fault could never succeed and the
    // recovery path (the thing under test) would never run. When any
    // injection is configured the supervisor owns AEGIS_CHAOS in all
    // workers, so a stray environment value cannot double-fault.
    if (!chaos.empty()) {
        const auto hit = chaos.find(i);
        if (hit != chaos.end() && st.attempts == 0)
            spec.env.emplace_back("AEGIS_CHAOS", hit->second);
        else
            spec.env.emplace_back("AEGIS_CHAOS", "");
    }

    Expected<pid_t> pid = spawnProcess(spec);
    if (!pid.ok()) {
        noteFailure(i, -1, "spawn failed: " + pid.error(),
                    /*fatal=*/true);
        return;
    }
    ++st.attempts;
    st.pid = *pid;
    st.phase = ShardState::Phase::Running;
    st.attemptStart = Clock::now();
    st.lastProgress = st.attemptStart;
    st.lastMtimeNs = fileMtimeNs(stem + ".ckpt");
    note("shard " + shard.label() + ": attempt " +
         std::to_string(st.attempts) + " started (pid " +
         std::to_string(*pid) + (resume ? ", resuming)" : ")"));
}

void
Supervisor::noteAttemptEnd(std::uint32_t i, const ExitStatus &status)
{
    ShardState &st = states[i];
    // aegis-lint: allow(DET-FLOAT shard-report wall-clock bookkeeping)
    st.wallSeconds += secondsSince(st.attemptStart);
    st.pid = -1;
    if (status.ok()) {
        st.phase = ShardState::Phase::Done;
        st.detail.clear();
        st.lastExit = 0;
        note("shard " + std::to_string(i) + "/" +
             std::to_string(opt.shards) + ": done after " +
             std::to_string(st.attempts) + " attempt(s)");
        return;
    }
    const int code =
        status.signaled ? 128 + status.code : status.code;
    // Usage/configuration errors (exit 2) and unrunnable binaries
    // (126/127) will fail identically on every retry; fail fast.
    const bool fatal =
        !status.signaled &&
        (status.code == 2 || status.code == 126 || status.code == 127);
    noteFailure(i, code, "worker ended with " + status.describe(),
                fatal);
}

void
Supervisor::noteFailure(std::uint32_t i, int exitCode,
                        const std::string &why, bool fatal)
{
    ShardState &st = states[i];
    st.lastExit = exitCode;
    st.detail = why;
    st.pid = -1;
    if (fatal || st.attempts > opt.retries) {
        st.phase = ShardState::Phase::Failed;
        note("shard " + std::to_string(i) + "/" +
             std::to_string(opt.shards) + ": " + why +
             (fatal ? "; not retrying"
                    : "; retry budget exhausted (" +
                          std::to_string(opt.retries) + ")") +
             " — shard marked failed");
        return;
    }
    const double delay = opt.backoff.delaySec(st.attempts - 1);
    st.phase = ShardState::Phase::Backoff;
    st.backoffUntil =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(delay));
    char delayText[32];
    std::snprintf(delayText, sizeof delayText, "%.2f", delay);
    note("shard " + std::to_string(i) + "/" +
         std::to_string(opt.shards) + ": " + why + "; retry " +
         std::to_string(st.attempts) + "/" +
         std::to_string(opt.retries) + " in " + delayText + "s");
}

void
Supervisor::pollRunning(std::uint32_t i)
{
    ShardState &st = states[i];
    const std::optional<ExitStatus> exited = pollProcess(st.pid);
    if (exited.has_value()) {
        noteAttemptEnd(i, *exited);
        return;
    }

    const auto putDown = [&](const std::string &why) {
        killProcess(st.pid);
        // The SIGKILL cannot be refused; reap synchronously so the
        // pid is not reused under us.
        (void)waitProcess(st.pid);
        // aegis-lint: allow(DET-FLOAT shard-report wall-clock bookkeeping)
        st.wallSeconds += secondsSince(st.attemptStart);
        st.pid = -1;
        noteFailure(i, 128 + 9, why, /*fatal=*/false);
    };

    if (opt.timeoutSec > 0 &&
        secondsSince(st.attemptStart) > opt.timeoutSec) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f", opt.timeoutSec);
        putDown("attempt exceeded its deadline of " +
                std::string(buf) + "s; killed");
        return;
    }

    if (opt.stallTimeoutSec > 0) {
        const std::int64_t mtime = fileMtimeNs(ckptPath(i));
        if (mtime != st.lastMtimeNs) {
            st.lastMtimeNs = mtime;
            st.lastProgress = Clock::now();
        } else if (secondsSince(st.lastProgress) >
                   opt.stallTimeoutSec) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.1f",
                          opt.stallTimeoutSec);
            putDown("stalled (no checkpoint progress for " +
                    std::string(buf) + "s); killed");
            return;
        }
    }
}

std::vector<obs::ShardEntry>
Supervisor::reportEntries() const
{
    std::vector<obs::ShardEntry> entries;
    entries.reserve(states.size());
    for (std::uint32_t i = 0; i < states.size(); ++i) {
        const ShardState &st = states[i];
        obs::ShardEntry e;
        e.index = i;
        e.status =
            st.phase == ShardState::Phase::Done ? "ok" : "failed";
        e.attempts = st.attempts;
        e.exitCode = st.lastExit;
        e.wallSeconds = st.wallSeconds;
        e.detail = st.detail;
        entries.push_back(std::move(e));
    }
    return entries;
}

int
Supervisor::mergeAndFinalize(bool anyFailed)
{
    // Merge whatever checkpoints exist — a failed shard's last
    // snapshot still carries every chunk it managed to finish, and
    // salvaging that work is the point of graceful degradation.
    std::vector<std::string> ckpts;
    for (std::uint32_t i = 0; i < opt.shards; ++i)
        if (fileExists(ckptPath(i)))
            ckpts.push_back(ckptPath(i));
    if (ckpts.empty()) {
        note("no shard produced a checkpoint; nothing to merge");
        return 1;
    }

    MergeOptions mergeOptions;
    mergeOptions.allowMissing = anyFailed;
    MergeReport mergeReport;
    Expected<sim::CheckpointData> merged =
        mergeShardCheckpoints(ckpts, mergeOptions, &mergeReport);
    if (!merged.ok()) {
        note(merged.error());
        return 1;
    }
    for (const std::string &w : mergeReport.warnings)
        note(w);
    note("merged " + std::to_string(mergeReport.shardFiles) +
         " shard checkpoint(s): " +
         std::to_string(mergeReport.units) + " sweep(s), " +
         std::to_string(mergeReport.chunks) + " chunk(s)" +
         (mergeReport.missingChunks != 0
              ? ", " + std::to_string(mergeReport.missingChunks) +
                    " missing (degraded)"
              : ""));

    const std::string mergedCkpt =
        !opt.mergedCheckpoint.empty()
            ? opt.mergedCheckpoint
            : opt.outDir + "/merged.ckpt";
    const std::string mergedJson = !opt.mergedJson.empty()
                                       ? opt.mergedJson
                                       : opt.outDir + "/merged.json";
    const Status wrote =
        atomicWriteFile(mergedCkpt, encodeCheckpoint(*merged));
    if (!wrote.ok()) {
        note("cannot write merged checkpoint: " + wrote.error());
        return 1;
    }

    const std::string reportPath = opt.outDir + "/shards.report";
    const Status report =
        writeShardReportFile(reportPath, reportEntries());
    if (!report.ok()) {
        note("cannot write shard report: " + report.error());
        return 1;
    }

    // Finalize: a --resume --finalize-partial run restores the merged
    // grids through the existing bit-exact chunk-merge path and emits
    // the manifest. It computes nothing, so it is fast; it inherits
    // our stdout so the sweep ends with the familiar tables.
    SpawnSpec fin;
    fin.argv = opt.benchCommand;
    fin.argv.insert(fin.argv.end(),
                    {"--checkpoint", mergedCkpt, "--resume",
                     "--finalize-partial", "--shards-report",
                     reportPath, "--json", mergedJson, "--quiet"});
    // The finalize step is control plane, not a crash-test subject.
    fin.env.emplace_back("AEGIS_CHAOS", "");
    Expected<pid_t> pid = spawnProcess(fin);
    if (!pid.ok()) {
        note("cannot spawn finalize run: " + pid.error());
        return 1;
    }
    Expected<ExitStatus> fstatus = waitProcess(*pid);
    if (!fstatus.ok()) {
        note("finalize: " + fstatus.error());
        return 1;
    }
    if (!fstatus->ok()) {
        note("finalize run ended with " + fstatus->describe());
        return 1;
    }
    note("manifest written to `" + mergedJson + "'" +
         (anyFailed || mergeReport.missingChunks != 0
              ? " (status: partial — see its shards section)"
              : ""));
    return 0;
}

int
Supervisor::run()
{
    if (opt.benchCommand.empty()) {
        note("no bench command given");
        return 2;
    }
    for (const std::string &arg : opt.benchCommand)
        for (const char *reserved : kReservedFlags)
            if (arg == reserved ||
                arg.rfind(std::string(reserved) + "=", 0) == 0) {
                note("the bench command must not set " +
                     std::string(reserved) +
                     " — the supervisor owns it");
                return 2;
            }
    try {
        chaos = parseShardChaos(opt.chaosSpec, opt.shards);
    } catch (const std::exception &ex) {
        note(ex.what());
        return 2;
    }

    std::error_code ec;
    std::filesystem::create_directories(opt.outDir, ec);
    if (ec) {
        note("cannot create output directory `" + opt.outDir +
             "': " + ec.message());
        return 1;
    }

    note("sharding across " + std::to_string(opt.shards) +
         " worker(s), retry budget " + std::to_string(opt.retries) +
         " per shard");
    for (std::uint32_t i = 0; i < opt.shards; ++i)
        spawnShard(i);

    for (;;) {
        bool allSettled = true;
        for (std::uint32_t i = 0; i < opt.shards; ++i) {
            ShardState &st = states[i];
            switch (st.phase) {
            case ShardState::Phase::Running:
                pollRunning(i);
                break;
            case ShardState::Phase::Backoff:
                if (Clock::now() >= st.backoffUntil)
                    spawnShard(i);
                break;
            case ShardState::Phase::Pending:
                spawnShard(i);
                break;
            case ShardState::Phase::Done:
            case ShardState::Phase::Failed:
                break;
            }
            allSettled = allSettled && states[i].settled();
        }
        if (allSettled)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opt.pollSec));
    }

    bool anyFailed = false;
    for (const ShardState &st : states)
        anyFailed =
            anyFailed || st.phase == ShardState::Phase::Failed;
    return mergeAndFinalize(anyFailed);
}

} // namespace

std::map<std::uint32_t, std::string>
parseShardChaos(const std::string &spec, std::uint32_t shards)
{
    std::map<std::uint32_t, std::string> out;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (start > spec.size() && item.empty())
            break;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        AEGIS_REQUIRE(eq != std::string::npos && eq != 0,
                      "--chaos expects <shard>=<AEGIS_CHAOS spec> "
                      "entries separated by ';', got `" +
                          item + "'");
        const std::string indexText = item.substr(0, eq);
        const std::string chaosText = item.substr(eq + 1);
        std::size_t used = 0;
        unsigned long index = 0;
        try {
            index = std::stoul(indexText, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        AEGIS_REQUIRE(used == indexText.size() && !indexText.empty(),
                      "--chaos shard index `" + indexText +
                          "' is not a number");
        AEGIS_REQUIRE(index < shards,
                      "--chaos shard index " + indexText +
                          " is out of range for " +
                          std::to_string(shards) + " shards");
        AEGIS_REQUIRE(!chaosText.empty(),
                      "--chaos entry for shard " + indexText +
                          " has an empty AEGIS_CHAOS spec");
        // Malformed specs are rejected here, before any worker runs.
        (void)parseChaosSpec(chaosText.c_str());
        AEGIS_REQUIRE(
            out.emplace(static_cast<std::uint32_t>(index), chaosText)
                .second,
            "--chaos lists shard " + indexText + " twice");
    }
    return out;
}

int
runSweepSupervisor(const SupervisorOptions &options)
{
    Supervisor supervisor(options);
    return supervisor.run();
}

} // namespace aegis::sweep
