#include "aegis/collision_rom.h"

#include <bit>

#include "util/error.h"

namespace aegis::core {

CollisionRom::CollisionRom(const Partition &partition)
    : n(partition.blockBits()), numSlopes(partition.b())
{
    AEGIS_REQUIRE(partition.b() <= 0xffff,
                  "collision ROM stores 16-bit slopes");
    table.assign(static_cast<std::size_t>(n) * n,
                 static_cast<std::uint16_t>(numSlopes));
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            const auto k = static_cast<std::uint16_t>(
                partition.collisionSlope(i, j));
            table[static_cast<std::size_t>(i) * n + j] = k;
            table[static_cast<std::size_t>(j) * n + i] = k;
        }
    }
}

std::uint32_t
CollisionRom::lookup(std::uint32_t pos1, std::uint32_t pos2) const
{
    AEGIS_ASSERT(pos1 < n && pos2 < n, "ROM lookup out of range");
    return table[static_cast<std::size_t>(pos1) * n + pos2];
}

std::uint64_t
CollisionRom::sizeBits() const
{
    const auto slope_bits = static_cast<std::uint64_t>(
        std::bit_width(static_cast<std::uint32_t>(numSlopes - 1)));
    return static_cast<std::uint64_t>(n) * n * slope_bits;
}

} // namespace aegis::core
