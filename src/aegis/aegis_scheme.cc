#include "aegis/aegis_scheme.h"

#include <bit>

#include "util/bit_io.h"

#include "aegis/cost.h"
#include "aegis/trackers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcm/cell_array_batch.h"
#include "scheme/batch.h"
#include "util/error.h"

namespace aegis::core {

bool
AegisPartitionPolicy::separatesUnder(const pcm::FaultSet &faults,
                                     std::uint32_t k) const
{
    // B is at most a few hundred; a stamp array beats sorting.
    // aegis-lint: allow(HOT-ALLOC constructed once per thread, then only assign()ed)
    static thread_local std::vector<std::uint32_t> stamp;
    static thread_local std::uint32_t epoch = 0;
    if (stamp.size() < part.groups())
        stamp.assign(part.groups(), 0);
    ++epoch;
    for (const pcm::Fault &f : faults) {
        const std::uint32_t g = part.groupOf(f.pos, k);
        if (stamp[g] == epoch)
            return false;
        stamp[g] = epoch;
    }
    return true;
}

AEGIS_HOT bool
AegisPartitionPolicy::separate(const pcm::FaultSet &faults,
                               std::uint32_t &repartitions)
{
    // The hardware increments the slope counter and re-examines; we
    // scan the B configurations starting from the current slope.
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRecover);
    for (std::uint32_t trial = 0; trial < part.slopes(); ++trial) {
        const std::uint32_t k = (slope + trial) % part.slopes();
        if (separatesUnder(faults, k)) {
            repartitions += trial;
            obs::bump(obs::Counter::AegisRepartitions, trial);
            slope = k;
            masks.rebuild(part, slope);
            return true;
        }
    }
    return false;
}

void
AegisPartitionPolicy::setSlope(std::uint32_t k)
{
    AEGIS_REQUIRE(k < part.slopes(), "slope out of range");
    slope = k;
    masks.rebuild(part, slope);
}

AegisScheme::AegisScheme(std::uint32_t a, std::uint32_t b,
                         std::uint32_t block_bits, bool use_cache)
    : policy(Partition(a, b, block_bits)), invVector(b),
      cacheMode(use_cache)
{
    // Matches the factory spelling so names round-trip.
    schemeName = std::string("aegis-") + (use_cache ? "cache-" : "") +
                 policy.partition().formation();
}

AegisScheme
AegisScheme::forHeight(std::uint32_t b, std::uint32_t block_bits,
                       bool use_cache)
{
    const Partition part = Partition::forHeight(b, block_bits);
    return AegisScheme(part.a(), part.b(), block_bits, use_cache);
}

const std::string &
AegisScheme::name() const
{
    return schemeName;
}

std::size_t
AegisScheme::blockBits() const
{
    return policy.partition().blockBits();
}

std::size_t
AegisScheme::overheadBits() const
{
    const std::uint32_t b = policy.partition().b();
    return static_cast<std::size_t>(std::bit_width(b - 1)) + b;
}

std::size_t
AegisScheme::hardFtc() const
{
    return hardFtcBasic(policy.partition().b());
}

AEGIS_HOT scheme::WriteOutcome
AegisScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(!cacheMode || directory,
                  "aegis-cache needs an attached fault directory");
    pcm::FaultSet &known = knownScratch;
    known.clear();
    if (cacheMode)
        directory->lookupInto(blockId, known);
    const std::size_t known_before = known.size();

    scheme::WriteOutcome outcome = scheme::writeWithInversion(
        cells, data, policy, invVector, known, writeWs);

    if (cacheMode)
        ++outcome.io.metadataLookups;
    if (directory) {
        for (std::size_t i = known_before; i < known.size(); ++i) {
            directory->record(blockId, known[i]);
            ++outcome.io.metadataUpdates;
        }
    }
    return outcome;
}

AEGIS_HOT void
AegisScheme::writeBatch(pcm::CellArrayBatch &cells,
                        const pcm::LaneMatrix &data,
                        std::span<scheme::WriteOutcome> outcomes,
                        scheme::BatchWorkspace &ws)
{
    scheme::detail::inversionWriteBatch(
        *this, cells, data, outcomes, ws, cacheMode,
        [](AegisScheme *s) -> BitVector & { return s->invVector; });
}

AEGIS_HOT void
AegisScheme::readBatch(const pcm::CellArrayBatch &cells,
                       pcm::LaneMatrix &out,
                       scheme::BatchWorkspace &ws) const
{
    scheme::detail::inversionReadBatch(
        *this, cells, out, ws,
        [](const AegisScheme *s) -> const BitVector & {
            return s->invVector;
        },
        [](const AegisScheme *s, std::size_t g) {
            return s->policy.groupMask(g);
        });
}

BitVector
AegisScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
AegisScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    // Undo the selective inversion one group mask at a time.
    invVector.forEachSetBit([&](std::size_t g) {
        out.invertMasked(*policy.groupMask(g));
    });
}

void
AegisScheme::reset()
{
    policy.resetConfig();
    invVector.fill(false);
}

std::unique_ptr<scheme::Scheme>
AegisScheme::clone() const
{
    return std::make_unique<AegisScheme>(*this);
}

BitVector
AegisScheme::exportMetadata() const
{
    const std::uint32_t b = policy.partition().b();
    const auto counter_width =
        static_cast<std::size_t>(std::bit_width(b - 1));
    BitWriter w(overheadBits());
    w.writeBits(policy.currentSlope(), counter_width);
    w.writeVector(invVector);
    return w.finish();
}

void
AegisScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == overheadBits(),
                  "Aegis metadata image has the wrong width");
    const std::uint32_t b = policy.partition().b();
    const auto counter_width =
        static_cast<std::size_t>(std::bit_width(b - 1));
    BitReader r(image);
    const auto k = static_cast<std::uint32_t>(r.readBits(counter_width));
    AEGIS_REQUIRE(k < b, "corrupt slope counter");
    policy.setSlope(k);
    invVector = r.readVector(b);
}

std::unique_ptr<scheme::LifetimeTracker>
AegisScheme::makeTracker(const scheme::TrackerOptions &opts) const
{
    return makeAegisTracker(policy.partition(), opts, cacheMode);
}

} // namespace aegis::core
