#include "aegis/factory.h"

#include <charconv>

#include "aegis/aegis_rw.h"
#include "aegis/aegis_rw_p.h"
#include "aegis/aegis_scheme.h"
#include "audit/scheme_auditor.h"
#include "scheme/ecp.h"
#include "scheme/hamming.h"
#include "scheme/none.h"
#include "scheme/rdis.h"
#include "scheme/safer.h"
#include "util/error.h"

namespace aegis::core {

namespace {

/** Parse the integer after @p prefix, or -1 when @p s doesn't match. */
long
numberAfter(const std::string &s, const std::string &prefix)
{
    if (s.rfind(prefix, 0) != 0)
        return -1;
    long value = -1;
    const char *begin = s.data() + prefix.size();
    const char *end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end)
        return -1;
    return value;
}

/** Parse "AxB" (e.g. "9x61"); returns false when malformed. */
bool
parseFormation(const std::string &s, std::uint32_t &a, std::uint32_t &b)
{
    const auto x = s.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= s.size())
        return false;
    try {
        a = static_cast<std::uint32_t>(std::stoul(s.substr(0, x)));
        b = static_cast<std::uint32_t>(std::stoul(s.substr(x + 1)));
    } catch (const std::exception &) {
        return false;
    }
    return a > 0 && b > 0;
}

/** Strip a trailing "+audit", returning true when it was present. */
bool
stripAuditSuffix(std::string &name)
{
    const std::string suffix = "+audit";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0) {
        return false;
    }
    name.resize(name.size() - suffix.size());
    return true;
}

/** Build the bare (never audited) scheme for a base name. */
std::unique_ptr<scheme::Scheme>
makeBareScheme(const std::string &name, std::size_t block_bits)
{
    const auto bits = static_cast<std::uint32_t>(block_bits);

    if (name == "none")
        return std::make_unique<scheme::NoneScheme>(block_bits);
    if (name == "hamming" || name == "hamming72_64")
        return std::make_unique<scheme::HammingScheme>(block_bits);

    if (long n = numberAfter(name, "ecp"); n > 0) {
        return std::make_unique<scheme::EcpScheme>(
            block_bits, static_cast<std::size_t>(n));
    }
    if (long d = numberAfter(name, "rdis"); d > 1) {
        return std::make_unique<scheme::RdisScheme>(
            block_bits, 16, static_cast<std::size_t>(d));
    }

    if (name.rfind("safer", 0) == 0) {
        std::string rest = name.substr(5);
        bool cache = false;
        const std::string suffix = "-cache";
        if (rest.size() > suffix.size() &&
            rest.compare(rest.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            cache = true;
            rest = rest.substr(0, rest.size() - suffix.size());
        }
        if (long n = numberAfter(rest, ""); n > 0) {
            return std::make_unique<scheme::SaferScheme>(
                block_bits, static_cast<std::size_t>(n), cache);
        }
    }

    if (name.rfind("aegis-rw-p", 0) == 0) {
        const std::string rest = name.substr(10);    // "P-AxB"
        const auto dash = rest.find('-');
        std::uint32_t a = 0, b = 0;
        if (dash != std::string::npos &&
            parseFormation(rest.substr(dash + 1), a, b)) {
            long p = -1;
            try {
                p = std::stol(rest.substr(0, dash));
            } catch (const std::exception &) {
            }
            if (p > 0) {
                return std::make_unique<AegisRwPScheme>(
                    a, b, bits, static_cast<std::uint32_t>(p));
            }
        }
    } else if (name.rfind("aegis-cache-", 0) == 0) {
        std::uint32_t a = 0, b = 0;
        if (parseFormation(name.substr(12), a, b)) {
            return std::make_unique<AegisScheme>(a, b, bits,
                                                 /*use_cache=*/true);
        }
    } else if (name.rfind("aegis-rw-", 0) == 0) {
        std::uint32_t a = 0, b = 0;
        if (parseFormation(name.substr(9), a, b))
            return std::make_unique<AegisRwScheme>(a, b, bits);
    } else if (name.rfind("aegis-", 0) == 0) {
        std::uint32_t a = 0, b = 0;
        if (parseFormation(name.substr(6), a, b))
            return std::make_unique<AegisScheme>(a, b, bits);
    }

    throw ConfigError("unknown scheme name `" + name + "'");
}

} // namespace

SchemeSpec
SchemeSpec::parse(const std::string &spelled)
{
    SchemeSpec spec{spelled, false};
    while (stripAuditSuffix(spec.name))
        spec.audit = true;
    return spec;
}

std::unique_ptr<scheme::Scheme>
makeScheme(const SchemeSpec &spec, std::size_t block_bits)
{
    auto scheme = makeBareScheme(spec.name, block_bits);
    return spec.audit ? audit::wrapWithAuditor(std::move(scheme))
                      : std::move(scheme);
}

std::unique_ptr<scheme::Scheme>
makeScheme(const std::string &name, std::size_t block_bits)
{
    return makeScheme(SchemeSpec::parse(name), block_bits);
}

std::unique_ptr<scheme::Scheme>
makeAuditedScheme(const std::string &name, std::size_t block_bits)
{
    return makeScheme(SchemeSpec::parse(name).audited(), block_bits);
}

std::vector<std::string>
paperSchemeNames(std::size_t block_bits)
{
    if (block_bits == 256) {
        return {"ecp4",        "ecp5",        "ecp6",
                "safer32",     "safer64",     "rdis3",
                "aegis-12x23", "aegis-9x31"};
    }
    return {"ecp4",        "ecp5",        "ecp6",    "safer32",
            "safer64",     "safer128",    "rdis3",   "aegis-23x23",
            "aegis-17x31", "aegis-9x61"};
}

} // namespace aegis::core
