/**
 * @file
 * The Aegis partition scheme: Cartesian-plane lines of prime slope.
 *
 * An A x B rectangle (B prime, 0 < A <= B) hosts the n bits of a data
 * block: bit offset x sits at point (a, b) = (x / B, x % B), i.e.
 * column-major with columns of height B; A = ceil(n / B) columns are
 * needed, so the geometry constraint is (A-1)*B < n <= A*B. The last
 * column may be partially unmapped (the paper's dotted points).
 *
 * A partition configuration is a slope k in [0, B). The group of
 * (a, b) under slope k is its anchor y = (b - a*k) mod B, so every
 * configuration has exactly B groups with at most one point per
 * column each.
 *
 * Theorem 1: each point is in exactly one group per slope.
 * Theorem 2 (B prime, A <= B): two points sharing a group under one
 * slope are in different groups under every other slope; hence two
 * points in different columns collide on exactly one slope and
 * same-column points never collide.
 */

#ifndef AEGIS_AEGIS_PARTITION_H
#define AEGIS_AEGIS_PARTITION_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/bit_vector.h"

namespace aegis::core {

/** Geometry + group arithmetic of one A x B Aegis partition scheme. */
class Partition
{
  public:
    /**
     * @param a rectangle width A (number of columns).
     * @param b rectangle height B; must be prime and >= A.
     * @param block_bits n, with (A-1)*B < n <= A*B.
     */
    Partition(std::uint32_t a, std::uint32_t b, std::uint32_t block_bits);

    std::uint32_t a() const { return widthA; }
    std::uint32_t b() const { return heightB; }
    std::uint32_t blockBits() const { return bits; }

    /** Number of partition configurations (= B). */
    std::uint32_t slopes() const { return heightB; }

    /** Number of groups per configuration (= B). */
    std::uint32_t groups() const { return heightB; }

    /** Column (x coordinate) of bit offset @p pos. */
    std::uint32_t columnOf(std::uint32_t pos) const { return pos / heightB; }

    /** Row (y coordinate) of bit offset @p pos. */
    std::uint32_t rowOf(std::uint32_t pos) const { return pos % heightB; }

    /** Group (anchor y) of bit offset @p pos under slope @p k. */
    std::uint32_t groupOf(std::uint32_t pos, std::uint32_t k) const;

    /**
     * Bit offsets of group @p y under slope @p k, ascending; at most
     * A members (fewer when the line passes unmapped points).
     */
    std::vector<std::uint32_t> groupMembers(std::uint32_t y,
                                            std::uint32_t k) const;

    /**
     * The unique slope on which bits @p pos1 and @p pos2 share a
     * group, or B (an invalid slope) when they never collide (same
     * column). This is the content of the Aegis-rw collision ROM.
     */
    std::uint32_t collisionSlope(std::uint32_t pos1,
                                 std::uint32_t pos2) const;

    /** "AxB", e.g. "9x61". */
    std::string formation() const;

    /**
     * Pick the canonical A x B formation for @p block_bits with
     * height @p b: A = ceil(n / B).
     */
    static Partition forHeight(std::uint32_t b, std::uint32_t block_bits);

  private:
    std::uint32_t widthA;
    std::uint32_t heightB;
    std::uint32_t bits;
};

/**
 * Materialized group-membership masks of one partition configuration.
 *
 * A configuration is a *static* bit-to-group map (Theorems 1-2), so
 * membership of each group under a slope can be precomputed once as
 * 64-bit word masks; applying a group inversion then costs one XOR of
 * the group's mask instead of a per-bit groupOf scan. rebuild() is a
 * no-op when the requested slope is already cached, so callers invoke
 * it eagerly at every configuration change (constructor, repartition,
 * metadata import) and the masks stay read-only on the hot path.
 */
class GroupMaskCache
{
  public:
    /** Make the masks describe @p part under slope @p k (one pass
     *  over the block; no-op when @p k is already cached). */
    void rebuild(const Partition &part, std::uint32_t k);

    /** True when the masks are current for slope @p k. */
    bool builtFor(std::uint32_t k) const { return cachedSlope == k; }

    /** Membership mask of @p group (rebuild must have run). */
    const BitVector &mask(std::size_t group) const;

    /** Drop the cached masks; the next rebuild() recomputes. */
    void invalidate() { cachedSlope = kNoSlope; }

  private:
    static constexpr std::uint32_t kNoSlope = ~std::uint32_t{0};

    std::vector<BitVector> masks;
    std::uint32_t cachedSlope = kNoSlope;
};

} // namespace aegis::core

#endif // AEGIS_AEGIS_PARTITION_H
