/**
 * @file
 * Aegis-rw-p: Aegis-rw with group pointers instead of the inversion
 * vector (paper §2.4).
 *
 * When faults are few relative to B, recording the IDs of inverted
 * groups is cheaper than a B-bit vector. With full W/R knowledge and
 * the pigeonhole principle, p = floor(f/2) pointers suffice for f
 * faults: either the groups holding W faults number at most p (record
 * them and invert exactly those), or the groups holding R faults do
 * (record them, invert the entire block, and un-invert the recorded
 * groups). One metadata bit selects the case, one more flags pointer
 * exhaustion.
 */

#ifndef AEGIS_AEGIS_AEGIS_RW_P_H
#define AEGIS_AEGIS_AEGIS_RW_P_H

#include <memory>
#include <vector>

#include "aegis/collision_rom.h"
#include "aegis/partition.h"
#include "scheme/inversion_driver.h"
#include "scheme/scheme.h"
#include "util/hot.h"

namespace aegis::core {

class AegisRwPScheme : public scheme::Scheme
{
  public:
    /**
     * @param a,b,block_bits the A x B formation.
     * @param pointers the pointer budget p.
     */
    AegisRwPScheme(std::uint32_t a, std::uint32_t b,
                   std::uint32_t block_bits, std::uint32_t pointers);

    static AegisRwPScheme forHeight(std::uint32_t b,
                                    std::uint32_t block_bits,
                                    std::uint32_t pointers);

    const std::string &name() const override;
    std::size_t blockBits() const override { return part.blockBits(); }
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override;

    AEGIS_HOT scheme::WriteOutcome write(pcm::CellArray &cells,
                                         const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    void reset() override;
    std::unique_ptr<scheme::Scheme> clone() const override;

    /** Packed: full-width slope counter + case bit + p pointers
     *  (unused slots hold the all-ones sentinel >= B) + 1 reserved
     *  bit. The full-width counter can exceed Table 1's reduced
     *  counter by a few bits; metadataBits() reports the real
     *  image width. */
    std::size_t metadataBits() const override;
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<scheme::LifetimeTracker>
    makeTracker(const scheme::TrackerOptions &opts) const override;

    bool requiresDirectory() const override { return true; }

    const Partition &partition() const { return part; }
    std::uint32_t pointerBudget() const { return maxPointers; }
    std::uint32_t currentSlope() const { return slope; }

    /** Inversion state implied by the current metadata (also the
     *  auditor's per-bit decode oracle). */
    bool groupInverted(std::uint32_t group) const;

  private:
    Partition part;
    std::shared_ptr<const CollisionRom> rom;
    GroupMaskCache masks;    ///< rebuilt eagerly on slope changes
    std::uint32_t maxPointers;
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;

    // --- per-block metadata ---
    std::uint32_t slope = 0;
    /** false: pointers name inverted (W) groups; true: pointers name
     *  the R groups excluded from a whole-block inversion. */
    bool invertComplement = false;
    std::vector<std::uint32_t> groupPointers;
    scheme::InversionWorkspace writeWs;
    /** Reusable write-loop scratch: capacity is retained across
     *  writes so steady-state writes allocate nothing. */
    pcm::FaultSet knownScratch;
    pcm::FaultSet sessionScratch;
    std::vector<std::uint32_t> wrongScratch;
    std::vector<std::uint32_t> rightScratch;
    std::vector<bool> blockedScratch;
    std::vector<std::uint32_t> wGroupsScratch;
    std::vector<std::uint32_t> rGroupsScratch;
};

} // namespace aegis::core

#endif // AEGIS_AEGIS_AEGIS_RW_P_H
