#include "aegis/aegis_rw.h"

#include <algorithm>
#include <bit>

#include "util/bit_io.h"

#include "aegis/cost.h"
#include "aegis/trackers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::core {

AegisRwScheme::AegisRwScheme(std::uint32_t a, std::uint32_t b,
                             std::uint32_t block_bits)
    : part(a, b, block_bits),
      rom(std::make_shared<const CollisionRom>(part)),
      schemeName("aegis-rw-" + part.formation()), invVector(b)
{
    masks.rebuild(part, slope);
}

AegisRwScheme
AegisRwScheme::forHeight(std::uint32_t b, std::uint32_t block_bits)
{
    const Partition p = Partition::forHeight(b, block_bits);
    return AegisRwScheme(p.a(), p.b(), block_bits);
}

const std::string &
AegisRwScheme::name() const
{
    return schemeName;
}

std::size_t
AegisRwScheme::overheadBits() const
{
    const std::uint32_t b = part.b();
    return static_cast<std::size_t>(std::bit_width(b - 1)) + b;
}

std::size_t
AegisRwScheme::hardFtc() const
{
    return hardFtcRw(part.b());
}

AEGIS_HOT std::uint32_t
AegisRwScheme::chooseSlope(const std::vector<std::uint32_t> &wrong,
                           const std::vector<std::uint32_t> &right,
                           std::uint32_t &repartitions) const
{
    const std::uint32_t B = part.b();
    // Union the slopes blocked by each (Wrong, Right) pair — the
    // ROM-read procedure of §2.4.
    // aegis-lint: allow(HOT-ALLOC constructed once per thread, then only assign()ed)
    static thread_local std::vector<bool> blocked;
    blocked.assign(B, false);
    for (std::uint32_t w : wrong) {
        for (std::uint32_t r : right) {
            const std::uint32_t k = rom->lookup(w, r);
            if (k < B)
                blocked[k] = true;
        }
    }
    for (std::uint32_t trial = 0; trial < B; ++trial) {
        const std::uint32_t k = (slope + trial) % B;
        if (!blocked[k]) {
            repartitions += trial;
            obs::bump(obs::Counter::AegisRepartitions, trial);
            return k;
        }
    }
    return B;
}

AEGIS_HOT scheme::WriteOutcome
AegisRwScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(directory,
                  "Aegis-rw needs an attached fault directory");
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    scheme::WriteOutcome outcome;

    // Faults observed during this write operation. A finite fail
    // cache can evict entries between verify passes; holding the
    // session's own observations keeps the loop convergent.
    pcm::FaultSet &session = sessionScratch;
    session.clear();

    const std::size_t max_iters = cells.size() + 2;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        pcm::FaultSet &known = knownScratch;
        directory->lookupInto(blockId, known);
        ++outcome.io.metadataLookups;
        for (const pcm::Fault &f : session) {
            const bool present = std::any_of(
                known.begin(), known.end(),
                [&f](const pcm::Fault &k) { return k.pos == f.pos; });
            if (!present)
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; grows only past the block's peak fault count)
                known.push_back(f);
        }
        std::vector<std::uint32_t> &wrong = wrongScratch;
        std::vector<std::uint32_t> &right = rightScratch;
        wrong.clear();
        right.clear();
        for (const pcm::Fault &f : known) {
            if (f.stuck != data.get(f.pos))
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; bounded by the block's fault count)
                wrong.push_back(f.pos);
            else
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; bounded by the block's fault count)
                right.push_back(f.pos);
        }

        const std::uint32_t k =
            chooseSlope(wrong, right, outcome.repartitions);
        if (k >= part.b()) {
            outcome.ok = false;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }
        slope = k;
        masks.rebuild(part, slope);

        invVector.fill(false);
        for (std::uint32_t w : wrong)
            invVector.set(part.groupOf(w, slope), true);

        writeWs.target.assignFrom(data);
        invVector.forEachSetBit([this](std::size_t g) {
            writeWs.target.invertMasked(masks.mask(g));
        });

        cells.writeDifferential(writeWs.target);
        ++outcome.programPasses;
        ++outcome.io.programPasses;
        obs::bump(obs::Counter::ProgramPasses);

        cells.readInto(writeWs.readback);
        ++outcome.io.verifyReads;
        writeWs.diff.assignFrom(writeWs.readback);
        writeWs.diff.xorAssign(writeWs.target);
        if (writeWs.diff.none()) {
            outcome.ok = true;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }
        obs::bump(obs::Counter::VerifyMismatches);
        // Mismatches are faults the directory did not know about yet
        // (the fail cache is filled by verification reads).
        writeWs.diff.forEachSetBit([&](std::size_t pos) {
            const pcm::Fault fault{static_cast<std::uint32_t>(pos),
                                   writeWs.readback.get(pos)};
            directory->record(blockId, fault);
            ++outcome.io.metadataUpdates;
            // aegis-lint: allow(HOT-ALLOC grows only when a NEW fault is discovered — the cold branch by definition)
            session.push_back(fault);
            ++outcome.newFaults;
        });
    }
    throw InternalError("Aegis-rw write did not converge");
}

BitVector
AegisRwScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
AegisRwScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    invVector.forEachSetBit([&](std::size_t g) {
        out.invertMasked(masks.mask(g));
    });
}

void
AegisRwScheme::reset()
{
    slope = 0;
    masks.rebuild(part, slope);
    invVector.fill(false);
}

std::unique_ptr<scheme::Scheme>
AegisRwScheme::clone() const
{
    return std::make_unique<AegisRwScheme>(*this);
}

BitVector
AegisRwScheme::exportMetadata() const
{
    const std::uint32_t b = part.b();
    const auto counter_width =
        static_cast<std::size_t>(std::bit_width(b - 1));
    BitWriter w(overheadBits());
    w.writeBits(slope, counter_width);
    w.writeVector(invVector);
    return w.finish();
}

void
AegisRwScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == overheadBits(),
                  "Aegis-rw metadata image has the wrong width");
    const std::uint32_t b = part.b();
    const auto counter_width =
        static_cast<std::size_t>(std::bit_width(b - 1));
    BitReader r(image);
    const auto k = static_cast<std::uint32_t>(r.readBits(counter_width));
    AEGIS_REQUIRE(k < b, "corrupt slope counter");
    slope = k;
    masks.rebuild(part, slope);
    invVector = r.readVector(b);
}

std::unique_ptr<scheme::LifetimeTracker>
AegisRwScheme::makeTracker(const scheme::TrackerOptions &opts) const
{
    return makeAegisRwTracker(part, opts);
}

} // namespace aegis::core
