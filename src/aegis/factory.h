/**
 * @file
 * Construct any scheme in the repository from its textual name.
 *
 * Names (block size supplied separately):
 *   "none"                    unprotected baseline
 *   "ecpN"                    ECP with N pointers, e.g. "ecp6"
 *   "saferN"                  SAFER with N groups, e.g. "safer32"
 *   "saferN-cache"            SAFER with an ideal fail cache
 *   "rdis3" / "rdisD"         RDIS of depth D (16-row grid)
 *   "hamming"                 (72,64) SEC-DED
 *   "aegis-AxB"               basic Aegis, e.g. "aegis-9x61"
 *   "aegis-cache-AxB"         basic Aegis with an ideal fail cache
 *   "aegis-rw-AxB"            Aegis-rw, e.g. "aegis-rw-17x31"
 *   "aegis-rw-pP-AxB"         Aegis-rw-p with P pointers,
 *                             e.g. "aegis-rw-p5-17x31"
 *
 * Any name may carry a "+audit" suffix (e.g. "aegis-9x61+audit") to
 * wrap the scheme in the runtime invariant auditor
 * (audit::SchemeAuditor); scheme->name() round-trips the spelling.
 */

#ifndef AEGIS_AEGIS_FACTORY_H
#define AEGIS_AEGIS_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "scheme/scheme.h"

namespace aegis::core {

/**
 * Structured form of a factory spelling: the base scheme name plus
 * whether the runtime invariant auditor wraps it. The textual factory
 * spelling ("<name>" or "<name>+audit") remains the serialized form,
 * so scheme->name() round-trips through parse()/str() unchanged.
 */
struct SchemeSpec
{
    /** Base factory name, never carrying an "+audit" suffix. */
    std::string name;
    /** Wrap the scheme in audit::SchemeAuditor. */
    bool audit = false;

    /** Parse a factory spelling; any number of trailing "+audit"
     *  suffixes collapse into the single audit flag. */
    static SchemeSpec parse(const std::string &spelled);

    /** Serialized factory spelling (round-trips through parse()). */
    std::string str() const { return audit ? name + "+audit" : name; }

    /** Copy with auditing forced on (never double-audits). */
    SchemeSpec audited() const { return {name, true}; }

    friend bool operator==(const SchemeSpec &,
                           const SchemeSpec &) = default;
};

/** Build a scheme from a structured spec; throws ConfigError on
 *  unknown names. */
std::unique_ptr<scheme::Scheme> makeScheme(const SchemeSpec &spec,
                                           std::size_t block_bits);

/** Build a scheme by textual spelling; throws ConfigError on unknown
 *  names. */
std::unique_ptr<scheme::Scheme> makeScheme(const std::string &name,
                                           std::size_t block_bits);

/**
 * Build a scheme by name and wrap it in the runtime invariant
 * auditor. Accepts names with or without the "+audit" suffix; the
 * result is always audited exactly once.
 */
std::unique_ptr<scheme::Scheme>
makeAuditedScheme(const std::string &name, std::size_t block_bits);

/** Names of the schemes evaluated in the paper for @p block_bits. */
std::vector<std::string> paperSchemeNames(std::size_t block_bits);

} // namespace aegis::core

#endif // AEGIS_AEGIS_FACTORY_H
