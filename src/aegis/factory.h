/**
 * @file
 * Construct any scheme in the repository from its textual name.
 *
 * Names (block size supplied separately):
 *   "none"                    unprotected baseline
 *   "ecpN"                    ECP with N pointers, e.g. "ecp6"
 *   "saferN"                  SAFER with N groups, e.g. "safer32"
 *   "saferN-cache"            SAFER with an ideal fail cache
 *   "rdis3" / "rdisD"         RDIS of depth D (16-row grid)
 *   "hamming"                 (72,64) SEC-DED
 *   "aegis-AxB"               basic Aegis, e.g. "aegis-9x61"
 *   "aegis-cache-AxB"         basic Aegis with an ideal fail cache
 *   "aegis-rw-AxB"            Aegis-rw, e.g. "aegis-rw-17x31"
 *   "aegis-rw-pP-AxB"         Aegis-rw-p with P pointers,
 *                             e.g. "aegis-rw-p5-17x31"
 *
 * Any name may carry a "+audit" suffix (e.g. "aegis-9x61+audit") to
 * wrap the scheme in the runtime invariant auditor
 * (audit::SchemeAuditor); scheme->name() round-trips the spelling.
 */

#ifndef AEGIS_AEGIS_FACTORY_H
#define AEGIS_AEGIS_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "scheme/scheme.h"

namespace aegis::core {

/** Build a scheme by name; throws ConfigError on unknown names. */
std::unique_ptr<scheme::Scheme> makeScheme(const std::string &name,
                                           std::size_t block_bits);

/**
 * Build a scheme by name and wrap it in the runtime invariant
 * auditor. Accepts names with or without the "+audit" suffix; the
 * result is always audited exactly once.
 */
std::unique_ptr<scheme::Scheme>
makeAuditedScheme(const std::string &name, std::size_t block_bits);

/** Names of the schemes evaluated in the paper for @p block_bits. */
std::vector<std::string> paperSchemeNames(std::size_t block_bits);

} // namespace aegis::core

#endif // AEGIS_AEGIS_FACTORY_H
