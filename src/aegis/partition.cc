#include "aegis/partition.h"

#include "util/error.h"
#include "util/primes.h"

namespace aegis::core {

Partition::Partition(std::uint32_t a, std::uint32_t b,
                     std::uint32_t block_bits)
    : widthA(a), heightB(b), bits(block_bits)
{
    AEGIS_REQUIRE(isPrime(b), "Aegis requires a prime B (Theorem 2)");
    AEGIS_REQUIRE(a >= 1 && a <= b, "Aegis requires 0 < A <= B");
    AEGIS_REQUIRE(block_bits > 0, "block size must be positive");
    AEGIS_REQUIRE(static_cast<std::uint64_t>(a) * b >= block_bits,
                  "A x B rectangle too small for the block");
    AEGIS_REQUIRE(static_cast<std::uint64_t>(a - 1) * b < block_bits,
                  "A x B rectangle larger than necessary: shrink A");
}

Partition
Partition::forHeight(std::uint32_t b, std::uint32_t block_bits)
{
    AEGIS_REQUIRE(b > 0, "height must be positive");
    const std::uint32_t a = (block_bits + b - 1) / b;
    return Partition(a, b, block_bits);
}

std::uint32_t
Partition::groupOf(std::uint32_t pos, std::uint32_t k) const
{
    AEGIS_ASSERT(pos < bits, "bit offset out of range");
    AEGIS_ASSERT(k < heightB, "slope out of range");
    const std::uint64_t a = pos / heightB;
    const std::uint64_t b = pos % heightB;
    const std::uint64_t shift = a * k % heightB;
    return static_cast<std::uint32_t>((b + heightB - shift) % heightB);
}

std::vector<std::uint32_t>
Partition::groupMembers(std::uint32_t y, std::uint32_t k) const
{
    AEGIS_ASSERT(y < heightB && k < heightB, "group or slope out of range");
    std::vector<std::uint32_t> members;
    members.reserve(widthA);
    for (std::uint32_t a = 0; a < widthA; ++a) {
        const std::uint64_t b =
            (static_cast<std::uint64_t>(a) * k + y) % heightB;
        const std::uint32_t pos =
            a * heightB + static_cast<std::uint32_t>(b);
        if (pos < bits)
            members.push_back(pos);
    }
    return members;
}

std::uint32_t
Partition::collisionSlope(std::uint32_t pos1, std::uint32_t pos2) const
{
    AEGIS_ASSERT(pos1 < bits && pos2 < bits && pos1 != pos2,
                 "collisionSlope needs two distinct in-range offsets");
    const std::uint64_t B = heightB;
    const std::uint64_t a1 = pos1 / B, b1 = pos1 % B;
    const std::uint64_t a2 = pos2 / B, b2 = pos2 % B;
    if (a1 == a2)
        return heightB;    // same column: never collide
    // Same group under slope k means equal anchors:
    //   b1 - a1 k == b2 - a2 k (mod B)  =>  k == (b1-b2)/(a1-a2) (mod B)
    const std::uint64_t db = (b1 + B - b2) % B;
    const std::uint64_t da = (a1 + B - a2) % B;
    const std::uint64_t k = db * modInverse(da, B) % B;
    return static_cast<std::uint32_t>(k);
}

std::string
Partition::formation() const
{
    return std::to_string(widthA) + "x" + std::to_string(heightB);
}

void
GroupMaskCache::rebuild(const Partition &part, std::uint32_t k)
{
    AEGIS_ASSERT(k < part.slopes(), "slope out of range");
    if (cachedSlope == k)
        return;
    const std::uint32_t n = part.blockBits();
    if (masks.size() != part.groups() ||
        (!masks.empty() && masks.front().size() != n)) {
        masks.assign(part.groups(), BitVector(n));
    } else {
        for (BitVector &m : masks)
            m.fill(false);
    }
    for (std::uint32_t pos = 0; pos < n; ++pos)
        masks[part.groupOf(pos, k)].set(pos, true);
    cachedSlope = k;
}

const BitVector &
GroupMaskCache::mask(std::size_t group) const
{
    AEGIS_ASSERT(cachedSlope != kNoSlope, "mask cache not built");
    AEGIS_ASSERT(group < masks.size(), "group out of range");
    return masks[group];
}

} // namespace aegis::core
