#include "aegis/cost.h"

#include <algorithm>
#include <bit>

#include "util/error.h"
#include "util/primes.h"

namespace aegis::core {

namespace {

std::uint32_t
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0
                  : static_cast<std::uint32_t>(std::bit_width(v - 1));
}

} // namespace

std::uint64_t
slopesNeededBasic(std::uint64_t f)
{
    return f * (f - 1) / 2 + 1;
}

std::uint64_t
slopesNeededRw(std::uint64_t f)
{
    return (f / 2) * ((f + 1) / 2) + 1;
}

std::uint32_t
hardFtcBasic(std::uint32_t b)
{
    std::uint32_t f = 1;
    while (slopesNeededBasic(f + 1) <= b)
        ++f;
    return f;
}

std::uint32_t
hardFtcRw(std::uint32_t b)
{
    std::uint32_t f = 1;
    while (slopesNeededRw(f + 1) <= b)
        ++f;
    return f;
}

std::uint32_t
hardFtcRwP(std::uint32_t b, std::uint32_t p)
{
    return std::min(2 * p + 1, hardFtcRw(b));
}

std::uint32_t
minimalHeight(std::uint32_t block_bits)
{
    AEGIS_REQUIRE(block_bits > 0, "block size must be positive");
    std::uint32_t b = 2;
    for (;;) {
        b = static_cast<std::uint32_t>(nextPrime(b));
        const std::uint32_t a = (block_bits + b - 1) / b;
        if (a <= b)
            return b;
        ++b;
    }
}

std::uint32_t
slopeCounterBits(std::uint32_t b, std::uint32_t f)
{
    // When fewer than B configurations are ever needed the counter
    // can be narrower (paper §2.3).
    return ceilLog2(std::min<std::uint64_t>(slopesNeededBasic(f), b));
}

std::uint64_t
costBitsBasic(std::uint32_t b, std::uint32_t f)
{
    return slopeCounterBits(b, f) + b;
}

std::uint64_t
costBitsRw(std::uint32_t b, std::uint32_t f)
{
    // Table 1 sizes the Aegis-rw counter exactly like basic Aegis's
    // (the configuration index must still address up to B slopes).
    return slopeCounterBits(b, f) + b;
}

std::uint64_t
costBitsRwP(std::uint32_t b, std::uint32_t f, std::uint32_t p)
{
    if (p == 0)
        return 1;    // lone inversion bit (hard FTC 1 special case)
    const std::uint32_t counter =
        ceilLog2(std::min<std::uint64_t>(slopesNeededRw(f), b));
    return counter + static_cast<std::uint64_t>(p) * ceilLog2(b) + 2;
}

namespace {

template <typename CostFn>
CostPoint
minimalFor(std::uint32_t block_bits, std::uint64_t slopes_needed,
           CostFn cost)
{
    const std::uint32_t floor_b = minimalHeight(block_bits);
    const auto b = static_cast<std::uint32_t>(
        nextPrime(std::max<std::uint64_t>(slopes_needed, floor_b)));
    const Partition part = Partition::forHeight(b, block_bits);
    return CostPoint{part.a(), part.b(), cost(b)};
}

} // namespace

CostPoint
minimalCostBasic(std::uint32_t block_bits, std::uint32_t f)
{
    return minimalFor(block_bits, slopesNeededBasic(f),
                      [f](std::uint32_t b) { return costBitsBasic(b, f); });
}

CostPoint
minimalCostRw(std::uint32_t block_bits, std::uint32_t f)
{
    return minimalFor(block_bits, slopesNeededRw(f),
                      [f](std::uint32_t b) { return costBitsRw(b, f); });
}

CostPoint
minimalCostRwP(std::uint32_t block_bits, std::uint32_t f)
{
    AEGIS_REQUIRE(f >= 1, "hard FTC must be at least 1");
    if (f == 1) {
        // One inversion bit masks a single fault anywhere.
        const std::uint32_t b = minimalHeight(block_bits);
        const Partition part = Partition::forHeight(b, block_bits);
        return CostPoint{part.a(), part.b(), 1};
    }
    const std::uint32_t p = f / 2;
    return minimalFor(block_bits, slopesNeededRw(f),
                      [f, p](std::uint32_t b)
                      { return costBitsRwP(b, f, p); });
}

} // namespace aegis::core
