/**
 * @file
 * Monte-Carlo lifetime trackers for the Aegis family.
 *
 * See scheme/tracker.h for the tracker contract. The basic-Aegis
 * tracker is exact (recoverability is data-independent: one fault per
 * group is always maskable, so the block dies precisely when no slope
 * separates the fault set). The rw/rw-p trackers estimate the
 * per-write failure probability by sampling stuck-at-Wrong/Right
 * labelings, exploiting Theorem 2: each fault pair blocks exactly one
 * slope, so a labeling fails iff every slope owns at least one
 * label-mixed pair (rw), or no label-compatible slope fits the
 * pointer budget (rw-p).
 */

#ifndef AEGIS_AEGIS_TRACKERS_H
#define AEGIS_AEGIS_TRACKERS_H

#include <memory>

#include "aegis/partition.h"
#include "scheme/tracker.h"

namespace aegis::core {

/**
 * Tracker for basic Aegis. With @p with_cache, fault knowledge makes
 * writes single-pass, removing the inversion-rewrite wear
 * amplification (capacity is unchanged: recoverability of basic Aegis
 * is data-independent either way).
 */
std::unique_ptr<scheme::LifetimeTracker>
makeAegisTracker(const Partition &partition,
                 const scheme::TrackerOptions &opts,
                 bool with_cache = false);

/** Tracker for Aegis-rw (ideal fail cache assumed). */
std::unique_ptr<scheme::LifetimeTracker>
makeAegisRwTracker(const Partition &partition,
                   const scheme::TrackerOptions &opts);

/** Tracker for Aegis-rw-p with @p pointers group pointers. */
std::unique_ptr<scheme::LifetimeTracker>
makeAegisRwPTracker(const Partition &partition, std::uint32_t pointers,
                    const scheme::TrackerOptions &opts);

} // namespace aegis::core

#endif // AEGIS_AEGIS_TRACKERS_H
