/**
 * @file
 * Analytic cost / fault-tolerance models for the Aegis family
 * (Table 1 of the paper).
 *
 * Definitions (for an A x B scheme over an n-bit block):
 *  - basic Aegis needs C(f,2)+1 slopes to guarantee f faults;
 *  - Aegis-rw needs floor(f/2)*ceil(f/2)+1 slopes (only Wrong-Right
 *    mixtures collide);
 *  - Aegis-rw-p with p group pointers guarantees min(2p+1, rw-FTC)
 *    faults (pigeonhole: min(#W-groups, #R-groups) <= floor(f/2)).
 *
 * Costs per block:
 *  - Aegis / Aegis-rw: slope counter + B-bit inversion vector, where
 *    the counter needs ceil(log2(min(slopes needed, B))) bits;
 *  - Aegis-rw-p: counter + p pointers of ceil(log2 B) bits + 1 case
 *    bit + 1 whole-block-inversion bit (f = 1 degenerates to a single
 *    inversion bit).
 */

#ifndef AEGIS_AEGIS_COST_H
#define AEGIS_AEGIS_COST_H

#include <cstdint>

#include "aegis/partition.h"

namespace aegis::core {

/** C(f,2) + 1: slopes basic Aegis needs to guarantee @p f faults. */
std::uint64_t slopesNeededBasic(std::uint64_t f);

/** floor(f/2)*ceil(f/2) + 1: slopes Aegis-rw needs for @p f faults. */
std::uint64_t slopesNeededRw(std::uint64_t f);

/** Largest f with slopesNeededBasic(f) <= B. */
std::uint32_t hardFtcBasic(std::uint32_t b);

/** Largest f with slopesNeededRw(f) <= B. */
std::uint32_t hardFtcRw(std::uint32_t b);

/** Hard FTC of Aegis-rw-p with @p p pointers: min(2p+1, rw FTC). */
std::uint32_t hardFtcRwP(std::uint32_t b, std::uint32_t p);

/**
 * Smallest legal B for an n-bit block: the least prime with
 * ceil(n/B) <= B (e.g. 23 for n = 512, as §2.3 notes).
 */
std::uint32_t minimalHeight(std::uint32_t block_bits);

/** Slope-counter width when targeting hard FTC @p f on height @p b. */
std::uint32_t slopeCounterBits(std::uint32_t b, std::uint32_t f);

/** Per-block metadata bits of basic Aegis at hard FTC @p f. */
std::uint64_t costBitsBasic(std::uint32_t b, std::uint32_t f);

/** Per-block metadata bits of Aegis-rw at hard FTC @p f. */
std::uint64_t costBitsRw(std::uint32_t b, std::uint32_t f);

/**
 * Per-block metadata bits of Aegis-rw-p targeting hard FTC @p f with
 * @p p pointers (the counter is sized for f, the pointer array for p;
 * Table 1 uses p = floor(f/2)).
 */
std::uint64_t costBitsRwP(std::uint32_t b, std::uint32_t f,
                          std::uint32_t p);

/** A chosen formation plus its advertised cost. */
struct CostPoint
{
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint64_t bits = 0;
};

/**
 * Minimal-cost formation for basic Aegis to guarantee @p f faults in
 * an n-bit block: the least prime B >= max(slopesNeededBasic(f),
 * minimalHeight(n)).
 */
CostPoint minimalCostBasic(std::uint32_t block_bits, std::uint32_t f);

/** Same for Aegis-rw (uses slopesNeededRw). */
CostPoint minimalCostRw(std::uint32_t block_bits, std::uint32_t f);

/**
 * Same for Aegis-rw-p with p = floor(f/2) pointers (f = 1 is the
 * one-bit special case of the paper).
 */
CostPoint minimalCostRwP(std::uint32_t block_bits, std::uint32_t f);

} // namespace aegis::core

#endif // AEGIS_AEGIS_COST_H
