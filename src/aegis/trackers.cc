#include "aegis/trackers.h"

#include <algorithm>
#include <numeric>

#include "aegis/cost.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace aegis::core {

namespace {

/** Exact tracker for basic Aegis: dies when no slope separates. */
class AegisBasicTracker : public scheme::LifetimeTracker
{
  public:
    AegisBasicTracker(const Partition &partition, bool with_cache)
        : part(partition), cacheMode(with_cache)
    {}

    scheme::FaultVerdict
    onFault(const pcm::Fault &fault) override
    {
        if (dead)
            return scheme::FaultVerdict::Dead;
        faults.push_back(fault);
        // Mirror the hardware: advance the slope counter until a
        // configuration separates all faults.
        const std::uint32_t B = part.slopes();
        for (std::uint32_t trial = 0; trial < B; ++trial) {
            const std::uint32_t k = (slope + trial) % B;
            if (separatesUnder(k)) {
                numRepartitions += trial;
                obs::bump(obs::Counter::AegisRepartitions, trial);
                slope = k;
                return scheme::FaultVerdict::Alive;
            }
        }
        dead = true;
        return scheme::FaultVerdict::Dead;
    }

    double writeFailureProbability(Rng &) override
    { return dead ? 1.0 : 0.0; }

    std::vector<std::uint32_t>
    amplifiedCells() const override
    {
        // Without a fail cache, every group holding a fault receives
        // an extra (inversion) program pass whenever its fault reads
        // Wrong — doubling those cells' expected wear. The cache
        // variant computes the target up front and writes once.
        if (cacheMode || faults.empty() || dead)
            return {};
        std::vector<std::uint32_t> groups;
        for (const pcm::Fault &f : faults)
            groups.push_back(part.groupOf(f.pos, slope));
        std::sort(groups.begin(), groups.end());
        groups.erase(std::unique(groups.begin(), groups.end()),
                     groups.end());
        std::vector<std::uint32_t> cells;
        for (std::uint32_t g : groups) {
            for (std::uint32_t pos : part.groupMembers(g, slope))
                cells.push_back(pos);
        }
        return cells;
    }

    std::size_t faultCount() const override { return faults.size(); }
    std::uint64_t repartitions() const override { return numRepartitions; }
    bool dataIndependent() const override { return true; }

  private:
    bool
    separatesUnder(std::uint32_t k) const
    {
        static thread_local std::vector<std::uint32_t> stamp;
        static thread_local std::uint32_t epoch = 0;
        if (stamp.size() < part.groups())
            stamp.assign(part.groups(), 0);
        ++epoch;
        for (const pcm::Fault &f : faults) {
            const std::uint32_t g = part.groupOf(f.pos, k);
            if (stamp[g] == epoch)
                return false;
            stamp[g] = epoch;
        }
        return true;
    }

    Partition part;
    bool cacheMode;
    pcm::FaultSet faults;
    std::uint32_t slope = 0;
    bool dead = false;
    std::uint64_t numRepartitions = 0;
};

/**
 * Shared machinery for the rw/rw-p trackers: maintains, per slope,
 * the list of fault pairs that collide on it (Theorem 2: exactly one
 * slope per cross-column pair).
 */
class RwTrackerBase : public scheme::LifetimeTracker
{
  public:
    RwTrackerBase(const Partition &partition,
                  const scheme::TrackerOptions &opts)
        : part(partition), samples(opts.labelingSamples),
          pairsBySlope(partition.slopes())
    {}

    scheme::FaultVerdict
    onFault(const pcm::Fault &fault) override
    {
        const auto idx = static_cast<std::uint16_t>(faults.size());
        for (std::uint16_t i = 0; i < faults.size(); ++i) {
            const std::uint32_t k =
                part.collisionSlope(faults[i].pos, fault.pos);
            if (k < part.slopes())
                pairsBySlope[k].emplace_back(i, idx);
        }
        faults.push_back(fault);
        probValid = false;
        // With fault knowledge an all-Wrong (or all-Right) labeling is
        // always storable, so death is never deterministic; the
        // per-write failure probability drives the Monte Carlo.
        return scheme::FaultVerdict::Alive;
    }

    double
    writeFailureProbability(Rng &rng) override
    {
        if (probValid)
            return cachedProb;
        cachedProb = estimate(rng);
        probValid = true;
        return cachedProb;
    }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }    // ideal fail cache: one program pass per write

    std::size_t faultCount() const override { return faults.size(); }

  protected:
    /** True when labeling-independent success is guaranteed. */
    virtual bool structurallySafe() const = 0;

    /** Whether one sampled labeling is storable. */
    virtual bool labelingOk(const std::vector<std::uint8_t> &labels) = 0;

    double
    estimate(Rng &rng)
    {
        if (structurallySafe())
            return 0.0;

        // Check slopes cheapest-first when sampling.
        slopeOrder.resize(part.slopes());
        std::iota(slopeOrder.begin(), slopeOrder.end(), 0u);
        std::stable_sort(slopeOrder.begin(), slopeOrder.end(),
                         [this](std::uint32_t x, std::uint32_t y) {
                             return pairsBySlope[x].size() <
                                    pairsBySlope[y].size();
                         });

        // Adaptive sampling: once enough failures accumulate the
        // estimate is already precise enough to kill the block within
        // any realistic write window.
        constexpr std::uint32_t kFailureCap = 16;
        std::uint32_t failures = 0, done = 0;
        std::vector<std::uint8_t> labels(faults.size());
        while (done < samples && failures < kFailureCap) {
            for (auto &l : labels)
                l = static_cast<std::uint8_t>(rng.nextBool());
            if (!labelingOk(labels))
                ++failures;
            ++done;
        }
        obs::bump(obs::Counter::LabelingsSampled, done);
        return static_cast<double>(failures) / static_cast<double>(done);
    }

    /** Slope @p k has no label-mixed pair under @p labels. */
    bool
    slopeUnblocked(std::uint32_t k,
                   const std::vector<std::uint8_t> &labels) const
    {
        for (const auto &[i, j] : pairsBySlope[k]) {
            if (labels[i] != labels[j])
                return false;
        }
        return true;
    }

    Partition part;
    std::uint32_t samples;
    pcm::FaultSet faults;
    std::vector<std::vector<std::pair<std::uint16_t, std::uint16_t>>>
        pairsBySlope;
    std::vector<std::uint32_t> slopeOrder;
    double cachedProb = 0.0;
    bool probValid = true;
};

/** Aegis-rw: a labeling is storable iff some slope has no mixed pair. */
class AegisRwTracker : public RwTrackerBase
{
  public:
    using RwTrackerBase::RwTrackerBase;

  protected:
    bool
    structurallySafe() const override
    {
        if (faults.size() <= hardFtcRw(part.b()))
            return true;
        // Any slope with no colliding pair at all is always free.
        for (const auto &pairs : pairsBySlope) {
            if (pairs.empty())
                return true;
        }
        return false;
    }

    bool
    labelingOk(const std::vector<std::uint8_t> &labels) override
    {
        for (std::uint32_t k : slopeOrder) {
            if (slopeUnblocked(k, labels))
                return true;
        }
        return false;
    }
};

/**
 * Aegis-rw-p: additionally, the chosen slope must admit one of the
 * two pointer encodings — at most p groups holding Wrong faults
 * (invert and point at them) or at most p groups holding Right
 * faults (whole-block inversion, point at the exempt groups).
 */
class AegisRwPTracker : public RwTrackerBase
{
  public:
    AegisRwPTracker(const Partition &partition, std::uint32_t pointers,
                    const scheme::TrackerOptions &opts)
        : RwTrackerBase(partition, opts), maxPointers(pointers),
          stamp(partition.groups(), 0)
    {}

  protected:
    bool
    structurallySafe() const override
    {
        // Hard guarantee: f <= min(2p+1, rw hard FTC).
        return faults.size() <= hardFtcRwP(part.b(), maxPointers);
    }

    bool
    labelingOk(const std::vector<std::uint8_t> &labels) override
    {
        for (std::uint32_t k : slopeOrder) {
            if (!slopeUnblocked(k, labels))
                continue;
            if (groupCountOf(k, labels, 1) <= maxPointers ||
                groupCountOf(k, labels, 0) <= maxPointers) {
                return true;
            }
        }
        return false;
    }

  private:
    /** Distinct groups of faults labeled @p which under slope @p k. */
    std::uint32_t
    groupCountOf(std::uint32_t k, const std::vector<std::uint8_t> &labels,
                 std::uint8_t which)
    {
        ++epoch;
        std::uint32_t count = 0;
        for (std::size_t i = 0; i < faults.size(); ++i) {
            if (labels[i] != which)
                continue;
            const std::uint32_t g = part.groupOf(faults[i].pos, k);
            if (stamp[g] != epoch) {
                stamp[g] = epoch;
                ++count;
            }
        }
        return count;
    }

    std::uint32_t maxPointers;
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
};

} // namespace

std::unique_ptr<scheme::LifetimeTracker>
makeAegisTracker(const Partition &partition,
                 const scheme::TrackerOptions &, bool with_cache)
{
    return std::make_unique<AegisBasicTracker>(partition, with_cache);
}

std::unique_ptr<scheme::LifetimeTracker>
makeAegisRwTracker(const Partition &partition,
                   const scheme::TrackerOptions &opts)
{
    return std::make_unique<AegisRwTracker>(partition, opts);
}

std::unique_ptr<scheme::LifetimeTracker>
makeAegisRwPTracker(const Partition &partition, std::uint32_t pointers,
                    const scheme::TrackerOptions &opts)
{
    return std::make_unique<AegisRwPTracker>(partition, pointers, opts);
}

} // namespace aegis::core
