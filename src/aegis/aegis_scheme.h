/**
 * @file
 * The basic Aegis error-recovery scheme (paper §2.2).
 *
 * Metadata per block: a slope counter (current partition
 * configuration) and a B-bit inversion vector. A write programs the
 * selectively inverted pattern and issues a verification read; any
 * mismatch is a stuck-at-Wrong fault whose group must be inverted.
 * When two discovered faults collide in a group, the slope counter is
 * advanced until a configuration separates all discovered faults —
 * Theorem 2 bounds the search by C(f,2)+1 <= B configurations. The
 * block is unrecoverable when no slope separates the faults.
 *
 * No fail cache is assumed (the paper's conservative configuration):
 * the only persistent fault information is the inversion vector.
 */

#ifndef AEGIS_AEGIS_AEGIS_SCHEME_H
#define AEGIS_AEGIS_AEGIS_SCHEME_H

#include "aegis/partition.h"
#include "scheme/inversion_driver.h"
#include "scheme/scheme.h"
#include "util/hot.h"

namespace aegis::core {

/** Aegis's slope-based GroupPartition policy. */
class AegisPartitionPolicy : public scheme::GroupPartition
{
  public:
    explicit AegisPartitionPolicy(Partition partition)
        : part(std::move(partition))
    {
        masks.rebuild(part, slope);
    }

    std::size_t groupCount() const override { return part.groups(); }

    std::size_t groupOf(std::size_t pos) const override
    { return part.groupOf(static_cast<std::uint32_t>(pos), slope); }

    AEGIS_HOT bool separate(const pcm::FaultSet &faults,
                            std::uint32_t &repartitions) override;

    void resetConfig() override
    {
        slope = 0;
        masks.rebuild(part, slope);
    }

    /** Membership masks are rebuilt eagerly on every slope change, so
     *  this is a plain lookup on the (const) hot path. */
    const BitVector *groupMask(std::size_t group) const override
    { return &masks.mask(group); }

    /** Restore a configuration (metadata import). */
    void setSlope(std::uint32_t k);

    std::uint32_t currentSlope() const { return slope; }
    const Partition &partition() const { return part; }

    /** True when @p k puts every fault in a distinct group. */
    bool separatesUnder(const pcm::FaultSet &faults,
                        std::uint32_t k) const;

  private:
    Partition part;
    GroupMaskCache masks;
    std::uint32_t slope = 0;
};

/**
 * The complete basic Aegis scheme.
 *
 * With @p use_cache (the paper's closing remark: "If a cache is
 * available, Aegis can take advantage of it"), the fail cache's fault
 * knowledge seeds every write, so the target pattern is computed up
 * front: single program pass, no extra inversion rewrites — the same
 * capacity as basic Aegis with SAFER-cache's wear profile.
 */
class AegisScheme : public scheme::Scheme
{
  public:
    /** Protect an n-bit block with the A x B scheme. */
    AegisScheme(std::uint32_t a, std::uint32_t b,
                std::uint32_t block_bits, bool use_cache = false);

    /** Canonical formation for height @p b: A = ceil(n / B). */
    static AegisScheme forHeight(std::uint32_t b,
                                 std::uint32_t block_bits,
                                 bool use_cache = false);

    const std::string &name() const override;
    std::size_t blockBits() const override;
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override;

    AEGIS_HOT scheme::WriteOutcome write(pcm::CellArray &cells,
                                         const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    /** Lane-parallel fast path for speculatively clean lanes (see
     *  scheme::detail::inversionWriteBatch); aegis-cache stages
     *  per-block. */
    AEGIS_HOT void writeBatch(pcm::CellArrayBatch &cells,
                              const pcm::LaneMatrix &data,
                              std::span<scheme::WriteOutcome> outcomes,
                              scheme::BatchWorkspace &ws) override;
    AEGIS_HOT void readBatch(const pcm::CellArrayBatch &cells,
                             pcm::LaneMatrix &out,
                             scheme::BatchWorkspace &ws) const override;
    void reset() override;
    std::unique_ptr<scheme::Scheme> clone() const override;

    /** Packed exactly as §2.2 accounts: slope counter + B inversion
     *  flags. */
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<scheme::LifetimeTracker>
    makeTracker(const scheme::TrackerOptions &opts) const override;

    bool requiresDirectory() const override { return cacheMode; }

    const Partition &partition() const { return policy.partition(); }
    std::uint32_t currentSlope() const { return policy.currentSlope(); }
    const BitVector &inversionVector() const { return invVector; }

  private:
    AegisPartitionPolicy policy;
    BitVector invVector;
    scheme::InversionWorkspace writeWs;
    /** Reusable fault-lookup scratch so cache-mode writes stay
     *  allocation-free once warmed. */
    pcm::FaultSet knownScratch;
    bool cacheMode = false;
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;
};

} // namespace aegis::core

#endif // AEGIS_AEGIS_AEGIS_SCHEME_H
