#include "aegis/aegis_rw_p.h"

#include <algorithm>
#include <bit>

#include "util/bit_io.h"

#include "aegis/cost.h"
#include "aegis/trackers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::core {

namespace {

/** Distinct groups of @p positions under slope @p k, into reusable
 *  scratch (capacity is retained by the caller across writes). */
AEGIS_HOT void
distinctGroupsInto(const Partition &part,
                   const std::vector<std::uint32_t> &positions,
                   std::uint32_t k, std::vector<std::uint32_t> &groups)
{
    groups.clear();
    for (std::uint32_t pos : positions)
        // aegis-lint: allow(HOT-ALLOC scratch capacity retained across writes; bounded by the block's fault count)
        groups.push_back(part.groupOf(pos, k));
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
}

} // namespace

AegisRwPScheme::AegisRwPScheme(std::uint32_t a, std::uint32_t b,
                               std::uint32_t block_bits,
                               std::uint32_t pointers)
    : part(a, b, block_bits),
      rom(std::make_shared<const CollisionRom>(part)),
      maxPointers(pointers),
      schemeName("aegis-rw-p" + std::to_string(pointers) + "-" +
                 part.formation())
{
    AEGIS_REQUIRE(pointers >= 1, "Aegis-rw-p needs at least one pointer");
    masks.rebuild(part, slope);
}

AegisRwPScheme
AegisRwPScheme::forHeight(std::uint32_t b, std::uint32_t block_bits,
                          std::uint32_t pointers)
{
    const Partition p = Partition::forHeight(b, block_bits);
    return AegisRwPScheme(p.a(), p.b(), block_bits, pointers);
}

const std::string &
AegisRwPScheme::name() const
{
    return schemeName;
}

std::size_t
AegisRwPScheme::overheadBits() const
{
    const std::uint32_t f = 2 * maxPointers + 1;
    return costBitsRwP(part.b(), f, maxPointers);
}

std::size_t
AegisRwPScheme::hardFtc() const
{
    return hardFtcRwP(part.b(), maxPointers);
}

bool
AegisRwPScheme::groupInverted(std::uint32_t group) const
{
    const bool pointed =
        std::find(groupPointers.begin(), groupPointers.end(), group) !=
        groupPointers.end();
    return invertComplement ? !pointed : pointed;
}

AEGIS_HOT scheme::WriteOutcome
AegisRwPScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(directory,
                  "Aegis-rw-p needs an attached fault directory");
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    scheme::WriteOutcome outcome;

    const std::uint32_t B = part.b();
    // Session-local fault observations; see AegisRwScheme::write.
    pcm::FaultSet &session = sessionScratch;
    session.clear();
    const std::size_t max_iters = cells.size() + 2;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        pcm::FaultSet &known = knownScratch;
        directory->lookupInto(blockId, known);
        ++outcome.io.metadataLookups;
        for (const pcm::Fault &f : session) {
            const bool present = std::any_of(
                known.begin(), known.end(),
                [&f](const pcm::Fault &k) { return k.pos == f.pos; });
            if (!present)
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; grows only past the block's peak fault count)
                known.push_back(f);
        }
        std::vector<std::uint32_t> &wrong = wrongScratch;
        std::vector<std::uint32_t> &right = rightScratch;
        wrong.clear();
        right.clear();
        for (const pcm::Fault &f : known) {
            if (f.stuck != data.get(f.pos))
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; bounded by the block's fault count)
                wrong.push_back(f.pos);
            else
                // aegis-lint: allow(HOT-ALLOC capacity retained across writes; bounded by the block's fault count)
                right.push_back(f.pos);
        }

        // Slopes blocked by W/R mixtures (ROM lookups).
        std::vector<bool> &blocked = blockedScratch;
        blocked.assign(B, false);
        for (std::uint32_t w : wrong) {
            for (std::uint32_t r : right) {
                const std::uint32_t k = rom->lookup(w, r);
                if (k < B)
                    blocked[k] = true;
            }
        }

        // A slope is usable when it is collision-free AND one of the
        // two pointer cases fits the budget.
        bool found = false;
        std::uint32_t chosen = 0;
        bool chosen_complement = false;
        const std::vector<std::uint32_t> *chosen_groups = nullptr;
        for (std::uint32_t trial = 0; trial < B && !found; ++trial) {
            const std::uint32_t k = (slope + trial) % B;
            if (blocked[k])
                continue;
            distinctGroupsInto(part, wrong, k, wGroupsScratch);
            if (wGroupsScratch.size() <= maxPointers) {
                found = true;
                chosen = k;
                chosen_complement = false;
                chosen_groups = &wGroupsScratch;
                outcome.repartitions += trial;
                obs::bump(obs::Counter::AegisRepartitions, trial);
                break;
            }
            distinctGroupsInto(part, right, k, rGroupsScratch);
            if (rGroupsScratch.size() <= maxPointers) {
                found = true;
                chosen = k;
                chosen_complement = true;
                chosen_groups = &rGroupsScratch;
                outcome.repartitions += trial;
                obs::bump(obs::Counter::AegisRepartitions, trial);
                break;
            }
        }
        if (!found) {
            outcome.ok = false;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }

        slope = chosen;
        masks.rebuild(part, slope);
        invertComplement = chosen_complement;
        // assign() reuses groupPointers' capacity — no allocation once
        // the pointer budget has been reached.
        groupPointers.assign(chosen_groups->begin(),
                             chosen_groups->end());

        // Complement case: invert the whole block, then flipping the
        // pointed (R) groups' masks un-inverts exactly those groups.
        writeWs.target.assignFrom(data);
        if (invertComplement)
            writeWs.target.invert();
        for (std::uint32_t g : groupPointers)
            writeWs.target.invertMasked(masks.mask(g));

        cells.writeDifferential(writeWs.target);
        ++outcome.programPasses;
        ++outcome.io.programPasses;
        obs::bump(obs::Counter::ProgramPasses);

        cells.readInto(writeWs.readback);
        ++outcome.io.verifyReads;
        writeWs.diff.assignFrom(writeWs.readback);
        writeWs.diff.xorAssign(writeWs.target);
        if (writeWs.diff.none()) {
            outcome.ok = true;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }
        obs::bump(obs::Counter::VerifyMismatches);
        writeWs.diff.forEachSetBit([&](std::size_t pos) {
            const pcm::Fault fault{static_cast<std::uint32_t>(pos),
                                   writeWs.readback.get(pos)};
            directory->record(blockId, fault);
            ++outcome.io.metadataUpdates;
            // aegis-lint: allow(HOT-ALLOC grows only when a NEW fault is discovered — the cold branch by definition)
            session.push_back(fault);
            ++outcome.newFaults;
        });
    }
    throw InternalError("Aegis-rw-p write did not converge");
}

BitVector
AegisRwPScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
AegisRwPScheme::readInto(const pcm::CellArray &cells,
                         BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    if (invertComplement)
        out.invert();
    for (std::uint32_t g : groupPointers)
        out.invertMasked(masks.mask(g));
}

void
AegisRwPScheme::reset()
{
    slope = 0;
    masks.rebuild(part, slope);
    invertComplement = false;
    groupPointers.clear();
}

std::unique_ptr<scheme::Scheme>
AegisRwPScheme::clone() const
{
    return std::make_unique<AegisRwPScheme>(*this);
}

std::size_t
AegisRwPScheme::metadataBits() const
{
    const auto w =
        static_cast<std::size_t>(std::bit_width(part.b() - 1));
    return w + 1 + maxPointers * w + 1;
}

BitVector
AegisRwPScheme::exportMetadata() const
{
    const auto width =
        static_cast<std::size_t>(std::bit_width(part.b() - 1));
    // B is never a power of two (it is an odd prime), so the all-ones
    // value of a width-bit field is >= B and free to mark empty slots.
    const std::uint64_t sentinel = (1ull << width) - 1;
    AEGIS_ASSERT(sentinel >= part.b(), "no sentinel encoding available");

    BitWriter w(metadataBits());
    w.writeBits(slope, width);
    w.writeBit(invertComplement);
    for (std::size_t i = 0; i < maxPointers; ++i) {
        w.writeBits(i < groupPointers.size() ? groupPointers[i]
                                             : sentinel,
                    width);
    }
    w.writeBit(false);    // reserved (the cost model's second flag)
    return w.finish();
}

void
AegisRwPScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == metadataBits(),
                  "Aegis-rw-p metadata image has the wrong width");
    const auto width =
        static_cast<std::size_t>(std::bit_width(part.b() - 1));
    const std::uint64_t sentinel = (1ull << width) - 1;

    BitReader r(image);
    const auto k = static_cast<std::uint32_t>(r.readBits(width));
    AEGIS_REQUIRE(k < part.b(), "corrupt slope counter");
    slope = k;
    masks.rebuild(part, slope);
    invertComplement = r.readBit();
    groupPointers.clear();
    for (std::size_t i = 0; i < maxPointers; ++i) {
        const std::uint64_t g = r.readBits(width);
        if (g == sentinel)
            continue;
        AEGIS_REQUIRE(g < part.b(), "corrupt group pointer");
        groupPointers.push_back(static_cast<std::uint32_t>(g));
    }
    (void)r.readBit();
}

std::unique_ptr<scheme::LifetimeTracker>
AegisRwPScheme::makeTracker(const scheme::TrackerOptions &opts) const
{
    return makeAegisRwPTracker(part, maxPointers, opts);
}

} // namespace aegis::core
