/**
 * @file
 * The Aegis-rw collision ROM (paper §2.4).
 *
 * An n x n x ceil(log2 B) ROM recording, for every pair of bit
 * offsets, the unique slope on which the pair collides (Theorem 2
 * guarantees uniqueness). With fault knowledge from the fail cache,
 * Aegis-rw reads the ROM for every (Wrong, Right) fault pair, unions
 * the blocked slopes, and picks any remaining slope — no write trials
 * needed. We precompute the table exactly as the hardware would.
 */

#ifndef AEGIS_AEGIS_COLLISION_ROM_H
#define AEGIS_AEGIS_COLLISION_ROM_H

#include <cstdint>
#include <vector>

#include "aegis/partition.h"

namespace aegis::core {

class CollisionRom
{
  public:
    explicit CollisionRom(const Partition &partition);

    /**
     * Slope on which @p pos1 and @p pos2 collide, or B (invalid)
     * when they are in the same column and never collide.
     */
    std::uint32_t lookup(std::uint32_t pos1, std::uint32_t pos2) const;

    /** ROM capacity in bits: n * n * ceil(log2 B). */
    std::uint64_t sizeBits() const;

    std::uint32_t blockBits() const { return n; }
    std::uint32_t slopes() const { return numSlopes; }

  private:
    std::uint32_t n;
    std::uint32_t numSlopes;
    /** Row-major upper-triangular-in-spirit full table. */
    std::vector<std::uint16_t> table;
};

} // namespace aegis::core

#endif // AEGIS_AEGIS_COLLISION_ROM_H
