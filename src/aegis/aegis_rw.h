/**
 * @file
 * Aegis-rw: the fault-aware Aegis variant (paper §2.4).
 *
 * With a fail cache supplying every fault's position and stuck value
 * before a write, faults can be classified against the data being
 * written as stuck-at-Wrong or stuck-at-Right. A group may then hold
 * arbitrarily many faults of one type — inverting the group fixes all
 * W faults at once, leaving it un-inverted preserves all R faults —
 * so only W/R mixtures are collisions. The collision ROM yields the
 * unique slope blocked by each (W, R) pair; any un-blocked slope is a
 * valid configuration and at most floor(f/2)*ceil(f/2) slopes can be
 * blocked.
 */

#ifndef AEGIS_AEGIS_AEGIS_RW_H
#define AEGIS_AEGIS_AEGIS_RW_H

#include <memory>

#include "aegis/collision_rom.h"
#include "aegis/partition.h"
#include "scheme/inversion_driver.h"
#include "scheme/scheme.h"
#include "util/hot.h"

namespace aegis::core {

class AegisRwScheme : public scheme::Scheme
{
  public:
    AegisRwScheme(std::uint32_t a, std::uint32_t b,
                  std::uint32_t block_bits);

    static AegisRwScheme forHeight(std::uint32_t b,
                                   std::uint32_t block_bits);

    const std::string &name() const override;
    std::size_t blockBits() const override { return part.blockBits(); }
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override;

    AEGIS_HOT scheme::WriteOutcome write(pcm::CellArray &cells,
                                         const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    void reset() override;
    std::unique_ptr<scheme::Scheme> clone() const override;

    /** Packed: slope counter + B inversion flags (same image layout
     *  as basic Aegis; the rw distinction is behavioural). */
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<scheme::LifetimeTracker>
    makeTracker(const scheme::TrackerOptions &opts) const override;

    bool requiresDirectory() const override { return true; }

    const Partition &partition() const { return part; }
    std::uint32_t currentSlope() const { return slope; }
    const BitVector &inversionVector() const { return invVector; }

  private:
    /**
     * Choose a slope (starting from the current one) under which no
     * group mixes the given W and R fault positions; returns B when
     * every slope is blocked. @p repartitions counts advances.
     */
    AEGIS_HOT std::uint32_t
    chooseSlope(const std::vector<std::uint32_t> &wrong,
                const std::vector<std::uint32_t> &right,
                std::uint32_t &repartitions) const;

    Partition part;
    std::shared_ptr<const CollisionRom> rom;    ///< shared across clones
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;
    GroupMaskCache masks;    ///< rebuilt eagerly on slope changes
    std::uint32_t slope = 0;
    BitVector invVector;
    scheme::InversionWorkspace writeWs;
    /** Reusable write-loop scratch: capacity is retained across
     *  writes so steady-state writes allocate nothing. */
    pcm::FaultSet knownScratch;
    pcm::FaultSet sessionScratch;
    std::vector<std::uint32_t> wrongScratch;
    std::vector<std::uint32_t> rightScratch;
};

} // namespace aegis::core

#endif // AEGIS_AEGIS_AEGIS_RW_H
