/**
 * @file
 * Expected-style result types for recoverable failures.
 *
 * util/error.h covers the two *throwing* failure classes (internal
 * bugs and invalid configuration). This header adds the third class
 * the robustness layer needs: operations that are *expected* to fail
 * in normal operation — checkpoint I/O on a full disk, a corrupt or
 * stale checkpoint file, an unwritable --json path — and whose
 * callers must branch on the outcome instead of unwinding. Status and
 * Expected<T> carry either success or an actionable message the CLI
 * surfaces verbatim with a nonzero exit code.
 */

#ifndef AEGIS_UTIL_EXPECTED_H
#define AEGIS_UTIL_EXPECTED_H

#include <optional>
#include <string>
#include <utility>

#include "util/error.h"

namespace aegis {

/** Success-or-message result of a fallible void operation. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    static Status
    failure(std::string message)
    {
        Status s;
        s.msg = std::move(message);
        s.failed = true;
        return s;
    }

    bool ok() const { return !failed; }
    explicit operator bool() const { return !failed; }

    /** The failure message; empty on success. */
    const std::string &error() const { return msg; }

  private:
    std::string msg;
    bool failed = false;
};

/**
 * A value of type @p T or a failure message. Minimal stand-in for
 * C++23 std::expected<T, std::string>:
 * @code
 *   Expected<Checkpoint> c = loadCheckpointFile(path);
 *   if (!c.ok())
 *       return Status::failure(c.error());
 *   use(c.value());
 * @endcode
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Implicit success conversion so `return value;` works. */
    Expected(T value) : val(std::move(value)) {}    // NOLINT

    static Expected
    failure(std::string message)
    {
        Expected e;
        e.msg = std::move(message);
        return e;
    }

    bool ok() const { return val.has_value(); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        AEGIS_ASSERT(ok(), "Expected::value() on failure: " + msg);
        return *val;
    }

    const T &
    value() const
    {
        AEGIS_ASSERT(ok(), "Expected::value() on failure: " + msg);
        return *val;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** The failure message; empty on success. */
    const std::string &error() const { return msg; }

    /** The value, or @p fallback on failure. */
    T
    valueOr(T fallback) const
    {
        return ok() ? *val : std::move(fallback);
    }

  private:
    Expected() = default;

    std::optional<T> val;
    std::string msg;
};

} // namespace aegis

#endif // AEGIS_UTIL_EXPECTED_H
