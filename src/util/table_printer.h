/**
 * @file
 * Console table and CSV rendering for the benchmark harness.
 *
 * Every bench binary reproduces one paper table/figure; this printer
 * renders the same rows/series as aligned text (for eyeballing) and
 * optionally CSV (for re-plotting).
 */

#ifndef AEGIS_UTIL_TABLE_PRINTER_H
#define AEGIS_UTIL_TABLE_PRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace aegis {

/** A rectangular table of strings with a header row and a title. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title = "");

    /** Set the header row; resets column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (must match the header width if one is set). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format integers with thousands grouping. */
    static std::string intNum(long long v);

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows.size(); }

    /** The already-computed cells, for JSON manifests: emitting these
     *  verbatim guarantees manifests and tables can never diverge. */
    const std::string &tableTitle() const { return title; }
    const std::vector<std::string> &headerRow() const { return header; }
    const std::vector<std::vector<std::string>> &rowData() const
    { return rows; }

  private:
    bool numericColumn(std::size_t c) const;

    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace aegis

#endif // AEGIS_UTIL_TABLE_PRINTER_H
