/**
 * @file
 * Fault injection for the robustness layer, driven by the AEGIS_CHAOS
 * environment variable. Three faults are supported:
 *
 *  - `io-fail-rate=<p>` — each atomic file write independently fails
 *    with probability p (deterministically, from `io-fail-seed=<s>`),
 *    exercising the checkpoint/manifest error paths.
 *  - `kill-after-chunks=<n>` — the process dies with _Exit(137) (as
 *    if SIGKILLed) right after the n-th Monte-Carlo chunk completes,
 *    for kill-and-resume integration tests that must not rely on
 *    graceful shutdown.
 *  - `hang-after-chunks=<n>` — once n chunks have completed, every
 *    worker thread reaching the hook blocks forever: the process
 *    stays alive but stops making progress, simulating a straggler
 *    for the sweep supervisor's stall detector (which watches the
 *    checkpoint file's mtime and must escalate to SIGKILL).
 *
 * Example: AEGIS_CHAOS="kill-after-chunks=5,io-fail-rate=0.3"
 * Production runs leave AEGIS_CHAOS unset; every hook then reduces to
 * one branch on a cached config.
 */

#ifndef AEGIS_UTIL_CHAOS_H
#define AEGIS_UTIL_CHAOS_H

#include <cstdint>

namespace aegis {

/** Parsed AEGIS_CHAOS settings. */
struct ChaosConfig
{
    /** Kill the process after this many completed chunks (0 = off). */
    std::uint64_t killAfterChunks = 0;
    /** Hang every worker thread once this many chunks completed
     *  (0 = off): alive but no progress, a synthetic straggler. */
    std::uint64_t hangAfterChunks = 0;
    /** Probability each atomic file write fails (0 = off). */
    double ioFailRate = 0.0;
    /** Seed of the deterministic failure stream. */
    std::uint64_t ioFailSeed = 1;

    bool enabled() const
    {
        return killAfterChunks != 0 || hangAfterChunks != 0 ||
               ioFailRate > 0.0;
    }
};

/**
 * The active chaos configuration: parsed once from AEGIS_CHAOS on
 * first use (ConfigError on malformed input), or whatever the last
 * setChaosConfigForTest() installed.
 */
const ChaosConfig &chaosConfig();

/** Override the chaos config (tests); bypasses the environment. */
void setChaosConfigForTest(const ChaosConfig &config);

/** Parse an AEGIS_CHAOS value (exposed for tests). */
ChaosConfig parseChaosSpec(const char *spec);

/**
 * Draw from the injected-I/O-failure stream: true when the caller
 * should fail this write. Thread-safe; always false when io-fail-rate
 * is unset.
 */
bool chaosShouldFailIo();

/**
 * Note one completed Monte-Carlo chunk. When kill-after-chunks is
 * armed and the count is reached, the process exits immediately with
 * status 137 — simulating a crash, not a graceful shutdown. When
 * hang-after-chunks is armed and the count has been reached, the
 * calling thread blocks forever — simulating a straggler that only
 * an external supervisor can put down.
 */
void chaosNoteChunkComplete();

} // namespace aegis

#endif // AEGIS_UTIL_CHAOS_H
