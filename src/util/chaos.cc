#include "util/chaos.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include <unistd.h>

#include "util/error.h"
#include "util/rng.h"

namespace aegis {

namespace {

std::mutex g_chaosMu;
bool g_parsed = false;
ChaosConfig g_config;
Rng g_ioRng;
std::atomic<std::uint64_t> g_chunksCompleted{0};

double
parseProbability(const std::string &key, const std::string &text)
{
    std::size_t used = 0;
    double v = 0;
    try {
        v = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    AEGIS_REQUIRE(used == text.size() && v >= 0.0 && v <= 1.0,
                  "AEGIS_CHAOS " + key + " expects a probability in "
                  "[0,1], got `" + text + "'");
    return v;
}

std::uint64_t
parseCount(const std::string &key, const std::string &text)
{
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    AEGIS_REQUIRE(used == text.size() && !text.empty() &&
                      text[0] != '-',
                  "AEGIS_CHAOS " + key + " expects a non-negative "
                  "integer, got `" + text + "'");
    return v;
}

} // namespace

ChaosConfig
parseChaosSpec(const char *spec)
{
    ChaosConfig config;
    if (spec == nullptr || *spec == '\0')
        return config;
    std::string text = spec;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        AEGIS_REQUIRE(eq != std::string::npos,
                      "AEGIS_CHAOS expects key=value pairs, got `" +
                          item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "kill-after-chunks") {
            config.killAfterChunks = parseCount(key, value);
        } else if (key == "hang-after-chunks") {
            config.hangAfterChunks = parseCount(key, value);
        } else if (key == "io-fail-rate") {
            config.ioFailRate = parseProbability(key, value);
        } else if (key == "io-fail-seed") {
            config.ioFailSeed = parseCount(key, value);
        } else {
            AEGIS_REQUIRE(false, "AEGIS_CHAOS unknown key `" + key +
                                     "' (expected kill-after-chunks, "
                                     "hang-after-chunks, io-fail-rate "
                                     "or io-fail-seed)");
        }
    }
    return config;
}

const ChaosConfig &
chaosConfig()
{
    const std::lock_guard<std::mutex> lock(g_chaosMu);
    if (!g_parsed) {
        g_config = parseChaosSpec(std::getenv("AEGIS_CHAOS"));
        g_ioRng = Rng(g_config.ioFailSeed);
        g_parsed = true;
    }
    return g_config;
}

void
setChaosConfigForTest(const ChaosConfig &config)
{
    const std::lock_guard<std::mutex> lock(g_chaosMu);
    g_config = config;
    g_ioRng = Rng(config.ioFailSeed);
    g_parsed = true;
    g_chunksCompleted.store(0, std::memory_order_relaxed);
}

bool
chaosShouldFailIo()
{
    if (chaosConfig().ioFailRate <= 0.0)
        return false;
    const std::lock_guard<std::mutex> lock(g_chaosMu);
    return g_ioRng.nextBernoulli(g_config.ioFailRate);
}

void
chaosNoteChunkComplete()
{
    const ChaosConfig &config = chaosConfig();
    if (config.killAfterChunks == 0 && config.hangAfterChunks == 0)
        return;
    const std::uint64_t n =
        g_chunksCompleted.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config.killAfterChunks != 0 && n == config.killAfterChunks) {
        // Simulate a crash: no destructors, no atexit, no final
        // checkpoint — resume must work from the last periodic
        // snapshot alone.
        std::fprintf(stderr,
                     "chaos: injected kill after %llu chunks\n",
                     static_cast<unsigned long long>(n));
        std::_Exit(137);
    }
    if (config.hangAfterChunks != 0 && n >= config.hangAfterChunks) {
        // Simulate a straggler: stay alive, make no progress, never
        // exit. `>=` hangs every worker thread that reaches the hook
        // past the threshold, so a multi-threaded sweep wedges
        // completely instead of limping on minus one thread. Only an
        // external SIGKILL (the supervisor's stall path) ends this.
        static std::atomic<bool> announced{false};
        if (!announced.exchange(true, std::memory_order_relaxed))
            std::fprintf(stderr,
                         "chaos: injected hang after %llu chunks\n",
                         static_cast<unsigned long long>(n));
        for (;;)
            ::pause();
    }
}

} // namespace aegis
