/**
 * @file
 * A dynamically sized bit vector tuned for data-block manipulation.
 *
 * PCM data blocks in this project are 32..512 bits; schemes constantly
 * xor/invert/compare them. std::vector<bool> lacks word access and
 * std::bitset is statically sized, so we provide a small word-backed
 * vector with the operations the recovery schemes need: bitwise ops,
 * popcount, iteration over set bits, and randomized fill.
 */

#ifndef AEGIS_UTIL_BIT_VECTOR_H
#define AEGIS_UTIL_BIT_VECTOR_H

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/hot.h"

namespace aegis {

class Rng;

/**
 * Fixed-length (after construction) vector of bits backed by 64-bit
 * words. Out-of-range accesses are checked via AEGIS_ASSERT.
 */
class BitVector
{
  public:
    /** Bits per backing word. */
    static constexpr std::size_t kWordBits = 64;

    /** Construct an empty (zero-length) vector. */
    BitVector() = default;

    /** Construct @p n bits, all initialized to @p value. */
    explicit BitVector(std::size_t n, bool value = false);

    /**
     * Construct from a string of '0'/'1' characters, most significant
     * (index 0) first. Any other character raises ConfigError.
     */
    static BitVector fromString(const std::string &bits);

    /** Number of bits. */
    std::size_t size() const { return numBits; }

    /** True when the vector holds zero bits. */
    bool empty() const { return numBits == 0; }

    /** Read bit @p i. */
    AEGIS_HOT bool get(std::size_t i) const;

    /** Set bit @p i to @p value. */
    AEGIS_HOT void set(std::size_t i, bool value);

    /** Flip bit @p i. */
    AEGIS_HOT void flip(std::size_t i);

    /** Set all bits to @p value. */
    AEGIS_HOT void fill(bool value);

    /** Flip every bit in place. */
    AEGIS_HOT void invert();

    /** Number of set bits. */
    AEGIS_HOT std::size_t popcount() const;

    /** True when no bit is set. */
    bool none() const { return popcount() == 0; }

    /** True when at least one bit is set. */
    bool any() const { return !none(); }

    /** Indices of all set bits, ascending. Allocates; hot loops
     *  should prefer forEachSetBit. */
    std::vector<std::size_t> setBits() const;

    /** Index of the first set bit, or size() when none is set. */
    std::size_t firstSetBit() const;

    /**
     * Invoke @p fn(index) for every set bit, ascending, without
     * allocating. The vector must not be resized from within @p fn;
     * mutating already-visited bits is allowed (each word is read
     * once before its bits are dispatched).
     */
    template <typename Fn>
    AEGIS_HOT void forEachSetBit(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < wordStore.size(); ++wi) {
            std::uint64_t w = wordStore[wi];
            while (w != 0) {
                fn(wi * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

    /** In-place xor with @p other (sizes must match). */
    AEGIS_HOT BitVector &xorAssign(const BitVector &other);

    /** In-place or with @p other (sizes must match). */
    AEGIS_HOT BitVector &orAssign(const BitVector &other);

    /** In-place and with @p other (sizes must match). */
    AEGIS_HOT BitVector &andAssign(const BitVector &other);

    /** this &= ~other, without materializing ~other. */
    AEGIS_HOT BitVector &andNotAssign(const BitVector &other);

    /** Flip exactly the bits selected by @p mask (word-parallel). */
    AEGIS_HOT void invertMasked(const BitVector &mask) { xorAssign(mask); }

    /** this ^= (value & ~mask), without temporaries: xor in only the
     *  bits of @p value that fall outside @p mask. */
    AEGIS_HOT BitVector &xorAssignAndNot(const BitVector &value,
                                         const BitVector &mask);

    /**
     * Become (base & ~mask) | (chosen & mask): take each bit from
     * @p chosen where @p mask is set and from @p base elsewhere. All
     * three sizes must match; resizes this vector if needed.
     */
    AEGIS_HOT void assignSelect(const BitVector &base,
                                const BitVector &chosen,
                                const BitVector &mask);

    /** Copy @p other's contents; reuses the existing allocation when
     *  capacity suffices (always, once widths have stabilized). */
    AEGIS_HOT void assignFrom(const BitVector &other);

    /** Word-level equality (same size and same bits). */
    AEGIS_HOT bool equals(const BitVector &other) const;

    /** Index of the first bit where this and @p other differ, or
     *  size() when equal (sizes must match). */
    std::size_t firstMismatch(const BitVector &other) const;

    /** In-place xor with @p other (sizes must match). */
    BitVector &operator^=(const BitVector &other)
    { return xorAssign(other); }

    /** In-place and with @p other (sizes must match). */
    BitVector &operator&=(const BitVector &other)
    { return andAssign(other); }

    /** In-place or with @p other (sizes must match). */
    BitVector &operator|=(const BitVector &other)
    { return orAssign(other); }

    friend BitVector operator^(BitVector lhs, const BitVector &rhs)
    { lhs ^= rhs; return lhs; }

    friend BitVector operator&(BitVector lhs, const BitVector &rhs)
    { lhs &= rhs; return lhs; }

    friend BitVector operator|(BitVector lhs, const BitVector &rhs)
    { lhs |= rhs; return lhs; }

    /** Bitwise complement. */
    BitVector operator~() const;

    bool operator==(const BitVector &other) const
    { return equals(other); }
    bool operator!=(const BitVector &other) const
    { return !(*this == other); }

    /** Hamming distance to @p other (sizes must match). */
    std::size_t hammingDistance(const BitVector &other) const;

    /** Render as a '0'/'1' string, index 0 first. */
    std::string toString() const;

    /** Fill with independent fair coin flips from @p rng. */
    void randomize(Rng &rng);

    /** A fresh random vector of @p n bits. */
    static BitVector random(std::size_t n, Rng &rng);

    /** Direct read access to the backing words (for fast scans). */
    const std::vector<std::uint64_t> &words() const { return wordStore; }

    /** Backing word @p wi (for word-at-a-time codecs). */
    AEGIS_HOT std::uint64_t word(std::size_t wi) const
    { return wordStore[wi]; }

    /** Overwrite backing word @p wi; tail bits beyond size() are
     *  re-masked so invariants hold. */
    AEGIS_HOT void setWord(std::size_t wi, std::uint64_t w);

  private:
    /** Clear any bits in the final partial word beyond numBits. */
    void maskTail();

    std::size_t numBits = 0;
    std::vector<std::uint64_t> wordStore;
};

} // namespace aegis

#endif // AEGIS_UTIL_BIT_VECTOR_H
