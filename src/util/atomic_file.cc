#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/chaos.h"

namespace aegis {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

/** Directory part of @p path ("." when it has none). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

Status
writeAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off,
                                  data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::failure("write failed: " + errnoText());
        }
        off += static_cast<std::size_t>(n);
    }
    return Status();
}

} // namespace

Status
atomicWriteFile(const std::string &path, std::string_view data)
{
    if (chaosShouldFailIo())
        return Status::failure("chaos: injected I/O failure writing `" +
                               path + "'");

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        return Status::failure("cannot create `" + tmp +
                               "': " + errnoText());

    Status status = writeAll(fd, data);
    if (status.ok() && ::fsync(fd) != 0)
        status = Status::failure("fsync of `" + tmp +
                                 "' failed: " + errnoText());
    if (::close(fd) != 0 && status.ok())
        status = Status::failure("close of `" + tmp +
                                 "' failed: " + errnoText());
    if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0)
        status = Status::failure("cannot rename `" + tmp + "' to `" +
                                 path + "': " + errnoText());
    if (!status.ok()) {
        ::unlink(tmp.c_str());
        return status;
    }

    // Make the rename itself durable: without the directory fsync the
    // data file is safe against a process crash but a power loss can
    // roll the directory entry back to the old file — or to nothing.
    // A checkpoint that survived _Exit(137) must also survive the
    // machine dying, so a real sync failure is a real failure; only
    // filesystems that cannot sync directories at all (EINVAL /
    // ENOTSUP, e.g. some network mounts) are excused, the rename then
    // being the strongest guarantee available.
    const std::string dir = dirOf(path);
    const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        if (::fsync(dirFd) != 0 && errno != EINVAL &&
            errno != ENOTSUP && errno != EOPNOTSUPP) {
            status = Status::failure("fsync of directory `" + dir +
                                     "' failed: " + errnoText());
            ::close(dirFd);
            return status;
        }
        ::close(dirFd);
    }
    return Status();
}

Status
probeWritable(const std::string &path)
{
    const std::string probe =
        path + ".probe." + std::to_string(::getpid());
    const int fd = ::open(probe.c_str(), O_WRONLY | O_CREAT | O_EXCL,
                          0644);
    if (fd < 0)
        return Status::failure("`" + path +
                               "' is not writable: " + errnoText());
    ::close(fd);
    ::unlink(probe.c_str());
    return Status();
}

Expected<std::string>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Expected<std::string>::failure(
            "cannot open `" + path + "': " + errnoText());
    std::ostringstream os;
    os << is.rdbuf();
    if (is.bad())
        return Expected<std::string>::failure(
            "read of `" + path + "' failed");
    return os.str();
}

} // namespace aegis
