#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace aegis {

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? hardwareJobs() : jobs;
}

void
parallelFor(std::size_t chunks, unsigned jobs,
            const std::function<void(std::size_t)> &body,
            const CancelToken *cancel)
{
    jobs = resolveJobs(jobs);
    if (chunks == 0)
        return;
    if (jobs == 1 || chunks == 1) {
        for (std::size_t c = 0; c < chunks; ++c) {
            if (cancel != nullptr && cancel->cancelled())
                return;
            body(c);
        }
        return;
    }

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs, chunks));
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;

    const auto drain = [&] {
        for (;;) {
            if (cancel != nullptr && cancel->cancelled())
                return;
            const std::size_t c =
                next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                return;
            try {
                body(c);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                // Poison the counter so idle workers wind down
                // instead of starting chunks whose results are
                // already doomed to be discarded.
                next.store(chunks, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain();    // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace aegis
