/**
 * @file
 * Error-handling primitives for the aegis-pcm library.
 *
 * Following the gem5 convention we distinguish two failure classes:
 *  - panic-class failures (AEGIS_ASSERT): internal invariant violations,
 *    i.e. bugs in this library. These abort via std::logic_error.
 *  - fatal-class failures (AEGIS_REQUIRE): invalid configuration or
 *    arguments supplied by the caller. These throw std::invalid_argument
 *    so applications can catch and report them.
 *
 * A third macro, AEGIS_AUDIT, serves the runtime invariant auditor
 * (src/audit/): like AEGIS_ASSERT it reports a library bug via
 * InternalError, but its message argument is a stream expression so
 * violations can carry a full state dump of the audited scheme.
 */

#ifndef AEGIS_UTIL_ERROR_H
#define AEGIS_UTIL_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace aegis {

/** Exception thrown for internal invariant violations (library bugs). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Exception thrown for invalid user-supplied configuration. */
class ConfigError : public std::invalid_argument
{
  public:
    explicit ConfigError(const std::string &what)
        : std::invalid_argument(what)
    {}
};

namespace detail {

/** Compose a "file:line: message" diagnostic string. */
inline std::string
formatDiagnostic(const char *file, int line, const char *expr,
                 const std::string &msg)
{
    std::ostringstream os;
    os << file << ":" << line << ": ";
    if (expr)
        os << "check `" << expr << "' failed";
    if (!msg.empty()) {
        if (expr)
            os << ": ";
        os << msg;
    }
    return os.str();
}

} // namespace detail
} // namespace aegis

/**
 * Assert an internal invariant. Failure indicates a bug in aegis-pcm
 * itself, never a user error.
 */
#define AEGIS_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::aegis::InternalError(::aegis::detail::formatDiagnostic( \
                __FILE__, __LINE__, #cond, (msg)));                         \
        }                                                                   \
    } while (0)

/**
 * Validate a user-supplied precondition (configuration, arguments).
 * Failure is the caller's fault and throws ConfigError.
 */
#define AEGIS_REQUIRE(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::aegis::ConfigError(::aegis::detail::formatDiagnostic(   \
                __FILE__, __LINE__, #cond, (msg)));                         \
        }                                                                   \
    } while (0)

/**
 * Audit-layer invariant check. @p dump is a stream expression (chained
 * with <<), evaluated only on failure, so auditors can attach an
 * arbitrarily detailed state dump at zero cost on the happy path:
 *
 *   AEGIS_AUDIT(decoded == data,
 *               "read-back mismatch on " << name << ": slope=" << k);
 *
 * Failure throws InternalError with "[audit]" in the diagnostic.
 */
#define AEGIS_AUDIT(cond, dump)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream aegis_audit_os_;                             \
            aegis_audit_os_ << dump; /* NOLINT */                           \
            throw ::aegis::InternalError(::aegis::detail::formatDiagnostic( \
                __FILE__, __LINE__, #cond,                                  \
                "[audit] " + aegis_audit_os_.str()));                       \
        }                                                                   \
    } while (0)

#endif // AEGIS_UTIL_ERROR_H
