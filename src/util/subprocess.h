/**
 * @file
 * Minimal POSIX subprocess control for the sweep supervisor: spawn a
 * worker with environment overrides and log redirection, poll it
 * without blocking, and put it down with SIGKILL when it times out or
 * stalls. Plus the deterministic exponential backoff policy retries
 * are scheduled with (no jitter: reproducibility is a feature here,
 * and the workers are our own processes, not a shared service).
 */

#ifndef AEGIS_UTIL_SUBPROCESS_H
#define AEGIS_UTIL_SUBPROCESS_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

#include "util/expected.h"

namespace aegis {

/** How a child process ended. */
struct ExitStatus
{
    bool signaled = false; ///< true: killed by `code` signal
    int code = 0;          ///< exit code, or the signal number

    bool ok() const { return !signaled && code == 0; }
    /** "exit 3" / "signal 9", for log lines. */
    std::string describe() const;
};

/** One child process to launch. */
struct SpawnSpec
{
    /** argv[0] is the program (resolved via PATH). */
    std::vector<std::string> argv;
    /** Extra environment entries; a pair with an empty value unsets
     *  the variable in the child (setenv/unsetenv semantics). */
    std::vector<std::pair<std::string, std::string>> env;
    /** Redirect the child's stdout/stderr to these paths (appending,
     *  so retries accumulate one log per shard); empty = inherit. */
    std::string stdoutPath;
    std::string stderrPath;
};

/** Fork+exec @p spec. Failure to fork or redirect is reported here;
 *  an exec failure surfaces as the child exiting 127. */
Expected<pid_t> spawnProcess(const SpawnSpec &spec);

/** Non-blocking poll: the exit status once the child ended, nullopt
 *  while it is still running. */
std::optional<ExitStatus> pollProcess(pid_t pid);

/** Blocking wait for the child to end. */
Expected<ExitStatus> waitProcess(pid_t pid);

/** SIGKILL the child. Reap it with waitProcess afterwards. */
void killProcess(pid_t pid);

/**
 * Deterministic exponential backoff: retry r waits
 * min(initialSec * multiplier^r, capSec) seconds.
 */
struct BackoffPolicy
{
    double initialSec = 0.5;
    double capSec = 8.0;
    double multiplier = 2.0;

    double
    delaySec(std::uint32_t retryIndex) const
    {
        double delay = initialSec;
        for (std::uint32_t i = 0; i < retryIndex; ++i) {
            delay = delay * multiplier;
            if (delay >= capSec)
                return capSec;
        }
        return delay < capSec ? delay : capSec;
    }
};

} // namespace aegis

#endif // AEGIS_UTIL_SUBPROCESS_H
