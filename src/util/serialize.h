/**
 * @file
 * Byte-exact binary serialization for checkpoint blobs.
 *
 * Checkpoint resume must reproduce bit-identical study results, so
 * the encoding is exact rather than readable: integers are fixed-size
 * little-endian, doubles are raw IEEE-754 bit patterns (no text
 * round-trip), strings are length-prefixed. BinaryReader uses sticky
 * failure — any short read latches ok() == false and subsequent reads
 * return zero — so decoders can run a whole record and check once,
 * turning truncated or corrupt input into a clean error instead of
 * undefined behavior.
 */

#ifndef AEGIS_UTIL_SERIALIZE_H
#define AEGIS_UTIL_SERIALIZE_H

#include <cstdint>
#include <string>
#include <string_view>

namespace aegis {

/** FNV-1a 64-bit hash; used for checkpoint checksums/fingerprints. */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** Append-only little-endian encoder. */
class BinaryWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Signed value, two's-complement bit pattern. */
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** Raw IEEE-754 bits: exact, including -0.0 and NaN payloads. */
    void f64(double v);
    /** Length-prefixed byte string. */
    void str(std::string_view s);

    const std::string &data() const { return buf; }
    std::string take() { return std::move(buf); }

  private:
    std::string buf;
};

/** Little-endian decoder with sticky failure. */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view bytes) : input(bytes) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();

    /** False once any read ran past the end of the input. */
    bool ok() const { return good; }
    /** True when every byte has been consumed (and no read failed). */
    bool atEnd() const { return good && pos == input.size(); }

  private:
    bool take(std::size_t n, const char **out);

    std::string_view input;
    std::size_t pos = 0;
    bool good = true;
};

} // namespace aegis

#endif // AEGIS_UTIL_SERIALIZE_H
