#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/serialize.h"

namespace aegis {

void
Histogram::add(std::int64_t key, std::uint64_t weight)
{
    bins[key] += weight;
    totalCount += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[key, count] : other.bins)
        bins[key] += count;
    totalCount += other.totalCount;
}

std::uint64_t
Histogram::countOf(std::int64_t key) const
{
    const auto it = bins.find(key);
    return it == bins.end() ? 0 : it->second;
}

std::int64_t
Histogram::minKey() const
{
    AEGIS_REQUIRE(!bins.empty(), "minKey of an empty histogram");
    return bins.begin()->first;
}

std::int64_t
Histogram::maxKey() const
{
    AEGIS_REQUIRE(!bins.empty(), "maxKey of an empty histogram");
    return bins.rbegin()->first;
}

double
Histogram::cdf(std::int64_t key) const
{
    if (totalCount == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (const auto &[k, c] : bins) {
        if (k > key)
            break;
        below += c;
    }
    return static_cast<double>(below) / static_cast<double>(totalCount);
}

std::int64_t
Histogram::quantileKey(double q) const
{
    AEGIS_REQUIRE(totalCount > 0, "quantileKey of an empty histogram");
    AEGIS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    // Integer threshold: the smallest key k with
    // count(<= k) >= ceil(q * total) — float-free comparisons keep
    // the result exact across platforms.
    const auto total = static_cast<double>(totalCount);
    auto needed = static_cast<std::uint64_t>(q * total);
    if (static_cast<double>(needed) < q * total)
        ++needed;
    if (needed == 0)
        needed = 1;
    std::uint64_t below = 0;
    for (const auto &[k, c] : bins) {
        below += c;
        if (below >= needed)
            return k;
    }
    return bins.rbegin()->first;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Histogram::items() const
{
    return {bins.begin(), bins.end()};
}

void
Histogram::serialize(BinaryWriter &w) const
{
    w.u64(totalCount);
    w.u64(bins.size());
    for (const auto &[key, count] : bins) {
        w.i64(key);
        w.u64(count);
    }
}

bool
Histogram::deserialize(BinaryReader &r)
{
    totalCount = r.u64();
    const std::uint64_t size = r.u64();
    bins.clear();
    for (std::uint64_t i = 0; i < size && r.ok(); ++i) {
        const std::int64_t key = r.i64();
        bins[key] = r.u64();
    }
    return r.ok();
}

void
SurvivalCurve::addDeath(double time)
{
    deaths.push_back(time);
    dirty = true;
}

void
SurvivalCurve::merge(const SurvivalCurve &other)
{
    if (other.deaths.empty())
        return;
    deaths.insert(deaths.end(), other.deaths.begin(),
                  other.deaths.end());
    dirty = true;
}

void
SurvivalCurve::ensureSorted() const
{
    if (dirty) {
        std::sort(deaths.begin(), deaths.end());
        dirty = false;
    }
}

double
SurvivalCurve::aliveFraction(double time) const
{
    if (deaths.empty())
        return 1.0;
    ensureSorted();
    const auto it = std::upper_bound(deaths.begin(), deaths.end(), time);
    const auto dead = static_cast<std::size_t>(it - deaths.begin());
    return 1.0 -
           static_cast<double>(dead) / static_cast<double>(deaths.size());
}

double
SurvivalCurve::timeToFraction(double fraction) const
{
    AEGIS_REQUIRE(!deaths.empty(), "timeToFraction of empty population");
    AEGIS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                  "fraction must be in [0, 1]");
    ensureSorted();
    // After k deaths, alive fraction is 1 - k/n; we need the smallest
    // death time where 1 - k/n <= fraction, i.e. k >= n (1 - fraction).
    const double n = static_cast<double>(deaths.size());
    std::size_t k = static_cast<std::size_t>(std::max(
        1.0, std::ceil(n * (1.0 - fraction))));
    if (k > deaths.size())
        k = deaths.size();
    return deaths[k - 1];
}

std::vector<std::pair<double, double>>
SurvivalCurve::sample(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (deaths.empty() || points == 0)
        return out;
    ensureSorted();
    const double tmax = deaths.back();
    out.reserve(points + 1);
    for (std::size_t i = 0; i <= points; ++i) {
        const double t =
            tmax * static_cast<double>(i) / static_cast<double>(points);
        out.emplace_back(t, aliveFraction(t));
    }
    return out;
}

void
SurvivalCurve::serialize(BinaryWriter &w) const
{
    w.u64(deaths.size());
    for (const double d : deaths)
        w.f64(d);
}

bool
SurvivalCurve::deserialize(BinaryReader &r)
{
    const std::uint64_t count = r.u64();
    if (!r.ok())
        return false;
    deaths.clear();
    // A corrupt length must not drive a giant allocation; the loop
    // below stops at end-of-input anyway.
    deaths.reserve(std::min<std::uint64_t>(count, 1u << 20));
    for (std::uint64_t i = 0; i < count && r.ok(); ++i)
        deaths.push_back(r.f64());
    dirty = !deaths.empty();
    return r.ok();
}

} // namespace aegis
