#include "util/bit_vector.h"

#include <bit>

#include "util/error.h"
#include "util/rng.h"
#include "util/simd/simd.h"

namespace aegis {

namespace {

constexpr std::size_t kWordBits = BitVector::kWordBits;

std::size_t
wordCount(std::size_t bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

} // namespace

BitVector::BitVector(std::size_t n, bool value)
    : numBits(n), wordStore(wordCount(n), value ? ~0ull : 0ull)
{
    maskTail();
}

BitVector
BitVector::fromString(const std::string &bits)
{
    BitVector v(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        AEGIS_REQUIRE(bits[i] == '0' || bits[i] == '1',
                      "BitVector::fromString accepts only '0'/'1'");
        v.set(i, bits[i] == '1');
    }
    return v;
}

AEGIS_HOT bool
BitVector::get(std::size_t i) const
{
    AEGIS_ASSERT(i < numBits, "BitVector::get out of range");
    return (wordStore[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

AEGIS_HOT void
BitVector::set(std::size_t i, bool value)
{
    AEGIS_ASSERT(i < numBits, "BitVector::set out of range");
    const std::uint64_t mask = 1ull << (i % kWordBits);
    if (value)
        wordStore[i / kWordBits] |= mask;
    else
        wordStore[i / kWordBits] &= ~mask;
}

AEGIS_HOT void
BitVector::flip(std::size_t i)
{
    AEGIS_ASSERT(i < numBits, "BitVector::flip out of range");
    wordStore[i / kWordBits] ^= 1ull << (i % kWordBits);
}

AEGIS_HOT void
BitVector::fill(bool value)
{
    for (auto &w : wordStore)
        w = value ? ~0ull : 0ull;
    maskTail();
}

AEGIS_HOT void
BitVector::invert()
{
    for (auto &w : wordStore)
        w = ~w;
    maskTail();
}

AEGIS_HOT std::size_t
BitVector::popcount() const
{
    return simd::popcountWords(wordStore.data(), wordStore.size());
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> out;
    out.reserve(popcount());
    for (std::size_t wi = 0; wi < wordStore.size(); ++wi) {
        std::uint64_t w = wordStore[wi];
        while (w) {
            const int bit = std::countr_zero(w);
            out.push_back(wi * kWordBits + static_cast<std::size_t>(bit));
            w &= w - 1;
        }
    }
    return out;
}

std::size_t
BitVector::firstSetBit() const
{
    for (std::size_t wi = 0; wi < wordStore.size(); ++wi) {
        if (wordStore[wi]) {
            return wi * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(wordStore[wi]));
        }
    }
    return numBits;
}

AEGIS_HOT BitVector &
BitVector::xorAssign(const BitVector &other)
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    simd::xorWords(wordStore.data(), other.wordStore.data(),
                   wordStore.size());
    return *this;
}

AEGIS_HOT BitVector &
BitVector::andAssign(const BitVector &other)
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    simd::andWords(wordStore.data(), other.wordStore.data(),
                   wordStore.size());
    return *this;
}

AEGIS_HOT BitVector &
BitVector::orAssign(const BitVector &other)
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    simd::orWords(wordStore.data(), other.wordStore.data(),
                  wordStore.size());
    return *this;
}

AEGIS_HOT BitVector &
BitVector::andNotAssign(const BitVector &other)
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    simd::andNotWords(wordStore.data(), other.wordStore.data(),
                      wordStore.size());
    return *this;
}

AEGIS_HOT BitVector &
BitVector::xorAssignAndNot(const BitVector &value, const BitVector &mask)
{
    AEGIS_ASSERT(numBits == value.numBits && numBits == mask.numBits,
                 "BitVector size mismatch");
    simd::xorAndNotWords(wordStore.data(), value.wordStore.data(),
                         mask.wordStore.data(), wordStore.size());
    return *this;
}

AEGIS_HOT void
BitVector::assignSelect(const BitVector &base, const BitVector &chosen,
                        const BitVector &mask)
{
    AEGIS_ASSERT(base.numBits == chosen.numBits &&
                     base.numBits == mask.numBits,
                 "BitVector size mismatch");
    numBits = base.numBits;
    // aegis-lint: allow(HOT-ALLOC grows only until operand widths stabilize; steady state is a no-op)
    wordStore.resize(base.wordStore.size());
    simd::selectWords(wordStore.data(), base.wordStore.data(),
                      chosen.wordStore.data(), mask.wordStore.data(),
                      wordStore.size());
}

AEGIS_HOT void
BitVector::assignFrom(const BitVector &other)
{
    numBits = other.numBits;
    wordStore.assign(other.wordStore.begin(), other.wordStore.end());
}

AEGIS_HOT bool
BitVector::equals(const BitVector &other) const
{
    return numBits == other.numBits &&
           simd::firstMismatchWords(wordStore.data(),
                                    other.wordStore.data(),
                                    wordStore.size()) ==
               wordStore.size();
}

std::size_t
BitVector::firstMismatch(const BitVector &other) const
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    const std::size_t wi = simd::firstMismatchWords(
        wordStore.data(), other.wordStore.data(), wordStore.size());
    if (wi == wordStore.size())
        return numBits;
    const std::uint64_t diff = wordStore[wi] ^ other.wordStore[wi];
    return wi * kWordBits +
           static_cast<std::size_t>(std::countr_zero(diff));
}

BitVector
BitVector::operator~() const
{
    BitVector out(*this);
    out.invert();
    return out;
}

std::size_t
BitVector::hammingDistance(const BitVector &other) const
{
    AEGIS_ASSERT(numBits == other.numBits, "BitVector size mismatch");
    return simd::xorPopcountWords(wordStore.data(),
                                  other.wordStore.data(),
                                  wordStore.size());
}

std::string
BitVector::toString() const
{
    std::string s(numBits, '0');
    for (std::size_t i = 0; i < numBits; ++i)
        s[i] = get(i) ? '1' : '0';
    return s;
}

void
BitVector::randomize(Rng &rng)
{
    for (auto &w : wordStore)
        w = rng.nextU64();
    maskTail();
}

BitVector
BitVector::random(std::size_t n, Rng &rng)
{
    BitVector v(n);
    v.randomize(rng);
    return v;
}

void
BitVector::setWord(std::size_t wi, std::uint64_t w)
{
    AEGIS_ASSERT(wi < wordStore.size(),
                 "BitVector::setWord out of range");
    wordStore[wi] = w;
    if (wi + 1 == wordStore.size())
        maskTail();
}

void
BitVector::maskTail()
{
    const std::size_t rem = numBits % kWordBits;
    if (rem != 0 && !wordStore.empty())
        wordStore.back() &= (1ull << rem) - 1ull;
}

} // namespace aegis
