#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace aegis {

CliParser::CliParser(std::string prog_name, std::string about)
    : prog(std::move(prog_name)), description(std::move(about))
{}

void
CliParser::addUint(const std::string &name, std::uint64_t def,
                   const std::string &help)
{
    const std::string v = std::to_string(def);
    flags[name] = Flag{Kind::Uint, v, v, help};
    order.push_back(name);
}

void
CliParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    const std::string v = std::to_string(def);
    flags[name] = Flag{Kind::Double, v, v, help};
    order.push_back(name);
}

void
CliParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    flags[name] = Flag{Kind::String, def, def, help};
    order.push_back(name);
}

void
CliParser::addBool(const std::string &name, bool def,
                   const std::string &help)
{
    const std::string v = def ? "true" : "false";
    flags[name] = Flag{Kind::Bool, v, v, help};
    order.push_back(name);
}

void
CliParser::setValue(const std::string &name, const std::string &value)
{
    auto it = flags.find(name);
    AEGIS_REQUIRE(it != flags.end(), "unknown flag --" + name);
    it->second.value = value;
}

bool
CliParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return false;
        }
        AEGIS_REQUIRE(arg.rfind("--", 0) == 0,
                      "expected --flag, got `" + arg + "'");
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            setValue(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (flags.count(arg) && flags[arg].kind == Kind::Bool) {
            setValue(arg, "true");
        } else {
            AEGIS_REQUIRE(i + 1 < argc, "flag --" + arg + " needs a value");
            setValue(arg, argv[++i]);
        }
    }
    return true;
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    const auto it = flags.find(name);
    AEGIS_ASSERT(it != flags.end(), "flag " + name + " not registered");
    AEGIS_ASSERT(it->second.kind == kind, "flag " + name + " kind mismatch");
    return it->second;
}

std::uint64_t
CliParser::getUint(const std::string &name) const
{
    const Flag &f = find(name, Kind::Uint);
    try {
        return std::stoull(f.value);
    } catch (const std::exception &) {
        throw ConfigError("flag --" + name + " expects an unsigned integer, "
                          "got `" + f.value + "'");
    }
}

double
CliParser::getDouble(const std::string &name) const
{
    const Flag &f = find(name, Kind::Double);
    try {
        return std::stod(f.value);
    } catch (const std::exception &) {
        throw ConfigError("flag --" + name + " expects a number, got `" +
                          f.value + "'");
    }
}

const std::string &
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
CliParser::getBool(const std::string &name) const
{
    const Flag &f = find(name, Kind::Bool);
    if (f.value == "true" || f.value == "1" || f.value == "yes")
        return true;
    if (f.value == "false" || f.value == "0" || f.value == "no")
        return false;
    throw ConfigError("flag --" + name + " expects a boolean, got `" +
                      f.value + "'");
}

std::vector<CliParser::FlagValue>
CliParser::values() const
{
    std::vector<FlagValue> out;
    out.reserve(order.size());
    for (const std::string &name : order) {
        const Flag &f = flags.at(name);
        out.push_back(
            FlagValue{name, f.kind, f.value, f.value == f.defaultValue});
    }
    return out;
}

void
CliParser::printHelp() const
{
    std::printf("%s — %s\n\nFlags:\n", prog.c_str(), description.c_str());
    for (const auto &name : order) {
        const Flag &f = flags.at(name);
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    f.help.c_str(), f.defaultValue.c_str());
    }
    std::printf("  --%-18s %s\n", "help", "show this message");
}

} // namespace aegis
