#include "util/cli.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace aegis {

namespace {

bool
parsesAsUint(const std::string &text)
{
    if (text.empty())
        return false;
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    return ec == std::errc() && ptr == text.data() + text.size();
}

bool
parsesAsDouble(const std::string &text)
{
    if (text.empty())
        return false;
    std::size_t used = 0;
    try {
        (void)std::stod(text, &used);
    } catch (const std::exception &) {
        return false;
    }
    return used == text.size();
}

bool
parsesAsBool(const std::string &text)
{
    return text == "true" || text == "1" || text == "yes" ||
           text == "false" || text == "0" || text == "no";
}

} // namespace

CliParser::CliParser(std::string prog_name, std::string about)
    : prog(std::move(prog_name)), description(std::move(about))
{}

void
CliParser::add(const FlagSpec &spec)
{
    const std::string def = spec.def;
    switch (spec.kind) {
    case Kind::Uint:
        AEGIS_ASSERT(parsesAsUint(def), std::string("flag --") +
                                            spec.name +
                                            ": default is not a uint");
        break;
    case Kind::Double:
        AEGIS_ASSERT(parsesAsDouble(def),
                     std::string("flag --") + spec.name +
                         ": default is not a number");
        break;
    case Kind::Bool:
        AEGIS_ASSERT(parsesAsBool(def), std::string("flag --") +
                                            spec.name +
                                            ": default is not a bool");
        break;
    case Kind::String:
        break;
    }
    flags[spec.name] = Flag{spec.kind, def, def, spec.help};
    order.push_back(spec.name);
}

void
CliParser::addAll(const FlagSpec *specs, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        add(specs[i]);
}

void
CliParser::addUint(const std::string &name, std::uint64_t def,
                   const std::string &help)
{
    const std::string v = std::to_string(def);
    flags[name] = Flag{Kind::Uint, v, v, help};
    order.push_back(name);
}

void
CliParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    const std::string v = std::to_string(def);
    flags[name] = Flag{Kind::Double, v, v, help};
    order.push_back(name);
}

void
CliParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    flags[name] = Flag{Kind::String, def, def, help};
    order.push_back(name);
}

void
CliParser::addBool(const std::string &name, bool def,
                   const std::string &help)
{
    const std::string v = def ? "true" : "false";
    flags[name] = Flag{Kind::Bool, v, v, help};
    order.push_back(name);
}

Status
CliParser::setValue(const std::string &name, const std::string &value)
{
    auto it = flags.find(name);
    if (it == flags.end())
        return Status::failure("unknown flag --" + name +
                               " (run with --help for usage)");
    // Reject malformed values at parse time, before any simulation
    // runs, so `--jobs banana` cannot fail hours into a sweep.
    switch (it->second.kind) {
    case Kind::Uint:
        if (!parsesAsUint(value))
            return Status::failure(
                "flag --" + name + " expects an unsigned integer, "
                "got `" + value + "'");
        break;
    case Kind::Double:
        if (!parsesAsDouble(value))
            return Status::failure("flag --" + name +
                                   " expects a number, got `" +
                                   value + "'");
        break;
    case Kind::Bool:
        if (!parsesAsBool(value))
            return Status::failure(
                "flag --" + name + " expects a boolean "
                "(true/false/1/0/yes/no), got `" + value + "'");
        break;
    case Kind::String:
        break;
    }
    it->second.value = value;
    it->second.overridden = true;
    return Status();
}

Expected<CliParser::ParseResult>
CliParser::tryParse(int argc, const char *const *argv)
{
    using Result = Expected<ParseResult>;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return ParseResult::Help;
        }
        if (arg.rfind("--", 0) != 0)
            return Result::failure("expected --flag, got `" + arg +
                                   "' (run with --help for usage)");
        arg = arg.substr(2);
        Status set = Status();
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            set = setValue(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (flags.count(arg) && flags[arg].kind == Kind::Bool) {
            set = setValue(arg, "true");
        } else if (i + 1 >= argc) {
            return Result::failure("flag --" + arg +
                                   " needs a value (run with --help "
                                   "for usage)");
        } else {
            set = setValue(arg, argv[++i]);
        }
        if (!set.ok())
            return Result::failure(set.error());
    }
    return ParseResult::Run;
}

bool
CliParser::parse(int argc, const char *const *argv)
{
    const Expected<ParseResult> result = tryParse(argc, argv);
    AEGIS_REQUIRE(result.ok(), result.error());
    return result.value() == ParseResult::Run;
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    const auto it = flags.find(name);
    AEGIS_ASSERT(it != flags.end(), "flag " + name + " not registered");
    AEGIS_ASSERT(it->second.kind == kind, "flag " + name + " kind mismatch");
    return it->second;
}

std::uint64_t
CliParser::getUint(const std::string &name) const
{
    const Flag &f = find(name, Kind::Uint);
    try {
        return std::stoull(f.value);
    } catch (const std::exception &) {
        throw ConfigError("flag --" + name + " expects an unsigned integer, "
                          "got `" + f.value + "'");
    }
}

double
CliParser::getDouble(const std::string &name) const
{
    const Flag &f = find(name, Kind::Double);
    try {
        return std::stod(f.value);
    } catch (const std::exception &) {
        throw ConfigError("flag --" + name + " expects a number, got `" +
                          f.value + "'");
    }
}

const std::string &
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
CliParser::getBool(const std::string &name) const
{
    const Flag &f = find(name, Kind::Bool);
    if (f.value == "true" || f.value == "1" || f.value == "yes")
        return true;
    if (f.value == "false" || f.value == "0" || f.value == "no")
        return false;
    throw ConfigError("flag --" + name + " expects a boolean, got `" +
                      f.value + "'");
}

bool
CliParser::isSet(const std::string &name) const
{
    const auto it = flags.find(name);
    AEGIS_ASSERT(it != flags.end(), "flag " + name + " not registered");
    return it->second.overridden;
}

std::vector<CliParser::FlagValue>
CliParser::values() const
{
    std::vector<FlagValue> out;
    out.reserve(order.size());
    for (const std::string &name : order) {
        const Flag &f = flags.at(name);
        out.push_back(FlagValue{name, f.kind, f.value, !f.overridden});
    }
    return out;
}

void
CliParser::printHelp() const
{
    std::printf("%s — %s\n\nFlags:\n", prog.c_str(), description.c_str());
    for (const auto &name : order) {
        const Flag &f = flags.at(name);
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    f.help.c_str(), f.defaultValue.c_str());
    }
    std::printf("  --%-18s %s\n", "help", "show this message");
}

} // namespace aegis
