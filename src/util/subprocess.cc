#include "util/subprocess.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace aegis {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

ExitStatus
fromWaitStatus(int status)
{
    ExitStatus out;
    if (WIFSIGNALED(status)) {
        out.signaled = true;
        out.code = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
        out.code = WEXITSTATUS(status);
    } else {
        // Stopped/continued never reach us (no WUNTRACED); treat any
        // other shape as an abnormal end.
        out.signaled = true;
        out.code = 0;
    }
    return out;
}

/** In the child between fork and exec: async-signal-safe calls only
 *  (open/dup2/_exit), no allocation, no stdio. */
bool
redirectTo(const char *path, int targetFd)
{
    if (path == nullptr || *path == '\0')
        return true;
    const int fd =
        ::open(path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return false;
    const bool ok = ::dup2(fd, targetFd) == targetFd;
    ::close(fd);
    return ok;
}

} // namespace

std::string
ExitStatus::describe() const
{
    return (signaled ? "signal " : "exit ") + std::to_string(code);
}

Expected<pid_t>
spawnProcess(const SpawnSpec &spec)
{
    using Result = Expected<pid_t>;
    if (spec.argv.empty())
        return Result::failure("spawn: empty argv");

    // Build the argv array before forking — the child must not
    // allocate between fork and exec.
    std::vector<char *> argv;
    argv.reserve(spec.argv.size() + 1);
    for (const std::string &arg : spec.argv)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return Result::failure("fork failed: " + errnoText());
    if (pid == 0) {
        // Child. setenv allocates, so it runs first and is the one
        // exception to the no-allocation rule — acceptable because
        // the parent is single-threaded at spawn time by contract of
        // the supervisor (the only caller).
        for (const auto &[name, value] : spec.env) {
            if (value.empty())
                ::unsetenv(name.c_str());
            else
                ::setenv(name.c_str(), value.c_str(), 1);
        }
        if (!redirectTo(spec.stdoutPath.c_str(), STDOUT_FILENO) ||
            !redirectTo(spec.stderrPath.c_str(), STDERR_FILENO))
            ::_exit(126);
        ::execvp(argv[0], argv.data());
        ::_exit(127); // exec failed (bench binary missing/unrunnable)
    }
    return pid;
}

std::optional<ExitStatus>
pollProcess(pid_t pid)
{
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid)
        return fromWaitStatus(status);
    return std::nullopt;
}

Expected<ExitStatus>
waitProcess(pid_t pid)
{
    using Result = Expected<ExitStatus>;
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, 0);
        if (r == pid)
            return fromWaitStatus(status);
        if (r < 0 && errno == EINTR)
            continue;
        return Result::failure("waitpid failed: " + errnoText());
    }
}

void
killProcess(pid_t pid)
{
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

} // namespace aegis
