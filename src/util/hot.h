/**
 * @file
 * AEGIS_HOT: the hot-path allocation-freedom contract marker.
 *
 * A function marked AEGIS_HOT promises that its steady-state
 * executions perform zero heap allocations once its reusable
 * workspaces are warm. The marker is deliberately inert in codegen;
 * it exists for the contract's two enforcers:
 *
 *  - statically, tools/aegis_lint/aegis_lint.py (rule HOT-ALLOC)
 *    rejects allocation-capable constructs — operator new,
 *    push_back/resize/reserve, std::string, std::function, local
 *    std::vector — inside a marked function and inside everything it
 *    reaches at file-local depth. Cold branches that legitimately
 *    allocate (first-use sizing, new-fault discovery) carry an
 *    allow(HOT-ALLOC reason) suppression comment (see the
 *    linter's --list-rules for the syntax).
 *  - dynamically, tests/test_alloc_guard.cc drives every registered
 *    scheme through warmed read/write/recover cycles under the
 *    counting allocator in util/alloc_guard.h and fails on any heap
 *    allocation.
 *
 * Mark declarations at the interface (so readers see the contract)
 * and repeat the marker on out-of-line definitions (so the checker
 * sees it in the translation unit it lints).
 */

#ifndef AEGIS_UTIL_HOT_H
#define AEGIS_UTIL_HOT_H

#define AEGIS_HOT

#endif // AEGIS_UTIL_HOT_H
