#include "util/alloc_guard.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace aegis {

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};
std::atomic<std::uint64_t> g_bytes{0};

} // namespace

bool
allocGuardActive()
{
#ifdef AEGIS_ALLOC_GUARD
    return true;
#else
    return false;
#endif
}

std::uint64_t
allocGuardAllocations()
{
    return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t
allocGuardDeallocations()
{
    return g_deallocs.load(std::memory_order_relaxed);
}

std::uint64_t
allocGuardBytes()
{
    return g_bytes.load(std::memory_order_relaxed);
}

namespace detail {

void *
countedAllocate(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    // operator new(0) must return a unique pointer.
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void
countedFree(void *p)
{
    if (p == nullptr)
        return;
    g_deallocs.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

} // namespace detail

} // namespace aegis

#ifdef AEGIS_ALLOC_GUARD

// Replaceable global allocation functions ([new.delete]); linking
// this TU with AEGIS_ALLOC_GUARD routes every new/delete in the
// binary — including the standard library's — through the counters.

void *
operator new(std::size_t size)
{
    return aegis::detail::countedAllocate(size);
}

void *
operator new[](std::size_t size)
{
    return aegis::detail::countedAllocate(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return aegis::detail::countedAllocate(size);
    } catch (const std::bad_alloc &) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return aegis::detail::countedAllocate(size);
    } catch (const std::bad_alloc &) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    aegis::detail::countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    aegis::detail::countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    aegis::detail::countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    aegis::detail::countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    aegis::detail::countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    aegis::detail::countedFree(p);
}

#endif // AEGIS_ALLOC_GUARD
