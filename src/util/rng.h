/**
 * @file
 * Deterministic random number generation for the Monte-Carlo engine.
 *
 * The simulation must be reproducible (same seed, same results) and
 * splittable (each page/block gets an independent stream derived from a
 * master seed) so experiments can be chunked or re-run piecewise without
 * changing their statistics. We use SplitMix64 for seeding/stream
 * derivation and xoshiro256** as the bulk generator; both are public
 * domain algorithms by Blackman & Vigna.
 */

#ifndef AEGIS_UTIL_RNG_H
#define AEGIS_UTIL_RNG_H

#include <cstdint>

namespace aegis {

/**
 * xoshiro256** generator with convenience distributions used by the
 * simulator: uniform ints/doubles, Bernoulli, Gaussian (Box-Muller),
 * and geometric.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fair coin. */
    bool nextBool() { return nextU64() >> 63; }

    /** Bernoulli with success probability @p p. */
    bool nextBernoulli(double p) { return nextDouble() < p; }

    /** Standard normal deviate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Normal deviate with the given @p mean and @p stddev. */
    double nextGaussian(double mean, double stddev)
    { return mean + stddev * nextGaussian(); }

    /**
     * Number of Bernoulli(p) trials up to and including the first
     * success (support 1, 2, ...). Returns a saturating huge value when
     * p is 0 or denormal-small.
     */
    std::uint64_t nextGeometric(double p);

    /**
     * Derive an independent child stream. Streams derived with distinct
     * @p stream_id values from the same parent are statistically
     * independent.
     */
    Rng split(std::uint64_t stream_id) const;

  private:
    std::uint64_t state[4];
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
    std::uint64_t seedValue = 0;
};

} // namespace aegis

#endif // AEGIS_UTIL_RNG_H
