#include "util/bit_io.h"

#include "util/error.h"

namespace aegis {

BitWriter::BitWriter(std::size_t capacity)
    : image(capacity)
{}

void
BitWriter::writeBits(std::uint64_t value, std::size_t width)
{
    AEGIS_REQUIRE(width <= 64, "field width exceeds 64 bits");
    AEGIS_ASSERT(cursor + width <= image.size(),
                 "metadata image overflow");
    for (std::size_t i = 0; i < width; ++i)
        image.set(cursor++, (value >> i) & 1);
    if (width < 64) {
        AEGIS_ASSERT(value < (1ull << width),
                     "value does not fit the declared field width");
    }
}

void
BitWriter::writeVector(const BitVector &v)
{
    AEGIS_ASSERT(cursor + v.size() <= image.size(),
                 "metadata image overflow");
    for (std::size_t i = 0; i < v.size(); ++i)
        image.set(cursor++, v.get(i));
}

BitVector
BitWriter::finish() const
{
    AEGIS_ASSERT(cursor == image.size(),
                 "metadata image not exactly full");
    return image;
}

BitReader::BitReader(const BitVector &source)
    : image(source)
{}

std::uint64_t
BitReader::readBits(std::size_t width)
{
    AEGIS_REQUIRE(width <= 64, "field width exceeds 64 bits");
    AEGIS_REQUIRE(cursor + width <= image.size(),
                  "metadata image underflow");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i) {
        if (image.get(cursor++))
            value |= 1ull << i;
    }
    return value;
}

BitVector
BitReader::readVector(std::size_t bits)
{
    AEGIS_REQUIRE(cursor + bits <= image.size(),
                  "metadata image underflow");
    BitVector out(bits);
    for (std::size_t i = 0; i < bits; ++i)
        out.set(i, image.get(cursor++));
    return out;
}

} // namespace aegis
