/**
 * @file
 * Minimal command-line flag parser shared by the bench and example
 * binaries. Supports --key=value and --key value forms plus --help.
 */

#ifndef AEGIS_UTIL_CLI_H
#define AEGIS_UTIL_CLI_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/expected.h"

namespace aegis {

/** Typed flag kinds. */
enum class FlagKind { Uint, Double, String, Bool };

/**
 * One declaratively registered flag: name, kind, textual default and
 * help line. Benches describe their flags as static FlagSpec tables
 * and register them with CliParser::addAll, so the flag surface of a
 * binary is one readable table instead of copy-pasted add*() calls —
 * and --help is generated from the same source of truth.
 */
struct FlagSpec
{
    const char *name;
    FlagKind kind;
    /** Default value, as the text the user would type (e.g. "64",
     *  "0.25", "false", "uniform"). Must parse as @p kind. */
    const char *def;
    const char *help;
};

/**
 * Flag registry + parser. Typical use:
 * @code
 *   constexpr FlagSpec kFlags[] = {
 *       {"pages", FlagKind::Uint, "256", "pages per Monte-Carlo run"},
 *   };
 *   CliParser cli("fig5", "Reproduce Figure 5");
 *   cli.addAll(kFlags);
 *   cli.parse(argc, argv);           // exits(0) on --help
 *   auto pages = cli.getUint("pages");
 * @endcode
 */
class CliParser
{
  public:
    CliParser(std::string prog, std::string description);

    /** Register one declaratively described flag; the default must
     *  parse as the declared kind (checked eagerly). */
    void add(const FlagSpec &spec);

    /** Register a whole FlagSpec table in order. */
    void addAll(const FlagSpec *specs, std::size_t count);

    template <std::size_t N>
    void
    addAll(const FlagSpec (&specs)[N])
    {
        addAll(specs, N);
    }

    void addUint(const std::string &name, std::uint64_t def,
                 const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addBool(const std::string &name, bool def,
                 const std::string &help);

    /** Outcome of a successful tryParse. */
    enum class ParseResult {
        Run, ///< flags parsed; proceed with the program body
        Help ///< --help was given and usage printed; exit 0
    };

    /**
     * Parse argv without throwing. Unknown flags, missing flag
     * arguments, and values that do not parse as the flag's
     * registered kind (non-numeric or negative text for a Uint, junk
     * for a Double/Bool) are all rejected *here*, before any work
     * runs, with an actionable message. --help prints usage and
     * yields ParseResult::Help.
     */
    Expected<ParseResult> tryParse(int argc, const char *const *argv);

    /**
     * Throwing wrapper around tryParse (ConfigError on bad input);
     * --help prints usage and returns false (caller should exit 0).
     */
    bool parse(int argc, const char *const *argv);

    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    const std::string &getString(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True when @p name was explicitly given on the command line
     *  (even if set to its default value). */
    bool isSet(const std::string &name) const;

    /** Typed flag kinds, exposed for introspection. */
    using FlagKind = aegis::FlagKind;

    /** One registered flag with its current (post-parse) value. */
    struct FlagValue
    {
        std::string name;
        FlagKind kind;
        std::string value; ///< raw text of the effective value
        bool isDefault;    ///< true when never overridden
    };

    /** Every registered flag in registration order, for run manifests
     *  that record the exact invocation. */
    std::vector<FlagValue> values() const;

    /** Print usage to stdout. */
    void printHelp() const;

  private:
    using Kind = FlagKind;

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string defaultValue;
        std::string help;
        bool overridden = false;
    };

    const Flag &find(const std::string &name, Kind kind) const;
    Status setValue(const std::string &name, const std::string &value);

    std::string prog;
    std::string description;
    std::map<std::string, Flag> flags;
    std::vector<std::string> order;
};

} // namespace aegis

#endif // AEGIS_UTIL_CLI_H
