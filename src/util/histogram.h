/**
 * @file
 * Simple integer-keyed histogram and survival-curve helpers.
 *
 * Figure 8 (block failure probability vs. fault count) and Figure 9
 * (page survival vs. writes) are cumulative distributions; this module
 * turns raw Monte-Carlo samples into those curves.
 */

#ifndef AEGIS_UTIL_HISTOGRAM_H
#define AEGIS_UTIL_HISTOGRAM_H

#include <cstdint>
#include <map>
#include <vector>

namespace aegis {

class BinaryWriter;
class BinaryReader;

/** Count occurrences of integer keys (e.g. faults survived per block). */
class Histogram
{
  public:
    void add(std::int64_t key, std::uint64_t weight = 1);

    /** Absorb another histogram's counts (parallel reduction). */
    void merge(const Histogram &other);

    std::uint64_t total() const { return totalCount; }

    std::uint64_t countOf(std::int64_t key) const;

    std::int64_t minKey() const;
    std::int64_t maxKey() const;

    /**
     * Fraction of samples with key <= @p key; the empirical CDF.
     * For Figure 8 the sample is "number of faults at which the block
     * died", so cdf(j) is the probability a block has failed once j
     * faults have occurred.
     */
    double cdf(std::int64_t key) const;

    /** 1 - cdf: the empirical survival function. */
    double survival(std::int64_t key) const { return 1.0 - cdf(key); }

    /**
     * Smallest key whose CDF reaches @p q (e.g. 0.5 = median,
     * 0.99 = p99); the usual latency-percentile convention. Requires
     * a non-empty histogram and q in [0, 1].
     */
    std::int64_t quantileKey(double q) const;

    /** All (key, count) pairs in key order. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> items() const;

    /** Append the bins (key order) to @p w. */
    void serialize(BinaryWriter &w) const;
    /** Restore state written by serialize(); false on short input. */
    bool deserialize(BinaryReader &r);

  private:
    std::map<std::int64_t, std::uint64_t> bins;
    std::uint64_t totalCount = 0;
};

/**
 * Survival curve over a continuous axis (e.g. page writes): given the
 * death times of a population, evaluates the fraction still alive at a
 * grid of time points, and the time at which a target fraction remains
 * (the paper's "half lifetime" uses fraction 0.5).
 */
class SurvivalCurve
{
  public:
    void addDeath(double time);

    /** Absorb another curve's population (parallel reduction). */
    void merge(const SurvivalCurve &other);

    std::size_t population() const { return deaths.size(); }

    /** Fraction alive strictly after @p time. */
    double aliveFraction(double time) const;

    /**
     * Smallest death time t such that at most @p fraction of the
     * population is still alive at t (e.g. fraction=0.5 gives the
     * paper's half lifetime). Requires a non-empty population.
     */
    double timeToFraction(double fraction) const;

    /** Sample (time, aliveFraction) at @p points evenly spaced times. */
    std::vector<std::pair<double, double>> sample(std::size_t points) const;

    /** Append the death times (raw bits, current order) to @p w. */
    void serialize(BinaryWriter &w) const;
    /** Restore state written by serialize(); false on short input. */
    bool deserialize(BinaryReader &r);

  private:
    void ensureSorted() const;

    mutable std::vector<double> deaths;
    mutable bool dirty = false;
};

} // namespace aegis

#endif // AEGIS_UTIL_HISTOGRAM_H
