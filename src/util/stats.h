/**
 * @file
 * Streaming statistics used to aggregate Monte-Carlo results.
 */

#ifndef AEGIS_UTIL_STATS_H
#define AEGIS_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace aegis {

class BinaryWriter;
class BinaryReader;

/**
 * Single-pass mean/variance accumulator (Welford's algorithm) with
 * min/max tracking. Numerically stable for the large write counts the
 * simulator produces.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (Chan et al.). */
    void merge(const RunningStat &other);

    /** Number of observations. */
    std::size_t count() const { return n; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Unbiased sample variance (0 when fewer than 2 observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean. */
    double stderrOfMean() const;

    /** Half-width of the ~95% confidence interval on the mean. */
    double ci95() const { return 1.96 * stderrOfMean(); }

    double min() const { return n ? minValue : 0.0; }
    double max() const { return n ? maxValue : 0.0; }

    /** Exact running sum of the observations (not reconstructed from
     *  the mean, which loses precision at large counts). */
    double sum() const { return total; }

    /** Append the exact accumulator state (raw double bits) to @p w. */
    void serialize(BinaryWriter &w) const;
    /** Restore state written by serialize(); false on short input. */
    bool deserialize(BinaryReader &r);

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/**
 * Exact quantile estimator: stores samples and sorts on demand.
 * Monte-Carlo runs here hold at most a few hundred thousand samples,
 * so exact storage is simpler and more trustworthy than P2-style
 * approximations.
 */
class QuantileSampler
{
  public:
    void add(double x) { samples.push_back(x); dirty = true; }

    /** Absorb another sampler's observations (parallel reduction). */
    void merge(const QuantileSampler &other);

    std::size_t count() const { return samples.size(); }

    /**
     * Quantile @p q in [0, 1] via linear interpolation between order
     * statistics; q=0.5 is the median.
     */
    double quantile(double q) const;

    /** Median shorthand. */
    double median() const { return quantile(0.5); }

    /** Append the samples (raw double bits, current order) to @p w. */
    void serialize(BinaryWriter &w) const;
    /** Restore state written by serialize(); false on short input. */
    bool deserialize(BinaryReader &r);

  private:
    mutable std::vector<double> samples;
    mutable bool dirty = false;
};

} // namespace aegis

#endif // AEGIS_UTIL_STATS_H
