/**
 * @file
 * Crash-safe file output: every durable artifact (JSON manifests,
 * checkpoints) goes through one write-temp-fsync-rename helper, so a
 * crash mid-write can never leave a torn file at the destination —
 * readers see either the previous complete version or the new one.
 */

#ifndef AEGIS_UTIL_ATOMIC_FILE_H
#define AEGIS_UTIL_ATOMIC_FILE_H

#include <string>
#include <string_view>

#include "util/expected.h"

namespace aegis {

/**
 * Atomically replace @p path with @p data: write `path.tmp.<pid>`,
 * fsync it, rename() over @p path, then fsync the directory. Honours
 * the AEGIS_CHAOS io-fail-rate hook. Never throws; failures carry an
 * actionable message (path + errno text).
 *
 * Durability guarantee: on success the new contents survive both a
 * process crash (_Exit / SIGKILL) and a power loss. The data bytes
 * reach stable storage (fsync of the temp file) *before* the rename
 * makes them visible, and the directory entry is fsynced *after* the
 * rename so the rename itself is journaled — a reader therefore sees
 * either the complete old file or the complete new file, never a torn
 * mixture and never a zero-length hole where the old file was. A
 * directory-fsync failure is reported as a Status failure (except on
 * filesystems that do not support syncing directories, where the
 * rename is the best obtainable guarantee).
 */
Status atomicWriteFile(const std::string &path, std::string_view data);

/**
 * Fail-fast probe that @p path will be writable later, by creating
 * and removing a sibling temp file — so an unwritable --json or
 * --checkpoint destination is reported at startup, not after hours of
 * simulation.
 */
Status probeWritable(const std::string &path);

/** Read a whole file into a string (for checkpoint loads). */
Expected<std::string> readFile(const std::string &path);

} // namespace aegis

#endif // AEGIS_UTIL_ATOMIC_FILE_H
