/**
 * @file
 * Prime-number helpers for the Aegis partition scheme.
 *
 * Aegis requires the rectangle height B to be prime (Theorem 2 of the
 * paper relies on Z_B being a field). Configuration search needs
 * primality tests and next/previous prime queries; the values involved
 * are tiny (B <= a few thousand) so trial division is plenty.
 */

#ifndef AEGIS_UTIL_PRIMES_H
#define AEGIS_UTIL_PRIMES_H

#include <cstdint>
#include <vector>

namespace aegis {

/** True when @p n is prime. */
bool isPrime(std::uint64_t n);

/** Smallest prime >= @p n. @p n must be >= 2. */
std::uint64_t nextPrime(std::uint64_t n);

/** Largest prime <= @p n, or 0 when none exists (n < 2). */
std::uint64_t prevPrime(std::uint64_t n);

/** All primes in [lo, hi], ascending. */
std::vector<std::uint64_t> primesInRange(std::uint64_t lo,
                                         std::uint64_t hi);

/**
 * Modular multiplicative inverse of @p a modulo prime @p p
 * (1 <= a < p). Used by partition-math tests.
 */
std::uint64_t modInverse(std::uint64_t a, std::uint64_t p);

} // namespace aegis

#endif // AEGIS_UTIL_PRIMES_H
