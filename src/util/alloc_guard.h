/**
 * @file
 * Counting-allocator hook: runtime teeth for the AEGIS_HOT contract.
 *
 * When a binary is built with -DAEGIS_ALLOC_GUARD and links
 * alloc_guard.cc, the global operator new/delete are replaced with
 * counting versions. AllocationProbe then measures how many heap
 * allocations a code region performed:
 *
 *     AllocationProbe probe;
 *     scheme->write(cells, data);            // warmed hot path
 *     EXPECT_EQ(probe.allocations(), 0u);
 *
 * Without AEGIS_ALLOC_GUARD the header still compiles and
 * allocGuardActive() reports false, so callers can skip assertions
 * instead of miscounting. The counters are relaxed atomics: the guard
 * measures allocation *counts*, not ordering, and stays cheap enough
 * to leave enabled for a whole test binary.
 */

#ifndef AEGIS_UTIL_ALLOC_GUARD_H
#define AEGIS_UTIL_ALLOC_GUARD_H

#include <cstdint>

namespace aegis {

/** True when the counting operator new/delete are linked in. */
bool allocGuardActive();

/** Heap allocations (operator new calls) since process start. */
std::uint64_t allocGuardAllocations();

/** Heap deallocations (operator delete calls with a non-null
 *  pointer) since process start. */
std::uint64_t allocGuardDeallocations();

/** Bytes requested from operator new since process start. */
std::uint64_t allocGuardBytes();

/**
 * Snapshot of the allocation counters over a scope. The probe is
 * intentionally trivial — no registration, no nesting bookkeeping —
 * so probing itself cannot allocate.
 */
class AllocationProbe
{
  public:
    AllocationProbe()
        : startAllocs(allocGuardAllocations()),
          startBytes(allocGuardBytes())
    {}

    /** Allocations since construction (0 when the guard is off). */
    std::uint64_t allocations() const
    {
        return allocGuardAllocations() - startAllocs;
    }

    /** Bytes requested since construction (0 when the guard is off). */
    std::uint64_t bytes() const
    {
        return allocGuardBytes() - startBytes;
    }

  private:
    std::uint64_t startAllocs;
    std::uint64_t startBytes;
};

} // namespace aegis

#endif // AEGIS_UTIL_ALLOC_GUARD_H
