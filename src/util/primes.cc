#include "util/primes.h"

#include "util/error.h"

namespace aegis {

bool
isPrime(std::uint64_t n)
{
    if (n < 2)
        return false;
    if (n < 4)
        return true;
    if (n % 2 == 0 || n % 3 == 0)
        return false;
    for (std::uint64_t d = 5; d * d <= n; d += 6) {
        if (n % d == 0 || n % (d + 2) == 0)
            return false;
    }
    return true;
}

std::uint64_t
nextPrime(std::uint64_t n)
{
    AEGIS_REQUIRE(n >= 2, "nextPrime requires n >= 2");
    while (!isPrime(n))
        ++n;
    return n;
}

std::uint64_t
prevPrime(std::uint64_t n)
{
    while (n >= 2) {
        if (isPrime(n))
            return n;
        --n;
    }
    return 0;
}

std::vector<std::uint64_t>
primesInRange(std::uint64_t lo, std::uint64_t hi)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t n = lo < 2 ? 2 : lo; n <= hi; ++n) {
        if (isPrime(n))
            out.push_back(n);
    }
    return out;
}

std::uint64_t
modInverse(std::uint64_t a, std::uint64_t p)
{
    AEGIS_REQUIRE(isPrime(p), "modInverse requires a prime modulus");
    AEGIS_REQUIRE(a >= 1 && a < p, "modInverse requires 1 <= a < p");
    // Fermat: a^(p-2) mod p.
    std::uint64_t result = 1, base = a % p, exp = p - 2;
    while (exp > 0) {
        if (exp & 1)
            result = result * base % p;
        base = base * base % p;
        exp >>= 1;
    }
    return result;
}

} // namespace aegis
