/**
 * @file
 * Bit-granular writer/reader over BitVector.
 *
 * Used to pack scheme metadata into exactly the bit budget the cost
 * model advertises (slope counters, inversion vectors, field
 * selectors, group pointers). Packing is LSB-first within each field
 * and fields are laid out in call order.
 */

#ifndef AEGIS_UTIL_BIT_IO_H
#define AEGIS_UTIL_BIT_IO_H

#include <cstdint>

#include "util/bit_vector.h"

namespace aegis {

/** Appends fixed-width fields into a growing bit image. */
class BitWriter
{
  public:
    /** @param capacity exact number of bits the image must hold. */
    explicit BitWriter(std::size_t capacity);

    /** Append the low @p width bits of @p value. */
    void writeBits(std::uint64_t value, std::size_t width);

    /** Append a single bit. */
    void writeBit(bool value) { writeBits(value ? 1 : 0, 1); }

    /** Append a whole BitVector verbatim. */
    void writeVector(const BitVector &v);

    /** Bits written so far. */
    std::size_t position() const { return cursor; }

    /**
     * Finish: the image must be exactly full (writing less or more
     * than the declared capacity is a bug in the codec).
     */
    BitVector finish() const;

  private:
    BitVector image;
    std::size_t cursor = 0;
};

/** Reads fixed-width fields back out of a bit image. */
class BitReader
{
  public:
    explicit BitReader(const BitVector &image);

    /** Read @p width bits (<= 64). */
    std::uint64_t readBits(std::size_t width);

    bool readBit() { return readBits(1) != 0; }

    /** Read @p bits bits into a fresh BitVector. */
    BitVector readVector(std::size_t bits);

    std::size_t position() const { return cursor; }
    std::size_t remaining() const { return image.size() - cursor; }

  private:
    const BitVector &image;
    std::size_t cursor = 0;
};

} // namespace aegis

#endif // AEGIS_UTIL_BIT_IO_H
