#include "util/serialize.h"

#include <cstring>

namespace aegis {

std::uint64_t
fnv1a64(std::string_view data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
BinaryWriter::u32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        buf.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
BinaryWriter::u64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        buf.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
BinaryWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v, "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
BinaryWriter::str(std::string_view s)
{
    u64(s.size());
    buf.append(s.data(), s.size());
}

bool
BinaryReader::take(std::size_t n, const char **out)
{
    if (!good || input.size() - pos < n) {
        good = false;
        return false;
    }
    *out = input.data() + pos;
    pos += n;
    return true;
}

std::uint8_t
BinaryReader::u8()
{
    const char *p = nullptr;
    if (!take(1, &p))
        return 0;
    return static_cast<std::uint8_t>(*p);
}

std::uint32_t
BinaryReader::u32()
{
    const char *p = nullptr;
    if (!take(4, &p))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
BinaryReader::u64()
{
    const char *p = nullptr;
    if (!take(8, &p))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

double
BinaryReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return good ? v : 0.0;
}

std::string
BinaryReader::str()
{
    const std::uint64_t n = u64();
    const char *p = nullptr;
    if (!take(static_cast<std::size_t>(n), &p))
        return {};
    return std::string(p, static_cast<std::size_t>(n));
}

} // namespace aegis
