#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace aegis {

void
RunningStat::add(double x)
{
    if (n == 0) {
        minValue = maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double combined = na + nb;
    m += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::stderrOfMean() const
{
    if (n < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n));
}

void
QuantileSampler::merge(const QuantileSampler &other)
{
    if (other.samples.empty())
        return;
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    dirty = true;
}

double
QuantileSampler::quantile(double q) const
{
    AEGIS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    AEGIS_REQUIRE(!samples.empty(), "quantile of an empty sampler");
    if (dirty) {
        std::sort(samples.begin(), samples.end());
        dirty = false;
    }
    if (samples.size() == 1)
        return samples.front();
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace aegis
