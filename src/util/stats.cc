#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/serialize.h"

namespace aegis {

void
RunningStat::add(double x)
{
    if (n == 0) {
        minValue = maxValue = x;
    } else {
        minValue = std::min(minValue, x);
        maxValue = std::max(maxValue, x);
    }
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double combined = na + nb;
    m += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::stderrOfMean() const
{
    if (n < 2)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(n));
}

void
RunningStat::serialize(BinaryWriter &w) const
{
    w.u64(n);
    w.f64(m);
    w.f64(m2);
    w.f64(total);
    w.f64(minValue);
    w.f64(maxValue);
}

bool
RunningStat::deserialize(BinaryReader &r)
{
    n = static_cast<std::size_t>(r.u64());
    m = r.f64();
    m2 = r.f64();
    total = r.f64();
    minValue = r.f64();
    maxValue = r.f64();
    return r.ok();
}

void
QuantileSampler::merge(const QuantileSampler &other)
{
    if (other.samples.empty())
        return;
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    dirty = true;
}

double
QuantileSampler::quantile(double q) const
{
    AEGIS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    AEGIS_REQUIRE(!samples.empty(), "quantile of an empty sampler");
    if (dirty) {
        std::sort(samples.begin(), samples.end());
        dirty = false;
    }
    if (samples.size() == 1)
        return samples.front();
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void
QuantileSampler::serialize(BinaryWriter &w) const
{
    // Samples are written in their current (insertion or post-sort)
    // order so a restored accumulator is byte-for-byte the state that
    // was snapshotted.
    w.u64(samples.size());
    for (const double s : samples)
        w.f64(s);
}

bool
QuantileSampler::deserialize(BinaryReader &r)
{
    const std::uint64_t count = r.u64();
    if (!r.ok())
        return false;
    samples.clear();
    // A corrupt length must not drive a giant allocation; the loop
    // below stops at end-of-input anyway.
    samples.reserve(std::min<std::uint64_t>(count, 1u << 20));
    for (std::uint64_t i = 0; i < count && r.ok(); ++i)
        samples.push_back(r.f64());
    dirty = !samples.empty();
    return r.ok();
}

} // namespace aegis
