/**
 * @file
 * Chunked parallel-for and deterministic parallel reduction for the
 * Monte-Carlo engine.
 *
 * Design rule: the *work decomposition* must not depend on the worker
 * count. parallelReduce() always lays the item range out on a fixed
 * chunk grid (grain items per chunk), gives every chunk its own
 * accumulator, and folds the chunk accumulators together in chunk
 * order — threads only decide *who* computes a chunk, never *what* is
 * computed or in which order results combine. Together with per-item
 * RNG streams split from a master seed (Rng::split), this makes every
 * reduction bit-identical for every jobs value, including jobs=1.
 */

#ifndef AEGIS_UTIL_PARALLEL_H
#define AEGIS_UTIL_PARALLEL_H

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/cancel.h"

namespace aegis {

/** Worker count meaning "one per hardware thread" (always >= 1). */
unsigned hardwareJobs();

/** Resolve a jobs knob: 0 = hardwareJobs(), anything else as given. */
unsigned resolveJobs(unsigned jobs);

/**
 * Run body(chunk) for every chunk in [0, chunks) on up to @p jobs
 * threads (0 = hardware concurrency; the calling thread always
 * participates). Chunks are handed out dynamically, so bodies may
 * take unequal time. The first exception thrown by any body stops
 * the distribution of further chunks and is rethrown here.
 *
 * When @p cancel is given, workers poll it before claiming each
 * chunk: once cancelled no new chunks start, in-flight chunks run to
 * completion (cooperative draining at chunk boundaries), and the call
 * returns normally — the caller decides what a partial sweep means.
 */
void parallelFor(std::size_t chunks, unsigned jobs,
                 const std::function<void(std::size_t)> &body,
                 const CancelToken *cancel = nullptr);

/**
 * Default chunk grain for parallelReduce: small enough to load-balance
 * the default 64-page studies, large enough to amortize accumulator
 * merging at paper scale (2048 pages -> 128 chunks).
 */
inline constexpr std::size_t kDefaultGrain = 16;

/**
 * Deterministic chunked reduction, range-body form: body(acc, begin,
 * end) is invoked once per chunk with that chunk's item sub-range,
 * accumulating into the chunk-local @p Result (default-constructed;
 * must provide merge()). Chunk results merge in chunk order. The
 * chunk grid depends only on @p items and @p grain — never on @p
 * jobs — so the returned Result is bit-identical for every jobs
 * value. Bodies that batch consecutive items (the SoA block-life
 * batches) use this form directly: a batch span never crosses a
 * chunk boundary, so per-chunk accumulators — and everything derived
 * from them (checkpoints, timelines) — are batch-size-invariant too.
 *
 * When @p cancel fires, the workers drain at the next chunk boundary
 * and CancelledError is thrown: a reduction cannot return a partial
 * result without silently changing its statistics. Callers that can
 * use partial chunk grids (the checkpointing study runner) build on
 * parallelFor directly.
 *
 * When @p chunk_done is given it is invoked on the worker thread
 * right after a chunk's items finish, with the chunk index, its
 * accumulator and its item count — the telemetry hook the study
 * runners use to record per-chunk timelines. It must be thread-safe;
 * chunks complete in an arbitrary order.
 */
template <typename Result, typename RangeBody>
Result
parallelReduceRanged(std::size_t items, unsigned jobs, RangeBody body,
                     std::size_t grain = kDefaultGrain,
                     const CancelToken *cancel = nullptr,
                     const std::function<void(std::size_t, Result &,
                                              std::size_t)> *chunk_done =
                         nullptr)
{
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = (items + grain - 1) / grain;
    std::vector<Result> partial(chunks);
    parallelFor(
        chunks, jobs,
        [&](std::size_t c) {
            const std::size_t begin = c * grain;
            const std::size_t end = std::min(items, begin + grain);
            body(partial[c], begin, end);
            if (chunk_done != nullptr)
                (*chunk_done)(c, partial[c], end - begin);
        },
        cancel);
    if (cancel != nullptr && cancel->cancelled())
        throw CancelledError(cancel->reason());
    Result out;
    for (Result &p : partial)
        out.merge(p);
    return out;
}

/** Adapt a per-item body(acc, item) into the range form; how
 *  parallelReduce/runStudyUnit lower onto their ranged counterparts. */
template <typename Result, typename Body>
auto
perItemRangeBody(const Body &body)
{
    return [&body](Result &acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            body(acc, i);
    };
}

/** Per-item form: body(acc, item) for every item, same guarantees. */
template <typename Result, typename Body>
Result
parallelReduce(std::size_t items, unsigned jobs, Body body,
               std::size_t grain = kDefaultGrain,
               const CancelToken *cancel = nullptr,
               const std::function<void(std::size_t, Result &,
                                        std::size_t)> *chunk_done =
                   nullptr)
{
    return parallelReduceRanged<Result>(items, jobs,
                                        perItemRangeBody<Result>(body),
                                        grain, cancel, chunk_done);
}

} // namespace aegis

#endif // AEGIS_UTIL_PARALLEL_H
