/**
 * @file
 * Runtime-dispatched bulk bitwise kernels over 64-bit word spans.
 *
 * This is the single home for explicit vectorization in the project:
 * a small fixed vocabulary of kernels (xor / andnot / select /
 * popcount / first-mismatch over contiguous word spans, plus strided
 * per-lane variants for structure-of-arrays batches) behind one
 * function-pointer table. BitVector's in-place word operations and
 * CellArray's read/differential-write paths are thin wrappers over
 * these kernels; pcm::CellArrayBatch drives the strided variants over
 * whole lane groups.
 *
 * Backend selection happens once at startup: AVX2 when both the build
 * and the CPU support it, portable scalar otherwise. The environment
 * variable AEGIS_SIMD (auto | scalar | avx2) overrides the choice, and
 * selectBackend() overrides it programmatically for in-process tests.
 * Every backend computes bit-identical results — the kernels are pure
 * word-wise bitwise transforms — so the backend can never change
 * simulation output, only its speed. Raw vector intrinsics are
 * confined to src/util/simd/ (lint rule SIMD-CONFINE).
 */

#ifndef AEGIS_UTIL_SIMD_SIMD_H
#define AEGIS_UTIL_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aegis::simd {

/**
 * One backend's kernel table. All spans are in 64-bit words; callers
 * pass word counts, never bit counts. Distinct operand spans must not
 * overlap (a span may alias itself as dst, as the in-place signatures
 * show). The strided lane kernels view memory as @p lanes consecutive
 * spans of @p words_per_lane words, each lane starting @p lane_stride
 * words after the previous one (lane_stride >= words_per_lane).
 */
struct Backend
{
    const char *name;

    /** dst[i] ^= src[i] */
    void (*xorWords)(std::uint64_t *dst, const std::uint64_t *src,
                     std::size_t n);

    /** dst[i] |= src[i] */
    void (*orWords)(std::uint64_t *dst, const std::uint64_t *src,
                    std::size_t n);

    /** dst[i] &= src[i] */
    void (*andWords)(std::uint64_t *dst, const std::uint64_t *src,
                     std::size_t n);

    /** dst[i] &= ~src[i] */
    void (*andNotWords)(std::uint64_t *dst, const std::uint64_t *src,
                        std::size_t n);

    /** dst[i] ^= value[i] & ~mask[i] */
    void (*xorAndNotWords)(std::uint64_t *dst,
                           const std::uint64_t *value,
                           const std::uint64_t *mask, std::size_t n);

    /** dst[i] = (base[i] & ~mask[i]) | (chosen[i] & mask[i]) */
    void (*selectWords)(std::uint64_t *dst, const std::uint64_t *base,
                        const std::uint64_t *chosen,
                        const std::uint64_t *mask, std::size_t n);

    /** Sum of popcount(w[i]). */
    std::size_t (*popcountWords)(const std::uint64_t *w, std::size_t n);

    /** Sum of popcount(a[i] ^ b[i]) — Hamming distance in words. */
    std::size_t (*xorPopcountWords)(const std::uint64_t *a,
                                    const std::uint64_t *b,
                                    std::size_t n);

    /** Smallest i with a[i] != b[i], or n when the spans are equal. */
    std::size_t (*firstMismatchWords)(const std::uint64_t *a,
                                      const std::uint64_t *b,
                                      std::size_t n);

    /** out[l] = popcount over lane l's span (strided SoA variant). */
    void (*popcountLanes)(const std::uint64_t *w,
                          std::size_t words_per_lane,
                          std::size_t lane_stride, std::size_t lanes,
                          std::size_t *out);

    /** out[l] = Hamming distance between lane l of @p a and of @p b. */
    void (*xorPopcountLanes)(const std::uint64_t *a,
                             const std::uint64_t *b,
                             std::size_t words_per_lane,
                             std::size_t lane_stride, std::size_t lanes,
                             std::size_t *out);
};

namespace detail {
/** Active table. Constant-initialized to scalar so kernel calls made
 *  during other translation units' static initialization are always
 *  safe; the AEGIS_SIMD/CPU upgrade happens in simd.cc's initializer
 *  and, being bit-exact, is invisible except in speed. */
extern const Backend *gActive;
} // namespace detail

/** The active kernel table. */
inline const Backend &backend() { return *detail::gActive; }

/** Name of the active backend ("scalar" or "avx2"). */
const char *backendName();

/**
 * Force a backend: "auto" (re-run startup detection), "scalar", or
 * "avx2". Returns false — leaving the active backend unchanged — when
 * the named backend is unknown or unavailable on this build/CPU.
 * Not thread-safe; call before spawning workers (tests only).
 */
bool selectBackend(std::string_view name);

/** True when this build carries the AVX2 backend and the CPU runs it. */
bool avx2Available();

// ---- convenience wrappers (the call sites read better) -------------

inline void
xorWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{ backend().xorWords(dst, src, n); }

inline void
orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{ backend().orWords(dst, src, n); }

inline void
andWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{ backend().andWords(dst, src, n); }

inline void
andNotWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{ backend().andNotWords(dst, src, n); }

inline void
xorAndNotWords(std::uint64_t *dst, const std::uint64_t *value,
               const std::uint64_t *mask, std::size_t n)
{ backend().xorAndNotWords(dst, value, mask, n); }

inline void
selectWords(std::uint64_t *dst, const std::uint64_t *base,
            const std::uint64_t *chosen, const std::uint64_t *mask,
            std::size_t n)
{ backend().selectWords(dst, base, chosen, mask, n); }

inline std::size_t
popcountWords(const std::uint64_t *w, std::size_t n)
{ return backend().popcountWords(w, n); }

inline std::size_t
xorPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{ return backend().xorPopcountWords(a, b, n); }

inline std::size_t
firstMismatchWords(const std::uint64_t *a, const std::uint64_t *b,
                   std::size_t n)
{ return backend().firstMismatchWords(a, b, n); }

inline void
popcountLanes(const std::uint64_t *w, std::size_t words_per_lane,
              std::size_t lane_stride, std::size_t lanes,
              std::size_t *out)
{ backend().popcountLanes(w, words_per_lane, lane_stride, lanes, out); }

inline void
xorPopcountLanes(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t words_per_lane, std::size_t lane_stride,
                 std::size_t lanes, std::size_t *out)
{
    backend().xorPopcountLanes(a, b, words_per_lane, lane_stride, lanes,
                               out);
}

} // namespace aegis::simd

#endif // AEGIS_UTIL_SIMD_SIMD_H
