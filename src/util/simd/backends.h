/**
 * @file
 * Internal registry of the concrete kernel tables (src/util/simd only).
 */

#ifndef AEGIS_UTIL_SIMD_BACKENDS_H
#define AEGIS_UTIL_SIMD_BACKENDS_H

#include "util/simd/simd.h"

namespace aegis::simd::detail {

/** The portable scalar table — always available, the startup default. */
extern const Backend kScalarBackend;

/**
 * The AVX2 table, or nullptr when this build was compiled without the
 * backend or the running CPU lacks AVX2 (checked at runtime, so one
 * binary serves both old and new machines).
 */
const Backend *avx2Backend();

} // namespace aegis::simd::detail

#endif // AEGIS_UTIL_SIMD_BACKENDS_H
