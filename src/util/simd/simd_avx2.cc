/**
 * @file
 * AVX2 kernel backend (the only translation unit built with -mavx2).
 *
 * Each kernel processes four 64-bit words per 256-bit vector with a
 * scalar tail, computing exactly the word-wise results of the scalar
 * backend. Population counts stay scalar — AVX2 has no vector popcount
 * — but this TU's -mavx2 baseline turns std::popcount into the POPCNT
 * instruction, which the portable backend cannot assume.
 *
 * When the build disables the backend (AEGIS_ENABLE_AVX2=OFF or a
 * compiler without -mavx2), this file compiles to the nullptr stub and
 * dispatch stays on scalar; when built in, __builtin_cpu_supports
 * gates it at runtime so one binary serves CPUs with and without AVX2.
 */

#include "util/simd/backends.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

#include "util/hot.h"

namespace aegis::simd::detail {

namespace {

inline __m256i
load4(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store4(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

AEGIS_HOT void
xorWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        store4(dst + i, _mm256_xor_si256(load4(dst + i), load4(src + i)));
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

AEGIS_HOT void
orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        store4(dst + i, _mm256_or_si256(load4(dst + i), load4(src + i)));
    for (; i < n; ++i)
        dst[i] |= src[i];
}

AEGIS_HOT void
andWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        store4(dst + i, _mm256_and_si256(load4(dst + i), load4(src + i)));
    for (; i < n; ++i)
        dst[i] &= src[i];
}

AEGIS_HOT void
andNotWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    std::size_t i = 0;
    // _mm256_andnot_si256(a, b) computes ~a & b.
    for (; i + 4 <= n; i += 4)
        store4(dst + i,
               _mm256_andnot_si256(load4(src + i), load4(dst + i)));
    for (; i < n; ++i)
        dst[i] &= ~src[i];
}

AEGIS_HOT void
xorAndNotWords(std::uint64_t *dst, const std::uint64_t *value,
               const std::uint64_t *mask, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i masked =
            _mm256_andnot_si256(load4(mask + i), load4(value + i));
        store4(dst + i, _mm256_xor_si256(load4(dst + i), masked));
    }
    for (; i < n; ++i)
        dst[i] ^= value[i] & ~mask[i];
}

AEGIS_HOT void
selectWords(std::uint64_t *dst, const std::uint64_t *base,
            const std::uint64_t *chosen, const std::uint64_t *mask,
            std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i m = load4(mask + i);
        const __m256i kept = _mm256_andnot_si256(m, load4(base + i));
        const __m256i taken = _mm256_and_si256(m, load4(chosen + i));
        store4(dst + i, _mm256_or_si256(kept, taken));
    }
    for (; i < n; ++i)
        dst[i] = (base[i] & ~mask[i]) | (chosen[i] & mask[i]);
}

AEGIS_HOT std::size_t
popcountWords(const std::uint64_t *w, std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::size_t>(std::popcount(w[i]));
    return count;
}

AEGIS_HOT std::size_t
xorPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    return count;
}

AEGIS_HOT std::size_t
firstMismatchWords(const std::uint64_t *a, const std::uint64_t *b,
                   std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i eq =
            _mm256_cmpeq_epi64(load4(a + i), load4(b + i));
        const unsigned lanes_equal = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        if (lanes_equal != 0xFu) {
            const unsigned first = static_cast<unsigned>(
                std::countr_one(lanes_equal));
            return i + first;
        }
    }
    for (; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
}

AEGIS_HOT void
popcountLanes(const std::uint64_t *w, std::size_t words_per_lane,
              std::size_t lane_stride, std::size_t lanes,
              std::size_t *out)
{
    for (std::size_t l = 0; l < lanes; ++l)
        out[l] = popcountWords(w + l * lane_stride, words_per_lane);
}

AEGIS_HOT void
xorPopcountLanes(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t words_per_lane, std::size_t lane_stride,
                 std::size_t lanes, std::size_t *out)
{
    for (std::size_t l = 0; l < lanes; ++l) {
        out[l] = xorPopcountWords(a + l * lane_stride,
                                  b + l * lane_stride, words_per_lane);
    }
}

const Backend kAvx2Backend = {
    "avx2",         &xorWords,         &orWords,
    &andWords,      &andNotWords,      &xorAndNotWords,
    &selectWords,   &popcountWords,    &xorPopcountWords,
    &firstMismatchWords, &popcountLanes, &xorPopcountLanes,
};

} // namespace

const Backend *
avx2Backend()
{
    if (__builtin_cpu_supports("avx2"))
        return &kAvx2Backend;
    return nullptr;
}

} // namespace aegis::simd::detail

#else // !defined(__AVX2__)

namespace aegis::simd::detail {

const Backend *
avx2Backend()
{
    return nullptr;
}

} // namespace aegis::simd::detail

#endif // defined(__AVX2__)
