/**
 * @file
 * Startup backend selection and the test override hook.
 */

#include "util/simd/simd.h"

#include <cstdio>
#include <cstdlib>

#include "util/simd/backends.h"

namespace aegis::simd {

namespace detail {
constinit const Backend *gActive = &kScalarBackend;
} // namespace detail

namespace {

const Backend *
autoBackend()
{
    if (const Backend *b = detail::avx2Backend())
        return b;
    return &detail::kScalarBackend;
}

/**
 * One-shot startup selection: best available backend, overridden by
 * AEGIS_SIMD. Runs during this TU's static initialization; kernel
 * calls that happen to run earlier see the scalar table, which is
 * bit-exact with every other backend, so ordering cannot change any
 * result.
 */
struct StartupSelect
{
    StartupSelect()
    {
        const char *env = std::getenv("AEGIS_SIMD");
        if (env != nullptr && *env != '\0') {
            if (selectBackend(env))
                return;
            std::fprintf(stderr,
                         "warning: AEGIS_SIMD=%s unknown or unavailable"
                         " on this build/CPU; using auto selection\n",
                         env);
        }
        detail::gActive = autoBackend();
    }
};

const StartupSelect startupSelect;

} // namespace

const char *
backendName()
{
    return detail::gActive->name;
}

bool
avx2Available()
{
    return detail::avx2Backend() != nullptr;
}

bool
selectBackend(std::string_view name)
{
    if (name == "auto") {
        detail::gActive = autoBackend();
        return true;
    }
    if (name == "scalar") {
        detail::gActive = &detail::kScalarBackend;
        return true;
    }
    if (name == "avx2") {
        if (const Backend *b = detail::avx2Backend()) {
            detail::gActive = b;
            return true;
        }
        return false;
    }
    return false;
}

} // namespace aegis::simd
