/**
 * @file
 * Portable scalar kernel backend.
 *
 * Plain word loops the compiler may auto-vectorize however the build's
 * baseline ISA allows. This table is the reference implementation: the
 * fuzz oracle forces it via AEGIS_SIMD=scalar and demands bit-identical
 * results from every other backend.
 */

#include "util/simd/backends.h"

#include <bit>

#include "util/hot.h"

namespace aegis::simd::detail {

namespace {

AEGIS_HOT void
xorWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= src[i];
}

AEGIS_HOT void
orWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

AEGIS_HOT void
andWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] &= src[i];
}

AEGIS_HOT void
andNotWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] &= ~src[i];
}

AEGIS_HOT void
xorAndNotWords(std::uint64_t *dst, const std::uint64_t *value,
               const std::uint64_t *mask, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] ^= value[i] & ~mask[i];
}

AEGIS_HOT void
selectWords(std::uint64_t *dst, const std::uint64_t *base,
            const std::uint64_t *chosen, const std::uint64_t *mask,
            std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = (base[i] & ~mask[i]) | (chosen[i] & mask[i]);
}

AEGIS_HOT std::size_t
popcountWords(const std::uint64_t *w, std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::size_t>(std::popcount(w[i]));
    return count;
}

AEGIS_HOT std::size_t
xorPopcountWords(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    return count;
}

AEGIS_HOT std::size_t
firstMismatchWords(const std::uint64_t *a, const std::uint64_t *b,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
}

AEGIS_HOT void
popcountLanes(const std::uint64_t *w, std::size_t words_per_lane,
              std::size_t lane_stride, std::size_t lanes,
              std::size_t *out)
{
    for (std::size_t l = 0; l < lanes; ++l)
        out[l] = popcountWords(w + l * lane_stride, words_per_lane);
}

AEGIS_HOT void
xorPopcountLanes(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t words_per_lane, std::size_t lane_stride,
                 std::size_t lanes, std::size_t *out)
{
    for (std::size_t l = 0; l < lanes; ++l) {
        out[l] = xorPopcountWords(a + l * lane_stride,
                                  b + l * lane_stride, words_per_lane);
    }
}

} // namespace

const Backend kScalarBackend = {
    "scalar",       &xorWords,         &orWords,
    &andWords,      &andNotWords,      &xorAndNotWords,
    &selectWords,   &popcountWords,    &xorPopcountWords,
    &firstMismatchWords, &popcountLanes, &xorPopcountLanes,
};

} // namespace aegis::simd::detail
