#include "util/rng.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace aegis {

namespace {

/** SplitMix64 step; used for seeding and stream derivation. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seedValue(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitMix64(s);
    // xoshiro must not start from the all-zero state.
    if ((state[0] | state[1] | state[2] | state[3]) == 0)
        state[0] = 0x9e3779b97f4a7c15ull;
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    AEGIS_ASSERT(bound > 0, "Rng::nextBounded requires bound > 0");
    // Lemire-style rejection to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = nextU64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian) {
        hasCachedGaussian = false;
        return cachedGaussian;
    }
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian = r * std::sin(theta);
    hasCachedGaussian = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p >= 1.0)
        return 1;
    if (p <= 1e-300)
        return std::numeric_limits<std::uint64_t>::max();
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    const double trials = std::ceil(std::log(u) / std::log1p(-p));
    if (trials >= 1e19)
        return std::numeric_limits<std::uint64_t>::max();
    return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

Rng
Rng::split(std::uint64_t stream_id) const
{
    // Derive a child seed by mixing the parent seed with the stream id
    // through two SplitMix64 rounds; parent state is untouched so the
    // derivation is stable no matter how much the parent has generated.
    std::uint64_t s = seedValue ^ (stream_id * 0xd6e8feb86659fd93ull);
    (void)splitMix64(s);
    const std::uint64_t child = splitMix64(s);
    return Rng(child);
}

} // namespace aegis
