/**
 * @file
 * Cooperative cancellation for long Monte-Carlo sweeps.
 *
 * A CancelToken is a latch that workers poll at chunk boundaries (see
 * parallelFor): once cancelled — by a SIGINT/SIGTERM handler, a
 * --deadline watchdog, or fault injection — no new chunks are handed
 * out, in-flight chunks run to completion, and the study runner
 * writes a final checkpoint before raising CancelledError. The signal
 * handler itself only performs an async-signal-safe atomic store;
 * every message and checkpoint write happens on normal control flow
 * after the workers have drained.
 */

#ifndef AEGIS_UTIL_CANCEL_H
#define AEGIS_UTIL_CANCEL_H

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace aegis {

/** Why a sweep was cancelled; the first request wins. */
enum class CancelReason : int {
    None = 0,
    Signal = 1,   ///< SIGINT or SIGTERM
    Deadline = 2, ///< --deadline watchdog expired
    Injected = 3, ///< programmatic/test cancellation
};

/** Human-readable reason ("signal", "deadline", "injected"). */
const char *cancelReasonName(CancelReason reason);

/** Final-line outcome label ("cancelled (signal)", "deadline
 *  exceeded", ...) for progress reports and harness messages. */
const char *cancelOutcomeLabel(CancelReason reason);

/**
 * Conventional process exit code for a run cancelled for @p reason:
 * 130 (128+SIGINT) for signals, 124 (timeout(1)) for deadlines, 3
 * for injected cancellations.
 */
int cancelExitCode(CancelReason reason);

/**
 * One-way cancellation latch with an optional deadline. cancelled()
 * is cheap (one relaxed load on the fast path) and safe to call from
 * any thread; requestCancel() is async-signal-safe.
 */
class CancelToken
{
  public:
    /** Latch cancellation; the first reason is kept. */
    void
    requestCancel(CancelReason reason)
    {
        int expected = 0;
        state.compare_exchange_strong(expected,
                                      static_cast<int>(reason),
                                      std::memory_order_relaxed);
    }

    /**
     * True once cancelled. Also arms the latch when the deadline has
     * passed, so pollers need no separate watchdog thread.
     */
    bool
    cancelled() const
    {
        if (state.load(std::memory_order_relaxed) != 0)
            return true;
        if (armedDeadline.load(std::memory_order_relaxed) &&
            // aegis-lint: allow(DET-CHRONO deadline cancellation is inherently wall-clock; never feeds result cells)
            std::chrono::steady_clock::now() >= deadline) {
            int expected = 0;
            state.compare_exchange_strong(
                expected, static_cast<int>(CancelReason::Deadline),
                std::memory_order_relaxed);
            return true;
        }
        return false;
    }

    CancelReason
    reason() const
    {
        return static_cast<CancelReason>(
            state.load(std::memory_order_relaxed));
    }

    /** Cancel automatically once @p seconds of wall clock elapse. */
    void
    setDeadlineAfter(double seconds)
    {
        // aegis-lint: allow(DET-CHRONO deadline cancellation is inherently wall-clock; never feeds result cells)
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
        armedDeadline.store(true, std::memory_order_relaxed);
    }

    /** Re-arm the token (test isolation; not for use mid-sweep). */
    void
    reset()
    {
        state.store(0, std::memory_order_relaxed);
        armedDeadline.store(false, std::memory_order_relaxed);
    }

  private:
    mutable std::atomic<int> state{0};
    std::atomic<bool> armedDeadline{false};
    std::chrono::steady_clock::time_point deadline{};
};

/**
 * Raised by the study runners after the workers have drained and the
 * final checkpoint is written. BenchRunner turns it into a manifest
 * marked "status": "partial" plus the reason's exit code.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelReason cause)
        : std::runtime_error(std::string("run cancelled (") +
                             cancelReasonName(cause) + ")"),
          why(cause)
    {}

    CancelReason reason() const { return why; }

  private:
    CancelReason why;
};

/** The process-wide token the signal handler and benches share. */
CancelToken &processCancelToken();

/**
 * Route SIGINT/SIGTERM to processCancelToken(). The first signal
 * requests graceful cancellation; the handler then restores the
 * default disposition so a second signal kills the process the
 * ordinary way. Idempotent.
 */
void installSignalCancellation();

} // namespace aegis

#endif // AEGIS_UTIL_CANCEL_H
