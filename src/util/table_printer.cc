#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace aegis {

TablePrinter::TablePrinter(std::string table_title)
    : title(std::move(table_title))
{}

void
TablePrinter::setHeader(std::vector<std::string> new_header)
{
    AEGIS_REQUIRE(rows.empty(), "set the header before adding rows");
    header = std::move(new_header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (!header.empty()) {
        AEGIS_REQUIRE(row.size() == header.size(),
                      "row width must match header width");
    }
    rows.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::intNum(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int counter = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (counter && counter % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++counter;
    }
    if (v < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

namespace {

/**
 * Numeric-looking cell: digits plus sign/grouping/decimal/exponent
 * characters, optionally ending in the bench suffixes "x" or "%".
 * "" and "-" are neutral (they neither make nor break a numeric
 * column).
 */
bool
numericCell(const std::string &s)
{
    std::size_t i = 0;
    if (!s.empty() && (s[0] == '+' || s[0] == '-'))
        i = 1;
    bool digit = false;
    for (; i < s.size(); ++i) {
        const char ch = s[i];
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            digit = true;
            continue;
        }
        if (ch == '.' || ch == ',' || ch == 'e' || ch == 'E' ||
            ch == '+' || ch == '-')
            continue;
        if ((ch == 'x' || ch == '%') && i == s.size() - 1)
            continue;
        return false;
    }
    return digit;
}

bool
neutralCell(const std::string &s)
{
    return s.empty() || s == "-";
}

} // namespace

bool
TablePrinter::numericColumn(std::size_t c) const
{
    // Every non-neutral body cell must look numeric (the header label
    // is text and does not count); an all-neutral column stays
    // left-aligned.
    bool any = false;
    for (const auto &r : rows) {
        if (c >= r.size() || neutralCell(r[c]))
            continue;
        if (!numericCell(r[c]))
            return false;
        any = true;
    }
    return any;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::size_t cols = header.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());
    if (cols == 0)
        return;

    std::vector<std::size_t> width(cols, 0);
    const auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!header.empty())
        measure(header);
    for (const auto &r : rows)
        measure(r);

    std::vector<bool> rightAlign(cols, false);
    for (std::size_t c = 0; c < cols; ++c)
        rightAlign[c] = numericColumn(c);

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            const std::string pad(width[c] - cell.size(), ' ');
            os << (c == 0 ? "| " : " | ");
            if (rightAlign[c])
                os << pad << cell;
            else
                os << cell << pad;
        }
        os << " |\n";
    };
    const auto rule = [&] {
        for (std::size_t c = 0; c < cols; ++c)
            os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
        os << "-|\n";
    };

    if (!title.empty())
        os << title << "\n";
    rule();
    if (!header.empty()) {
        emit(header);
        rule();
    }
    for (const auto &r : rows)
        emit(r);
    rule();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    const auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out.push_back(ch);
        }
        out.push_back('"');
        return out;
    };
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : rows)
        emit(r);
}

} // namespace aegis
