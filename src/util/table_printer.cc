#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace aegis {

TablePrinter::TablePrinter(std::string table_title)
    : title(std::move(table_title))
{}

void
TablePrinter::setHeader(std::vector<std::string> new_header)
{
    AEGIS_REQUIRE(rows.empty(), "set the header before adding rows");
    header = std::move(new_header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (!header.empty()) {
        AEGIS_REQUIRE(row.size() == header.size(),
                      "row width must match header width");
    }
    rows.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::intNum(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int counter = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (counter && counter % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++counter;
    }
    if (v < 0)
        out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::size_t cols = header.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());
    if (cols == 0)
        return;

    std::vector<std::size_t> width(cols, 0);
    const auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!header.empty())
        measure(header);
    for (const auto &r : rows)
        measure(r);

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << (c == 0 ? "| " : " | ")
               << cell << std::string(width[c] - cell.size(), ' ');
        }
        os << " |\n";
    };
    const auto rule = [&] {
        for (std::size_t c = 0; c < cols; ++c)
            os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
        os << "-|\n";
    };

    if (!title.empty())
        os << title << "\n";
    rule();
    if (!header.empty()) {
        emit(header);
        rule();
    }
    for (const auto &r : rows)
        emit(r);
    rule();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    const auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out.push_back(ch);
        }
        out.push_back('"');
        return out;
    };
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : rows)
        emit(r);
}

} // namespace aegis
