#include "util/cancel.h"

#include <csignal>

namespace aegis {

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
    case CancelReason::None:
        return "none";
    case CancelReason::Signal:
        return "signal";
    case CancelReason::Deadline:
        return "deadline";
    case CancelReason::Injected:
        return "injected";
    }
    return "unknown";
}

const char *
cancelOutcomeLabel(CancelReason reason)
{
    switch (reason) {
    case CancelReason::None:
        return "completed";
    case CancelReason::Signal:
        return "cancelled (signal)";
    case CancelReason::Deadline:
        return "deadline exceeded";
    case CancelReason::Injected:
        return "cancelled (injected)";
    }
    return "cancelled";
}

int
cancelExitCode(CancelReason reason)
{
    switch (reason) {
    case CancelReason::Signal:
        return 130;    // 128 + SIGINT, the shell convention
    case CancelReason::Deadline:
        return 124;    // timeout(1)'s convention
    case CancelReason::None:
    case CancelReason::Injected:
        break;
    }
    return 3;
}

CancelToken &
processCancelToken()
{
    static CancelToken token;
    return token;
}

namespace {

extern "C" void
cancelSignalHandler(int sig)
{
    // Async-signal-safe: one lock-free atomic CAS. The token is
    // constructed by installSignalCancellation() before the handler
    // can ever run. Restoring the default disposition lets a second
    // signal terminate a stuck process immediately.
    processCancelToken().requestCancel(CancelReason::Signal);
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installSignalCancellation()
{
    processCancelToken();    // construct before any signal can arrive
    std::signal(SIGINT, cancelSignalHandler);
    std::signal(SIGTERM, cancelSignalHandler);
}

} // namespace aegis
