#include "audit/scheme_auditor.h"

#include <bit>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "aegis/aegis_rw.h"
#include "aegis/aegis_rw_p.h"
#include "aegis/aegis_scheme.h"
#include "aegis/collision_rom.h"
#include "aegis/cost.h"
#include "obs/metrics.h"
#include "pcm/fail_cache.h"
#include "scheme/safer.h"
#include "util/error.h"
#include "util/primes.h"

/*
 * Every auditor assertion flows through this wrapper so the metrics
 * registry sees both the check and — since AEGIS_AUDIT throws and
 * would otherwise hide it — the violation. The condition is only
 * re-evaluated on the failure path, where we are about to throw
 * anyway; auditor conditions are pure, so the re-read is safe.
 */
#define AUDITOR_AUDIT(cond, dump)                                           \
    do {                                                                    \
        ::aegis::obs::bump(::aegis::obs::Counter::AuditChecks);             \
        if (!(cond)) {                                                      \
            ::aegis::obs::bump(::aegis::obs::Counter::AuditViolations);     \
            AEGIS_AUDIT(cond, dump);                                        \
        }                                                                   \
    } while (0)

namespace aegis::audit {

namespace {

/** The partition of an Aegis-family scheme, or nullptr otherwise. */
const core::Partition *
partitionOf(const scheme::Scheme &s)
{
    if (const auto *basic = dynamic_cast<const core::AegisScheme *>(&s))
        return &basic->partition();
    if (const auto *rw = dynamic_cast<const core::AegisRwScheme *>(&s))
        return &rw->partition();
    if (const auto *rwp = dynamic_cast<const core::AegisRwPScheme *>(&s))
        return &rwp->partition();
    return nullptr;
}

/** ceil(log2 x) for x >= 1, matching cost.cc's counter sizing. */
std::size_t
ceilLog2(std::uint64_t x)
{
    return x <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(x - 1));
}

/** True when slope @p k puts every fault of @p faults in its own group. */
bool
slopeSeparates(const core::Partition &part, const pcm::FaultSet &faults,
               std::uint32_t k)
{
    std::vector<bool> hit(part.groups(), false);
    for (const pcm::Fault &f : faults) {
        const std::uint32_t g = part.groupOf(f.pos, k);
        if (hit[g])
            return false;
        hit[g] = true;
    }
    return true;
}

/**
 * True when slope @p k has a group mixing stuck-at-Wrong and
 * stuck-at-Right faults (classified against @p data) — the Aegis-rw
 * notion of a blocked configuration.
 */
bool
slopeBlocked(const core::Partition &part, const pcm::FaultSet &faults,
             const BitVector &data, std::uint32_t k)
{
    std::vector<std::uint8_t> seen(part.groups(), 0);
    for (const pcm::Fault &f : faults) {
        const std::uint32_t g = part.groupOf(f.pos, k);
        const std::uint8_t kind =
            pcm::classify(f, data.get(f.pos)) == pcm::FaultKind::Wrong
                ? 1u
                : 2u;
        if (seen[g] != 0 && seen[g] != kind)
            return true;
        seen[g] = kind;
    }
    return false;
}

/**
 * Exhaustively verify Theorem 1 and Theorem 2 for @p part and
 * cross-check Partition::collisionSlope against a freshly built
 * CollisionRom. O(n^2 * B) — run once per formation (memoized by the
 * caller).
 */
void
verifyPartitionTheorems(const core::Partition &part)
{
    const std::uint32_t n = part.blockBits();
    const std::uint32_t width = part.a();
    const std::uint32_t height = part.b();

    AUDITOR_AUDIT(isPrime(height),
                "Aegis height B=" << height << " is not prime");
    AUDITOR_AUDIT(width >= 1 && width <= height,
                "formation " << part.formation()
                             << " violates 0 < A <= B");
    AUDITOR_AUDIT(static_cast<std::uint64_t>(width - 1) * height < n &&
                    n <= static_cast<std::uint64_t>(width) * height,
                "formation " << part.formation() << " cannot host n="
                             << n << " ((A-1)*B < n <= A*B)");

    // Theorem 1: under every slope the groups partition the block and
    // hold at most one point per column.
    for (std::uint32_t k = 0; k < part.slopes(); ++k) {
        std::vector<bool> visited(n, false);
        std::uint32_t covered = 0;
        for (std::uint32_t y = 0; y < part.groups(); ++y) {
            std::vector<bool> column_used(width, false);
            for (const std::uint32_t pos : part.groupMembers(y, k)) {
                AUDITOR_AUDIT(pos < n, "group member " << pos
                                                     << " out of range");
                AUDITOR_AUDIT(part.groupOf(pos, k) == y,
                            "groupMembers/groupOf disagree at pos "
                                << pos << " slope " << k);
                AUDITOR_AUDIT(!visited[pos],
                            "pos " << pos << " in two groups, slope "
                                   << k << " (Theorem 1)");
                const std::uint32_t col = part.columnOf(pos);
                AUDITOR_AUDIT(!column_used[col],
                            "two points of column " << col
                                << " share group " << y << " slope "
                                << k);
                column_used[col] = true;
                visited[pos] = true;
                ++covered;
            }
        }
        AUDITOR_AUDIT(covered == n, "slope " << k << " covers " << covered
                                           << " of " << n
                                           << " points (Theorem 1)");
    }

    // Theorem 2: cross-column pairs collide under exactly one slope,
    // same-column pairs under none; collisionSlope and the ROM agree.
    const core::CollisionRom rom(part);
    for (std::uint32_t p1 = 0; p1 < n; ++p1) {
        for (std::uint32_t p2 = p1 + 1; p2 < n; ++p2) {
            std::uint32_t collisions = 0;
            std::uint32_t where = height;
            for (std::uint32_t k = 0; k < part.slopes(); ++k) {
                if (part.groupOf(p1, k) == part.groupOf(p2, k)) {
                    ++collisions;
                    where = k;
                }
            }
            const bool same_column =
                part.columnOf(p1) == part.columnOf(p2);
            AUDITOR_AUDIT(collisions == (same_column ? 0u : 1u),
                        "pair (" << p1 << "," << p2 << ") collides on "
                                 << collisions
                                 << " slopes (Theorem 2)");
            const std::uint32_t claimed = part.collisionSlope(p1, p2);
            AUDITOR_AUDIT(claimed == where,
                        "collisionSlope(" << p1 << "," << p2 << ")="
                                          << claimed
                                          << " but brute force says "
                                          << where);
            AUDITOR_AUDIT(rom.lookup(p1, p2) == where,
                        "collision ROM disagrees at (" << p1 << ","
                                                       << p2 << ")");
        }
    }
}

/** Run verifyPartitionTheorems once per formation per process. */
void
verifyStructureOnce(const core::Partition &part)
{
    static std::mutex mu;
    static std::set<std::string> done;
    const std::string key =
        part.formation() + ":" + std::to_string(part.blockBits());
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (!done.insert(key).second)
            return;
    }
    verifyPartitionTheorems(part);
}

/**
 * Metadata-bit budget accounting: the packed image must stay within
 * what cost.cc claims for the configuration, allowing only the
 * documented full-width slope-counter slack (the implementation
 * always packs a ceil(log2 B)-bit counter; Table 1 may claim a
 * narrower one when fewer configurations are ever needed).
 */
void
verifyBudget(const scheme::Scheme &s)
{
    const std::size_t used = s.metadataBits();
    const std::size_t advertised = s.overheadBits();
    AUDITOR_AUDIT(used >= advertised,
                s.name() << ": image " << used
                         << "b narrower than advertised overhead "
                         << advertised << "b");

    if (const auto *rwp = dynamic_cast<const core::AegisRwPScheme *>(&s)) {
        const std::uint32_t height = rwp->partition().b();
        const std::uint32_t p = rwp->pointerBudget();
        const std::uint32_t f = 2 * p + 1;
        const std::size_t table1 = core::costBitsRwP(height, f, p);
        const std::size_t slack =
            ceilLog2(height) -
            ceilLog2(std::min<std::uint64_t>(core::slopesNeededRw(f),
                                             height));
        AUDITOR_AUDIT(advertised == table1,
                    s.name() << " advertises " << advertised
                             << "b but Table 1 claims " << table1);
        AUDITOR_AUDIT(used == table1 + slack,
                    s.name() << " packs " << used << "b; Table 1 + "
                             << "counter slack allows "
                             << table1 + slack);
        return;
    }

    const core::Partition *part = partitionOf(s);
    if (part != nullptr) {
        const std::uint32_t height = part->b();
        const auto f = static_cast<std::uint32_t>(s.hardFtc());
        const bool rw =
            dynamic_cast<const core::AegisRwScheme *>(&s) != nullptr;
        const std::size_t table1 = rw ? core::costBitsRw(height, f)
                                      : core::costBitsBasic(height, f);
        const std::size_t slack =
            ceilLog2(height) - core::slopeCounterBits(height, f);
        AUDITOR_AUDIT(used == table1 + slack,
                    s.name() << " packs " << used
                             << "b; Table 1 claims " << table1
                             << "b plus " << slack
                             << "b counter slack");
        return;
    }

    // Non-Aegis schemes: metadataBits() documents at most a few bits
    // beyond the advertised Table-1 overhead (ECP's entry counter).
    AUDITOR_AUDIT(used <= advertised + 16,
                s.name() << ": image " << used << "b exceeds overhead "
                         << advertised << "b by more than the "
                         << "documented few-bit slack");
}

} // namespace

SchemeAuditor::SchemeAuditor(std::unique_ptr<scheme::Scheme> inner_scheme)
    : wrapped(std::move(inner_scheme))
{
    AEGIS_REQUIRE(wrapped != nullptr,
                  "SchemeAuditor needs a scheme to wrap");
    AEGIS_REQUIRE(dynamic_cast<SchemeAuditor *>(wrapped.get()) == nullptr,
                  "refusing to audit an auditor");
    if (const core::Partition *part = partitionOf(*wrapped))
        verifyStructureOnce(*part);
    verifyBudget(*wrapped);
    auditedName = wrapped->name() + "+audit";
}

const std::string &
SchemeAuditor::name() const
{
    return auditedName;
}

std::size_t
SchemeAuditor::blockBits() const
{
    return wrapped->blockBits();
}

std::size_t
SchemeAuditor::overheadBits() const
{
    return wrapped->overheadBits();
}

std::size_t
SchemeAuditor::hardFtc() const
{
    return wrapped->hardFtc();
}

std::string
SchemeAuditor::dumpState(const pcm::CellArray &cells) const
{
    std::ostringstream os;
    os << "scheme=" << wrapped->name() << " blockBits="
       << wrapped->blockBits() << " metadata="
       << wrapped->exportMetadata().toString() << " faults=[";
    bool first = true;
    for (const pcm::Fault &f : cells.faults()) {
        if (!first)
            os << " ";
        os << f.pos << (f.stuck ? ":1" : ":0");
        first = false;
    }
    os << "]";
    return os.str();
}

void
SchemeAuditor::auditMetadata(const pcm::CellArray &cells) const
{
    const BitVector image = wrapped->exportMetadata();
    ++numChecks;
    AUDITOR_AUDIT(image.size() == wrapped->metadataBits(),
                wrapped->name() << " exported " << image.size()
                                << "b, metadataBits() promises "
                                << wrapped->metadataBits());
    verifyBudget(*wrapped);
    ++numChecks;

    // Round-trip: a clone restored from the image must reproduce it
    // bit-for-bit and decode the same logical data.
    const std::unique_ptr<scheme::Scheme> restored = wrapped->clone();
    restored->importMetadata(image);
    ++numChecks;
    AUDITOR_AUDIT(restored->exportMetadata() == image,
                wrapped->name()
                    << " metadata image does not round-trip: "
                    << dumpState(cells));
    if (haveShadow) {
        ++numChecks;
        AUDITOR_AUDIT(restored->read(cells) == shadow,
                    wrapped->name()
                        << " restored clone decodes different data: "
                        << dumpState(cells));
    }
}

void
SchemeAuditor::auditDirectory(const pcm::CellArray &cells) const
{
    if (directory == nullptr)
        return;
    for (const pcm::Fault &f : directory->lookup(blockId)) {
        ++numChecks;
        AUDITOR_AUDIT(f.pos < cells.size(),
                    "fail cache lists out-of-range pos " << f.pos
                        << " for block " << blockId);
        AUDITOR_AUDIT(cells.isStuck(f.pos),
                    "fail cache lists healthy cell " << f.pos
                        << " as stuck: " << dumpState(cells));
        AUDITOR_AUDIT(cells.readBit(f.pos) == f.stuck,
                    "fail cache stuck value wrong at pos " << f.pos
                        << ": " << dumpState(cells));
    }
}

void
SchemeAuditor::auditFailure(const pcm::CellArray &cells,
                            const BitVector &data) const
{
    const pcm::FaultSet faults = cells.faults();
    ++numChecks;
    AUDITOR_AUDIT(faults.size() > wrapped->hardFtc(),
                wrapped->name() << " retired a block holding "
                                << faults.size()
                                << " faults, within its hard FTC of "
                                << wrapped->hardFtc() << ": "
                                << dumpState(cells));

    // Brute-force recoverability oracle for the Aegis family. The
    // scheme failed over its *discovered* fault subset; if any slope
    // handles the full physical fault set it also handles the subset,
    // so finding one proves the failure wrong.
    const core::Partition *part = partitionOf(*wrapped);
    if (part == nullptr)
        return;
    const bool rw_family =
        dynamic_cast<const core::AegisRwScheme *>(wrapped.get()) !=
        nullptr;
    if (dynamic_cast<const core::AegisRwPScheme *>(wrapped.get())) {
        // rw-p may legitimately fail on pointer exhaustion even when a
        // free slope exists; only the hard-FTC bound above applies.
        return;
    }
    for (std::uint32_t k = 0; k < part->slopes(); ++k) {
        ++numChecks;
        if (rw_family) {
            AUDITOR_AUDIT(slopeBlocked(*part, faults, data, k),
                        wrapped->name() << " declared failure but slope "
                            << k << " mixes no W/R group: "
                            << dumpState(cells));
        } else {
            AUDITOR_AUDIT(!slopeSeparates(*part, faults, k),
                        wrapped->name() << " declared failure but slope "
                            << k << " separates all faults: "
                            << dumpState(cells));
        }
    }
}

void
SchemeAuditor::auditDataPlane(const pcm::CellArray &cells) const
{
    // Effective-value oracle: the word-parallel readInto computes
    // (stored & ~stuckMask) | (stuckValue & stuckMask) per 64-bit
    // word; the per-bit readBit loop is the naive reference it must
    // match after any sequence of differential/blind writes.
    const std::size_t n = cells.size();
    BitVector naive(n);
    for (std::size_t i = 0; i < n; ++i)
        naive.set(i, cells.readBit(i));
    BitVector effective;
    cells.readInto(effective);
    ++numChecks;
    AUDITOR_AUDIT(effective == naive,
                wrapped->name()
                    << " word-parallel readInto disagrees with the "
                    << "per-bit readBit oracle: " << dumpState(cells));

    // Group-inversion decode oracle: re-derive the masked XOR decode
    // with a per-bit groupOf scan over the scheme's current
    // configuration. `naive` currently holds the effective values;
    // flip each bit whose group is inverted.
    bool have_oracle = false;
    if (const auto *basic =
            dynamic_cast<const core::AegisScheme *>(wrapped.get())) {
        const core::Partition &part = basic->partition();
        const BitVector &inv = basic->inversionVector();
        for (std::size_t pos = 0; pos < n; ++pos) {
            const std::uint32_t g = part.groupOf(
                static_cast<std::uint32_t>(pos), basic->currentSlope());
            if (inv.get(g))
                naive.set(pos, !naive.get(pos));
        }
        have_oracle = true;
    } else if (const auto *rw =
                   dynamic_cast<const core::AegisRwScheme *>(
                       wrapped.get())) {
        const core::Partition &part = rw->partition();
        const BitVector &inv = rw->inversionVector();
        for (std::size_t pos = 0; pos < n; ++pos) {
            const std::uint32_t g = part.groupOf(
                static_cast<std::uint32_t>(pos), rw->currentSlope());
            if (inv.get(g))
                naive.set(pos, !naive.get(pos));
        }
        have_oracle = true;
    } else if (const auto *rwp =
                   dynamic_cast<const core::AegisRwPScheme *>(
                       wrapped.get())) {
        // groupInverted folds the complement flag into the per-group
        // answer, so it is the complete per-bit decode oracle.
        const core::Partition &part = rwp->partition();
        for (std::size_t pos = 0; pos < n; ++pos) {
            const std::uint32_t g = part.groupOf(
                static_cast<std::uint32_t>(pos), rwp->currentSlope());
            if (rwp->groupInverted(g))
                naive.set(pos, !naive.get(pos));
        }
        have_oracle = true;
    } else if (const auto *safer =
                   dynamic_cast<const scheme::SaferScheme *>(
                       wrapped.get())) {
        const scheme::SaferPartition &part = safer->partition();
        const BitVector &inv = safer->inversionVector();
        for (std::size_t pos = 0; pos < n; ++pos) {
            if (inv.get(part.groupOf(pos)))
                naive.set(pos, !naive.get(pos));
        }
        have_oracle = true;
    }
    if (!have_oracle)
        return;
    ++numChecks;
    AUDITOR_AUDIT(wrapped->read(cells) == naive,
                wrapped->name()
                    << " masked decode disagrees with the per-bit "
                    << "groupOf oracle: " << dumpState(cells));
}

scheme::WriteOutcome
SchemeAuditor::write(pcm::CellArray &cells, const BitVector &data)
{
    ++numWrites;
    const scheme::WriteOutcome outcome = wrapped->write(cells, data);

    if (outcome.ok) {
        ++numChecks;
        AUDITOR_AUDIT(outcome.programPasses >= 1,
                    wrapped->name()
                        << " claims success without a program pass");
        const BitVector decoded = wrapped->read(cells);
        ++numChecks;
        AUDITOR_AUDIT(decoded == data,
                    wrapped->name() << " read-after-write mismatch ("
                        << decoded.hammingDistance(data)
                        << " bits differ): " << dumpState(cells));
        shadow = data;
        haveShadow = true;
    } else {
        haveShadow = false;
        auditFailure(cells, data);
    }

    auditDataPlane(cells);
    auditMetadata(cells);
    auditDirectory(cells);
    return outcome;
}

BitVector
SchemeAuditor::read(const pcm::CellArray &cells) const
{
    auditDataPlane(cells);
    BitVector decoded = wrapped->read(cells);
    if (haveShadow) {
        ++numChecks;
        AUDITOR_AUDIT(decoded == shadow,
                    wrapped->name()
                        << " decode no longer matches the last "
                        << "successful write: " << dumpState(cells));
    }
    return decoded;
}

void
SchemeAuditor::reset()
{
    wrapped->reset();
    haveShadow = false;
}

std::unique_ptr<scheme::Scheme>
SchemeAuditor::clone() const
{
    auto copy = std::make_unique<SchemeAuditor>(wrapped->clone());
    copy->attachDirectory(directory, blockId);
    copy->shadow = shadow;
    copy->haveShadow = haveShadow;
    copy->numWrites = numWrites;
    copy->numChecks = numChecks;
    return copy;
}

std::size_t
SchemeAuditor::metadataBits() const
{
    return wrapped->metadataBits();
}

BitVector
SchemeAuditor::exportMetadata() const
{
    return wrapped->exportMetadata();
}

void
SchemeAuditor::importMetadata(const BitVector &image)
{
    wrapped->importMetadata(image);
    // A legitimate import may change the decode; drop the shadow.
    haveShadow = false;
}

std::unique_ptr<scheme::LifetimeTracker>
SchemeAuditor::makeTracker(const scheme::TrackerOptions &opts) const
{
    return wrapped->makeTracker(opts);
}

void
SchemeAuditor::attachDirectory(pcm::FaultDirectory *dir,
                               std::uint64_t block_id)
{
    scheme::Scheme::attachDirectory(dir, block_id);
    wrapped->attachDirectory(dir, block_id);
}

bool
SchemeAuditor::requiresDirectory() const
{
    return wrapped->requiresDirectory();
}

std::unique_ptr<scheme::Scheme>
wrapWithAuditor(std::unique_ptr<scheme::Scheme> inner_scheme)
{
    return std::make_unique<SchemeAuditor>(std::move(inner_scheme));
}

} // namespace aegis::audit
