/**
 * @file
 * SchemeAuditor: a runtime invariant auditor for recovery schemes.
 *
 * The auditor is a transparent scheme::Scheme decorator. It forwards
 * every call to the wrapped scheme and, around each write/read,
 * machine-checks the invariants the simulator's correctness rests on:
 *
 *  - read-after-write round-trip fidelity against the stuck-at masks
 *    (a successful write must decode to exactly the data written);
 *  - metadata-bit budget accounting: the packed image is exactly
 *    metadataBits() wide, and for the Aegis family the real image
 *    width is cross-checked against the Table-1 budgets in cost.cc
 *    (allowing only the documented full-width-counter slack);
 *  - metadata round-trip: export -> import into a clone -> re-export
 *    reproduces the image, and the clone decodes the same data;
 *  - fail-cache consistency: every fault the attached FaultDirectory
 *    reports for this block must exist in the cell array with the
 *    same stuck value;
 *  - no premature retirement: a scheme must never report an
 *    unrecoverable block while the fault count is within its hard FTC;
 *  - Aegis structure (once per formation, memoized process-wide):
 *    Theorem 1 (every point in exactly one group per slope, groups
 *    partition the block) and Theorem 2 (any two points collide under
 *    at most one slope; cross-column pairs under exactly one),
 *    cross-checked against a freshly built CollisionRom;
 *  - Aegis failure claims: when basic Aegis / Aegis-rw declares a
 *    block unrecoverable, a brute-force sweep over all B slopes
 *    confirms that no configuration could have stored the data;
 *  - data-plane equivalence: the word-parallel hot paths (masked
 *    group inversion, assignSelect-based effective reads) are
 *    re-derived with the retained naive per-bit reference paths —
 *    readBit loops and groupOf scans — and must agree bit-for-bit.
 *
 * Violations throw InternalError via AEGIS_AUDIT with a state dump
 * (scheme name, slope, metadata image, fault list). The auditor is
 * opt-in: wrap via audit::wrapWithAuditor(), ask the factory for
 * "<scheme>+audit", or pass --audit to the benches.
 */

#ifndef AEGIS_AUDIT_SCHEME_AUDITOR_H
#define AEGIS_AUDIT_SCHEME_AUDITOR_H

#include <cstdint>
#include <memory>

#include "scheme/scheme.h"

namespace aegis::audit {

class SchemeAuditor : public scheme::Scheme
{
  public:
    /** Wrap @p inner_scheme; runs the one-time structural audit. */
    explicit SchemeAuditor(std::unique_ptr<scheme::Scheme> inner_scheme);

    const std::string &name() const override;
    std::size_t blockBits() const override;
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override;

    scheme::WriteOutcome write(pcm::CellArray &cells,
                               const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    void reset() override;
    std::unique_ptr<scheme::Scheme> clone() const override;

    std::size_t metadataBits() const override;
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<scheme::LifetimeTracker>
    makeTracker(const scheme::TrackerOptions &opts) const override;

    void attachDirectory(pcm::FaultDirectory *dir,
                         std::uint64_t block_id) override;
    bool requiresDirectory() const override;

    /** The wrapped scheme (test access; tampering bypasses checks). */
    scheme::Scheme &inner() { return *wrapped; }
    const scheme::Scheme &inner() const { return *wrapped; }

    /** Writes audited since construction (cloned counters continue). */
    std::uint64_t auditedWrites() const { return numWrites; }

    /** Individual invariant checks that have run. */
    std::uint64_t checksRun() const { return numChecks; }

    /**
     * Forget the shadow copy of the last written data. Call after
     * mutating the cell array behind the scheme's back (fault
     * injection at the *current* value is fine and needs no call).
     */
    void invalidateShadow() { haveShadow = false; }

  private:
    /** One-time Theorem 1/2 + cost.cc audit for Aegis formations. */
    void auditStructure() const;

    /** Checks common to every audit point (budget + round-trip). */
    void auditMetadata(const pcm::CellArray &cells) const;

    /** Directory entries must describe real stuck cells. */
    void auditDirectory(const pcm::CellArray &cells) const;

    /** A failed write must be a genuinely unrecoverable block. */
    void auditFailure(const pcm::CellArray &cells,
                      const BitVector &data) const;

    /** Word-parallel read/decode paths vs naive per-bit oracles. */
    void auditDataPlane(const pcm::CellArray &cells) const;

    /** Render scheme identity + fault state for violation dumps. */
    std::string dumpState(const pcm::CellArray &cells) const;

    std::unique_ptr<scheme::Scheme> wrapped;
    /** Fixed at construction; name() hands out a reference. */
    std::string auditedName;
    BitVector shadow;
    bool haveShadow = false;
    mutable std::uint64_t numWrites = 0;
    mutable std::uint64_t numChecks = 0;
};

/** Convenience wrapper used by the factory's "+audit" suffix. */
std::unique_ptr<scheme::Scheme>
wrapWithAuditor(std::unique_ptr<scheme::Scheme> inner_scheme);

} // namespace aegis::audit

#endif // AEGIS_AUDIT_SCHEME_AUDITOR_H
