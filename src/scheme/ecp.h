/**
 * @file
 * ECP — Error Correcting Pointers (Schechter et al., ISCA 2010).
 *
 * The pointer-based baseline of the paper: each correction entry is a
 * ceil(log2 n)-bit pointer naming a faulty cell plus one replacement
 * bit that stores data on the faulty cell's behalf. ECP-N holds N
 * entries; overhead is N*(ceil(log2 n)+1)+1 bits (the +1 is the
 * "entries exhausted" full flag), i.e. 11/21/.../101 bits for a
 * 512-bit block as in Table 1. Hard FTC == soft FTC == N: the N+1-th
 * fault is fatal regardless of data patterns.
 *
 * Replacement bits are modeled as ideal SRAM-side storage; correcting
 * failed replacement cells via entry chaining (ECP's "pointer to a
 * pointer") is out of scope here, as it is in the paper's evaluation.
 */

#ifndef AEGIS_SCHEME_ECP_H
#define AEGIS_SCHEME_ECP_H

#include <vector>

#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::scheme {

class EcpScheme : public Scheme
{
  public:
    /**
     * @param block_bits protected block size (e.g. 512).
     * @param num_entries the N of ECP-N.
     */
    EcpScheme(std::size_t block_bits, std::size_t num_entries);

    const std::string &name() const override;
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override { return entriesMax; }

    AEGIS_HOT WriteOutcome write(pcm::CellArray &cells,
                                 const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    /** Lane-parallel fast path for lanes with no entries and no
     *  conflicting stuck cell; other lanes stage per-block. */
    AEGIS_HOT void writeBatch(pcm::CellArrayBatch &cells,
                              const pcm::LaneMatrix &data,
                              std::span<WriteOutcome> outcomes,
                              BatchWorkspace &ws) override;
    AEGIS_HOT void readBatch(const pcm::CellArrayBatch &cells,
                             pcm::LaneMatrix &out,
                             BatchWorkspace &ws) const override;
    void reset() override;
    std::unique_ptr<Scheme> clone() const override;

    /** Packed image: entry counter + N (pointer, replacement) pairs.
     *  The explicit counter costs ceil(log2(N+1)) bits where Table 1
     *  accounts a single "full" flag, so metadataBits() can exceed
     *  overheadBits() by a couple of bits. */
    std::size_t metadataBits() const override;
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const override;

    /** Correction entries currently allocated. */
    std::size_t entriesUsed() const { return entries.size(); }

    /** Static cost model (Table 1 row). */
    static std::size_t costBits(std::size_t block_bits,
                                std::size_t num_entries);

  private:
    struct Entry
    {
        std::uint32_t pos;
        bool replacement;
    };

    const Entry *findEntry(std::size_t pos) const;

    std::size_t bits;
    std::size_t entriesMax;
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;
    std::vector<Entry> entries;
    /** Reusable verification scratch so steady-state writes stay
     *  allocation-free once warmed. */
    BitVector readbackWs;
    BitVector diffWs;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_ECP_H
