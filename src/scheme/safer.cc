#include "scheme/safer.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/bit_io.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcm/cell_array_batch.h"
#include "scheme/batch.h"
#include "util/error.h"

namespace aegis::scheme {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::size_t
log2Exact(std::size_t v)
{
    return static_cast<std::size_t>(std::countr_zero(v));
}

std::size_t
ceilLog2(std::size_t v)
{
    return v <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
}

/**
 * Online recoverability model: mirrors the functional scheme's
 * re-partitioning (greedy appending, plus exhaustive subset search in
 * cache mode) at fault-arrival granularity.
 */
class SaferTracker : public LifetimeTracker
{
  public:
    SaferTracker(std::size_t block_bits, std::size_t max_fields,
                 bool cache_mode)
        : bits(block_bits), cacheMode(cache_mode),
          part(block_bits, max_fields, /*exhaustive=*/cache_mode)
    {}

    FaultVerdict
    onFault(const pcm::Fault &fault) override
    {
        if (dead)
            return FaultVerdict::Dead;
        faults.push_back(fault);
        std::uint32_t reps = 0;
        const bool ok = part.separate(faults, reps);
        numRepartitions += reps;
        if (!ok)
            dead = true;
        return dead ? FaultVerdict::Dead : FaultVerdict::Alive;
    }

    double
    writeFailureProbability(Rng &) override
    {
        // SAFER tolerates any data pattern once the faults are
        // separated: a lone fault per group is masked by inversion.
        return dead ? 1.0 : 0.0;
    }

    std::vector<std::uint32_t>
    amplifiedCells() const override
    {
        // Cache-less SAFER re-writes every fault-bearing group after
        // the initial program pass; the cache variant knows the
        // target pattern up front and writes once.
        if (cacheMode || faults.empty() || dead)
            return {};
        std::vector<bool> hot(part.groupCount(), false);
        for (const pcm::Fault &f : faults)
            hot[part.groupOf(f.pos)] = true;
        std::vector<std::uint32_t> out;
        for (std::size_t pos = 0; pos < bits; ++pos) {
            if (hot[part.groupOf(pos)])
                out.push_back(static_cast<std::uint32_t>(pos));
        }
        return out;
    }

    std::size_t faultCount() const override { return faults.size(); }
    std::uint64_t repartitions() const override { return numRepartitions; }
    bool dataIndependent() const override { return true; }

  private:
    std::size_t bits;
    bool cacheMode;
    SaferPartition part;
    pcm::FaultSet faults;
    bool dead = false;
    std::uint64_t numRepartitions = 0;
};

} // namespace

SaferPartition::SaferPartition(std::size_t block_bits,
                               std::size_t max_fields,
                               bool exhaustive_search)
    : bits(block_bits), maxFields(max_fields),
      exhaustive(exhaustive_search)
{
    AEGIS_REQUIRE(isPowerOfTwo(block_bits),
                  "SAFER requires a power-of-two block size");
    addrBits = log2Exact(block_bits);
    AEGIS_REQUIRE(max_fields <= addrBits,
                  "partition vector cannot exceed the address width");
    rebuildMasks();
}

void
SaferPartition::rebuildMasks()
{
    if (groupMasks.size() != groupCount() ||
        (!groupMasks.empty() && groupMasks.front().size() != bits)) {
        groupMasks.assign(groupCount(), BitVector(bits));
    } else {
        for (BitVector &m : groupMasks)
            m.fill(false);
    }
    for (std::size_t pos = 0; pos < bits; ++pos)
        groupMasks[groupOf(pos)].set(pos, true);
}

const BitVector *
SaferPartition::groupMask(std::size_t group) const
{
    AEGIS_ASSERT(group < groupMasks.size(), "group out of range");
    return &groupMasks[group];
}

std::size_t
SaferPartition::groupOf(std::size_t pos) const
{
    AEGIS_ASSERT(pos < bits, "position out of range");
    std::size_t g = 0;
    for (std::size_t i = 0; i < fieldSel.size(); ++i)
        g |= ((pos >> fieldSel[i]) & 1u) << i;
    return g;
}

bool
SaferPartition::separatedBy(const pcm::FaultSet &faults,
                            const std::vector<std::uint8_t> &sel) const
{
    const auto value = [&sel](std::uint32_t pos) {
        std::size_t g = 0;
        for (std::size_t i = 0; i < sel.size(); ++i)
            g |= ((pos >> sel[i]) & 1u) << i;
        return g;
    };
    for (std::size_t i = 0; i < faults.size(); ++i) {
        for (std::size_t j = i + 1; j < faults.size(); ++j) {
            if (value(faults[i].pos) == value(faults[j].pos))
                return false;
        }
    }
    return true;
}

bool
SaferPartition::separated(const pcm::FaultSet &faults) const
{
    return separatedBy(faults, fieldSel);
}

bool
SaferPartition::searchExhaustive(const pcm::FaultSet &faults)
{
    // Enumerate address-bit subsets by increasing size so the chosen
    // vector stays as short as possible (fewer active groups).
    for (std::size_t size = 0; size <= maxFields; ++size) {
        std::vector<std::uint8_t> sel;
        // Iterate all q-bit masks with popcount == size.
        for (std::size_t mask = 0; mask < (1ull << addrBits); ++mask) {
            if (static_cast<std::size_t>(std::popcount(mask)) != size)
                continue;
            sel.clear();
            for (std::size_t b = 0; b < addrBits; ++b) {
                if (mask & (1ull << b))
                    sel.push_back(static_cast<std::uint8_t>(b));
            }
            if (separatedBy(faults, sel)) {
                fieldSel = sel;
                return true;
            }
        }
    }
    return false;
}

bool
SaferPartition::separate(const pcm::FaultSet &faults,
                         std::uint32_t &repartitions)
{
    if (separated(faults))
        return true;

    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRecover);
    // Greedy: as long as fields are free, resolve one colliding pair
    // by appending an address bit at which the pair differs, picking
    // the candidate that leaves the fewest colliding pairs overall
    // (SAFER's re-partition heuristic). Appending only refines the
    // partition, so previously separated pairs stay separated.
    while (fieldSel.size() < maxFields) {
        const pcm::Fault *a = nullptr, *b = nullptr;
        for (std::size_t i = 0; i < faults.size() && !a; ++i) {
            for (std::size_t j = i + 1; j < faults.size(); ++j) {
                if (groupOf(faults[i].pos) == groupOf(faults[j].pos)) {
                    a = &faults[i];
                    b = &faults[j];
                    break;
                }
            }
        }
        if (!a) {
            rebuildMasks();
            return true;    // separated along the way
        }
        const std::uint32_t diff = a->pos ^ b->pos;
        AEGIS_ASSERT(diff != 0, "two faults at the same position");

        std::uint8_t best_bit = 0;
        std::size_t best_pairs = std::numeric_limits<std::size_t>::max();
        for (std::size_t bit = 0; bit < addrBits; ++bit) {
            if (!((diff >> bit) & 1u))
                continue;    // must split the colliding pair
            fieldSel.push_back(static_cast<std::uint8_t>(bit));
            std::size_t pairs = 0;
            for (std::size_t i = 0; i < faults.size(); ++i) {
                for (std::size_t j = i + 1; j < faults.size(); ++j) {
                    pairs += groupOf(faults[i].pos) ==
                             groupOf(faults[j].pos);
                }
            }
            fieldSel.pop_back();
            if (pairs < best_pairs) {
                best_pairs = pairs;
                best_bit = static_cast<std::uint8_t>(bit);
            }
        }
        AEGIS_ASSERT(std::find(fieldSel.begin(), fieldSel.end(),
                               best_bit) == fieldSel.end(),
                     "colliding faults must agree on selected fields");
        fieldSel.push_back(best_bit);
        ++repartitions;
        obs::bump(obs::Counter::SaferRepartitions);
        if (separated(faults)) {
            rebuildMasks();
            return true;
        }
    }

    if (exhaustive) {
        ++repartitions;
        obs::bump(obs::Counter::SaferRepartitions);
        const bool ok = searchExhaustive(faults);
        rebuildMasks();
        return ok;
    }
    rebuildMasks();
    return false;
}

void
SaferPartition::resetConfig()
{
    fieldSel.clear();
    rebuildMasks();
}

void
SaferPartition::setFields(std::vector<std::uint8_t> fields)
{
    AEGIS_REQUIRE(fields.size() <= maxFields,
                  "too many partition fields");
    for (std::uint8_t f : fields)
        AEGIS_REQUIRE(f < addrBits, "field position out of range");
    fieldSel = std::move(fields);
    rebuildMasks();
}

SaferScheme::SaferScheme(std::size_t block_bits, std::size_t num_groups,
                         bool use_cache)
    : bits(block_bits), numGroups(num_groups), cacheMode(use_cache),
      schemeName("safer" + std::to_string(num_groups) +
                 (use_cache ? "-cache" : "")),
      part(block_bits, isPowerOfTwo(num_groups) ? log2Exact(num_groups) : 0,
           use_cache),
      invVector(num_groups)
{
    AEGIS_REQUIRE(isPowerOfTwo(num_groups) && num_groups <= block_bits,
                  "SAFER-N needs a power-of-two N <= block size");
    maxFields = log2Exact(num_groups);
}

const std::string &
SaferScheme::name() const
{
    return schemeName;
}

std::size_t
SaferScheme::costBits(std::size_t block_bits, std::size_t num_groups)
{
    AEGIS_REQUIRE(isPowerOfTwo(block_bits) && isPowerOfTwo(num_groups),
                  "SAFER cost model needs power-of-two sizes");
    const std::size_t q = log2Exact(block_bits);
    const std::size_t k = log2Exact(num_groups);
    return k * ceilLog2(q) + num_groups + ceilLog2(k + 1);
}

std::size_t
SaferScheme::overheadBits() const
{
    return costBits(bits, numGroups);
}

AEGIS_HOT WriteOutcome
SaferScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(!cacheMode || directory,
                  "SAFER-cache needs an attached fault directory");
    pcm::FaultSet &known = knownScratch;
    known.clear();
    if (cacheMode)
        directory->lookupInto(blockId, known);
    const std::size_t known_before = known.size();

    WriteOutcome outcome =
        writeWithInversion(cells, data, part, invVector, known, writeWs);

    if (cacheMode)
        ++outcome.io.metadataLookups;
    if (directory) {
        for (std::size_t i = known_before; i < known.size(); ++i) {
            directory->record(blockId, known[i]);
            ++outcome.io.metadataUpdates;
        }
    }
    return outcome;
}

AEGIS_HOT void
SaferScheme::writeBatch(pcm::CellArrayBatch &cells,
                        const pcm::LaneMatrix &data,
                        std::span<WriteOutcome> outcomes,
                        BatchWorkspace &ws)
{
    detail::inversionWriteBatch(
        *this, cells, data, outcomes, ws, cacheMode,
        [](SaferScheme *s) -> BitVector & { return s->invVector; });
}

AEGIS_HOT void
SaferScheme::readBatch(const pcm::CellArrayBatch &cells,
                       pcm::LaneMatrix &out, BatchWorkspace &ws) const
{
    detail::inversionReadBatch(
        *this, cells, out, ws,
        [](const SaferScheme *s) -> const BitVector & {
            return s->invVector;
        },
        [](const SaferScheme *s, std::size_t g) {
            return s->part.groupMask(g);
        });
}

BitVector
SaferScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
SaferScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    invVector.forEachSetBit([&](std::size_t g) {
        out.invertMasked(*part.groupMask(g));
    });
}

void
SaferScheme::reset()
{
    part.resetConfig();
    invVector.fill(false);
}

std::unique_ptr<Scheme>
SaferScheme::clone() const
{
    return std::make_unique<SaferScheme>(*this);
}

BitVector
SaferScheme::exportMetadata() const
{
    const std::size_t field_width = ceilLog2(part.addressBits());
    const std::size_t counter_width = ceilLog2(maxFields + 1);
    BitWriter w(overheadBits());
    w.writeBits(part.fields().size(), counter_width);
    for (std::size_t i = 0; i < maxFields; ++i) {
        w.writeBits(i < part.fields().size() ? part.fields()[i] : 0,
                    field_width);
    }
    w.writeVector(invVector);
    return w.finish();
}

void
SaferScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == overheadBits(),
                  "SAFER metadata image has the wrong width");
    const std::size_t field_width = ceilLog2(part.addressBits());
    const std::size_t counter_width = ceilLog2(maxFields + 1);
    BitReader r(image);
    const std::size_t used = r.readBits(counter_width);
    AEGIS_REQUIRE(used <= maxFields, "corrupt SAFER field counter");
    std::vector<std::uint8_t> fields;
    for (std::size_t i = 0; i < maxFields; ++i) {
        const auto f = static_cast<std::uint8_t>(r.readBits(field_width));
        if (i < used)
            fields.push_back(f);
    }
    part.setFields(std::move(fields));
    invVector = r.readVector(numGroups);
}

std::unique_ptr<LifetimeTracker>
SaferScheme::makeTracker(const TrackerOptions &) const
{
    return std::make_unique<SaferTracker>(bits, maxFields, cacheMode);
}

} // namespace aegis::scheme
