/**
 * @file
 * (72,64) Hamming SEC-DED — the conventional ECC yardstick.
 *
 * The paper uses the 12.5% overhead of (72,64) Hamming coding as the
 * space budget any candidate scheme should stay under (§3.2). We
 * implement the real codec so the ECC baseline can participate in the
 * lifetime experiments: each 64-bit word of a block carries 8 check
 * bits; a single stuck-at-Wrong fault per word is corrected through
 * the syndrome, two are only detected (data loss either way for
 * permanent faults).
 *
 * Check bits are modeled as ideal side storage, mirroring how the
 * paper treats every scheme's metadata.
 */

#ifndef AEGIS_SCHEME_HAMMING_H
#define AEGIS_SCHEME_HAMMING_H

#include <cstdint>
#include <vector>

#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::scheme {

/** Extended Hamming (72,64) encoder/decoder. */
class HammingCodec
{
  public:
    /** Decode status. */
    enum class Status
    {
        Clean,          ///< no error
        Corrected,      ///< single-bit error corrected
        Uncorrectable,  ///< double-bit error detected (or worse)
    };

    /** Compute the 8 check bits for @p data. */
    static std::uint8_t encode(std::uint64_t data);

    /**
     * Decode @p data with stored check bits @p check; corrects
     * @p data in place when a single-bit data error is found.
     */
    static Status decode(std::uint64_t &data, std::uint8_t check);
};

/** ECC over an n-bit block: one (72,64) codeword per 64-bit word. */
class HammingScheme : public Scheme
{
  public:
    explicit HammingScheme(std::size_t block_bits);

    const std::string &name() const override
    {
        static const std::string n = "hamming72_64";
        return n;
    }
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override { return (bits / 64) * 8; }
    std::size_t hardFtc() const override { return 1; }

    AEGIS_HOT WriteOutcome write(pcm::CellArray &cells,
                                 const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    void reset() override;
    std::unique_ptr<Scheme> clone() const override;

    /** Packed: 8 check bits per 64-bit word. */
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const override;

  private:
    std::uint64_t wordOf(const BitVector &v, std::size_t w) const;

    std::size_t bits;
    std::vector<std::uint8_t> checkBits;
    /** Reusable decode scratch so write verification stays
     *  allocation-free once warmed. */
    BitVector decodedWs;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_HAMMING_H
