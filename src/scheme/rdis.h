/**
 * @file
 * RDIS — Recursively Defined Invertible Set (Maddah et al., DSN 2012).
 *
 * Reconstructed from the description in the Aegis paper (the original
 * is not available to this reproduction; see DESIGN.md §4). Bits are
 * arranged on an r x c grid. Given the faults of the block and their
 * per-write stuck-at-Wrong/Right classification (RDIS *requires* fault
 * knowledge, so the paper always grants it a sufficiently large fail
 * cache), the scheme computes a set of cells to invert such that every
 * W fault is inverted and no R fault is:
 *
 *   level 1 marks the rows and columns of all W faults; the level-1
 *   set S1 is every cell on a marked row AND a marked column (all W
 *   faults are in S1). R faults caught in S1 are violations; level 2
 *   marks their rows/columns and excludes S2 = S1 cap (marked2 rows x
 *   marked2 cols). W faults wrongly excluded by S2 would be level-3
 *   violations, and so on. A cell is inverted iff it is included at an
 *   odd number of levels. RDIS-d stores d-1 levels of row/column
 *   marks; recovery fails when violations survive the last level.
 *
 * Overhead: (d-1)*(r+c) mark bits + 1 flag = 65 bits (25.4%) for a
 * 256-bit block and 97 bits (18.9%) for 512 bits at d=3, matching the
 * 25%/19% overheads quoted in the Aegis paper. Hard FTC of RDIS-3 is
 * 3 (property-tested), also as the paper states.
 */

#ifndef AEGIS_SCHEME_RDIS_H
#define AEGIS_SCHEME_RDIS_H

#include <cstdint>
#include <vector>

#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::scheme {

/** Row/column marks of all stored recursion levels. */
struct RdisMarks
{
    /** marks[l] = {row bits, col bits} of level l (0-based). */
    std::vector<std::pair<BitVector, BitVector>> levels;
};

/**
 * The pure invertible-set construction, shared by the functional
 * scheme and the Monte-Carlo tracker.
 */
class RdisSolver
{
  public:
    /**
     * @param rows grid height, @param cols grid width, @param depth
     * the d of RDIS-d (d-1 stored mark levels).
     */
    RdisSolver(std::size_t rows, std::size_t cols, std::size_t depth);

    /**
     * Compute marks separating W faults (to invert) from R faults
     * (to leave) at cell granularity.
     *
     * @param wrong positions (bit offsets) of stuck-at-Wrong faults.
     * @param right positions of stuck-at-Right faults.
     * @param marks out: the stored marks when successful.
     * @return false when violations survive the last level.
     */
    bool solve(const std::vector<std::uint32_t> &wrong,
               const std::vector<std::uint32_t> &right,
               RdisMarks &marks) const;

    /** Whether the cell at bit offset @p pos is inverted by @p marks. */
    bool inverted(const RdisMarks &marks, std::size_t pos) const;

    /** Inversion mask over the whole block for @p marks. */
    BitVector inversionMask(const RdisMarks &marks,
                            std::size_t block_bits) const;

    /** inversionMask into @p mask, reusing its storage. */
    void inversionMaskInto(const RdisMarks &marks,
                           std::size_t block_bits,
                           BitVector &mask) const;

    std::size_t rows() const { return numRows; }
    std::size_t cols() const { return numCols; }
    std::size_t depth() const { return numLevels + 1; }
    std::size_t markLevels() const { return numLevels; }

    std::size_t rowOf(std::size_t pos) const { return pos / numCols; }
    std::size_t colOf(std::size_t pos) const { return pos % numCols; }

  private:
    std::size_t numRows;
    std::size_t numCols;
    std::size_t numLevels;
};

/** The complete RDIS-d scheme. Requires an attached fault directory. */
class RdisScheme : public Scheme
{
  public:
    /**
     * @param block_bits block size; arranged on a rows x cols grid.
     * @param rows grid height (the paper-matching default is 16).
     * @param depth recursion depth d (default 3, as evaluated in both
     *        the RDIS and Aegis papers).
     */
    explicit RdisScheme(std::size_t block_bits, std::size_t rows = 16,
                        std::size_t depth = 3);

    const std::string &name() const override;
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override { return solver.depth(); }

    WriteOutcome write(pcm::CellArray &cells,
                       const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    void reset() override;
    std::unique_ptr<Scheme> clone() const override;

    /** Packed: (d-1) levels of row+column marks + 1 flag bit. */
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const override;

    bool requiresDirectory() const override { return true; }

    /** Static cost model: (d-1)*(r+c)+1. */
    static std::size_t costBits(std::size_t block_bits, std::size_t rows,
                                std::size_t depth);

    const RdisSolver &getSolver() const { return solver; }

  private:
    /** Recompute the cached inversion mask from the current marks.
     *  Must run after every marks mutation (write/reset/import). */
    void refreshMask();

    std::size_t bits;
    RdisSolver solver;
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;
    RdisMarks marks;
    /** Per-bit inversion implied by marks, cached so reads are one
     *  word-parallel XOR instead of a per-bit mask rebuild. */
    BitVector invMask;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_RDIS_H
