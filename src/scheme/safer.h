/**
 * @file
 * SAFER — Stuck-At-Fault Error Recovery (Seong et al., MICRO 2010).
 *
 * The partition-and-inversion baseline. A 2^q-bit block is partitioned
 * by selecting up to k bit positions of the in-block offset address
 * (the paper's "partition vector"); the group of a bit is the value of
 * its address at the selected positions, so there are up to N = 2^k
 * groups. When two faults collide in a group, SAFER appends an address
 * bit position at which they differ, splitting every group in two.
 * Since refinement never merges groups, k fields always separate k+1
 * faults: hard FTC = k+1.
 *
 * Without a fail cache only greedy appending is possible and the block
 * dies when the vector is full and a collision remains. With the cache
 * ("SAFERN-cache" in the paper) all fault positions are known, so we
 * search every C(q, <=k) field subset for one separating all faults —
 * this is the source of the cache variant's longer lifetime in
 * Figures 8 and 9.
 *
 * Overhead (Table 1): k*ceil(log2 q) field pointers + 2^k inversion
 * flags + ceil(log2(k+1)) used-field counter.
 */

#ifndef AEGIS_SCHEME_SAFER_H
#define AEGIS_SCHEME_SAFER_H

#include <cstdint>
#include <vector>

#include "scheme/inversion_driver.h"
#include "scheme/scheme.h"
#include "util/hot.h"

namespace aegis::scheme {

/** SAFER's address-bit-selection partition (a GroupPartition policy). */
class SaferPartition : public GroupPartition
{
  public:
    /**
     * @param block_bits block size; must be a power of two.
     * @param max_fields k, the maximum partition-vector length.
     * @param exhaustive allow cache-assisted global re-partitioning
     *        (search all field subsets) when greedy appending fails.
     */
    SaferPartition(std::size_t block_bits, std::size_t max_fields,
                   bool exhaustive);

    std::size_t groupCount() const override { return 1ull << maxFields; }
    std::size_t groupOf(std::size_t pos) const override;
    bool separate(const pcm::FaultSet &faults,
                  std::uint32_t &repartitions) override;
    void resetConfig() override;

    /** Membership masks are rebuilt eagerly whenever the field
     *  selection changes, so this is a plain lookup. */
    const BitVector *groupMask(std::size_t group) const override;

    /** Currently selected address-bit positions (LSB field first). */
    const std::vector<std::uint8_t> &fields() const { return fieldSel; }

    /** Restore a field selection (metadata import). */
    void setFields(std::vector<std::uint8_t> fields);

    std::size_t addressBits() const { return addrBits; }

  private:
    bool separated(const pcm::FaultSet &faults) const;
    bool separatedBy(const pcm::FaultSet &faults,
                     const std::vector<std::uint8_t> &sel) const;
    bool searchExhaustive(const pcm::FaultSet &faults);
    void rebuildMasks();

    std::size_t bits;
    std::size_t addrBits;
    std::size_t maxFields;
    bool exhaustive;
    std::vector<std::uint8_t> fieldSel;
    std::vector<BitVector> groupMasks;
};

/** The complete SAFER scheme (metadata + write/read protocol). */
class SaferScheme : public Scheme
{
  public:
    /**
     * @param block_bits block size; power of two.
     * @param num_groups N of SAFER-N; power of two, <= block_bits.
     * @param use_cache operate as SAFERN-cache (requires a directory
     *        attached before writes).
     */
    SaferScheme(std::size_t block_bits, std::size_t num_groups,
                bool use_cache);

    const std::string &name() const override;
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override;
    std::size_t hardFtc() const override { return maxFields + 1; }

    AEGIS_HOT WriteOutcome write(pcm::CellArray &cells,
                                 const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    /** Lane-parallel fast path for speculatively clean lanes (see
     *  scheme::detail::inversionWriteBatch); SAFER-cache stages
     *  per-block. */
    AEGIS_HOT void writeBatch(pcm::CellArrayBatch &cells,
                              const pcm::LaneMatrix &data,
                              std::span<WriteOutcome> outcomes,
                              BatchWorkspace &ws) override;
    AEGIS_HOT void readBatch(const pcm::CellArrayBatch &cells,
                             pcm::LaneMatrix &out,
                             BatchWorkspace &ws) const override;
    void reset() override;
    std::unique_ptr<Scheme> clone() const override;

    /** Packed exactly as Table 1 accounts: used-field counter +
     *  k field selectors + N inversion flags. */
    BitVector exportMetadata() const override;
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const override;

    bool requiresDirectory() const override { return cacheMode; }

    /** Static cost model (Table 1 row). */
    static std::size_t costBits(std::size_t block_bits,
                                std::size_t num_groups);

    const SaferPartition &partition() const { return part; }
    const BitVector &inversionVector() const { return invVector; }

  private:
    std::size_t bits;
    std::size_t numGroups;
    std::size_t maxFields;
    bool cacheMode;
    /** Fixed at construction; name() hands out a reference. */
    std::string schemeName;
    SaferPartition part;
    BitVector invVector;
    InversionWorkspace writeWs;
    /** Reusable fault-lookup scratch so cache-mode writes stay
     *  allocation-free once warmed. */
    pcm::FaultSet knownScratch;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_SAFER_H
