#include "scheme/inversion_driver.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::scheme {

BitVector
applyGroupInversion(const BitVector &data, const GroupPartition &partition,
                    const BitVector &inv)
{
    AEGIS_ASSERT(inv.size() == partition.groupCount(),
                 "inversion vector width mismatch");
    BitVector target = data;
    if (inv.none())
        return target;
    for (std::size_t pos = 0; pos < data.size(); ++pos) {
        if (inv.get(partition.groupOf(pos)))
            target.flip(pos);
    }
    return target;
}

AEGIS_HOT void
applyGroupInversionInto(const BitVector &data,
                        const GroupPartition &partition,
                        const BitVector &inv, BitVector &out)
{
    AEGIS_ASSERT(inv.size() == partition.groupCount(),
                 "inversion vector width mismatch");
    out.assignFrom(data);
    if (inv.none())
        return;
    if (partition.groupMask(inv.firstSetBit()) != nullptr) {
        inv.forEachSetBit([&](std::size_t g) {
            out.invertMasked(*partition.groupMask(g));
        });
        return;
    }
    // Per-bit fallback for policies without precomputed masks.
    for (std::size_t pos = 0; pos < data.size(); ++pos) {
        if (inv.get(partition.groupOf(pos)))
            out.flip(pos);
    }
}

AEGIS_HOT WriteOutcome
writeWithInversion(pcm::CellArray &cells, const BitVector &data,
                   GroupPartition &partition, BitVector &inv,
                   pcm::FaultSet &known_faults, InversionWorkspace &ws)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    WriteOutcome outcome;
    if (inv.size() != partition.groupCount())
        inv = BitVector(partition.groupCount());
    else
        inv.fill(false);

    if (ws.knownMask.size() != cells.size())
        ws.knownMask = BitVector(cells.size());
    else
        ws.knownMask.fill(false);
    for (const pcm::Fault &f : known_faults)
        ws.knownMask.set(f.pos, true);

    // Each retry discovers at least one new fault, so the loop is
    // bounded by the block size; the extra slack is pure paranoia.
    const std::size_t max_iters = cells.size() + 2;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        if (!partition.separate(known_faults, outcome.repartitions)) {
            outcome.ok = false;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }

        inv.fill(false);
        for (const pcm::Fault &f : known_faults) {
            if (f.stuck != data.get(f.pos))
                inv.set(partition.groupOf(f.pos), true);
        }

        obs::bump(obs::Counter::GroupInversions, inv.popcount());

        applyGroupInversionInto(data, partition, inv, ws.target);
        cells.writeDifferential(ws.target);
        ++outcome.programPasses;
        ++outcome.io.programPasses;
        obs::bump(obs::Counter::ProgramPasses);

        cells.readInto(ws.readback);
        ++outcome.io.verifyReads;
        ws.diff.assignFrom(ws.readback);
        ws.diff.xorAssign(ws.target);
        if (ws.diff.none()) {
            outcome.ok = true;
            outcome.io.repartitions = outcome.repartitions;
            return outcome;
        }
        obs::bump(obs::Counter::VerifyMismatches);

        ws.diff.forEachSetBit([&](std::size_t pos) {
            AEGIS_ASSERT(!ws.knownMask.get(pos),
                         "verification mismatch at an already-known fault");
            ws.knownMask.set(pos, true);
            // aegis-lint: allow(HOT-ALLOC grows only when a NEW fault is discovered — the cold branch by definition)
            known_faults.push_back(
                pcm::Fault{static_cast<std::uint32_t>(pos),
                           ws.readback.get(pos)});
            ++outcome.newFaults;
        });
    }
    throw InternalError("partition-and-inversion write did not converge");
}

WriteOutcome
writeWithInversion(pcm::CellArray &cells, const BitVector &data,
                   GroupPartition &partition, BitVector &inv,
                   pcm::FaultSet &known_faults)
{
    InversionWorkspace ws;
    return writeWithInversion(cells, data, partition, inv, known_faults,
                              ws);
}

} // namespace aegis::scheme
