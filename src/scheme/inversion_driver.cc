#include "scheme/inversion_driver.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::scheme {

BitVector
applyGroupInversion(const BitVector &data, const GroupPartition &partition,
                    const BitVector &inv)
{
    AEGIS_ASSERT(inv.size() == partition.groupCount(),
                 "inversion vector width mismatch");
    BitVector target = data;
    if (inv.none())
        return target;
    for (std::size_t pos = 0; pos < data.size(); ++pos) {
        if (inv.get(partition.groupOf(pos)))
            target.flip(pos);
    }
    return target;
}

WriteOutcome
writeWithInversion(pcm::CellArray &cells, const BitVector &data,
                   GroupPartition &partition, BitVector &inv,
                   pcm::FaultSet &known_faults)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    WriteOutcome outcome;
    inv = BitVector(partition.groupCount());

    // Each retry discovers at least one new fault, so the loop is
    // bounded by the block size; the extra slack is pure paranoia.
    const std::size_t max_iters = cells.size() + 2;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        if (!partition.separate(known_faults, outcome.repartitions)) {
            outcome.ok = false;
            return outcome;
        }

        inv.fill(false);
        for (const pcm::Fault &f : known_faults) {
            if (f.stuck != data.get(f.pos))
                inv.set(partition.groupOf(f.pos), true);
        }

        obs::bump(obs::Counter::GroupInversions, inv.popcount());

        const BitVector target = applyGroupInversion(data, partition, inv);
        cells.writeDifferential(target);
        ++outcome.programPasses;
        obs::bump(obs::Counter::ProgramPasses);

        const BitVector readback = cells.read();
        const BitVector diff = readback ^ target;
        if (diff.none()) {
            outcome.ok = true;
            return outcome;
        }
        obs::bump(obs::Counter::VerifyMismatches);

        for (std::size_t pos : diff.setBits()) {
            const auto pos32 = static_cast<std::uint32_t>(pos);
            const bool already = std::any_of(
                known_faults.begin(), known_faults.end(),
                [pos32](const pcm::Fault &f) { return f.pos == pos32; });
            AEGIS_ASSERT(!already,
                         "verification mismatch at an already-known fault");
            known_faults.push_back(pcm::Fault{pos32, readback.get(pos)});
            ++outcome.newFaults;
        }
    }
    throw InternalError("partition-and-inversion write did not converge");
}

} // namespace aegis::scheme
