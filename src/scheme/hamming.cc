#include "scheme/hamming.h"

#include <array>
#include <bit>

#include "util/bit_io.h"

#include "util/error.h"

namespace aegis::scheme {

namespace {

/** Codeword position (1..71) of each data bit; parity bits sit at the
 *  powers of two. */
struct PositionTables
{
    std::array<std::uint8_t, 64> dataToPos{};
    std::array<std::int8_t, 72> posToData{};

    PositionTables()
    {
        posToData.fill(-1);
        std::size_t d = 0;
        for (std::uint8_t pos = 1; pos <= 71; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue;    // parity position
            dataToPos[d] = pos;
            posToData[pos] = static_cast<std::int8_t>(d);
            ++d;
        }
        AEGIS_ASSERT(d == 64, "Hamming table construction is broken");
    }
};

const PositionTables &
tables()
{
    static const PositionTables t;
    return t;
}

bool
parity64(std::uint64_t v)
{
    return (std::popcount(v) & 1) != 0;
}

/**
 * ECC tracker. Let word w hold m_w faults; a uniformly random write
 * classifies each fault as Wrong independently with probability 1/2,
 * and the word survives iff at most one fault is Wrong:
 * P(word ok) = (1 + m_w) / 2^m_w. The per-write failure probability
 * is exact: 1 - prod_w (1 + m_w) / 2^m_w.
 */
class HammingTracker : public LifetimeTracker
{
  public:
    explicit HammingTracker(std::size_t words)
        : faultsPerWord(words, 0)
    {}

    FaultVerdict
    onFault(const pcm::Fault &fault) override
    {
        ++faultsPerWord[fault.pos / 64];
        ++faults;
        return FaultVerdict::Alive;    // all-Right labelings always work
    }

    double
    writeFailureProbability(Rng &) override
    {
        double ok = 1.0;
        for (std::size_t m : faultsPerWord) {
            if (m > 0) {
                ok *= static_cast<double>(1 + m) /
                      static_cast<double>(1ull << m);
            }
        }
        return 1.0 - ok;
    }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }

    std::size_t faultCount() const override { return faults; }

  private:
    std::vector<std::size_t> faultsPerWord;
    std::size_t faults = 0;
};

} // namespace

std::uint8_t
HammingCodec::encode(std::uint64_t data)
{
    const PositionTables &t = tables();
    std::uint8_t syndrome = 0;
    for (std::uint64_t rest = data; rest;) {
        const int d = std::countr_zero(rest);
        rest &= rest - 1;
        syndrome ^= t.dataToPos[static_cast<std::size_t>(d)];
    }
    // Parity bit at position 2^i contributes 2^i to the syndrome, so
    // setting the check bits equal to the data syndrome zeroes it.
    std::uint8_t check = syndrome & 0x7f;
    const bool overall =
        parity64(data) ^ parity64(static_cast<std::uint64_t>(check));
    if (overall)
        check |= 0x80;
    return check;
}

HammingCodec::Status
HammingCodec::decode(std::uint64_t &data, std::uint8_t check)
{
    const PositionTables &t = tables();
    std::uint8_t syndrome = check & 0x7f;
    for (std::uint64_t rest = data; rest;) {
        const int d = std::countr_zero(rest);
        rest &= rest - 1;
        syndrome ^= t.dataToPos[static_cast<std::size_t>(d)];
    }
    const bool total_parity =
        parity64(data) ^
        parity64(static_cast<std::uint64_t>(check) & 0x7f) ^
        ((check >> 7) & 1);

    if (syndrome == 0)
        return total_parity ? Status::Corrected    // overall-parity bit
                            : Status::Clean;
    if (!total_parity)
        return Status::Uncorrectable;    // even error count >= 2

    if (syndrome <= 71 && t.posToData[syndrome] >= 0)
        data ^= 1ull << t.posToData[syndrome];
    // else: the flipped bit was a parity bit; data is intact.
    return Status::Corrected;
}

HammingScheme::HammingScheme(std::size_t block_bits)
    : bits(block_bits), checkBits(block_bits / 64, 0)
{
    AEGIS_REQUIRE(block_bits >= 64 && block_bits % 64 == 0,
                  "Hamming scheme needs a multiple of 64 bits");
}

std::uint64_t
HammingScheme::wordOf(const BitVector &v, std::size_t w) const
{
    return v.words()[w];
}

AEGIS_HOT WriteOutcome
HammingScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    WriteOutcome outcome;

    for (std::size_t w = 0; w < bits / 64; ++w)
        checkBits[w] = HammingCodec::encode(wordOf(data, w));

    cells.writeDifferential(data);
    outcome.programPasses = 1;
    outcome.io.programPasses = 1;

    // The write succeeds when every word decodes back to its data.
    readInto(cells, decodedWs);
    outcome.io.verifyReads = 1;
    outcome.ok = decodedWs.equals(data);
    return outcome;
}

BitVector
HammingScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
HammingScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    // The block is a whole number of 64-bit words, so each codeword
    // can be decoded word-at-a-time directly in the output vector.
    cells.readInto(out);
    for (std::size_t w = 0; w < bits / 64; ++w) {
        std::uint64_t word = out.word(w);
        (void)HammingCodec::decode(word, checkBits[w]);
        out.setWord(w, word);
    }
}

void
HammingScheme::reset()
{
    checkBits.assign(bits / 64, 0);
}

std::unique_ptr<Scheme>
HammingScheme::clone() const
{
    return std::make_unique<HammingScheme>(*this);
}

BitVector
HammingScheme::exportMetadata() const
{
    BitWriter w(overheadBits());
    for (std::uint8_t check : checkBits)
        w.writeBits(check, 8);
    return w.finish();
}

void
HammingScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == overheadBits(),
                  "ECC metadata image has the wrong width");
    BitReader r(image);
    for (auto &check : checkBits)
        check = static_cast<std::uint8_t>(r.readBits(8));
}

std::unique_ptr<LifetimeTracker>
HammingScheme::makeTracker(const TrackerOptions &) const
{
    return std::make_unique<HammingTracker>(bits / 64);
}

} // namespace aegis::scheme
