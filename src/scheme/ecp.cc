#include "scheme/ecp.h"

#include <bit>

#include "pcm/cell_array_batch.h"
#include "scheme/batch.h"
#include "util/bit_io.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::scheme {

namespace {

/** Alive while the fault count stays within the pointer budget. */
class EcpTracker : public LifetimeTracker
{
  public:
    explicit EcpTracker(std::size_t max_entries)
        : maxEntries(max_entries)
    {}

    FaultVerdict
    onFault(const pcm::Fault &) override
    {
        ++faults;
        if (faults <= maxEntries) {
            obs::bump(obs::Counter::EcpPointersConsumed);
            return FaultVerdict::Alive;
        }
        return FaultVerdict::Dead;
    }

    double writeFailureProbability(Rng &) override
    { return faults <= maxEntries ? 0.0 : 1.0; }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }

    std::size_t faultCount() const override { return faults; }
    bool dataIndependent() const override { return true; }

  private:
    std::size_t maxEntries;
    std::size_t faults = 0;
};

} // namespace

EcpScheme::EcpScheme(std::size_t block_bits, std::size_t num_entries)
    : bits(block_bits), entriesMax(num_entries),
      schemeName("ecp" + std::to_string(num_entries))
{
    AEGIS_REQUIRE(block_bits > 1, "block size must exceed one bit");
    AEGIS_REQUIRE(num_entries > 0, "ECP needs at least one entry");
}

const std::string &
EcpScheme::name() const
{
    return schemeName;
}

std::size_t
EcpScheme::costBits(std::size_t block_bits, std::size_t num_entries)
{
    const auto pointer_bits = static_cast<std::size_t>(
        std::bit_width(block_bits - 1));
    return num_entries * (pointer_bits + 1) + 1;
}

std::size_t
EcpScheme::overheadBits() const
{
    return costBits(bits, entriesMax);
}

const EcpScheme::Entry *
EcpScheme::findEntry(std::size_t pos) const
{
    for (const Entry &e : entries) {
        if (e.pos == pos)
            return &e;
    }
    return nullptr;
}

AEGIS_HOT WriteOutcome
EcpScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    WriteOutcome outcome;

    // Refresh replacement bits for already-corrected cells, then
    // program the block and check for newly failed cells.
    for (Entry &e : entries)
        e.replacement = data.get(e.pos);

    cells.writeDifferential(data);
    outcome.programPasses = 1;
    outcome.io.programPasses = 1;

    cells.readInto(readbackWs);
    outcome.io.verifyReads = 1;
    diffWs.assignFrom(readbackWs);
    diffWs.xorAssign(data);
    // Mismatches at corrected positions are expected: the replacement
    // bit supplies the data there.
    for (const Entry &e : entries)
        diffWs.set(e.pos, false);

    bool exhausted = false;
    diffWs.forEachSetBit([&](std::size_t pos) {
        if (exhausted)
            return;
        if (entries.size() >= entriesMax) {
            exhausted = true;
            return;
        }
        // aegis-lint: allow(HOT-ALLOC grows only when a NEW fault consumes a pointer — the cold branch by definition)
        entries.push_back(Entry{static_cast<std::uint32_t>(pos),
                                data.get(pos)});
        obs::bump(obs::Counter::EcpPointersConsumed);
        ++outcome.newFaults;
    });
    outcome.ok = !exhausted;
    return outcome;
}

AEGIS_HOT void
EcpScheme::writeBatch(pcm::CellArrayBatch &cells,
                      const pcm::LaneMatrix &data,
                      std::span<WriteOutcome> outcomes,
                      BatchWorkspace &ws)
{
    AEGIS_REQUIRE(cells.cellsPerLane() == bits &&
                      data.bitsPerLane() == bits &&
                      data.lanes() == cells.lanes(),
                  "batch geometry must match the scheme");
    AEGIS_REQUIRE(outcomes.size() == cells.lanes(),
                  "one WriteOutcome per lane required");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    const std::size_t lanes = cells.lanes();
    ws.bind(*this, lanes);
    cells.speculativeMismatches(data, ws.mismatchScratch.data());

    // A lane with no allocated entries and no conflicting stuck cell
    // behaves exactly like the unprotected write: refresh loop is a
    // no-op, one program pass, verify comes back clean, no pointer
    // consumed. Those lanes commit as contiguous kernel runs; every
    // other lane stages through the per-block path.
    const auto fastLane = [&](std::size_t l) {
        const auto *ls = static_cast<const EcpScheme *>(ws.laneScheme(l));
        return ls->entries.empty() && ws.mismatchScratch[l] == 0;
    };
    std::size_t l = 0;
    while (l < lanes) {
        if (!fastLane(l)) {
            pcm::CellArray &staging = ws.stagingArray();
            cells.extractLane(l, staging);
            data.storeLane(l, ws.dataScratch);
            outcomes[l] = ws.laneScheme(l)->write(staging, ws.dataScratch);
            cells.depositLane(l, staging);
            ++l;
            continue;
        }
        std::size_t run = l + 1;
        while (run < lanes && fastLane(run))
            ++run;
        cells.writeDifferentialLanes(data, l, run - l,
                                     ws.programmedScratch.data() + l);
        for (; l < run; ++l) {
            WriteOutcome o;
            o.ok = true;
            o.programPasses = 1;
            o.io.programPasses = 1;
            o.io.verifyReads = 1;
            outcomes[l] = o;
        }
    }
}

AEGIS_HOT void
EcpScheme::readBatch(const pcm::CellArrayBatch &cells,
                     pcm::LaneMatrix &out, BatchWorkspace &ws) const
{
    AEGIS_REQUIRE(cells.cellsPerLane() == bits,
                  "batch geometry must match the scheme");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    ws.bind(*this, cells.lanes());
    cells.readAllInto(out);
    for (std::size_t l = 0; l < cells.lanes(); ++l) {
        const auto *ls = static_cast<const EcpScheme *>(ws.laneScheme(l));
        for (const Entry &e : ls->entries)
            out.setBit(l, e.pos, e.replacement);
    }
}

BitVector
EcpScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
EcpScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    for (const Entry &e : entries)
        out.set(e.pos, e.replacement);
}

void
EcpScheme::reset()
{
    entries.clear();
}

std::unique_ptr<Scheme>
EcpScheme::clone() const
{
    return std::make_unique<EcpScheme>(*this);
}

namespace {

std::size_t
widthFor(std::size_t max_value)
{
    return max_value == 0
               ? 0
               : static_cast<std::size_t>(std::bit_width(max_value));
}

} // namespace

std::size_t
EcpScheme::metadataBits() const
{
    const std::size_t pointer_bits = widthFor(bits - 1);
    return widthFor(entriesMax) + entriesMax * (pointer_bits + 1);
}

BitVector
EcpScheme::exportMetadata() const
{
    const std::size_t pointer_bits = widthFor(bits - 1);
    BitWriter w(metadataBits());
    w.writeBits(entries.size(), widthFor(entriesMax));
    for (std::size_t i = 0; i < entriesMax; ++i) {
        const bool live = i < entries.size();
        w.writeBits(live ? entries[i].pos : 0, pointer_bits);
        w.writeBit(live ? entries[i].replacement : false);
    }
    return w.finish();
}

void
EcpScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == metadataBits(),
                  "ECP metadata image has the wrong width");
    const std::size_t pointer_bits = widthFor(bits - 1);
    BitReader r(image);
    const std::size_t used = r.readBits(widthFor(entriesMax));
    AEGIS_REQUIRE(used <= entriesMax, "corrupt ECP entry counter");
    entries.clear();
    for (std::size_t i = 0; i < entriesMax; ++i) {
        const auto pos =
            static_cast<std::uint32_t>(r.readBits(pointer_bits));
        const bool repl = r.readBit();
        if (i < used) {
            AEGIS_REQUIRE(pos < bits, "corrupt ECP pointer");
            entries.push_back(Entry{pos, repl});
        }
    }
}

std::unique_ptr<LifetimeTracker>
EcpScheme::makeTracker(const TrackerOptions &) const
{
    return std::make_unique<EcpTracker>(entriesMax);
}

} // namespace aegis::scheme
