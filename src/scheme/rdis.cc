#include "scheme/rdis.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bit_io.h"
#include "util/error.h"

namespace aegis::scheme {

namespace {

/**
 * Tracker: RDIS is never *deterministically* dead (an all-Wrong
 * labeling is always solvable by level 1 alone), so block death is
 * driven entirely by the per-write failure probability, estimated by
 * sampling W/R labelings of the current fault set.
 */
class RdisTracker : public LifetimeTracker
{
  public:
    RdisTracker(RdisSolver rdis_solver, std::uint32_t labelings)
        : solver(std::move(rdis_solver)), samples(labelings)
    {}

    FaultVerdict
    onFault(const pcm::Fault &fault) override
    {
        faults.push_back(fault);
        probValid = false;
        return FaultVerdict::Alive;
    }

    double
    writeFailureProbability(Rng &rng) override
    {
        if (probValid)
            return cachedProb;
        cachedProb = estimate(rng);
        probValid = true;
        return cachedProb;
    }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }    // fault knowledge is cached; single-pass writes

    std::size_t faultCount() const override { return faults.size(); }

  private:
    bool
    structurallySafe() const
    {
        // Hard FTC: any <= depth faults are separable.
        if (faults.size() <= solver.depth())
            return true;
        // If no two faults share a row or a column, the level-1
        // product can never trap a Right fault: safe for any labeling.
        std::vector<bool> row_seen(solver.rows(), false);
        std::vector<bool> col_seen(solver.cols(), false);
        for (const pcm::Fault &f : faults) {
            const std::size_t r = solver.rowOf(f.pos);
            const std::size_t c = solver.colOf(f.pos);
            if (row_seen[r] || col_seen[c])
                return false;
            row_seen[r] = true;
            col_seen[c] = true;
        }
        return true;
    }

    double
    estimate(Rng &rng)
    {
        if (structurallySafe())
            return 0.0;
        std::vector<std::uint32_t> wrong, right;
        RdisMarks marks;
        std::uint32_t failures = 0;
        for (std::uint32_t s = 0; s < samples; ++s) {
            wrong.clear();
            right.clear();
            for (const pcm::Fault &f : faults) {
                // Uniform data => each fault is W with probability 1/2.
                if (rng.nextBool())
                    wrong.push_back(f.pos);
                else
                    right.push_back(f.pos);
            }
            if (!solver.solve(wrong, right, marks))
                ++failures;
        }
        obs::bump(obs::Counter::LabelingsSampled, samples);
        return static_cast<double>(failures) /
               static_cast<double>(samples);
    }

    RdisSolver solver;
    std::uint32_t samples;
    pcm::FaultSet faults;
    double cachedProb = 0.0;
    bool probValid = true;
};

} // namespace

RdisSolver::RdisSolver(std::size_t rows, std::size_t cols,
                       std::size_t depth)
    : numRows(rows), numCols(cols), numLevels(depth - 1)
{
    AEGIS_REQUIRE(rows > 0 && cols > 0, "grid must be non-empty");
    AEGIS_REQUIRE(depth >= 2, "RDIS depth must be at least 2");
}

bool
RdisSolver::solve(const std::vector<std::uint32_t> &wrong,
                  const std::vector<std::uint32_t> &right,
                  RdisMarks &marks) const
{
    marks.levels.assign(numLevels,
                        {BitVector(numRows), BitVector(numCols)});
    obs::bump(obs::Counter::RdisSolves);

    // Faults of the class being pulled into the current level's set.
    // Level 0 includes Wrong faults; violators alternate classes.
    std::vector<std::uint32_t> to_fix(wrong);
    // Candidate violators: the opposite class, already members of the
    // enclosing set (all of them at level 0's enclosing "whole grid").
    std::vector<std::uint32_t> opposite(right);

    for (std::size_t level = 0; level < numLevels; ++level) {
        if (to_fix.empty())
            return true;    // nothing left to separate

        obs::bump(obs::Counter::RdisRecursionLevels);
        obs::gaugeMax(obs::Gauge::RdisMaxRecursionDepth, level + 1);

        auto &[row_marks, col_marks] = marks.levels[level];
        for (std::uint32_t pos : to_fix) {
            row_marks.set(rowOf(pos), true);
            col_marks.set(colOf(pos), true);
        }

        // Violators of this level: opposite-class faults captured by
        // the marked product (they were members of the enclosing set
        // already, so product membership decides).
        std::vector<std::uint32_t> violators;
        for (std::uint32_t pos : opposite) {
            if (row_marks.get(rowOf(pos)) && col_marks.get(colOf(pos)))
                violators.push_back(pos);
        }

        opposite = std::move(to_fix);
        to_fix = std::move(violators);
    }
    return to_fix.empty();
}

bool
RdisSolver::inverted(const RdisMarks &marks, std::size_t pos) const
{
    const std::size_t r = rowOf(pos);
    const std::size_t c = colOf(pos);
    std::size_t memberships = 0;
    for (const auto &[row_marks, col_marks] : marks.levels) {
        if (row_marks.get(r) && col_marks.get(c))
            ++memberships;
        else
            break;    // the level sets are nested
    }
    return (memberships & 1) != 0;
}

BitVector
RdisSolver::inversionMask(const RdisMarks &marks,
                          std::size_t block_bits) const
{
    BitVector mask;
    inversionMaskInto(marks, block_bits, mask);
    return mask;
}

void
RdisSolver::inversionMaskInto(const RdisMarks &marks,
                              std::size_t block_bits,
                              BitVector &mask) const
{
    if (mask.size() != block_bits)
        mask = BitVector(block_bits);
    else
        mask.fill(false);
    for (std::size_t pos = 0; pos < block_bits; ++pos) {
        if (inverted(marks, pos))
            mask.set(pos, true);
    }
}

RdisScheme::RdisScheme(std::size_t block_bits, std::size_t rows,
                       std::size_t depth)
    : bits(block_bits), solver(rows, block_bits / rows, depth),
      schemeName("rdis" + std::to_string(depth))
{
    AEGIS_REQUIRE(rows > 0 && block_bits % rows == 0,
                  "block size must be divisible by the grid height");
    marks.levels.assign(solver.markLevels(),
                        {BitVector(solver.rows()),
                         BitVector(solver.cols())});
    refreshMask();
}

void
RdisScheme::refreshMask()
{
    solver.inversionMaskInto(marks, bits, invMask);
}

const std::string &
RdisScheme::name() const
{
    return schemeName;
}

std::size_t
RdisScheme::costBits(std::size_t block_bits, std::size_t rows,
                     std::size_t depth)
{
    AEGIS_REQUIRE(rows > 0 && block_bits % rows == 0,
                  "block size must be divisible by the grid height");
    const std::size_t cols = block_bits / rows;
    return (depth - 1) * (rows + cols) + 1;
}

std::size_t
RdisScheme::overheadBits() const
{
    return costBits(bits, solver.rows(), solver.depth());
}

WriteOutcome
RdisScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(directory, "RDIS needs an attached fault directory");
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    WriteOutcome outcome;

    // Session-local fault observations: keeps the loop convergent
    // even when a finite fail cache evicts entries between passes.
    pcm::FaultSet session;

    const std::size_t max_iters = cells.size() + 2;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
        pcm::FaultSet known = directory->lookup(blockId);
        ++outcome.io.metadataLookups;
        for (const pcm::Fault &f : session) {
            const bool present = std::any_of(
                known.begin(), known.end(),
                [&f](const pcm::Fault &k) { return k.pos == f.pos; });
            if (!present)
                known.push_back(f);
        }
        std::vector<std::uint32_t> wrong, right;
        for (const pcm::Fault &f : known) {
            if (f.stuck != data.get(f.pos))
                wrong.push_back(f.pos);
            else
                right.push_back(f.pos);
        }

        if (!solver.solve(wrong, right, marks)) {
            outcome.ok = false;
            return outcome;
        }
        ++outcome.repartitions;
        ++outcome.io.repartitions;
        refreshMask();

        const BitVector target = data ^ invMask;
        cells.writeDifferential(target);
        ++outcome.programPasses;
        ++outcome.io.programPasses;
        obs::bump(obs::Counter::ProgramPasses);

        const BitVector readback = cells.read();
        ++outcome.io.verifyReads;
        const BitVector diff = readback ^ target;
        if (diff.none()) {
            outcome.ok = true;
            return outcome;
        }
        obs::bump(obs::Counter::VerifyMismatches);
        for (std::size_t pos : diff.setBits()) {
            const pcm::Fault fault{static_cast<std::uint32_t>(pos),
                                   readback.get(pos)};
            directory->record(blockId, fault);
            session.push_back(fault);
            ++outcome.newFaults;
            ++outcome.io.metadataUpdates;
        }
    }
    throw InternalError("RDIS write did not converge");
}

BitVector
RdisScheme::read(const pcm::CellArray &cells) const
{
    BitVector out;
    readInto(cells, out);
    return out;
}

AEGIS_HOT void
RdisScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    cells.readInto(out);
    out.xorAssign(invMask);
}

void
RdisScheme::reset()
{
    marks.levels.assign(solver.markLevels(),
                        {BitVector(solver.rows()),
                         BitVector(solver.cols())});
    refreshMask();
}

std::unique_ptr<Scheme>
RdisScheme::clone() const
{
    return std::make_unique<RdisScheme>(*this);
}

BitVector
RdisScheme::exportMetadata() const
{
    BitWriter w(overheadBits());
    for (const auto &[row_marks, col_marks] : marks.levels) {
        w.writeVector(row_marks);
        w.writeVector(col_marks);
    }
    w.writeBit(false);    // reserved flag bit of the cost model
    return w.finish();
}

void
RdisScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.size() == overheadBits(),
                  "RDIS metadata image has the wrong width");
    BitReader r(image);
    marks.levels.clear();
    for (std::size_t level = 0; level < solver.markLevels(); ++level) {
        BitVector rows = r.readVector(solver.rows());
        BitVector cols = r.readVector(solver.cols());
        marks.levels.emplace_back(std::move(rows), std::move(cols));
    }
    (void)r.readBit();
    refreshMask();
}

std::unique_ptr<LifetimeTracker>
RdisScheme::makeTracker(const TrackerOptions &opts) const
{
    return std::make_unique<RdisTracker>(solver, opts.labelingSamples);
}

} // namespace aegis::scheme
