/**
 * @file
 * Workspace state for the batched scheme API (Scheme::writeBatch /
 * readBatch).
 *
 * A batch of lanes needs one scheme instance per lane, because scheme
 * metadata (inversion vectors, ECP entries, slope counters) evolves
 * per protected block. BatchWorkspace owns those instances as clones
 * of the prototype scheme it is bound to, plus the staging CellArray
 * and scratch vectors the default per-lane loop and the word-parallel
 * overrides share. Bind once, then reuse: steady-state batch calls
 * allocate nothing.
 *
 * The workspace is the batch's metadata home — after a writeBatch,
 * lane l's fault knowledge lives in laneScheme(l), not in the
 * prototype. One workspace therefore belongs to exactly one batch of
 * block-lives at a time; resetLanes() recycles it for fresh lives.
 */

#ifndef AEGIS_SCHEME_BATCH_H
#define AEGIS_SCHEME_BATCH_H

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcm/cell_array.h"
#include "pcm/cell_array_batch.h"
#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/error.h"
#include "util/simd/simd.h"

namespace aegis::scheme {

/** Reusable per-lane schemes + scratch for batched writes/reads. */
class BatchWorkspace
{
  public:
    /**
     * Bind to @p proto with @p lanes lanes: clone one scheme per lane
     * and size the staging array. A no-op when already bound to the
     * same scheme name, block size and lane count — rebinding to a
     * different shape discards all lane metadata.
     */
    void bind(const Scheme &proto, std::size_t lanes);

    bool bound() const { return staging.has_value(); }

    std::size_t lanes() const { return laneSchemes.size(); }

    /** Lane @p l's scheme instance (its metadata home). */
    Scheme *laneScheme(std::size_t l) { return laneSchemes[l].get(); }

    const Scheme *laneScheme(std::size_t l) const
    { return laneSchemes[l].get(); }

    /** reset() every lane scheme (fresh block-lives, same binding). */
    void resetLanes();

    /** The per-block staging array (bound() must hold). */
    pcm::CellArray &stagingArray() { return *staging; }

    // Scratch shared by the default loop and the scheme overrides;
    // public because the overrides live in several scheme TUs.
    BitVector dataScratch;
    BitVector outScratch;
    std::vector<std::size_t> mismatchScratch;
    std::vector<std::size_t> programmedScratch;

  private:
    std::vector<std::unique_ptr<Scheme>> laneSchemes;
    std::optional<pcm::CellArray> staging;
    std::string boundName;
    std::size_t boundBits = 0;
};

namespace detail {

/**
 * Shared batched-write driver for the partition-and-inversion schemes
 * (Aegis, SAFER). In their non-cache variants every write starts with
 * an empty known-fault set, so a lane whose speculative classification
 * reports zero conflicting stuck cells is guaranteed to take exactly
 * one program pass, verify clean and end with a zero inversion vector
 * — byte-identical state and counters to writeWithInversion, without
 * running it. Maximal runs of such lanes commit as contiguous kernel
 * passes; every other lane (and, wholesale, the directory-backed cache
 * variants, whose fault knowledge is per-lane anyway) stages through
 * the exact per-block path. @p invOf maps a lane scheme to its
 * (mutable) inversion vector.
 */
template <typename ConcreteScheme, typename InvOf>
void
inversionWriteBatch(ConcreteScheme &self, pcm::CellArrayBatch &cells,
                    const pcm::LaneMatrix &data,
                    std::span<WriteOutcome> outcomes, BatchWorkspace &ws,
                    bool cache_mode, InvOf invOf)
{
    AEGIS_REQUIRE(cells.cellsPerLane() == self.blockBits() &&
                      data.bitsPerLane() == self.blockBits() &&
                      data.lanes() == cells.lanes(),
                  "batch geometry must match the scheme");
    AEGIS_REQUIRE(outcomes.size() == cells.lanes(),
                  "one WriteOutcome per lane required");
    if (cache_mode) {
        self.Scheme::writeBatch(cells, data, outcomes, ws);
        return;
    }
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
    const std::size_t lanes = cells.lanes();
    ws.bind(self, lanes);
    cells.speculativeMismatches(data, ws.mismatchScratch.data());
    std::size_t l = 0;
    while (l < lanes) {
        if (ws.mismatchScratch[l] != 0) {
            pcm::CellArray &staging = ws.stagingArray();
            cells.extractLane(l, staging);
            data.storeLane(l, ws.dataScratch);
            outcomes[l] = ws.laneScheme(l)->write(staging, ws.dataScratch);
            cells.depositLane(l, staging);
            ++l;
            continue;
        }
        std::size_t run = l + 1;
        while (run < lanes && ws.mismatchScratch[run] == 0)
            ++run;
        cells.writeDifferentialLanes(data, l, run - l,
                                     ws.programmedScratch.data() + l);
        obs::bump(obs::Counter::ProgramPasses, run - l);
        for (; l < run; ++l) {
            auto *ls = static_cast<ConcreteScheme *>(ws.laneScheme(l));
            invOf(ls).fill(false);
            WriteOutcome o;
            o.ok = true;
            o.programPasses = 1;
            o.io.programPasses = 1;
            o.io.verifyReads = 1;
            outcomes[l] = o;
        }
    }
}

/**
 * Batched decode for the partition-and-inversion schemes: one select
 * pass over the whole batch, then each lane's inversion undone by
 * xoring its set groups' membership masks straight into the lane span.
 * @p maskOf maps (lane scheme, group) to the group's membership mask.
 */
template <typename ConcreteScheme, typename InvOf, typename MaskOf>
void
inversionReadBatch(const ConcreteScheme &self,
                   const pcm::CellArrayBatch &cells, pcm::LaneMatrix &out,
                   BatchWorkspace &ws, InvOf invOf, MaskOf maskOf)
{
    AEGIS_REQUIRE(cells.cellsPerLane() == self.blockBits(),
                  "batch geometry must match the scheme");
    AEGIS_TRACE_SCOPE(obs::Scope::SchemeRead);
    ws.bind(self, cells.lanes());
    cells.readAllInto(out);
    for (std::size_t l = 0; l < cells.lanes(); ++l) {
        const auto *ls =
            static_cast<const ConcreteScheme *>(ws.laneScheme(l));
        invOf(ls).forEachSetBit([&](std::size_t g) {
            simd::xorWords(out.lane(l), maskOf(ls, g)->words().data(),
                           out.laneWords());
        });
    }
}

} // namespace detail

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_BATCH_H
