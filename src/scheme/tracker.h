/**
 * @file
 * Lifetime trackers: the fast recoverability layer behind the
 * Monte-Carlo engine.
 *
 * Simulating every one of the ~1e8 writes a cell survives is
 * infeasible, so the simulator advances from fault arrival to fault
 * arrival and asks a per-block tracker two questions after each new
 * fault:
 *
 *  1. Is the block now deterministically unrecoverable (no data
 *     pattern can be stored)? -> onFault() returns Dead.
 *  2. Otherwise, what is the probability that a single write of
 *     uniformly random data is unrecoverable? Data-independent
 *     schemes (ECP, SAFER, basic Aegis) answer 0 while alive; the
 *     data-dependent ones (Aegis-rw/-rw-p, RDIS, ECC) estimate it by
 *     sampling stuck-at-Wrong/Right labelings, since write data is
 *     uniform. The simulator then draws a geometric deviate to decide
 *     whether the block dies before the next fault arrives.
 *
 * Trackers also report which cells currently suffer amplified wear:
 * cache-less partition-and-inversion schemes rewrite every fault-
 * containing group after the initial program pass (paper §2.4/§3.3),
 * doubling the effective write rate of those cells.
 *
 * Unit tests cross-validate each tracker against the corresponding
 * functional Scheme.
 */

#ifndef AEGIS_SCHEME_TRACKER_H
#define AEGIS_SCHEME_TRACKER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "pcm/fault.h"
#include "util/rng.h"

namespace aegis::scheme {

/** Tuning knobs for the probabilistic trackers. */
struct TrackerOptions
{
    /**
     * Number of W/R labelings sampled to estimate the per-write
     * failure probability of data-dependent schemes.
     */
    std::uint32_t labelingSamples = 256;
};

/** Verdict after registering a new fault. */
enum class FaultVerdict
{
    /** Block still recoverable for every data pattern seen so far. */
    Alive,
    /** Block deterministically unrecoverable. */
    Dead,
};

/** Per-block online recoverability model for one scheme. */
class LifetimeTracker
{
  public:
    virtual ~LifetimeTracker() = default;

    /** Register a newly failed cell. */
    virtual FaultVerdict onFault(const pcm::Fault &fault) = 0;

    /**
     * Probability that a write of uniformly random data is
     * unrecoverable given the current fault set. Must be 0 for
     * data-independent schemes while alive.
     */
    virtual double writeFailureProbability(Rng &rng) = 0;

    /**
     * Cells receiving one extra program per write under the current
     * configuration (the inversion-rewrite wear of cache-less
     * schemes). Empty when the scheme does not amplify wear.
     */
    virtual std::vector<std::uint32_t> amplifiedCells() const = 0;

    /** Number of faults registered so far. */
    virtual std::size_t faultCount() const = 0;

    /** Re-partitions performed so far (0 where meaningless). */
    virtual std::uint64_t repartitions() const { return 0; }

    /**
     * True when recoverability never depends on the data pattern:
     * writeFailureProbability is 0 while alive and 1 when dead
     * (ECP, SAFER, basic Aegis, none). Compositions like PAYG that
     * replay faults without per-write sampling require this.
     */
    virtual bool dataIndependent() const { return false; }
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_TRACKER_H
