#include "scheme/batch.h"

#include "pcm/cell_array_batch.h"
#include "util/error.h"

namespace aegis::scheme {

void
BatchWorkspace::bind(const Scheme &proto, std::size_t lanes)
{
    AEGIS_REQUIRE(lanes > 0, "BatchWorkspace needs at least one lane");
    if (staging.has_value() && boundName == proto.name() &&
        boundBits == proto.blockBits() && laneSchemes.size() == lanes)
        return;
    laneSchemes.clear();
    laneSchemes.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        laneSchemes.push_back(proto.clone());
    staging.emplace(proto.blockBits());
    mismatchScratch.assign(lanes, 0);
    programmedScratch.assign(lanes, 0);
    boundName = proto.name();
    boundBits = proto.blockBits();
}

void
BatchWorkspace::resetLanes()
{
    for (auto &s : laneSchemes)
        s->reset();
}

// ---------------------------------------------------------------------------
// Default batched entry points: loop the per-block path through the
// staging array. Correct for every scheme from day one; word-parallel
// schemes override with lane-run kernel passes.

void
Scheme::writeBatch(pcm::CellArrayBatch &cells,
                   const pcm::LaneMatrix &data,
                   std::span<WriteOutcome> outcomes, BatchWorkspace &ws)
{
    AEGIS_REQUIRE(cells.cellsPerLane() == blockBits(),
                  "batch block size must match the scheme");
    AEGIS_REQUIRE(data.bitsPerLane() == blockBits() &&
                      data.lanes() == cells.lanes(),
                  "batch data geometry mismatch");
    AEGIS_REQUIRE(outcomes.size() == cells.lanes(),
                  "one WriteOutcome per lane required");
    ws.bind(*this, cells.lanes());
    pcm::CellArray &staging = ws.stagingArray();
    for (std::size_t l = 0; l < cells.lanes(); ++l) {
        cells.extractLane(l, staging);
        data.storeLane(l, ws.dataScratch);
        outcomes[l] = ws.laneScheme(l)->write(staging, ws.dataScratch);
        cells.depositLane(l, staging);
    }
}

void
Scheme::readBatch(const pcm::CellArrayBatch &cells, pcm::LaneMatrix &out,
                  BatchWorkspace &ws) const
{
    AEGIS_REQUIRE(cells.cellsPerLane() == blockBits(),
                  "batch block size must match the scheme");
    ws.bind(*this, cells.lanes());
    if (out.bitsPerLane() != blockBits() || out.lanes() != cells.lanes())
        out.resize(blockBits(), cells.lanes());
    pcm::CellArray &staging = ws.stagingArray();
    for (std::size_t l = 0; l < cells.lanes(); ++l) {
        cells.extractLane(l, staging);
        ws.laneScheme(l)->readInto(staging, ws.outScratch);
        out.loadLane(l, ws.outScratch);
    }
}

} // namespace aegis::scheme
