/**
 * @file
 * The error-recovery scheme interface.
 *
 * A Scheme instance protects exactly one PCM data block: it owns the
 * block's correction metadata (inversion vectors, slope counters,
 * pointers, ...) and knows how to service writes (with verification
 * reads, as required for resistive memories) and decode reads. The
 * functional layer is byte-accurate: it performs real programs against
 * a pcm::CellArray and observes faults only the way hardware could.
 */

#ifndef AEGIS_SCHEME_SCHEME_H
#define AEGIS_SCHEME_SCHEME_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "pcm/cell_array.h"
#include "pcm/fail_cache.h"
#include "pcm/fault.h"
#include "scheme/tracker.h"
#include "util/bit_vector.h"

namespace aegis::pcm {
class CellArrayBatch;
class LaneMatrix;
} // namespace aegis::pcm

namespace aegis::scheme {

class BatchWorkspace;

/**
 * Per-operation breakdown of a scheme's ancillary I/O: the array,
 * metadata-SRAM and directory operations a write actually issued,
 * reported as first-class events instead of opaque cell-program
 * counts. The timing model (sim/timing/) turns each field into bank
 * occupancy or metadata-bus events; the functional layer ignores it.
 */
struct SchemeIoCost
{
    /** Program pulses issued into the cell array. */
    std::uint32_t programPasses = 0;
    /** Verification reads issued after program pulses. */
    std::uint32_t verifyReads = 0;
    /** Fault-directory (fail-cache) probes before/during the write. */
    std::uint32_t metadataLookups = 0;
    /** Fault-directory insertions (newly discovered faults). */
    std::uint32_t metadataUpdates = 0;
    /** Re-partition passes: metadata recompute + rewrite stalls. */
    std::uint32_t repartitions = 0;

    void
    add(const SchemeIoCost &other)
    {
        programPasses += other.programPasses;
        verifyReads += other.verifyReads;
        metadataLookups += other.metadataLookups;
        metadataUpdates += other.metadataUpdates;
        repartitions += other.repartitions;
    }
};

/** What happened while servicing one write request. */
struct WriteOutcome
{
    /** Data is stored and reads back correctly. */
    bool ok = false;
    /** Physical program passes issued (1 = no correction rework). */
    std::uint32_t programPasses = 0;
    /** Re-partitions (configuration changes) performed. */
    std::uint32_t repartitions = 0;
    /** Faults newly discovered during this write. */
    std::uint32_t newFaults = 0;
    /** Ancillary-operation breakdown of this write (see SchemeIoCost). */
    SchemeIoCost io;
};

/**
 * Abstract error-recovery scheme protecting one data block.
 *
 * Lifecycle: construct for a block size, optionally attach a fault
 * directory (fail cache) and block id, then interleave write()/read()
 * against the same CellArray. reset() clears the metadata for reuse on
 * a fresh block.
 */
class Scheme
{
  public:
    virtual ~Scheme() = default;

    /** Human-readable identifier, e.g. "aegis-9x61" or "safer64".
     *  Returns a reference to storage owned by the scheme: the name is
     *  fixed at construction, and hot-path callers (the batch
     *  workspace rebind check) compare it without allocating. */
    virtual const std::string &name() const = 0;

    /** Size of the protected data block in bits. */
    virtual std::size_t blockBits() const = 0;

    /** Metadata cost in bits per protected block. */
    virtual std::size_t overheadBits() const = 0;

    /**
     * Guaranteed number of tolerable faults regardless of fault
     * placement and data patterns (the paper's hard FTC).
     */
    virtual std::size_t hardFtc() const = 0;

    /**
     * Service a write of @p data into @p cells, updating metadata.
     * On failure (outcome.ok == false) the block is unrecoverable.
     */
    virtual WriteOutcome write(pcm::CellArray &cells,
                               const BitVector &data) = 0;

    /** Decode the logical data currently stored in @p cells. */
    virtual BitVector read(const pcm::CellArray &cells) const = 0;

    /**
     * Decode into @p out, reusing its allocation. The default wraps
     * read(); word-parallel schemes override it so steady-state reads
     * allocate nothing.
     */
    virtual void readInto(const pcm::CellArray &cells,
                          BitVector &out) const
    {
        out.assignFrom(read(cells));
    }

    /**
     * Service one write per lane of @p cells from the matching lane of
     * @p data. Lane l's metadata lives in ws.laneScheme(l) — a clone
     * of this scheme that ws maintains across calls — so this object's
     * own metadata never moves; callers must keep using the same
     * workspace (and consult its lane schemes, not *this) for the
     * whole batch's lifetime. outcomes.size() must equal
     * cells.lanes(). The default implementation loops the per-block
     * write() through a staging CellArray, so every scheme is batch-
     * callable; word-parallel schemes override it with lane-parallel
     * kernel passes that produce bit-identical state, wear and
     * counters (the fuzz oracle enforces this).
     */
    virtual void writeBatch(pcm::CellArrayBatch &cells,
                            const pcm::LaneMatrix &data,
                            std::span<WriteOutcome> outcomes,
                            BatchWorkspace &ws);

    /**
     * Decode every lane of @p cells into @p out using the per-lane
     * metadata in @p ws (see writeBatch). Resizes @p out on first use.
     */
    virtual void readBatch(const pcm::CellArrayBatch &cells,
                           pcm::LaneMatrix &out,
                           BatchWorkspace &ws) const;

    /** Clear metadata for reuse on a fresh block. */
    virtual void reset() = 0;

    /** Deep copy (metadata included). */
    virtual std::unique_ptr<Scheme> clone() const = 0;

    /**
     * Create the fast lifetime tracker matching this scheme's
     * configuration, for use by the Monte-Carlo engine.
     */
    virtual std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const = 0;

    /**
     * Attach a fault directory (fail cache) and this block's global
     * id. Schemes that exploit fault knowledge (Aegis-rw, Aegis-rw-p,
     * SAFER-cache, RDIS) require this; others ignore it. The default
     * stores the pointers for subclasses.
     */
    virtual void
    attachDirectory(pcm::FaultDirectory *dir, std::uint64_t block_id)
    {
        directory = dir;
        blockId = block_id;
    }

    /** True when the scheme needs a fault directory to operate. */
    virtual bool requiresDirectory() const { return false; }

    /**
     * Width of the packed metadata image in bits. For most schemes
     * this equals overheadBits(); documented exceptions (ECP's entry
     * counter, Aegis-rw-p's full-width slope counter) may pack a few
     * bits more than the Table-1 minimum.
     */
    virtual std::size_t metadataBits() const { return overheadBits(); }

    /**
     * Pack the correction metadata into exactly metadataBits() bits —
     * the image the scheme's SRAM/spare cells would hold. Together
     * with importMetadata this proves the advertised bit budgets are
     * sufficient to persist the scheme state.
     */
    virtual BitVector exportMetadata() const = 0;

    /** Restore metadata from an image produced by exportMetadata. */
    virtual void importMetadata(const BitVector &image) = 0;

  protected:
    pcm::FaultDirectory *directory = nullptr;
    std::uint64_t blockId = 0;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_SCHEME_H
