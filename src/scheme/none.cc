#include "scheme/none.h"

#include "util/error.h"

namespace aegis::scheme {

namespace {

/** Dies on the first fault; no wear amplification. */
class NoneTracker : public LifetimeTracker
{
  public:
    FaultVerdict
    onFault(const pcm::Fault &) override
    {
        ++faults;
        return FaultVerdict::Dead;
    }

    double writeFailureProbability(Rng &) override
    { return faults ? 1.0 : 0.0; }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }

    std::size_t faultCount() const override { return faults; }
    bool dataIndependent() const override { return true; }

  private:
    std::size_t faults = 0;
};

} // namespace

NoneScheme::NoneScheme(std::size_t block_bits)
    : bits(block_bits)
{
    AEGIS_REQUIRE(block_bits > 0, "block size must be positive");
}

AEGIS_HOT WriteOutcome
NoneScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    WriteOutcome outcome;
    cells.writeDifferential(data);
    outcome.programPasses = 1;
    outcome.io.programPasses = 1;
    cells.readInto(readbackWs);
    outcome.io.verifyReads = 1;
    outcome.ok = readbackWs.equals(data);
    return outcome;
}

BitVector
NoneScheme::read(const pcm::CellArray &cells) const
{
    return cells.read();
}

AEGIS_HOT void
NoneScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    cells.readInto(out);
}

std::unique_ptr<Scheme>
NoneScheme::clone() const
{
    return std::make_unique<NoneScheme>(*this);
}

void
NoneScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.empty(), "the unprotected scheme has no "
                                 "metadata");
}

std::unique_ptr<LifetimeTracker>
NoneScheme::makeTracker(const TrackerOptions &) const
{
    return std::make_unique<NoneTracker>();
}

} // namespace aegis::scheme
