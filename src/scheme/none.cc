#include "scheme/none.h"

#include "pcm/cell_array_batch.h"
#include "scheme/batch.h"
#include "util/error.h"

namespace aegis::scheme {

namespace {

/** Dies on the first fault; no wear amplification. */
class NoneTracker : public LifetimeTracker
{
  public:
    FaultVerdict
    onFault(const pcm::Fault &) override
    {
        ++faults;
        return FaultVerdict::Dead;
    }

    double writeFailureProbability(Rng &) override
    { return faults ? 1.0 : 0.0; }

    std::vector<std::uint32_t> amplifiedCells() const override
    { return {}; }

    std::size_t faultCount() const override { return faults; }
    bool dataIndependent() const override { return true; }

  private:
    std::size_t faults = 0;
};

} // namespace

NoneScheme::NoneScheme(std::size_t block_bits)
    : bits(block_bits)
{
    AEGIS_REQUIRE(block_bits > 0, "block size must be positive");
}

AEGIS_HOT WriteOutcome
NoneScheme::write(pcm::CellArray &cells, const BitVector &data)
{
    AEGIS_REQUIRE(data.size() == cells.size(),
                  "data width must match the cell array");
    WriteOutcome outcome;
    cells.writeDifferential(data);
    outcome.programPasses = 1;
    outcome.io.programPasses = 1;
    cells.readInto(readbackWs);
    outcome.io.verifyReads = 1;
    outcome.ok = readbackWs.equals(data);
    return outcome;
}

AEGIS_HOT void
NoneScheme::writeBatch(pcm::CellArrayBatch &cells,
                       const pcm::LaneMatrix &data,
                       std::span<WriteOutcome> outcomes,
                       BatchWorkspace &ws)
{
    AEGIS_REQUIRE(cells.cellsPerLane() == bits &&
                      data.bitsPerLane() == bits &&
                      data.lanes() == cells.lanes(),
                  "batch geometry must match the scheme");
    AEGIS_REQUIRE(outcomes.size() == cells.lanes(),
                  "one WriteOutcome per lane required");
    const std::size_t lanes = cells.lanes();
    if (ws.mismatchScratch.size() != lanes) {
        ws.mismatchScratch.assign(lanes, 0);
        ws.programmedScratch.assign(lanes, 0);
    }
    // The unprotected scheme has no per-lane metadata, so the whole
    // batch is one classification pass plus one commit pass; a lane's
    // write succeeded exactly when no stuck cell conflicted.
    cells.speculativeMismatches(data, ws.mismatchScratch.data());
    cells.writeDifferentialLanes(data, 0, lanes,
                                 ws.programmedScratch.data());
    for (std::size_t l = 0; l < lanes; ++l) {
        WriteOutcome o;
        o.ok = ws.mismatchScratch[l] == 0;
        o.programPasses = 1;
        o.io.programPasses = 1;
        o.io.verifyReads = 1;
        outcomes[l] = o;
    }
}

AEGIS_HOT void
NoneScheme::readBatch(const pcm::CellArrayBatch &cells,
                      pcm::LaneMatrix &out, BatchWorkspace &) const
{
    AEGIS_REQUIRE(cells.cellsPerLane() == bits,
                  "batch geometry must match the scheme");
    cells.readAllInto(out);
}

BitVector
NoneScheme::read(const pcm::CellArray &cells) const
{
    return cells.read();
}

AEGIS_HOT void
NoneScheme::readInto(const pcm::CellArray &cells, BitVector &out) const
{
    cells.readInto(out);
}

std::unique_ptr<Scheme>
NoneScheme::clone() const
{
    return std::make_unique<NoneScheme>(*this);
}

void
NoneScheme::importMetadata(const BitVector &image)
{
    AEGIS_REQUIRE(image.empty(), "the unprotected scheme has no "
                                 "metadata");
}

std::unique_ptr<LifetimeTracker>
NoneScheme::makeTracker(const TrackerOptions &) const
{
    return std::make_unique<NoneTracker>();
}

} // namespace aegis::scheme
