/**
 * @file
 * The unprotected baseline: no metadata, no correction.
 *
 * A block protected by "none" is lost the moment any cell becomes
 * stuck (the first write of the opposite value cannot be stored). The
 * paper's lifetime-improvement figures normalize against exactly this
 * baseline ("a 4KB page without any fault protection").
 */

#ifndef AEGIS_SCHEME_NONE_H
#define AEGIS_SCHEME_NONE_H

#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::scheme {

class NoneScheme : public Scheme
{
  public:
    explicit NoneScheme(std::size_t block_bits);

    const std::string &name() const override
    {
        static const std::string n = "none";
        return n;
    }
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override { return 0; }
    std::size_t hardFtc() const override { return 0; }

    AEGIS_HOT WriteOutcome write(pcm::CellArray &cells,
                                 const BitVector &data) override;
    BitVector read(const pcm::CellArray &cells) const override;
    AEGIS_HOT void readInto(const pcm::CellArray &cells,
                            BitVector &out) const override;
    /** Fully lane-parallel: one classification pass plus one
     *  differential-commit pass over the whole batch. */
    AEGIS_HOT void writeBatch(pcm::CellArrayBatch &cells,
                              const pcm::LaneMatrix &data,
                              std::span<WriteOutcome> outcomes,
                              BatchWorkspace &ws) override;
    AEGIS_HOT void readBatch(const pcm::CellArrayBatch &cells,
                             pcm::LaneMatrix &out,
                             BatchWorkspace &ws) const override;
    void reset() override {}
    std::unique_ptr<Scheme> clone() const override;

    BitVector exportMetadata() const override { return BitVector(); }
    void importMetadata(const BitVector &image) override;

    std::unique_ptr<LifetimeTracker>
    makeTracker(const TrackerOptions &opts) const override;

  private:
    std::size_t bits;
    /** Reusable verification scratch (write stays allocation-free). */
    BitVector readbackWs;
};

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_NONE_H
