/**
 * @file
 * The shared partition-and-inversion write loop.
 *
 * SAFER and Aegis differ only in *how* a block is partitioned into
 * groups and *how* a re-partition is chosen; the write protocol around
 * the partition — program, verification read, collision resolution,
 * group inversion, re-verify — is identical (the paper adopts SAFER's
 * framework for Aegis, §2.2). This driver implements that protocol
 * once against an abstract GroupPartition policy.
 */

#ifndef AEGIS_SCHEME_INVERSION_DRIVER_H
#define AEGIS_SCHEME_INVERSION_DRIVER_H

#include <cstdint>

#include "pcm/cell_array.h"
#include "pcm/fault.h"
#include "scheme/scheme.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::scheme {

/**
 * Partition policy: maps block bit offsets to groups under a current,
 * mutable configuration and knows how to re-partition so that a given
 * fault set is separated (at most one fault per group).
 */
class GroupPartition
{
  public:
    virtual ~GroupPartition() = default;

    /** Number of groups in every configuration. */
    virtual std::size_t groupCount() const = 0;

    /** Group id of bit offset @p pos under the current configuration. */
    virtual std::size_t groupOf(std::size_t pos) const = 0;

    /**
     * Re-partition (if needed) so that every fault in @p faults is in
     * a distinct group. Must leave the configuration untouched when it
     * already separates the faults.
     *
     * @param faults faults to separate.
     * @param repartitions incremented once per configuration change.
     * @return false when no configuration separates the faults (the
     *         block is unrecoverable).
     */
    virtual bool separate(const pcm::FaultSet &faults,
                          std::uint32_t &repartitions) = 0;

    /** Reset to the initial configuration. */
    virtual void resetConfig() = 0;

    /**
     * Word-parallel membership mask of @p group under the current
     * configuration (bit pos set iff groupOf(pos) == group), or
     * nullptr when the policy does not precompute masks — the driver
     * then falls back to the per-bit groupOf path. A returned pointer
     * is invalidated by separate()/resetConfig().
     */
    virtual const BitVector *groupMask(std::size_t group) const
    {
        (void)group;
        return nullptr;
    }
};

/**
 * Reusable scratch for writeWithInversion so steady-state writes
 * allocate nothing: each vector is sized on first use and only
 * refilled afterwards. Plain data — schemes embed one per instance
 * (cloning a scheme clones the workspace, which is harmless).
 */
struct InversionWorkspace
{
    BitVector target;    ///< selectively inverted program pattern
    BitVector readback;  ///< verification read
    BitVector diff;      ///< readback ^ target
    BitVector knownMask; ///< known-fault positions, O(1) membership
};

/**
 * Service one write request through the partition-and-inversion
 * protocol:
 *
 *  1. Choose a configuration separating all faults known so far.
 *  2. Set the inversion flag of each group whose (single) fault is
 *     stuck at the complement of the group's data.
 *  3. Program the (selectively inverted) pattern differentially and
 *     issue a verification read.
 *  4. Any mismatch is a newly discovered fault: remember its position
 *     and stuck value and go back to 1.
 *
 * Terminates because every retry adds at least one new fault to
 * @p known_faults (a separated configuration with correct inversion
 * flags stores all *known* faults correctly).
 *
 * @param cells        the physical block.
 * @param data         logical data to store.
 * @param partition    partition policy (configuration is updated).
 * @param inv          inversion vector, resized/overwritten; on
 *                     success reflects what is stored.
 * @param known_faults in/out: faults known before the write (pass the
 *                     fail-cache contents, or empty without a cache);
 *                     grows as faults are discovered.
 * @param ws           reusable scratch; steady-state calls with a
 *                     warmed workspace perform zero heap allocations.
 * @return outcome; ok == false means no configuration separates the
 *         discovered faults and the block is lost.
 */
AEGIS_HOT WriteOutcome writeWithInversion(pcm::CellArray &cells,
                                          const BitVector &data,
                                          GroupPartition &partition,
                                          BitVector &inv,
                                          pcm::FaultSet &known_faults,
                                          InversionWorkspace &ws);

/** Convenience overload with a throwaway workspace (tests, cold
 *  paths). */
WriteOutcome writeWithInversion(pcm::CellArray &cells,
                                const BitVector &data,
                                GroupPartition &partition,
                                BitVector &inv,
                                pcm::FaultSet &known_faults);

/**
 * Compose the physical target pattern: @p data with every group whose
 * flag is set in @p inv bitwise inverted.
 *
 * This is the naive per-bit path, retained verbatim as the reference
 * oracle the auditor and the masked-vs-naive fuzz tests compare
 * against; production writes go through applyGroupInversionInto.
 */
BitVector applyGroupInversion(const BitVector &data,
                              const GroupPartition &partition,
                              const BitVector &inv);

/**
 * applyGroupInversion into @p out without allocating: when the
 * partition provides group masks the inversion is one XOR per
 * inverted group; otherwise the per-bit path runs. Bit-identical to
 * applyGroupInversion in either case.
 */
AEGIS_HOT void applyGroupInversionInto(const BitVector &data,
                                       const GroupPartition &partition,
                                       const BitVector &inv,
                                       BitVector &out);

} // namespace aegis::scheme

#endif // AEGIS_SCHEME_INVERSION_DRIVER_H
