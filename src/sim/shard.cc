#include "sim/shard.h"

#include <charconv>

namespace aegis::sim {

namespace {

bool
parseU32(std::string_view text, std::uint32_t &out)
{
    if (text.empty())
        return false;
    const char *first = text.data();
    const char *last = first + text.size();
    const std::from_chars_result r = std::from_chars(first, last, out);
    return r.ec == std::errc() && r.ptr == last;
}

} // namespace

std::string
ShardSpec::label() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

Expected<ShardSpec>
ShardSpec::parse(const std::string &text)
{
    using Result = Expected<ShardSpec>;
    const auto malformed = [&text] {
        return Result::failure("expects <index>/<count> with 0 <= "
                               "index < count (e.g. `0/4'), got `" +
                               text + "'");
    };
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos)
        return malformed();
    ShardSpec spec;
    if (!parseU32(std::string_view(text).substr(0, slash),
                  spec.index) ||
        !parseU32(std::string_view(text).substr(slash + 1), spec.count))
        return malformed();
    if (spec.count == 0)
        return Result::failure("shard count must be at least 1, got `" +
                               text + "'");
    if (spec.index >= spec.count)
        return Result::failure(
            "shard index " + std::to_string(spec.index) +
            " is out of range for " + std::to_string(spec.count) +
            " shards (indexes are 0-based: 0.." +
            std::to_string(spec.count - 1) + ")");
    return spec;
}

std::string
shardArtifactStem(const std::string &dir, std::uint32_t index)
{
    std::string stem = dir;
    if (!stem.empty() && stem.back() != '/')
        stem += '/';
    return stem + "shard_" + std::to_string(index);
}

} // namespace aegis::sim
