#include "sim/remap.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "aegis/factory.h"
#include "pcm/address.h"
#include "pcm/lifetime_model.h"
#include "sim/block_sim.h"
#include "util/error.h"

namespace aegis::sim {

RemapResult
runRemapStudy(const ExperimentConfig &config,
              std::uint32_t spare_blocks)
{
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};
    const auto scheme =
        core::makeScheme(config.schemeSpec(), config.blockBits);
    const auto lifetime = pcm::makeLifetimeModel(
        config.lifetimeKind, config.lifetimeMean, config.lifetimeParam);
    const BlockSimulator sim(*scheme, *lifetime, config.wear,
                             config.tracker);

    const Rng master(config.seed);
    std::uint64_t stream = 0;
    const auto fresh_death_duration = [&] {
        Rng cell_rng = master.split(2 * stream);
        Rng sim_rng = master.split(2 * stream + 1);
        ++stream;
        const BlockLifeResult life = sim.run(cell_rng, sim_rng);
        AEGIS_ASSERT(!life.immortal, "blocks must eventually die");
        return life.deathTime;
    };

    // Min-heap of upcoming block deaths (primaries start at t = 0).
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        deaths;
    const std::uint64_t primaries = geom.totalBlocks();
    for (std::uint64_t b = 0; b < primaries; ++b)
        deaths.push(fresh_death_duration());

    RemapResult result;
    std::uint32_t spares_left = spare_blocks;
    bool first = true;
    while (!deaths.empty()) {
        const double t = deaths.top();
        deaths.pop();
        if (first) {
            result.firstRemapTime = t;
            first = false;
        }
        if (spares_left == 0) {
            result.exhaustionTime = t;
            return result;
        }
        --spares_left;
        ++result.sparesUsed;
        // The replacement starts fresh now and dies later.
        deaths.push(t + fresh_death_duration());
    }
    throw InternalError("remap study ran out of events");
}

} // namespace aegis::sim
