/**
 * @file
 * Dynamic pairing of faulty pages (Ipek et al., §4 of the Aegis
 * paper).
 *
 * When a page's in-block protection finally fails, the page is not
 * necessarily garbage: only some of its data blocks are
 * unrecoverable. Dynamic pairing recycles two such pages whose dead
 * blocks sit at *different* in-page offsets — reads/writes are served
 * by whichever page has the healthy block at each offset, so a pair
 * provides one page of capacity.
 *
 * The study tracks effective memory capacity over time: healthy pages
 * count 1, matched faulty pairs count 1 per pair. The Aegis paper's
 * §4 point — a stronger in-block scheme delays page loss, so pairing
 * has less to do — becomes measurable here.
 */

#ifndef AEGIS_SIM_PAIRING_H
#define AEGIS_SIM_PAIRING_H

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace aegis::sim {

/** Capacity trajectory of a paired memory. */
struct PairingStudy
{
    /** Sampled (page writes, capacity) points; capacity in pages. */
    std::vector<std::pair<double, double>> withPairing;
    /** The same without pairing (faulty pages are simply retired). */
    std::vector<std::pair<double, double>> withoutPairing;

    /** Time when capacity first drops below @p fraction of the
     *  original page count; the last sample when it never does. */
    double timeToCapacity(double fraction, bool paired) const;
};

/**
 * Run the pairing study for @p config over @p points evenly spaced
 * sample times. Pairing is greedy first-fit over pages with disjoint
 * dead-block offset sets, recomputed at each sample time (an upper
 * bound a real allocator can approach).
 */
PairingStudy runPairingStudy(const ExperimentConfig &config,
                             std::size_t points = 24);

} // namespace aegis::sim

#endif // AEGIS_SIM_PAIRING_H
