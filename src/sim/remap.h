/**
 * @file
 * FREE-p-style block remapping (§4 of the Aegis paper).
 *
 * When in-block protection finally fails, an OS/controller layer can
 * redirect the dead block to a spare one instead of retiring the
 * whole page. The memory then survives until the spare pool runs
 * dry. The Aegis paper's point — "with Aegis's strong fault tolerance
 * capability, the re-direction as well as loss of faulty pages can be
 * substantially delayed" — becomes measurable here: a stronger
 * in-block scheme both postpones the first remap and slows the drain
 * of the spare pool.
 *
 * Spares are ordinary protected blocks: they begin wearing when
 * mapped in and can themselves die and be remapped again.
 */

#ifndef AEGIS_SIM_REMAP_H
#define AEGIS_SIM_REMAP_H

#include <cstdint>

#include "sim/experiment.h"

namespace aegis::sim {

/** Outcome of one remapped-memory life. */
struct RemapResult
{
    /** Page writes until a block died with the spare pool empty. */
    double exhaustionTime = 0.0;
    /** Page writes until the first block death (first remap). */
    double firstRemapTime = 0.0;
    /** Spares consumed over the memory's life. */
    std::uint32_t sparesUsed = 0;
    /** Lifetime gained over the unremapped memory, as a ratio. */
    double gain() const
    {
        return firstRemapTime > 0 ? exhaustionTime / firstRemapTime
                                  : 0.0;
    }
};

/**
 * Simulate a memory of config.pages pages plus @p spare_blocks spare
 * data blocks. Every block (primary or spare) runs the scheme's
 * event-driven life; a death consumes a spare (which starts fresh at
 * that moment) until none remain.
 */
RemapResult runRemapStudy(const ExperimentConfig &config,
                          std::uint32_t spare_blocks);

} // namespace aegis::sim

#endif // AEGIS_SIM_REMAP_H
