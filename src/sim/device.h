/**
 * @file
 * A functional PCM device: pages of protected data blocks.
 *
 * This is the byte-accurate counterpart of the Monte-Carlo engine:
 * every block owns a CellArray and a Scheme clone, writes go through
 * the real write/verify protocol, and an optional fault directory
 * (fail cache) is shared by all blocks. Used by the examples and the
 * integration tests; the lifetime studies use the event-driven layer
 * instead.
 */

#ifndef AEGIS_SIM_DEVICE_H
#define AEGIS_SIM_DEVICE_H

#include <memory>
#include <vector>

#include "pcm/address.h"
#include "pcm/cell_array.h"
#include "pcm/fail_cache.h"
#include "scheme/scheme.h"
#include "util/rng.h"

namespace aegis::sim {

/** Aggregate device statistics. */
struct DeviceStats
{
    std::uint64_t blockWrites = 0;
    std::uint64_t failedWrites = 0;
    std::uint64_t cellPrograms = 0;
    std::uint64_t repartitions = 0;
    std::uint64_t deadBlocks = 0;
};

class PcmDevice
{
  public:
    /**
     * @param geometry page/block layout.
     * @param prototype scheme cloned into every block.
     * @param directory optional fail cache shared by all blocks
     *        (required when the scheme demands one).
     */
    PcmDevice(const pcm::Geometry &geometry,
              const scheme::Scheme &prototype,
              std::shared_ptr<pcm::FaultDirectory> directory = nullptr);

    const pcm::Geometry &geometry() const { return geom; }

    /** Write @p data (blockBits wide) into one block. */
    scheme::WriteOutcome writeBlock(std::uint64_t block_id,
                                    const BitVector &data);

    /** Decode one block. */
    BitVector readBlock(std::uint64_t block_id) const;

    /** Write a full page (pageBits wide), block by block.
     *  @return true when every block write succeeded. */
    bool writePage(std::uint32_t page, const BitVector &data);

    /** Read a full page. */
    BitVector readPage(std::uint32_t page) const;

    /** Make one cell stuck at @p stuck_value. */
    void injectFault(std::uint64_t block_id, std::uint32_t offset,
                     bool stuck_value);

    /** Inject @p count faults at uniformly random live positions. */
    void injectRandomFaults(std::size_t count, Rng &rng);

    /** True when the block has suffered an unrecoverable write. */
    bool blockDead(std::uint64_t block_id) const;

    const DeviceStats &stats() const { return devStats; }

    const pcm::CellArray &cells(std::uint64_t block_id) const;
    const scheme::Scheme &schemeOf(std::uint64_t block_id) const;

  private:
    struct Block
    {
        pcm::CellArray cells;
        std::unique_ptr<scheme::Scheme> scheme;
        bool dead = false;

        Block(std::size_t bits, std::unique_ptr<scheme::Scheme> s)
            : cells(bits), scheme(std::move(s))
        {}
    };

    Block &blockAt(std::uint64_t block_id);
    const Block &blockAt(std::uint64_t block_id) const;

    pcm::Geometry geom;
    std::shared_ptr<pcm::FaultDirectory> directory;
    std::vector<Block> blocks;
    DeviceStats devStats;
};

} // namespace aegis::sim

#endif // AEGIS_SIM_DEVICE_H
