/**
 * @file
 * Named experiment configurations and runners for the paper's
 * evaluation (one call per figure series).
 */

#ifndef AEGIS_SIM_EXPERIMENT_H
#define AEGIS_SIM_EXPERIMENT_H

#include <cstdint>
#include <string>

#include "aegis/factory.h"
#include "obs/metrics.h"
#include "scheme/tracker.h"
#include "sim/block_sim.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace aegis::sim {

/** Shared Monte-Carlo configuration (paper §3.1 defaults). */
struct ExperimentConfig
{
    /** Scheme under test (factory name, e.g. "aegis-9x61"). */
    std::string scheme = "aegis-9x61";
    /** Protected data block size in bits. */
    std::uint32_t blockBits = 512;
    /** Memory (allocation) block size in bytes; 4096 = OS page. */
    std::uint32_t pageBytes = 4096;
    /** Pages simulated (2048 = the paper's 8MB memory). */
    std::uint32_t pages = 256;
    /** Master seed; identical seeds reuse identical cell populations
     *  across schemes. */
    std::uint64_t seed = 1;
    /** Cell lifetime model. */
    std::string lifetimeKind = "normal";
    double lifetimeMean = 1e8;
    double lifetimeParam = 0.25;    ///< cv / shape / spread
    WearModel wear;
    scheme::TrackerOptions tracker;
    /** Wrap every functional scheme in the runtime invariant auditor
     *  (audit::SchemeAuditor) so Monte-Carlo runs double as
     *  correctness sweeps. Costly; off by default. */
    bool audit = false;
    /** Worker threads for the Monte-Carlo sweeps (0 = one per
     *  hardware thread). Results are bit-identical for every value:
     *  each page/block draws from its own seed-derived RNG stream and
     *  chunk accumulators merge in a jobs-independent order. */
    std::uint32_t jobs = 0;
    /** Block lives driven per structure-of-arrays batch
     *  (BlockSimulator::runBatch). Like @ref jobs a throughput knob
     *  only, and like jobs excluded from checkpoint fingerprints:
     *  every life keeps its own seed-derived RNG streams and batch
     *  spans never cross the fixed chunk grid, so results are
     *  bit-identical for every value (0 is treated as 1). */
    std::uint32_t batch = 8;

    /** Structured factory spec of @ref scheme honouring @ref audit. */
    core::SchemeSpec schemeSpec() const { return schemeSpec(scheme); }

    /** Structured factory spec of @p name honouring @ref audit (for
     *  secondary schemes like PAYG's LEC). */
    core::SchemeSpec schemeSpec(const std::string &name) const
    {
        core::SchemeSpec spec = core::SchemeSpec::parse(name);
        spec.audit = spec.audit || audit;
        return spec;
    }
};

/**
 * Fields shared by every aggregated study: the scheme label and bit
 * budgets every results table leads with.
 */
struct StudyResult
{
    std::string scheme;
    std::size_t overheadBits = 0;
    std::size_t blockBits = 0;

    /** Event counters and scope timers attributed to this study:
     *  per-item deltas folded into the chunk accumulators and merged
     *  in chunk order, so counter slots are bit-identical for every
     *  jobs value (timers are wall-clock and therefore not). */
    obs::Metrics metrics;

    /** Overhead as a fraction of the data bits. */
    double overheadFraction() const;

  protected:
    /** Fill empty label fields from @p other; merging partial results
     *  from the parallel reducer (empty labels) is a no-op. */
    void adoptLabels(const StudyResult &other);
};

/** Aggregated page-level results (Figures 5, 6, 7, 9, 11, 12, 13). */
struct PageStudy : StudyResult
{
    /** Faults recovered per page before its first block failure. */
    RunningStat recoverableFaults;
    /** Page lifetime in page writes. */
    RunningStat pageLifetime;
    /** Re-partitions per page over its whole life. */
    RunningStat repartitions;
    /** Death times for survival curves / half lifetime (Fig 9). */
    SurvivalCurve survival;

    /** Fold another (partial) study into this one — the combining
     *  step of the parallel reducer, also usable to join studies of
     *  disjoint page populations. */
    void merge(const PageStudy &other);
};

/** Aggregated block-level results (Figures 8 and 10). */
struct BlockStudy : StudyResult
{
    /** Block lifetime in block writes. */
    RunningStat blockLifetime;
    /** Fault count at death, for the failure-probability CDF. */
    Histogram faultsAtDeath;

    /** P(block failed once @p faults faults occurred) — Fig 8. */
    double failureProbabilityAt(std::int64_t faults) const
    { return faultsAtDeath.cdf(faults); }

    /** Fold another (partial) study into this one. */
    void merge(const BlockStudy &other);
};

/** Aggregated memory-survival results (workload-weighted deaths). */
struct SurvivalStudy : StudyResult
{
    /** Death times in memory time (page lifetime / page write rate). */
    SurvivalCurve survival;

    /** Fold another (partial) study into this one. */
    void merge(const SurvivalStudy &other);
};

/** Run the page-level Monte Carlo for one scheme. */
PageStudy runPageStudy(const ExperimentConfig &config);

/** Run @p blocks single-block lives for one scheme. */
BlockStudy runBlockStudy(const ExperimentConfig &config,
                         std::uint32_t blocks);

/**
 * Lifetime improvement of @p study over the unprotected baseline
 * measured on the same cell populations (same config/seed with
 * scheme "none").
 */
double lifetimeImprovement(const PageStudy &study,
                           const PageStudy &baseline);

class Workload;

/**
 * Memory-level survival under a (possibly skewed) write workload: a
 * page's death time in memory time is its intrinsic lifetime divided
 * by the workload's per-page rate multiplier. With the paper's
 * perfect wear leveling this equals the PageStudy survival curve.
 */
SurvivalCurve runMemorySurvival(const ExperimentConfig &config,
                                const Workload &workload);

} // namespace aegis::sim

#endif // AEGIS_SIM_EXPERIMENT_H
