/**
 * @file
 * Named experiment configurations and runners for the paper's
 * evaluation (one call per figure series).
 */

#ifndef AEGIS_SIM_EXPERIMENT_H
#define AEGIS_SIM_EXPERIMENT_H

#include <cstdint>
#include <string>

#include "scheme/tracker.h"
#include "sim/block_sim.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace aegis::sim {

/** Shared Monte-Carlo configuration (paper §3.1 defaults). */
struct ExperimentConfig
{
    /** Scheme under test (factory name, e.g. "aegis-9x61"). */
    std::string scheme = "aegis-9x61";
    /** Protected data block size in bits. */
    std::uint32_t blockBits = 512;
    /** Memory (allocation) block size in bytes; 4096 = OS page. */
    std::uint32_t pageBytes = 4096;
    /** Pages simulated (2048 = the paper's 8MB memory). */
    std::uint32_t pages = 256;
    /** Master seed; identical seeds reuse identical cell populations
     *  across schemes. */
    std::uint64_t seed = 1;
    /** Cell lifetime model. */
    std::string lifetimeKind = "normal";
    double lifetimeMean = 1e8;
    double lifetimeParam = 0.25;    ///< cv / shape / spread
    WearModel wear;
    scheme::TrackerOptions tracker;
    /** Wrap every functional scheme in the runtime invariant auditor
     *  (audit::SchemeAuditor) so Monte-Carlo runs double as
     *  correctness sweeps. Costly; off by default. */
    bool audit = false;

    /** Factory spelling of @ref scheme honouring @ref audit. */
    std::string schemeSpec() const { return schemeSpec(scheme); }

    /** Factory spelling of @p name honouring @ref audit (for
     *  secondary schemes like PAYG's LEC). */
    std::string schemeSpec(const std::string &name) const
    {
        const std::string suffix = "+audit";
        const bool already =
            name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
        return (audit && !already) ? name + suffix : name;
    }
};

/** Aggregated page-level results (Figures 5, 6, 7, 9, 11, 12, 13). */
struct PageStudy
{
    std::string scheme;
    std::size_t overheadBits = 0;
    std::size_t blockBits = 0;
    /** Faults recovered per page before its first block failure. */
    RunningStat recoverableFaults;
    /** Page lifetime in page writes. */
    RunningStat pageLifetime;
    /** Re-partitions per page over its whole life. */
    RunningStat repartitions;
    /** Death times for survival curves / half lifetime (Fig 9). */
    SurvivalCurve survival;

    /** Overhead as a fraction of the data bits. */
    double overheadFraction() const;
};

/** Aggregated block-level results (Figures 8 and 10). */
struct BlockStudy
{
    std::string scheme;
    std::size_t overheadBits = 0;
    /** Block lifetime in block writes. */
    RunningStat blockLifetime;
    /** Fault count at death, for the failure-probability CDF. */
    Histogram faultsAtDeath;

    /** P(block failed once @p faults faults occurred) — Fig 8. */
    double failureProbabilityAt(std::int64_t faults) const
    { return faultsAtDeath.cdf(faults); }
};

/** Run the page-level Monte Carlo for one scheme. */
PageStudy runPageStudy(const ExperimentConfig &config);

/** Run @p blocks single-block lives for one scheme. */
BlockStudy runBlockStudy(const ExperimentConfig &config,
                         std::uint32_t blocks);

/**
 * Lifetime improvement of @p study over the unprotected baseline
 * measured on the same cell populations (same config/seed with
 * scheme "none").
 */
double lifetimeImprovement(const PageStudy &study,
                           const PageStudy &baseline);

class Workload;

/**
 * Memory-level survival under a (possibly skewed) write workload: a
 * page's death time in memory time is its intrinsic lifetime divided
 * by the workload's per-page rate multiplier. With the paper's
 * perfect wear leveling this equals the PageStudy survival curve.
 */
SurvivalCurve runMemorySurvival(const ExperimentConfig &config,
                                const Workload &workload);

} // namespace aegis::sim

#endif // AEGIS_SIM_EXPERIMENT_H
