/**
 * @file
 * PAYG — Pay-As-You-Go error correction (Qureshi, MICRO 2011),
 * §4 of the Aegis paper.
 *
 * Uniformly provisioning every block for the worst-case fault count
 * wastes space: cell lifetime variation means most blocks need little
 * correction while a few need a lot. PAYG gives each block a small
 * Local Error Correction (LEC) and backs it with a Global Error
 * Correction (GEC) pool of pointer entries allocated on demand.
 *
 * The Aegis paper notes PAYG can employ any scheme in its components
 * and that Aegis "complements PAYG with its strong fault tolerance
 * capability and its space efficiency". We implement exactly that
 * composition: any data-independent scheme in this library serves as
 * the LEC, and GEC entries are ECP-style pointer repairs that
 * *neutralize* a fault (replacement storage takes over the cell), so
 * an LEC that would be overwhelmed sheds its hardest faults to the
 * pool.
 *
 * The Monte Carlo is memory-level: fault events of all blocks are
 * replayed in global time order because blocks compete for the shared
 * pool. Wear-rate amplification is not modeled here (DESIGN.md §4) —
 * PAYG comparisons are about fault capacity per bit.
 */

#ifndef AEGIS_SIM_PAYG_H
#define AEGIS_SIM_PAYG_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/experiment.h"

namespace aegis::sim {

/** PAYG configuration on top of an ExperimentConfig. */
struct PaygConfig
{
    /** LEC scheme per block (factory name); must be data-independent
     *  (ECP / SAFER / basic Aegis). */
    std::string lecScheme = "aegis-23x23";
    /** GEC pool entries shared by the whole memory. */
    std::uint32_t gecEntries = 256;
    /** Entry cost in bits: pointer (block id + offset) + replacement
     *  bit; computed from the geometry when 0. */
    std::uint32_t gecEntryBits = 0;
};

/** Outcome of one PAYG memory life. */
struct PaygResult
{
    /** Page writes until the first unrecoverable fault anywhere. */
    double firstFailure = 0.0;
    /** GEC entries consumed by then. */
    std::uint32_t gecUsed = 0;
    /** Faults absorbed by the whole memory by then. */
    std::uint64_t faultsAbsorbed = 0;
    /** Total overhead bits (LEC x blocks + GEC pool + entry tags). */
    std::uint64_t overheadBits = 0;

    double overheadBitsPerBlock(std::uint64_t blocks) const
    {
        return static_cast<double>(overheadBits) /
               static_cast<double>(blocks);
    }
};

/**
 * Run the PAYG memory Monte Carlo: all blocks of the memory replayed
 * in global fault-arrival order against the shared pool. The memory
 * fails at the first fault that neither the block's LEC nor a fresh
 * GEC entry can absorb.
 */
PaygResult runPaygStudy(const ExperimentConfig &config,
                        const PaygConfig &payg);

} // namespace aegis::sim

#endif // AEGIS_SIM_PAYG_H
