#include "sim/page_sim.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::sim {

PageSimulator::PageSimulator(const BlockSimulator &block_sim,
                             std::uint32_t blocks_per_page)
    : blockSim(block_sim), blocksPerPage(blocks_per_page)
{
    AEGIS_REQUIRE(blocks_per_page > 0, "a page needs at least one block");
}

PageLifeResult
PageSimulator::run(const Rng &page_rng) const
{
    // run() is const and called concurrently by parallelFor workers;
    // the per-thread buffer keeps back-to-back page lives from
    // reallocating the block-result vector.
    static thread_local std::vector<BlockLifeResult> blocks;
    return runDetailed(page_rng, blocks);
}

PageLifeResult
PageSimulator::runDetailed(const Rng &page_rng,
                           std::vector<BlockLifeResult> &blocks) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::PageLife);
    blocks.clear();
    blocks.reserve(blocksPerPage);
    double death = std::numeric_limits<double>::infinity();
    for (std::uint32_t b = 0; b < blocksPerPage; ++b) {
        // Stream ids: even = cell population, odd = simulation noise.
        Rng cell_rng = page_rng.split(2ull * b);
        Rng sim_rng = page_rng.split(2ull * b + 1);
        blocks.push_back(blockSim.run(cell_rng, sim_rng));
        death = std::min(death, blocks.back().deathTime);
    }

    obs::bump(obs::Counter::PageLives);
    PageLifeResult result;
    result.deathTime = death;
    for (const BlockLifeResult &blk : blocks) {
        result.repartitions += blk.repartitions;
        for (double ft : blk.faultTimes) {
            if (ft < death)
                ++result.faultsRecovered;
            else
                break;    // fault times are ascending
        }
    }
    return result;
}

} // namespace aegis::sim
