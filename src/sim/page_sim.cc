#include "sim/page_sim.h"

#include <algorithm>
#include <span>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::sim {

PageSimulator::PageSimulator(const BlockSimulator &block_sim,
                             std::uint32_t blocks_per_page,
                             std::uint32_t batch_lanes)
    : blockSim(block_sim), blocksPerPage(blocks_per_page),
      batchLanes(std::max<std::uint32_t>(1, batch_lanes))
{
    AEGIS_REQUIRE(blocks_per_page > 0, "a page needs at least one block");
}

PageLifeResult
PageSimulator::run(const Rng &page_rng) const
{
    // run() is const and called concurrently by parallelFor workers;
    // the per-thread buffer keeps back-to-back page lives from
    // reallocating the block-result vector.
    static thread_local std::vector<BlockLifeResult> blocks;
    return runDetailed(page_rng, blocks);
}

PageLifeResult
PageSimulator::runDetailed(const Rng &page_rng,
                           std::vector<BlockLifeResult> &blocks) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::PageLife);
    blocks.clear();
    blocks.resize(blocksPerPage);
    // Lane-major batch scratch; per-thread because runDetailed is
    // const and called concurrently by parallelFor workers.
    static thread_local BlockBatchWorkspace batch_ws;
    static thread_local std::vector<Rng> cell_rngs;
    static thread_local std::vector<Rng> sim_rngs;
    double death = std::numeric_limits<double>::infinity();
    for (std::uint32_t b0 = 0; b0 < blocksPerPage; b0 += batchLanes) {
        const std::uint32_t lanes =
            std::min(batchLanes, blocksPerPage - b0);
        cell_rngs.clear();
        sim_rngs.clear();
        for (std::uint32_t l = 0; l < lanes; ++l) {
            // Stream ids: even = cell population, odd = sim noise —
            // per block, independent of the batch grouping.
            cell_rngs.push_back(page_rng.split(2ull * (b0 + l)));
            sim_rngs.push_back(page_rng.split(2ull * (b0 + l) + 1));
        }
        blockSim.runBatch(
            cell_rngs, sim_rngs,
            std::span<BlockLifeResult>(blocks).subspan(b0, lanes),
            batch_ws);
    }
    for (const BlockLifeResult &blk : blocks)
        death = std::min(death, blk.deathTime);

    obs::bump(obs::Counter::PageLives);
    PageLifeResult result;
    result.deathTime = death;
    for (const BlockLifeResult &blk : blocks) {
        result.repartitions += blk.repartitions;
        for (double ft : blk.faultTimes) {
            if (ft < death)
                ++result.faultsRecovered;
            else
                break;    // fault times are ascending
        }
    }
    return result;
}

} // namespace aegis::sim
