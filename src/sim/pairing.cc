#include "sim/pairing.h"

#include <algorithm>

#include "aegis/factory.h"
#include "pcm/address.h"
#include "pcm/lifetime_model.h"
#include "sim/page_sim.h"
#include "util/error.h"

namespace aegis::sim {

namespace {

/** Dead-block offsets of one page at a given time. */
std::uint64_t
deadMask(const std::vector<double> &deaths, double when)
{
    AEGIS_ASSERT(deaths.size() <= 64,
                 "pairing study supports up to 64 blocks per page");
    std::uint64_t mask = 0;
    for (std::size_t b = 0; b < deaths.size(); ++b) {
        if (deaths[b] <= when)
            mask |= 1ull << b;
    }
    return mask;
}

/** Greedy first-fit matching of compatible (disjoint-mask) pages. */
std::size_t
matchPairs(std::vector<std::uint64_t> masks)
{
    std::size_t pairs = 0;
    std::vector<bool> used(masks.size(), false);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        if (used[i])
            continue;
        for (std::size_t j = i + 1; j < masks.size(); ++j) {
            if (!used[j] && (masks[i] & masks[j]) == 0) {
                used[i] = used[j] = true;
                ++pairs;
                break;
            }
        }
    }
    return pairs;
}

} // namespace

double
PairingStudy::timeToCapacity(double fraction, bool paired) const
{
    const auto &curve = paired ? withPairing : withoutPairing;
    AEGIS_REQUIRE(!curve.empty(), "empty pairing study");
    const double target = fraction * curve.front().second;
    for (const auto &[when, capacity] : curve) {
        if (capacity < target)
            return when;
    }
    return curve.back().first;
}

PairingStudy
runPairingStudy(const ExperimentConfig &config, std::size_t points)
{
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};
    AEGIS_REQUIRE(geom.blocksPerPage() <= 64,
                  "pairing study supports up to 64 blocks per page");
    const auto scheme =
        core::makeScheme(config.schemeSpec(), config.blockBits);
    const auto lifetime = pcm::makeLifetimeModel(
        config.lifetimeKind, config.lifetimeMean, config.lifetimeParam);
    const BlockSimulator block_sim(*scheme, *lifetime, config.wear,
                                   config.tracker);
    const PageSimulator page_sim(block_sim, geom.blocksPerPage(),
                                 config.batch);

    // Per-page block death times.
    std::vector<std::vector<double>> page_deaths(config.pages);
    const Rng master(config.seed);
    double horizon = 0;
    for (std::uint32_t p = 0; p < config.pages; ++p) {
        std::vector<BlockLifeResult> blocks;
        (void)page_sim.runDetailed(master.split(p), blocks);
        page_deaths[p].reserve(blocks.size());
        for (const BlockLifeResult &blk : blocks) {
            page_deaths[p].push_back(blk.deathTime);
            horizon = std::max(horizon, blk.deathTime);
        }
    }

    PairingStudy study;
    for (std::size_t i = 0; i <= points; ++i) {
        const double when =
            horizon * static_cast<double>(i) /
            static_cast<double>(points == 0 ? 1 : points);

        std::size_t healthy = 0;
        std::vector<std::uint64_t> faulty_masks;
        for (const auto &deaths : page_deaths) {
            const std::uint64_t mask = deadMask(deaths, when);
            if (mask == 0)
                ++healthy;
            else
                faulty_masks.push_back(mask);
        }
        const std::size_t pairs = matchPairs(std::move(faulty_masks));
        study.withoutPairing.emplace_back(
            when, static_cast<double>(healthy));
        study.withPairing.emplace_back(
            when, static_cast<double>(healthy + pairs));
    }
    return study;
}

} // namespace aegis::sim
