/**
 * @file
 * Versioned, checksummed checkpoint store for resumable Monte-Carlo
 * sweeps.
 *
 * The parallel reducer already lays every study out on a fixed chunk
 * grid whose decomposition never depends on the worker count (see
 * util/parallel.h). A checkpoint simply snapshots that grid: the
 * serialized accumulator of every finished chunk of the unit in
 * flight, plus the merged result blob of every finished unit. On
 * resume the finished state is restored byte-for-byte, only the
 * missing chunks are recomputed (each item draws from its own
 * seed-derived RNG stream, so recomputation is order-independent),
 * and the chunk results merge in chunk order — the resumed study is
 * bit-identical to an uninterrupted run, for any --jobs value on
 * either side of the interruption.
 *
 * File layout (little-endian):
 *   magic "AEGISCKP" | u32 version | u64 payloadSize | u64 fnv1a64
 *   checksum | payload
 * The payload records the program name, a fingerprint of the
 * result-affecting flags, the master seed, the shard identity, the
 * finished units, and the chunk grids of units still in flight.
 * Stale checkpoints — wrong program, flags, seed, shard, or per-unit
 * fingerprint — are rejected with an actionable error instead of
 * silently producing a chimera of two different sweeps.
 *
 * Version 2 generalizes the single in-flight unit of version 1 to a
 * list: a shard worker (see sim/shard.h) owns only every N-th chunk
 * of each unit, so it can never merge a unit to completion — its
 * finished units stay behind as chunk grids that the sweep
 * supervisor's merge step folds together across shards.
 */

#ifndef AEGIS_SIM_CHECKPOINT_H
#define AEGIS_SIM_CHECKPOINT_H

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/experiment.h"
#include "sim/shard.h"
#include "util/cancel.h"
#include "util/error.h"
#include "util/expected.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace aegis::sim {

/** Checkpoint file format version this build reads and writes. */
inline constexpr std::uint32_t kCheckpointVersion = 2;

/** Which study type a checkpointed unit aggregates. */
enum class StudyKind : std::uint8_t {
    Page = 1,
    Block = 2,
    Survival = 3,
};

/** One finished chunk of the unit in flight. */
struct CheckpointChunk
{
    std::uint32_t index = 0;
    std::string blob; ///< serialized chunk accumulator
};

/** One finished study unit (e.g. one table row's sweep). */
struct CheckpointUnit
{
    std::uint32_t index = 0;       ///< position in the bench's unit order
    std::uint64_t fingerprint = 0; ///< hash of the unit's configuration
    std::uint8_t kind = 0;         ///< StudyKind
    std::string blob;              ///< serialized merged study
};

/** The chunk grid of a unit not yet merged to completion: the unit
 *  in flight at snapshot time, or — in a shard worker — every unit,
 *  since a shard owns only a subset of each unit's chunks. */
struct CheckpointPartial
{
    std::uint32_t index = 0;
    std::uint64_t fingerprint = 0;
    std::uint8_t kind = 0;
    std::uint64_t items = 0;
    std::uint64_t grain = 0;
    std::vector<CheckpointChunk> chunks;
};

/** Everything a checkpoint file stores. */
struct CheckpointData
{
    std::string program;
    std::uint64_t flagsFingerprint = 0;
    std::uint64_t masterSeed = 0;
    std::uint32_t shardIndex = 0; ///< writer's shard (0 unsharded)
    std::uint32_t shardCount = 1; ///< shards in the sweep (1 unsharded)
    std::vector<CheckpointUnit> completed;
    std::vector<CheckpointPartial> partials;
};

/** Encode @p data as a complete checkpoint file image. */
std::string encodeCheckpoint(const CheckpointData &data);

/**
 * Decode a checkpoint file image. Bad magic, unsupported version,
 * truncation, checksum mismatch and malformed payloads each fail with
 * a distinct actionable message naming @p path.
 */
Expected<CheckpointData> decodeCheckpoint(std::string_view bytes,
                                          const std::string &path);

/** Read and decode the checkpoint at @p path. */
Expected<CheckpointData> loadCheckpointFile(const std::string &path);

/** Serialize a study accumulator into a checkpoint blob. */
void serializeStudy(const PageStudy &s, BinaryWriter &w);
void serializeStudy(const BlockStudy &s, BinaryWriter &w);
void serializeStudy(const SurvivalStudy &s, BinaryWriter &w);

/** Restore a study accumulator; false on short/corrupt input. */
bool deserializeStudy(PageStudy &s, BinaryReader &r);
bool deserializeStudy(BlockStudy &s, BinaryReader &r);
bool deserializeStudy(SurvivalStudy &s, BinaryReader &r);

/**
 * One bench run's checkpoint state: prior progress restored from disk
 * plus the progress of the current process, snapshotted atomically
 * (write-temp + fsync + rename) every few chunks, at every unit
 * boundary, and on cancellation.
 *
 * Thread safety: beginUnit/unitDone/resume are called from the
 * driving thread between sweeps; chunkDone is called concurrently by
 * the reducer's workers and serializes internally.
 */
class CheckpointSession
{
  public:
    CheckpointSession(std::string path, std::string program,
                      std::uint64_t flagsFingerprint,
                      std::uint64_t masterSeed,
                      ShardSpec shard = ShardSpec{});

    /**
     * Load the checkpoint file and adopt its progress. Fails with an
     * actionable message when the file is unreadable, corrupt, or was
     * written by a different program / flag set / seed / shard.
     */
    Status resume();

    /** Prior progress for the unit beginUnit just opened. */
    struct UnitResume
    {
        bool completed = false; ///< whole unit restored; skip the sweep
        std::string unitBlob;   ///< merged study blob when completed
        std::vector<CheckpointChunk> chunks; ///< finished chunks otherwise
    };

    /**
     * Open the next unit (units are numbered in call order) and
     * return any restored progress for it. Throws ConfigError when
     * the checkpoint's record of this unit has a different
     * fingerprint, kind, or chunk grid — the checkpoint belongs to a
     * different sweep.
     */
    UnitResume beginUnit(std::uint64_t fingerprint, StudyKind kind,
                         std::uint64_t items, std::uint64_t grain);

    /**
     * Record one finished chunk of the open unit. Safe to call from
     * worker threads. Every snapshotEvery-th recorded chunk triggers
     * a snapshot (failure warns and continues: losing a checkpoint
     * must not kill the sweep it exists to protect). The chaos
     * harness's injected kill-point sits after the snapshot decision.
     */
    void chunkDone(std::uint32_t chunk, std::string blob);

    /** Close the open unit with its merged study blob and snapshot. */
    void unitDone(std::string blob);

    /**
     * Close the open unit *without* a merged blob, keeping its chunk
     * grid (sorted by chunk index) in the checkpoint. A shard worker
     * owns only a subset of each unit's chunks, so this — not
     * unitDone — is how it finishes a unit; the supervisor's merge
     * step later folds the grids of all shards back together.
     */
    void shardUnitDone();

    /** Write a snapshot of all progress now (atomic replace). */
    Status writeSnapshot();

    /**
     * Suppress all checkpoint writes. Used when finalizing a merged
     * shard checkpoint: the merged file is an input assembled by the
     * supervisor, not this run's progress to overwrite.
     */
    void setReadOnly(bool value);

    /**
     * Account chunks that were neither restored nor recomputed — a
     * degraded finalize over a merge with failed shards. A nonzero
     * count means the studies under-sampled their grids and the
     * manifest must say "partial".
     */
    void noteSkippedChunks(std::uint64_t n);
    std::uint64_t skippedChunks() const;

    /** Fold in the metrics of a study blob restored from disk. */
    void noteRestoredMetrics(const obs::Metrics &m);

    /**
     * Metrics carried by every blob restored from disk this process —
     * work accounted in the checkpoint but not re-executed here.
     * Adding these to obs::processTotals() makes a resumed run's
     * manifest counters byte-equal to an uninterrupted run's.
     */
    const obs::Metrics &restoredMetrics() const { return restored; }

    /** Snapshot cadence in chunks (0 = only at unit boundaries). */
    void setSnapshotEveryChunks(std::uint32_t every)
    {
        snapshotEvery = every;
    }

    const std::string &path() const { return filePath; }

  private:
    Status writeSnapshotLocked();
    void warnWriteFailure(const Status &s);

    mutable std::mutex mu;
    std::string filePath;
    CheckpointData current;  ///< progress to persist (restored + new)
    CheckpointData restoredFile; ///< as loaded by resume()
    bool haveRestored = false;
    bool unitOpen = false;
    bool readOnly = false;
    std::uint32_t nextUnit = 0;
    std::uint32_t snapshotEvery = 8;
    std::uint32_t sinceSnapshot = 0;
    std::uint64_t skipped = 0;
    bool warnedWriteFailure = false;
    obs::Metrics restored;
};

/**
 * Ambient per-run context the study runners consult: an optional
 * checkpoint session and an optional cancellation token. Installed by
 * the bench harness around the run body (ScopedRunContext); library
 * callers that use the runners directly get a plain uncheckpointed,
 * uncancellable sweep. Main-thread discipline: install before the
 * sweeps start, not from worker threads.
 */
struct RunContext
{
    CheckpointSession *session = nullptr;
    const CancelToken *cancel = nullptr;
    /** Which slice of every chunk grid this process computes. The
     *  default {0,1} owns everything (the unsharded case). */
    ShardSpec shard;
    /** Restore-only finalize: merge the chunks the checkpoint holds,
     *  never compute missing ones (they belonged to failed shards). */
    bool restoreOnly = false;
};

/** The active ambient context (defaults: no session, no token). */
RunContext &activeRunContext();

/** RAII installer for the ambient RunContext. */
class ScopedRunContext
{
  public:
    explicit ScopedRunContext(RunContext ctx) : saved(activeRunContext())
    {
        activeRunContext() = ctx;
    }
    ~ScopedRunContext() { activeRunContext() = saved; }
    ScopedRunContext(const ScopedRunContext &) = delete;
    ScopedRunContext &operator=(const ScopedRunContext &) = delete;

  private:
    RunContext saved;
};

/**
 * Deterministic chunked reduction with resume, periodic snapshots and
 * cooperative cancellation — the checkpoint-aware superset of
 * parallelReduce() that the study runners build on.
 *
 * Without an active session this *is* parallelReduce (plus the
 * ambient cancel token). With one: previously finished chunks are
 * restored instead of recomputed, finished chunks are recorded as
 * they complete, and on cancellation the workers drain at the next
 * chunk boundary, a final snapshot is written, and CancelledError is
 * raised for the harness to turn into a "partial" manifest.
 *
 * This is the range-body form — body(acc, begin, end) once per chunk
 * — for runners that batch consecutive items (the SoA block-life
 * batches). The chunk grid is unchanged, so a batch span never
 * crosses a chunk boundary and every checkpoint blob, timeline row
 * and merged study stays batch-size-invariant.
 */
template <typename Study, typename RangeBody>
Study
runStudyUnitRanged(std::size_t items, unsigned jobs, StudyKind kind,
                   std::uint64_t fingerprint, const RangeBody &body,
                   std::size_t grain = kDefaultGrain)
{
    RunContext &ctx = activeRunContext();
    if (ctx.session == nullptr) {
        // Per-chunk telemetry hook: rows are indexed by chunk on the
        // fixed grid, so the recorded timeline (wall_ms aside) is as
        // jobs-invariant as the reduction itself.
        const std::function<void(std::size_t, Study &, std::size_t)>
            chunk_done = [](std::size_t c, Study &acc,
                            std::size_t n) {
                obs::timelineChunkDone(c, n, acc.metrics);
            };
        return parallelReduceRanged<Study>(
            items, jobs, body, grain, ctx.cancel,
            obs::timelineEnabled() ? &chunk_done : nullptr);
    }

    if (grain == 0)
        grain = 1;
    const std::size_t chunks = (items + grain - 1) / grain;
    CheckpointSession &session = *ctx.session;
    CheckpointSession::UnitResume prior = session.beginUnit(
        fingerprint, kind, items, grain);

    if (prior.completed) {
        Study out;
        BinaryReader r(prior.unitBlob);
        AEGIS_REQUIRE(deserializeStudy(out, r) && r.atEnd(),
                      "checkpoint `" + session.path() +
                          "' holds a corrupt study record");
        session.noteRestoredMetrics(out.metrics);
        return out;
    }

    std::vector<Study> partial(chunks);
    std::vector<std::uint8_t> have(chunks, 0);
    for (const CheckpointChunk &c : prior.chunks) {
        AEGIS_REQUIRE(c.index < chunks,
                      "checkpoint `" + session.path() +
                          "' references a chunk outside this sweep");
        BinaryReader r(c.blob);
        AEGIS_REQUIRE(deserializeStudy(partial[c.index], r) && r.atEnd(),
                      "checkpoint `" + session.path() +
                          "' holds a corrupt chunk record");
        session.noteRestoredMetrics(partial[c.index].metrics);
        if (obs::timelineEnabled()) {
            const std::size_t begin = c.index * grain;
            const std::size_t end = std::min(items, begin + grain);
            obs::timelineChunkDone(c.index, end - begin,
                                   partial[c.index].metrics,
                                   /*restored=*/true);
        }
        have[c.index] = 1;
    }

    // A shard computes only the chunks it owns; a restore-only
    // finalize computes nothing. Chunks neither restored nor computed
    // here are skipped — someone else's work, or (degraded merge) a
    // failed shard's lost work, which the session accounts so the
    // manifest can say "partial".
    const ShardSpec shard = ctx.shard;
    std::vector<std::size_t> pending;
    pending.reserve(chunks);
    std::uint64_t skippedHere = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        if (have[c] != 0)
            continue;
        if (ctx.restoreOnly || !shard.owns(c))
            ++skippedHere;
        else
            pending.push_back(c);
    }

    parallelFor(
        pending.size(), jobs,
        [&](std::size_t pi) {
            const std::size_t c = pending[pi];
            const std::size_t begin = c * grain;
            const std::size_t end = std::min(items, begin + grain);
            body(partial[c], begin, end);
            if (obs::timelineEnabled())
                obs::timelineChunkDone(c, end - begin,
                                       partial[c].metrics);
            BinaryWriter w;
            serializeStudy(partial[c], w);
            session.chunkDone(static_cast<std::uint32_t>(c), w.take());
        },
        ctx.cancel);

    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
        const Status s = session.writeSnapshot();
        if (!s.ok())
            std::fprintf(stderr,
                         "warning: final checkpoint write failed: %s\n",
                         s.error().c_str());
        throw CancelledError(ctx.cancel->reason());
    }

    // Merging a default-constructed Study is a no-op, so folding the
    // whole grid in chunk order is correct for every mode; in shard /
    // restore-only mode the skipped entries simply contribute nothing.
    Study out;
    for (Study &p : partial)
        out.merge(p);
    if (shard.active()) {
        // This worker cannot complete the unit — the other shards own
        // the missing chunks. Keep the chunk grid for the merge step;
        // the returned study covers only this shard's slice.
        session.shardUnitDone();
        return out;
    }
    session.noteSkippedChunks(skippedHere);
    BinaryWriter w;
    serializeStudy(out, w);
    session.unitDone(w.take());
    return out;
}

/** Per-item form: body(acc, item) for every item, same guarantees. */
template <typename Study, typename Body>
Study
runStudyUnit(std::size_t items, unsigned jobs, StudyKind kind,
             std::uint64_t fingerprint, const Body &body,
             std::size_t grain = kDefaultGrain)
{
    return runStudyUnitRanged<Study>(items, jobs, kind, fingerprint,
                                     perItemRangeBody<Study>(body),
                                     grain);
}

} // namespace aegis::sim

#endif // AEGIS_SIM_CHECKPOINT_H
