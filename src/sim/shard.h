/**
 * @file
 * Shard-aware partitioning of the Monte-Carlo chunk grid.
 *
 * The parallel reducer lays every study on a fixed chunk grid whose
 * decomposition never depends on the worker count (util/parallel.h).
 * A shard is a static slice of that grid: shard i of N owns every
 * chunk whose index is congruent to i mod N. Because chunk results
 * merge in chunk order regardless of who computed them, N shard
 * processes can compute disjoint chunk sets and a later merge +
 * resume reproduces the single-process study bit for bit.
 */

#ifndef AEGIS_SIM_SHARD_H
#define AEGIS_SIM_SHARD_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/expected.h"

namespace aegis::sim {

/** One shard's identity within a sharded sweep. */
struct ShardSpec
{
    std::uint32_t index = 0; ///< this shard's position, 0-based
    std::uint32_t count = 1; ///< total shards in the sweep

    /** True when the sweep is actually split across shards. */
    bool active() const { return count > 1; }

    /** Does this shard compute chunk @p chunk of the fixed grid? */
    bool
    owns(std::size_t chunk) const
    {
        return count <= 1 || chunk % count == index;
    }

    /** "i/N", as written on the command line. */
    std::string label() const;

    /**
     * Parse "i/N" with 0 <= i < N and N >= 1. Fails with an
     * actionable message on anything else (including i >= N, the
     * classic off-by-one when shard ids are 1-based elsewhere).
     */
    static Expected<ShardSpec> parse(const std::string &text);
};

inline bool
operator==(const ShardSpec &a, const ShardSpec &b)
{
    return a.index == b.index && a.count == b.count;
}

/** "<dir>/shard_<i>" — the stem every per-shard artifact derives
 *  from (checkpoint "<stem>.ckpt", manifest "<stem>.json", logs). */
std::string shardArtifactStem(const std::string &dir,
                              std::uint32_t index);

} // namespace aegis::sim

#endif // AEGIS_SIM_SHARD_H
