/**
 * @file
 * Page- and memory-level Monte Carlo built on BlockSimulator.
 *
 * A memory block (OS page) consists of independent data blocks; every
 * page write touches all of them, so block time equals page time. The
 * page dies when its first data block becomes unrecoverable (the
 * paper's definition), and the faults it "recovered" are all faults —
 * in any of its blocks — that arrived strictly before that moment.
 */

#ifndef AEGIS_SIM_PAGE_SIM_H
#define AEGIS_SIM_PAGE_SIM_H

#include <cstdint>
#include <vector>

#include "sim/block_sim.h"

namespace aegis::sim {

/** Outcome of one page's simulated life. */
struct PageLifeResult
{
    /** Page writes survived before the first block failure. */
    double deathTime = 0.0;
    /** Faults recovered across all blocks before death. */
    std::uint64_t faultsRecovered = 0;
    /** Total re-partitions across the page's blocks. */
    std::uint64_t repartitions = 0;
};

/** Simulate one page of @p blocks_per_page independent data blocks. */
class PageSimulator
{
  public:
    /**
     * @param block_sim the per-block simulator driven for each block.
     * @param blocks_per_page data blocks per memory block (OS page).
     * @param batch_lanes block lives driven per structure-of-arrays
     *        batch (BlockSimulator::runBatch); a throughput knob
     *        only — every block keeps its own page_rng.split streams,
     *        so results are bit-identical for every value (0 is
     *        treated as 1).
     */
    PageSimulator(const BlockSimulator &block_sim,
                  std::uint32_t blocks_per_page,
                  std::uint32_t batch_lanes = 1);

    /**
     * Run one page life. @p page_rng is split per block into separate
     * cell and sim streams (see BlockSimulator::run), so a page
     * simulated with the same @p page_rng seed sees identical cell
     * populations regardless of the scheme under test.
     */
    PageLifeResult run(const Rng &page_rng) const;

    /**
     * Like run(), but also returns every block's full life (for
     * consumers that need per-block death times, e.g. the dynamic
     * pairing study).
     */
    PageLifeResult runDetailed(const Rng &page_rng,
                               std::vector<BlockLifeResult> &blocks)
        const;

  private:
    const BlockSimulator &blockSim;
    std::uint32_t blocksPerPage;
    std::uint32_t batchLanes;
};

} // namespace aegis::sim

#endif // AEGIS_SIM_PAGE_SIM_H
