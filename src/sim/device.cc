#include "sim/device.h"

#include "util/error.h"

namespace aegis::sim {

PcmDevice::PcmDevice(const pcm::Geometry &geometry,
                     const scheme::Scheme &prototype,
                     std::shared_ptr<pcm::FaultDirectory> dir)
    : geom(geometry), directory(std::move(dir))
{
    AEGIS_REQUIRE(prototype.blockBits() == geom.blockBits,
                  "scheme block size must match the device geometry");
    AEGIS_REQUIRE(!prototype.requiresDirectory() || directory,
                  "scheme `" + prototype.name() +
                      "' requires a fault directory");
    const std::uint64_t total = geom.totalBlocks();
    blocks.reserve(total);
    for (std::uint64_t id = 0; id < total; ++id) {
        auto clone = prototype.clone();
        clone->reset();
        if (directory)
            clone->attachDirectory(directory.get(), id);
        blocks.emplace_back(geom.blockBits, std::move(clone));
    }
}

PcmDevice::Block &
PcmDevice::blockAt(std::uint64_t block_id)
{
    AEGIS_REQUIRE(block_id < blocks.size(), "block id out of range");
    return blocks[block_id];
}

const PcmDevice::Block &
PcmDevice::blockAt(std::uint64_t block_id) const
{
    AEGIS_REQUIRE(block_id < blocks.size(), "block id out of range");
    return blocks[block_id];
}

scheme::WriteOutcome
PcmDevice::writeBlock(std::uint64_t block_id, const BitVector &data)
{
    Block &blk = blockAt(block_id);
    const std::uint64_t writes_before = blk.cells.totalCellWrites();
    const scheme::WriteOutcome outcome =
        blk.scheme->write(blk.cells, data);
    ++devStats.blockWrites;
    devStats.cellPrograms +=
        blk.cells.totalCellWrites() - writes_before;
    devStats.repartitions += outcome.repartitions;
    if (!outcome.ok) {
        ++devStats.failedWrites;
        if (!blk.dead) {
            blk.dead = true;
            ++devStats.deadBlocks;
        }
    }
    return outcome;
}

BitVector
PcmDevice::readBlock(std::uint64_t block_id) const
{
    const Block &blk = blockAt(block_id);
    return blk.scheme->read(blk.cells);
}

bool
PcmDevice::writePage(std::uint32_t page, const BitVector &data)
{
    AEGIS_REQUIRE(data.size() == geom.pageBits(),
                  "page data width mismatch");
    bool ok = true;
    const std::uint32_t per_page = geom.blocksPerPage();
    for (std::uint32_t b = 0; b < per_page; ++b) {
        BitVector chunk(geom.blockBits);
        for (std::uint32_t i = 0; i < geom.blockBits; ++i)
            chunk.set(i, data.get(b * geom.blockBits + i));
        ok &= writeBlock(geom.blockId(page, b), chunk).ok;
    }
    return ok;
}

BitVector
PcmDevice::readPage(std::uint32_t page) const
{
    BitVector out(geom.pageBits());
    const std::uint32_t per_page = geom.blocksPerPage();
    for (std::uint32_t b = 0; b < per_page; ++b) {
        const BitVector chunk = readBlock(geom.blockId(page, b));
        for (std::uint32_t i = 0; i < geom.blockBits; ++i)
            out.set(b * geom.blockBits + i, chunk.get(i));
    }
    return out;
}

void
PcmDevice::injectFault(std::uint64_t block_id, std::uint32_t offset,
                       bool stuck_value)
{
    blockAt(block_id).cells.injectFault(offset, stuck_value);
}

void
PcmDevice::injectRandomFaults(std::size_t count, Rng &rng)
{
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t block = rng.nextBounded(blocks.size());
        const auto offset = static_cast<std::uint32_t>(
            rng.nextBounded(geom.blockBits));
        blockAt(block).cells.injectFault(offset, rng.nextBool());
    }
}

bool
PcmDevice::blockDead(std::uint64_t block_id) const
{
    return blockAt(block_id).dead;
}

const pcm::CellArray &
PcmDevice::cells(std::uint64_t block_id) const
{
    return blockAt(block_id).cells;
}

const scheme::Scheme &
PcmDevice::schemeOf(std::uint64_t block_id) const
{
    return *blockAt(block_id).scheme;
}

} // namespace aegis::sim
