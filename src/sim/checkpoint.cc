#include "sim/checkpoint.h"

#include <algorithm>

#include "util/atomic_file.h"
#include "util/chaos.h"

namespace aegis::sim {

namespace {

constexpr std::string_view kMagic = "AEGISCKP";
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

void
putBase(const StudyResult &s, BinaryWriter &w)
{
    w.str(s.scheme);
    w.u64(s.overheadBits);
    w.u64(s.blockBits);
    s.metrics.serialize(w);
}

bool
getBase(StudyResult &s, BinaryReader &r)
{
    s.scheme = r.str();
    s.overheadBits = static_cast<std::size_t>(r.u64());
    s.blockBits = static_cast<std::size_t>(r.u64());
    return s.metrics.deserialize(r);
}

} // namespace

void
serializeStudy(const PageStudy &s, BinaryWriter &w)
{
    putBase(s, w);
    s.recoverableFaults.serialize(w);
    s.pageLifetime.serialize(w);
    s.repartitions.serialize(w);
    s.survival.serialize(w);
}

void
serializeStudy(const BlockStudy &s, BinaryWriter &w)
{
    putBase(s, w);
    s.blockLifetime.serialize(w);
    s.faultsAtDeath.serialize(w);
}

void
serializeStudy(const SurvivalStudy &s, BinaryWriter &w)
{
    putBase(s, w);
    s.survival.serialize(w);
}

bool
deserializeStudy(PageStudy &s, BinaryReader &r)
{
    return getBase(s, r) && s.recoverableFaults.deserialize(r) &&
           s.pageLifetime.deserialize(r) &&
           s.repartitions.deserialize(r) && s.survival.deserialize(r);
}

bool
deserializeStudy(BlockStudy &s, BinaryReader &r)
{
    return getBase(s, r) && s.blockLifetime.deserialize(r) &&
           s.faultsAtDeath.deserialize(r);
}

bool
deserializeStudy(SurvivalStudy &s, BinaryReader &r)
{
    return getBase(s, r) && s.survival.deserialize(r);
}

std::string
encodeCheckpoint(const CheckpointData &data)
{
    BinaryWriter payload;
    payload.str(data.program);
    payload.u64(data.flagsFingerprint);
    payload.u64(data.masterSeed);
    payload.u32(data.shardIndex);
    payload.u32(data.shardCount);
    payload.u32(static_cast<std::uint32_t>(data.completed.size()));
    for (const CheckpointUnit &unit : data.completed) {
        payload.u32(unit.index);
        payload.u64(unit.fingerprint);
        payload.u8(unit.kind);
        payload.str(unit.blob);
    }
    payload.u32(static_cast<std::uint32_t>(data.partials.size()));
    for (const CheckpointPartial &p : data.partials) {
        payload.u32(p.index);
        payload.u64(p.fingerprint);
        payload.u8(p.kind);
        payload.u64(p.items);
        payload.u64(p.grain);
        payload.u32(static_cast<std::uint32_t>(p.chunks.size()));
        for (const CheckpointChunk &c : p.chunks) {
            payload.u32(c.index);
            payload.str(c.blob);
        }
    }

    const std::string body = payload.take();
    BinaryWriter header;
    for (const char c : kMagic)
        header.u8(static_cast<std::uint8_t>(c));
    header.u32(kCheckpointVersion);
    header.u64(body.size());
    header.u64(fnv1a64(body));
    return header.take() + body;
}

Expected<CheckpointData>
decodeCheckpoint(std::string_view bytes, const std::string &path)
{
    using Result = Expected<CheckpointData>;
    if (bytes.size() < kHeaderBytes ||
        bytes.substr(0, kMagic.size()) != kMagic)
        return Result::failure("`" + path +
                               "' is not an aegis checkpoint "
                               "(bad magic)");
    BinaryReader header(bytes.substr(kMagic.size(),
                                     kHeaderBytes - kMagic.size()));
    const std::uint32_t version = header.u32();
    const std::uint64_t payloadSize = header.u64();
    const std::uint64_t checksum = header.u64();
    if (version != kCheckpointVersion)
        return Result::failure(
            "checkpoint `" + path + "' has format version " +
            std::to_string(version) + "; this build reads version " +
            std::to_string(kCheckpointVersion));
    const std::string_view payload = bytes.substr(kHeaderBytes);
    if (payload.size() != payloadSize)
        return Result::failure(
            "checkpoint `" + path + "' is truncated: header promises " +
            std::to_string(payloadSize) + " payload bytes, file holds " +
            std::to_string(payload.size()));
    if (fnv1a64(payload) != checksum)
        return Result::failure("checkpoint `" + path +
                               "' failed its checksum (corrupt file)");

    const auto corrupt = [&path] {
        return Result::failure("checkpoint `" + path +
                               "' has a corrupt payload");
    };
    BinaryReader r(payload);
    CheckpointData data;
    data.program = r.str();
    data.flagsFingerprint = r.u64();
    data.masterSeed = r.u64();
    data.shardIndex = r.u32();
    data.shardCount = r.u32();
    const std::uint32_t units = r.u32();
    if (!r.ok())
        return corrupt();
    if (data.shardCount == 0 || data.shardIndex >= data.shardCount)
        return Result::failure(
            "checkpoint `" + path + "' carries an impossible shard "
            "identity " + std::to_string(data.shardIndex) + "/" +
            std::to_string(data.shardCount));
    for (std::uint32_t i = 0; i < units; ++i) {
        CheckpointUnit unit;
        unit.index = r.u32();
        unit.fingerprint = r.u64();
        unit.kind = r.u8();
        unit.blob = r.str();
        if (!r.ok())
            return corrupt();
        data.completed.push_back(std::move(unit));
    }
    const std::uint32_t partials = r.u32();
    if (!r.ok())
        return corrupt();
    for (std::uint32_t i = 0; i < partials; ++i) {
        CheckpointPartial p;
        p.index = r.u32();
        p.fingerprint = r.u64();
        p.kind = r.u8();
        p.items = r.u64();
        p.grain = r.u64();
        const std::uint32_t chunks = r.u32();
        if (!r.ok())
            return corrupt();
        for (std::uint32_t j = 0; j < chunks; ++j) {
            CheckpointChunk c;
            c.index = r.u32();
            c.blob = r.str();
            if (!r.ok())
                return corrupt();
            p.chunks.push_back(std::move(c));
        }
        data.partials.push_back(std::move(p));
    }
    if (!r.ok() || !r.atEnd())
        return corrupt();
    return data;
}

Expected<CheckpointData>
loadCheckpointFile(const std::string &path)
{
    Expected<std::string> bytes = readFile(path);
    if (!bytes.ok())
        return Expected<CheckpointData>::failure(bytes.error());
    return decodeCheckpoint(*bytes, path);
}

CheckpointSession::CheckpointSession(std::string path,
                                     std::string program,
                                     std::uint64_t flagsFingerprint,
                                     std::uint64_t masterSeed,
                                     ShardSpec shard)
    : filePath(std::move(path))
{
    current.program = std::move(program);
    current.flagsFingerprint = flagsFingerprint;
    current.masterSeed = masterSeed;
    current.shardIndex = shard.index;
    current.shardCount = shard.count;
}

Status
CheckpointSession::resume()
{
    Expected<CheckpointData> loaded = loadCheckpointFile(filePath);
    if (!loaded.ok())
        return Status::failure("cannot resume: " + loaded.error());
    if (loaded->program != current.program)
        return Status::failure(
            "cannot resume: checkpoint `" + filePath +
            "' was written by `" + loaded->program + "', not `" +
            current.program + "'");
    if (loaded->flagsFingerprint != current.flagsFingerprint)
        return Status::failure(
            "cannot resume: checkpoint `" + filePath +
            "' was written with different result-affecting flags; "
            "rerun with the original flags, or start fresh without "
            "--resume");
    if (loaded->masterSeed != current.masterSeed)
        return Status::failure(
            "cannot resume: checkpoint `" + filePath +
            "' was written with --seed " +
            std::to_string(loaded->masterSeed) + ", not --seed " +
            std::to_string(current.masterSeed));
    if (loaded->shardIndex != current.shardIndex ||
        loaded->shardCount != current.shardCount)
        return Status::failure(
            "cannot resume: checkpoint `" + filePath +
            "' was written by shard " +
            std::to_string(loaded->shardIndex) + "/" +
            std::to_string(loaded->shardCount) +
            ", not shard " + std::to_string(current.shardIndex) + "/" +
            std::to_string(current.shardCount) +
            "; each shard resumes only its own checkpoint");
    restoredFile = std::move(*loaded);
    haveRestored = true;
    return Status();
}

CheckpointSession::UnitResume
CheckpointSession::beginUnit(std::uint64_t fingerprint, StudyKind kind,
                             std::uint64_t items, std::uint64_t grain)
{
    const std::lock_guard<std::mutex> lock(mu);
    AEGIS_ASSERT(!unitOpen, "beginUnit while a unit is still open");
    const std::uint32_t index = nextUnit++;
    const auto stale = [&](const std::string &what) {
        throw ConfigError(
            "cannot resume: checkpoint `" + filePath + "' records " +
            what + " for sweep #" + std::to_string(index) +
            " — it belongs to a different run; delete the checkpoint "
            "or rerun with the original configuration");
    };

    UnitResume out;
    if (haveRestored) {
        const auto done = std::find_if(
            restoredFile.completed.begin(), restoredFile.completed.end(),
            [index](const CheckpointUnit &u) { return u.index == index; });
        if (done != restoredFile.completed.end()) {
            if (done->fingerprint != fingerprint ||
                done->kind != static_cast<std::uint8_t>(kind))
                stale("a different configuration");
            current.completed.push_back(*done);
            out.completed = true;
            out.unitBlob = done->blob;
            return out;
        }
        const auto part = std::find_if(
            restoredFile.partials.begin(), restoredFile.partials.end(),
            [index](const CheckpointPartial &p) {
                return p.index == index;
            });
        if (part != restoredFile.partials.end()) {
            if (part->fingerprint != fingerprint ||
                part->kind != static_cast<std::uint8_t>(kind))
                stale("a different configuration");
            if (part->items != items || part->grain != grain)
                stale("a different chunk grid");
            out.chunks = part->chunks;
        }
    }

    CheckpointPartial open;
    open.index = index;
    open.fingerprint = fingerprint;
    open.kind = static_cast<std::uint8_t>(kind);
    open.items = items;
    open.grain = grain;
    open.chunks = out.chunks;
    current.partials.push_back(std::move(open));
    unitOpen = true;
    return out;
}

void
CheckpointSession::chunkDone(std::uint32_t chunk, std::string blob)
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        AEGIS_ASSERT(unitOpen, "chunkDone without an open unit");
        current.partials.back().chunks.push_back(
            CheckpointChunk{chunk, std::move(blob)});
        ++sinceSnapshot;
        if (snapshotEvery != 0 && sinceSnapshot >= snapshotEvery) {
            sinceSnapshot = 0;
            const Status s = writeSnapshotLocked();
            if (!s.ok())
                warnWriteFailure(s);
        }
    }
    // The injected kill-point sits after the snapshot decision so
    // that with --checkpoint-every 1 the kill never loses a chunk.
    chaosNoteChunkComplete();
}

void
CheckpointSession::unitDone(std::string blob)
{
    const std::lock_guard<std::mutex> lock(mu);
    AEGIS_ASSERT(unitOpen, "unitDone without an open unit");
    const CheckpointPartial &open = current.partials.back();
    current.completed.push_back(CheckpointUnit{
        open.index, open.fingerprint, open.kind, std::move(blob)});
    current.partials.pop_back();
    unitOpen = false;
    sinceSnapshot = 0;
    const Status s = writeSnapshotLocked();
    if (!s.ok())
        warnWriteFailure(s);
}

void
CheckpointSession::shardUnitDone()
{
    const std::lock_guard<std::mutex> lock(mu);
    AEGIS_ASSERT(unitOpen, "shardUnitDone without an open unit");
    // Chunks arrive in completion order (worker-count dependent);
    // sorting keeps the file bytes deterministic for a given shard.
    std::vector<CheckpointChunk> &chunks =
        current.partials.back().chunks;
    std::sort(chunks.begin(), chunks.end(),
              [](const CheckpointChunk &a, const CheckpointChunk &b) {
                  return a.index < b.index;
              });
    unitOpen = false;
    sinceSnapshot = 0;
    const Status s = writeSnapshotLocked();
    if (!s.ok())
        warnWriteFailure(s);
}

Status
CheckpointSession::writeSnapshot()
{
    const std::lock_guard<std::mutex> lock(mu);
    return writeSnapshotLocked();
}

void
CheckpointSession::setReadOnly(bool value)
{
    const std::lock_guard<std::mutex> lock(mu);
    readOnly = value;
}

void
CheckpointSession::noteSkippedChunks(std::uint64_t n)
{
    const std::lock_guard<std::mutex> lock(mu);
    skipped += n;
}

std::uint64_t
CheckpointSession::skippedChunks() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return skipped;
}

Status
CheckpointSession::writeSnapshotLocked()
{
    if (readOnly)
        return Status();
    return atomicWriteFile(filePath, encodeCheckpoint(current));
}

void
CheckpointSession::warnWriteFailure(const Status &s)
{
    // Losing a snapshot must not kill the sweep it protects; warn
    // once (chaos injection can fail every write) and keep going.
    if (warnedWriteFailure)
        return;
    warnedWriteFailure = true;
    std::fprintf(stderr, "warning: checkpoint write failed: %s\n",
                 s.error().c_str());
}

void
CheckpointSession::noteRestoredMetrics(const obs::Metrics &m)
{
    const std::lock_guard<std::mutex> lock(mu);
    restored.merge(m);
}

RunContext &
activeRunContext()
{
    static RunContext context;
    return context;
}

} // namespace aegis::sim
