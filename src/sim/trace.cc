#include "sim/trace.h"

#include "util/error.h"

namespace aegis::sim {

UniformTrace::UniformTrace(std::uint32_t num_pages)
    : pages(num_pages)
{
    AEGIS_REQUIRE(num_pages > 0, "trace needs at least one page");
}

std::uint32_t
UniformTrace::nextPage(Rng &rng)
{
    return static_cast<std::uint32_t>(rng.nextBounded(pages));
}

SequentialTrace::SequentialTrace(std::uint32_t num_pages)
    : pages(num_pages)
{
    AEGIS_REQUIRE(num_pages > 0, "trace needs at least one page");
}

std::uint32_t
SequentialTrace::nextPage(Rng &)
{
    const std::uint32_t page = cursor;
    cursor = (cursor + 1) % pages;
    return page;
}

HotColdTrace::HotColdTrace(std::uint32_t num_pages,
                           double hot_fraction, double hot_traffic)
    : pages(num_pages), hotTraffic(hot_traffic)
{
    AEGIS_REQUIRE(num_pages > 0, "trace needs at least one page");
    AEGIS_REQUIRE(hot_fraction > 0 && hot_fraction < 1,
                  "hot fraction must be in (0, 1)");
    AEGIS_REQUIRE(hot_traffic > 0 && hot_traffic < 1,
                  "hot traffic share must be in (0, 1)");
    hotPages = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(hot_fraction * pages));
}

std::uint32_t
HotColdTrace::nextPage(Rng &rng)
{
    if (rng.nextBernoulli(hotTraffic))
        return static_cast<std::uint32_t>(rng.nextBounded(hotPages));
    const std::uint32_t cold = pages - hotPages;
    if (cold == 0)
        return static_cast<std::uint32_t>(rng.nextBounded(pages));
    return hotPages +
           static_cast<std::uint32_t>(rng.nextBounded(cold));
}

std::string
HotColdTrace::name() const
{
    return "hotcold(" + std::to_string(hotPages) + " hot pages)";
}

std::unique_ptr<TraceGenerator>
makeTrace(const std::string &spec, std::uint32_t pages)
{
    if (spec == "uniform")
        return std::make_unique<UniformTrace>(pages);
    if (spec == "sequential")
        return std::make_unique<SequentialTrace>(pages);
    if (spec.rfind("hotcold:", 0) == 0) {
        const std::string rest = spec.substr(8);
        const auto colon = rest.find(':');
        if (colon != std::string::npos) {
            try {
                const double frac = std::stod(rest.substr(0, colon));
                const double traffic =
                    std::stod(rest.substr(colon + 1));
                return std::make_unique<HotColdTrace>(pages, frac,
                                                      traffic);
            } catch (const std::exception &) {
            }
        }
        throw ConfigError("bad hotcold spec `" + spec +
                          "' (want hotcold:<frac>:<traffic>)");
    }
    throw ConfigError("unknown trace `" + spec +
                      "' (try uniform, sequential, "
                      "hotcold:<frac>:<traffic>)");
}

double
TraceReplayStats::programsPerBit() const
{
    if (bitsWritten == 0)
        return 0.0;
    return static_cast<double>(cellPrograms) /
           static_cast<double>(bitsWritten);
}

TraceReplayStats
replayTrace(PcmDevice &device, TraceGenerator &trace,
            std::uint64_t page_writes, double faults_per_kwrite,
            Rng &rng)
{
    const pcm::Geometry &geom = device.geometry();
    TraceReplayStats stats;
    const DeviceStats before = device.stats();

    double fault_debt = 0;
    for (std::uint64_t w = 0; w < page_writes; ++w) {
        // aegis-lint: allow(DET-FLOAT single-threaded replay; write order is the trace order)
        fault_debt += faults_per_kwrite / 1000.0;
        while (fault_debt >= 1.0) {
            device.injectRandomFaults(1, rng);
            ++stats.faultsInjected;
            // aegis-lint: allow(DET-FLOAT single-threaded replay; write order is the trace order)
            fault_debt -= 1.0;
        }

        const std::uint32_t page = trace.nextPage(rng);
        const BitVector data = BitVector::random(geom.pageBits(), rng);
        const bool ok = device.writePage(page, data);
        ++stats.pageWrites;
        if (ok) {
            AEGIS_ASSERT(device.readPage(page) == data,
                         "decode mismatch after a successful write");
        }
    }

    stats.bitsWritten = page_writes * geom.pageBits();
    const DeviceStats after = device.stats();
    stats.blockWrites = after.blockWrites - before.blockWrites;
    stats.failedWrites = after.failedWrites - before.failedWrites;
    stats.cellPrograms = after.cellPrograms - before.cellPrograms;
    stats.repartitions = after.repartitions - before.repartitions;
    stats.deadBlocks = after.deadBlocks;
    return stats;
}

} // namespace aegis::sim
