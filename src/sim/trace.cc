#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace aegis::sim {

std::uint32_t
pageOfAddr(const pcm::Geometry &geom, std::uint64_t addr)
{
    return geom.pageOfBlock(blockOfAddr(geom, addr));
}

std::uint64_t
blockOfAddr(const pcm::Geometry &geom, std::uint64_t addr)
{
    const std::uint64_t block_bytes = geom.blockBits / 8;
    return (addr / block_bytes) % geom.totalBlocks();
}

SyntheticTrace::SyntheticTrace(const TraceShape &shape, const Rng &s)
    : traceShape(shape), initialStream(s), stream(s)
{
    AEGIS_REQUIRE(shape.pages > 0, "trace needs at least one page");
    AEGIS_REQUIRE(shape.blockBits > 0 && shape.blockBits % 8 == 0,
                  "trace block size must be a whole number of bytes");
    AEGIS_REQUIRE(shape.pageBytes * 8ull >= shape.blockBits &&
                      (shape.pageBytes * 8ull) % shape.blockBits == 0,
                  "page size must be a multiple of the block size");
    AEGIS_REQUIRE(shape.readFraction >= 0 && shape.readFraction <= 1,
                  "read fraction must be in [0, 1]");
}

bool
SyntheticTrace::next(MemRequest &out)
{
    const std::uint32_t page = nextPageIndex();
    const std::uint64_t block_bytes = traceShape.blockBits / 8;
    const std::uint64_t blocks_per_page =
        traceShape.pageBytes / block_bytes;
    const std::uint64_t block = stream.nextBounded(blocks_per_page);
    out.addr = static_cast<std::uint64_t>(page) * traceShape.pageBytes +
               block * block_bytes;
    out.op = (traceShape.readFraction > 0 &&
              stream.nextBernoulli(traceShape.readFraction))
                 ? MemOp::Read
                 : MemOp::Write;
    out.issueTick = tick;
    tick += traceShape.arrivalGap;
    return true;
}

void
SyntheticTrace::reset()
{
    stream = initialStream;
    tick = 0;
    resetCursor();
}

UniformTrace::UniformTrace(const TraceShape &shape, const Rng &s)
    : SyntheticTrace(shape, s)
{}

std::uint32_t
UniformTrace::nextPageIndex()
{
    return static_cast<std::uint32_t>(rng().nextBounded(shape().pages));
}

SequentialTrace::SequentialTrace(const TraceShape &shape, const Rng &s)
    : SyntheticTrace(shape, s)
{}

std::uint32_t
SequentialTrace::nextPageIndex()
{
    const std::uint32_t page = cursor;
    cursor = (cursor + 1) % shape().pages;
    return page;
}

HotColdTrace::HotColdTrace(const TraceShape &shape, const Rng &s,
                           double hot_fraction, double hot_traffic)
    : SyntheticTrace(shape, s), hotTraffic(hot_traffic)
{
    AEGIS_REQUIRE(hot_fraction > 0 && hot_fraction < 1,
                  "hot fraction must be in (0, 1)");
    AEGIS_REQUIRE(hot_traffic > 0 && hot_traffic < 1,
                  "hot traffic share must be in (0, 1)");
    hotPages = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(hot_fraction * shape.pages));
}

std::uint32_t
HotColdTrace::nextPageIndex()
{
    if (rng().nextBernoulli(hotTraffic))
        return static_cast<std::uint32_t>(rng().nextBounded(hotPages));
    const std::uint32_t cold = shape().pages - hotPages;
    if (cold == 0)
        return static_cast<std::uint32_t>(
            rng().nextBounded(shape().pages));
    return hotPages +
           static_cast<std::uint32_t>(rng().nextBounded(cold));
}

std::string
HotColdTrace::name() const
{
    return "hotcold(" + std::to_string(hotPages) + " hot pages)";
}

ZipfianTrace::ZipfianTrace(const TraceShape &shape, const Rng &s,
                           double zipf_theta)
    : SyntheticTrace(shape, s), theta(zipf_theta)
{
    AEGIS_REQUIRE(theta >= 0, "zipfian theta must be non-negative");
    cumulative.resize(shape.pages);
    double total = 0;
    for (std::uint32_t i = 0; i < shape.pages; ++i) {
        // aegis-lint: allow(DET-FLOAT constructor-time CDF build; fixed iteration order, never folded across jobs)
        total += std::pow(static_cast<double>(i) + 1.0, -theta);
        cumulative[i] = total;
    }
    for (double &c : cumulative)
        c /= total;
    cumulative.back() = 1.0;
}

std::uint32_t
ZipfianTrace::nextPageIndex()
{
    const double u = rng().nextDouble();
    const auto it = std::lower_bound(cumulative.begin(),
                                     cumulative.end(), u);
    return static_cast<std::uint32_t>(it - cumulative.begin());
}

std::string
ZipfianTrace::name() const
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "zipfian(theta=%g)", theta);
    return buf;
}

namespace {

/** Parse a decimal or 0x-hex unsigned value; false on junk. */
bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    try {
        std::size_t used = 0;
        out = std::stoull(text, &used,
                          text.rfind("0x", 0) == 0 ||
                                  text.rfind("0X", 0) == 0
                              ? 16
                              : 10);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

FileTrace::FileTrace(const std::string &trace_path) : path(trace_path)
{
    std::ifstream in(path);
    AEGIS_REQUIRE(in.good(),
                  "cannot open trace file `" + path + "'");
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t last_tick = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string tick_text, op_text, addr_text;
        if (!(fields >> tick_text))
            continue; // blank or comment-only line
        const auto bad = [&](const std::string &what) {
            return ConfigError("trace file `" + path + "' line " +
                               std::to_string(lineno) + ": " + what);
        };
        std::string extra;
        if (!(fields >> op_text >> addr_text))
            throw bad("want `<tick> <R|W> <address>'");
        if (fields >> extra)
            throw bad("trailing field `" + extra + "'");
        MemRequest req;
        if (!parseU64(tick_text, req.issueTick))
            throw bad("bad tick `" + tick_text + "'");
        if (op_text == "R" || op_text == "r" || op_text == "READ")
            req.op = MemOp::Read;
        else if (op_text == "W" || op_text == "w" ||
                 op_text == "WRITE")
            req.op = MemOp::Write;
        else
            throw bad("bad op `" + op_text + "' (want R or W)");
        if (!parseU64(addr_text, req.addr))
            throw bad("bad address `" + addr_text + "'");
        if (req.issueTick < last_tick)
            throw bad("issue ticks must be non-decreasing");
        last_tick = req.issueTick;
        requests.push_back(req);
    }
}

bool
FileTrace::next(MemRequest &out)
{
    if (cursor >= requests.size())
        return false;
    out = requests[cursor++];
    return true;
}

std::string
FileTrace::name() const
{
    const std::size_t slash = path.find_last_of('/');
    return "file(" +
           (slash == std::string::npos ? path
                                       : path.substr(slash + 1)) +
           ")";
}

std::unique_ptr<TraceSource>
makeTrace(const std::string &spec, const TraceShape &shape,
          const Rng &stream)
{
    if (spec == "uniform")
        return std::make_unique<UniformTrace>(shape, stream);
    if (spec == "sequential")
        return std::make_unique<SequentialTrace>(shape, stream);
    if (spec == "zipfian")
        return std::make_unique<ZipfianTrace>(shape, stream, 0.99);
    if (spec.rfind("zipfian:", 0) == 0) {
        try {
            const double theta = std::stod(spec.substr(8));
            return std::make_unique<ZipfianTrace>(shape, stream,
                                                  theta);
        } catch (const ConfigError &) {
            throw;
        } catch (const std::exception &) {
        }
        throw ConfigError("bad zipfian spec `" + spec +
                          "' (want zipfian[:<theta>])");
    }
    if (spec.rfind("hotcold:", 0) == 0) {
        const std::string rest = spec.substr(8);
        const auto colon = rest.find(':');
        if (colon != std::string::npos) {
            try {
                const double frac = std::stod(rest.substr(0, colon));
                const double traffic =
                    std::stod(rest.substr(colon + 1));
                return std::make_unique<HotColdTrace>(shape, stream,
                                                      frac, traffic);
            } catch (const ConfigError &) {
                throw;
            } catch (const std::exception &) {
            }
        }
        throw ConfigError("bad hotcold spec `" + spec +
                          "' (want hotcold:<frac>:<traffic>)");
    }
    if (spec.rfind("file:", 0) == 0)
        return std::make_unique<FileTrace>(spec.substr(5));
    throw ConfigError("unknown trace `" + spec +
                      "' (try uniform, sequential, "
                      "hotcold:<frac>:<traffic>, zipfian[:<theta>], "
                      "file:<path>)");
}

double
TraceReplayStats::programsPerBit() const
{
    if (bitsWritten == 0)
        return 0.0;
    return static_cast<double>(cellPrograms) /
           static_cast<double>(bitsWritten);
}

TraceReplayStats
replayTrace(PcmDevice &device, TraceSource &trace,
            std::uint64_t page_writes, double faults_per_kwrite,
            Rng &rng)
{
    const pcm::Geometry &geom = device.geometry();
    TraceReplayStats stats;
    const DeviceStats before = device.stats();

    double fault_debt = 0;
    MemRequest req;
    while (stats.pageWrites < page_writes && trace.next(req)) {
        const std::uint32_t page = pageOfAddr(geom, req.addr);
        if (req.op == MemOp::Read) {
            (void)device.readPage(page);
            ++stats.pageReads;
            continue;
        }

        // aegis-lint: allow(DET-FLOAT single-threaded replay; write order is the trace order)
        fault_debt += faults_per_kwrite / 1000.0;
        while (fault_debt >= 1.0) {
            device.injectRandomFaults(1, rng);
            ++stats.faultsInjected;
            // aegis-lint: allow(DET-FLOAT single-threaded replay; write order is the trace order)
            fault_debt -= 1.0;
        }

        const BitVector data = BitVector::random(geom.pageBits(), rng);
        const bool ok = device.writePage(page, data);
        ++stats.pageWrites;
        if (ok) {
            AEGIS_ASSERT(device.readPage(page) == data,
                         "decode mismatch after a successful write");
        }
    }

    stats.bitsWritten = stats.pageWrites * geom.pageBits();
    const DeviceStats after = device.stats();
    stats.blockWrites = after.blockWrites - before.blockWrites;
    stats.failedWrites = after.failedWrites - before.failedWrites;
    stats.cellPrograms = after.cellPrograms - before.cellPrograms;
    stats.repartitions = after.repartitions - before.repartitions;
    stats.deadBlocks = after.deadBlocks;
    return stats;
}

} // namespace aegis::sim
