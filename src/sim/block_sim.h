/**
 * @file
 * Event-driven lifetime simulation of a single protected data block.
 *
 * Methodology (DESIGN.md §2): every cell draws a lifetime (total
 * programs absorbed before sticking). Under perfect wear leveling and
 * differential writes, a cell is programmed with probability 0.5 per
 * block write (the paper's §3.1 assumption); cells sharing a group
 * with a fault under a cache-less scheme absorb one extra program per
 * write in expectation (the inversion rewrite). Wear rates are
 * therefore piecewise-constant between fault arrivals, and the
 * simulation advances fault-to-fault:
 *
 *   next_fault = argmin (remaining_life[i] / rate[i])
 *
 * After each arrival the scheme's tracker decides whether the block
 * is deterministically dead; otherwise its per-write failure
 * probability p is turned into a geometric deviate to decide whether
 * a data-dependent failure strikes before the next arrival.
 */

#ifndef AEGIS_SIM_BLOCK_SIM_H
#define AEGIS_SIM_BLOCK_SIM_H

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "pcm/lifetime_model.h"
#include "scheme/scheme.h"
#include "scheme/tracker.h"
#include "util/rng.h"

namespace aegis::sim {

/** Wear parameters of the write stream. */
struct WearModel
{
    /** Cell programs per block write (differential-write factor). */
    double baseRate = 0.5;
    /** Extra programs per write for cells in fault-bearing groups of
     *  cache-less schemes (the inversion rewrite, paper §3.3). */
    double amplifiedExtra = 0.5;
};

/**
 * Reusable scratch for BlockSimulator::run, so back-to-back block
 * lives allocate nothing once the vectors are warmed. run() re-sizes
 * and overwrites every field; the workspace carries no state between
 * lives. (char instead of bool: vector<bool> has no word access and
 * its proxy references cost measurably in the arg-min scan.)
 */
struct BlockSimWorkspace
{
    std::vector<double> remaining;
    std::vector<double> rate;
    std::vector<char> stuckValue;
    std::vector<char> healthy;
};

/**
 * Reusable lane-major scratch for BlockSimulator::runBatch: lane l of
 * a batch owns the contiguous segment [l*n, (l+1)*n) of every plane
 * (n = blockBits), the structure-of-arrays layout shared with the
 * data-plane batches (pcm::CellArrayBatch). One warmed workspace
 * serves any batch width; it carries no state between batches.
 */
struct BlockBatchWorkspace
{
    std::vector<double> remaining;
    std::vector<double> rate;
    std::vector<char> stuckValue;
    std::vector<char> healthy;
};

/** Outcome of one block's simulated life. */
struct BlockLifeResult
{
    /** Block writes survived before the unrecoverable failure. */
    double deathTime = 0.0;
    /** Fault count at death (the fatal fault included). */
    std::uint32_t faultsAtDeath = 0;
    /** Arrival time (block writes) of each fault, ascending. */
    std::vector<double> faultTimes;
    /** Re-partitions the tracker performed. */
    std::uint64_t repartitions = 0;
    /** True when the block outlived every cell without failing
     *  (deathTime is +infinity in that case). */
    bool immortal = false;
};

/** Simulate one block protected by @p scheme until data loss. */
class BlockSimulator
{
  public:
    /**
     * @param scheme scheme prototype (consulted for its tracker).
     * @param lifetime cell lifetime distribution.
     * @param wear write-stream wear parameters.
     * @param tracker_opts labeling-sampling knobs.
     */
    BlockSimulator(const scheme::Scheme &scheme,
                   const pcm::LifetimeModel &lifetime,
                   const WearModel &wear,
                   const scheme::TrackerOptions &tracker_opts);

    /**
     * Run one life. @p cell_rng drives the lifetime/stuck-value draws
     * (keep it scheme-independent so different schemes see identical
     * cell populations); @p sim_rng drives tracker sampling and
     * geometric failure draws. Uses thread-local scratch (run() is
     * const and called concurrently by parallelFor workers).
     */
    BlockLifeResult run(Rng &cell_rng, Rng &sim_rng) const;

    /** Like run(), with caller-owned scratch. */
    BlockLifeResult run(Rng &cell_rng, Rng &sim_rng,
                        BlockSimWorkspace &ws) const;

    /**
     * Run cell_rngs.size() independent lives as one
     * structure-of-arrays batch: every lane's cell population is
     * drawn into the lane-major planes first (one contiguous fill
     * pass), then the event loops run on the lanes' segments. Lane l
     * consumes cell_rngs[l] / sim_rngs[l] exactly as run() would, so
     * results[l] — and the obs counters, bumped in lane order — are
     * bit-identical to back-to-back run() calls for every batch
     * width. The spans must agree on the lane count.
     */
    void runBatch(std::span<Rng> cell_rngs, std::span<Rng> sim_rngs,
                  std::span<BlockLifeResult> results,
                  BlockBatchWorkspace &ws) const;

  private:
    /** The fault-to-fault event loop of one life over its (already
     *  populated) cell arrays; shared by run() and runBatch(). */
    BlockLifeResult runEventLoop(Rng &sim_rng, double *remaining,
                                 double *rate, const char *stuck_value,
                                 char *healthy, std::size_t n) const;

    const scheme::Scheme &schemeProto;
    const pcm::LifetimeModel &lifetime;
    WearModel wear;
    scheme::TrackerOptions trackerOpts;
};

} // namespace aegis::sim

#endif // AEGIS_SIM_BLOCK_SIM_H
