/**
 * @file
 * Write-traffic models across pages.
 *
 * The paper assumes perfect wear leveling: every live page receives
 * the same write rate (§3.1, citing Start-Gap and Security Refresh).
 * This module makes that assumption explicit and testable: a workload
 * assigns each page a relative write-rate multiplier, and the memory-
 * level survival analysis divides each page's intrinsic lifetime (in
 * its own writes) by its rate to get its death time in memory time.
 *
 * Models:
 *  - Perfect: rate 1 for every page (the paper).
 *  - Residual skew: wear leveling that only approximates uniformity,
 *    leaving a bounded spread of rates (uniform in [1-s, 1+s]).
 *  - Zipf: unleveled traffic with Zipfian popularity — what happens
 *    if the wear-leveling prerequisite is dropped entirely.
 */

#ifndef AEGIS_SIM_WORKLOAD_H
#define AEGIS_SIM_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace aegis::sim {

/** Per-page relative write rates (mean normalized to 1). */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * Rate multipliers for @p pages pages; the returned vector
     * averages to 1 so total traffic is workload-independent.
     */
    virtual std::vector<double> pageRates(std::uint32_t pages,
                                          Rng &rng) const = 0;

    virtual std::string name() const = 0;
};

/** The paper's perfect wear leveling: every page at rate 1. */
class PerfectWearLeveling : public Workload
{
  public:
    std::vector<double> pageRates(std::uint32_t pages,
                                  Rng &rng) const override;
    std::string name() const override { return "perfect"; }
};

/** Imperfect leveling: rates uniform in [1-s, 1+s], shuffled. */
class ResidualSkewWearLeveling : public Workload
{
  public:
    explicit ResidualSkewWearLeveling(double spread);

    std::vector<double> pageRates(std::uint32_t pages,
                                  Rng &rng) const override;
    std::string name() const override;

  private:
    double spread;
};

/** No leveling: Zipf(s) popularity assigned to random pages. */
class ZipfWorkload : public Workload
{
  public:
    explicit ZipfWorkload(double exponent);

    std::vector<double> pageRates(std::uint32_t pages,
                                  Rng &rng) const override;
    std::string name() const override;

  private:
    double exponent;
};

/** "perfect", "skew:<s>" or "zipf:<s>". */
std::unique_ptr<Workload> makeWorkload(const std::string &spec);

} // namespace aegis::sim

#endif // AEGIS_SIM_WORKLOAD_H
