#include "sim/experiment.h"

#include <cmath>

#include "aegis/factory.h"
#include "pcm/address.h"
#include "sim/page_sim.h"
#include "sim/workload.h"
#include "util/error.h"

namespace aegis::sim {

double
PageStudy::overheadFraction() const
{
    return blockBits == 0
               ? 0.0
               : static_cast<double>(overheadBits) /
                     static_cast<double>(blockBits);
}

namespace {

/** Assemble the simulator stack shared by both study kinds. */
struct Stack
{
    std::unique_ptr<scheme::Scheme> scheme;
    std::unique_ptr<pcm::LifetimeModel> lifetime;

    explicit Stack(const ExperimentConfig &config)
        : scheme(core::makeScheme(config.schemeSpec(), config.blockBits)),
          lifetime(pcm::makeLifetimeModel(config.lifetimeKind,
                                          config.lifetimeMean,
                                          config.lifetimeParam))
    {}
};

} // namespace

PageStudy
runPageStudy(const ExperimentConfig &config)
{
    const Stack stack(config);
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};

    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);
    const PageSimulator page_sim(block_sim, geom.blocksPerPage());

    PageStudy study;
    study.scheme = stack.scheme->name();
    study.overheadBits = stack.scheme->overheadBits();
    study.blockBits = config.blockBits;

    const Rng master(config.seed);
    for (std::uint32_t p = 0; p < config.pages; ++p) {
        const Rng page_rng = master.split(p);
        const PageLifeResult life = page_sim.run(page_rng);
        study.recoverableFaults.add(
            static_cast<double>(life.faultsRecovered));
        study.pageLifetime.add(life.deathTime);
        study.repartitions.add(static_cast<double>(life.repartitions));
        study.survival.addDeath(life.deathTime);
    }
    return study;
}

BlockStudy
runBlockStudy(const ExperimentConfig &config, std::uint32_t blocks)
{
    const Stack stack(config);
    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);

    BlockStudy study;
    study.scheme = stack.scheme->name();
    study.overheadBits = stack.scheme->overheadBits();

    const Rng master(config.seed);
    for (std::uint32_t b = 0; b < blocks; ++b) {
        Rng cell_rng = master.split(2ull * b);
        Rng sim_rng = master.split(2ull * b + 1);
        const BlockLifeResult life = block_sim.run(cell_rng, sim_rng);
        AEGIS_ASSERT(!life.immortal,
                     "paper-scale blocks cannot be immortal");
        study.blockLifetime.add(life.deathTime);
        study.faultsAtDeath.add(life.faultsAtDeath);
    }
    return study;
}

double
lifetimeImprovement(const PageStudy &study, const PageStudy &baseline)
{
    AEGIS_REQUIRE(baseline.pageLifetime.mean() > 0,
                  "baseline lifetime must be positive");
    return study.pageLifetime.mean() / baseline.pageLifetime.mean();
}

SurvivalCurve
runMemorySurvival(const ExperimentConfig &config,
                  const Workload &workload)
{
    const Stack stack(config);
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};
    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);
    const PageSimulator page_sim(block_sim, geom.blocksPerPage());

    const Rng master(config.seed);
    Rng workload_rng = master.split(0xffffffffull);
    const std::vector<double> rates =
        workload.pageRates(config.pages, workload_rng);

    SurvivalCurve curve;
    for (std::uint32_t p = 0; p < config.pages; ++p) {
        const Rng page_rng = master.split(p);
        const PageLifeResult life = page_sim.run(page_rng);
        AEGIS_ASSERT(rates[p] > 0, "page rate must be positive");
        curve.addDeath(life.deathTime / rates[p]);
    }
    return curve;
}

} // namespace aegis::sim
