#include "sim/experiment.h"

#include <algorithm>
#include <cmath>

#include "aegis/factory.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "pcm/address.h"
#include "sim/checkpoint.h"
#include "sim/page_sim.h"
#include "sim/workload.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace aegis::sim {

double
StudyResult::overheadFraction() const
{
    return blockBits == 0
               ? 0.0
               : static_cast<double>(overheadBits) /
                     static_cast<double>(blockBits);
}

void
StudyResult::adoptLabels(const StudyResult &other)
{
    if (scheme.empty())
        scheme = other.scheme;
    if (overheadBits == 0)
        overheadBits = other.overheadBits;
    if (blockBits == 0)
        blockBits = other.blockBits;
}

void
PageStudy::merge(const PageStudy &other)
{
    adoptLabels(other);
    metrics.merge(other.metrics);
    recoverableFaults.merge(other.recoverableFaults);
    pageLifetime.merge(other.pageLifetime);
    repartitions.merge(other.repartitions);
    survival.merge(other.survival);
}

void
BlockStudy::merge(const BlockStudy &other)
{
    adoptLabels(other);
    metrics.merge(other.metrics);
    blockLifetime.merge(other.blockLifetime);
    faultsAtDeath.merge(other.faultsAtDeath);
}

void
SurvivalStudy::merge(const SurvivalStudy &other)
{
    adoptLabels(other);
    metrics.merge(other.metrics);
    survival.merge(other.survival);
}

namespace {

/** Assemble the simulator stack shared by both study kinds. */
struct Stack
{
    std::unique_ptr<scheme::Scheme> scheme;
    std::unique_ptr<pcm::LifetimeModel> lifetime;

    explicit Stack(const ExperimentConfig &config)
        : scheme(core::makeScheme(config.schemeSpec(), config.blockBits)),
          lifetime(pcm::makeLifetimeModel(config.lifetimeKind,
                                          config.lifetimeMean,
                                          config.lifetimeParam))
    {}
};

/**
 * Fingerprint of everything that shapes one study unit's results, so
 * a resumed checkpoint is rejected when any of it changed. The master
 * seed is checked at the session level and --jobs is deliberately
 * excluded: results are jobs-invariant, so a sweep may be resumed
 * with a different worker count.
 */
std::uint64_t
unitFingerprint(const ExperimentConfig &config, StudyKind kind,
                std::uint64_t items, std::uint64_t grain,
                const std::string &extra = std::string())
{
    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.str(config.scheme);
    w.u32(config.blockBits);
    w.u32(config.pageBytes);
    w.str(config.lifetimeKind);
    w.f64(config.lifetimeMean);
    w.f64(config.lifetimeParam);
    w.f64(config.wear.baseRate);
    w.f64(config.wear.amplifiedExtra);
    w.u32(config.tracker.labelingSamples);
    w.u8(config.audit ? 1 : 0);
    w.u64(items);
    w.u64(grain);
    w.str(extra);
    return fnv1a64(w.data());
}

/** Open a chunk timeline row grid for this sweep (no-op when the
 *  recorder is disarmed). Named "<scheme>.<study>" in the manifest. */
void
beginStudyTimeline(const std::string &scheme, const char *study,
                   std::size_t items)
{
    if (obs::timelineEnabled())
        obs::timelineBeginSeries(
            scheme + "." + study,
            (items + kDefaultGrain - 1) / kDefaultGrain);
}

} // namespace

PageStudy
runPageStudy(const ExperimentConfig &config)
{
    const Stack stack(config);
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};

    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);
    const PageSimulator page_sim(block_sim, geom.blocksPerPage(),
                                 config.batch);

    // Pages are independent Monte-Carlo lives on seed-derived RNG
    // streams; the chunk grid and merge order never depend on jobs,
    // so every jobs value yields bit-identical studies.
    const Rng master(config.seed);
    obs::ProgressReporter progress("pages [" + stack.scheme->name() + "]",
                                   config.pages, "pages");
    beginStudyTimeline(stack.scheme->name(), "page_study",
                       config.pages);
    PageStudy study;
    try {
        study = runStudyUnit<PageStudy>(
            config.pages, config.jobs, StudyKind::Page,
            unitFingerprint(config, StudyKind::Page, config.pages,
                            kDefaultGrain),
            [&](PageStudy &acc, std::size_t p) {
                const obs::ThreadMark before = obs::mark();
                const Rng page_rng = master.split(p);
                const PageLifeResult life = page_sim.run(page_rng);
                acc.recoverableFaults.add(
                    static_cast<double>(life.faultsRecovered));
                acc.pageLifetime.add(life.deathTime);
                acc.repartitions.add(
                    static_cast<double>(life.repartitions));
                acc.survival.addDeath(life.deathTime);
                acc.metrics.merge(obs::deltaSince(before));
                progress.tick();
            });
    } catch (const CancelledError &ex) {
        progress.close(cancelOutcomeLabel(ex.reason()));
        throw;
    }
    study.scheme = stack.scheme->name();
    study.overheadBits = stack.scheme->overheadBits();
    study.blockBits = config.blockBits;
    return study;
}

BlockStudy
runBlockStudy(const ExperimentConfig &config, std::uint32_t blocks)
{
    const Stack stack(config);
    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);

    const Rng master(config.seed);
    obs::ProgressReporter progress("blocks [" + stack.scheme->name() + "]",
                                   blocks, "blocks");
    beginStudyTimeline(stack.scheme->name(), "block_study", blocks);
    const auto batch = std::max<std::size_t>(1, config.batch);
    BlockStudy study;
    try {
        study = runStudyUnitRanged<BlockStudy>(
            blocks, config.jobs, StudyKind::Block,
            unitFingerprint(config, StudyKind::Block, blocks,
                            kDefaultGrain),
            [&](BlockStudy &acc, std::size_t begin, std::size_t end) {
                const obs::ThreadMark before = obs::mark();
                // Lane-major scratch per worker thread. Each life
                // keeps its own master.split streams and a batch span
                // never crosses the chunk boundary (the range is one
                // chunk), so --batch is a throughput knob only.
                static thread_local BlockBatchWorkspace ws;
                static thread_local std::vector<Rng> cell_rngs;
                static thread_local std::vector<Rng> sim_rngs;
                static thread_local std::vector<BlockLifeResult> lives;
                for (std::size_t b0 = begin; b0 < end; b0 += batch) {
                    const std::size_t lanes =
                        std::min(batch, end - b0);
                    cell_rngs.clear();
                    sim_rngs.clear();
                    for (std::size_t l = 0; l < lanes; ++l) {
                        const std::size_t b = b0 + l;
                        cell_rngs.push_back(master.split(2ull * b));
                        sim_rngs.push_back(master.split(2ull * b + 1));
                    }
                    lives.assign(lanes, BlockLifeResult{});
                    block_sim.runBatch(cell_rngs, sim_rngs, lives, ws);
                    for (const BlockLifeResult &life : lives) {
                        AEGIS_ASSERT(
                            !life.immortal,
                            "paper-scale blocks cannot be immortal");
                        acc.blockLifetime.add(life.deathTime);
                        acc.faultsAtDeath.add(life.faultsAtDeath);
                    }
                }
                acc.metrics.merge(obs::deltaSince(before));
                progress.tick(end - begin);
            });
    } catch (const CancelledError &ex) {
        progress.close(cancelOutcomeLabel(ex.reason()));
        throw;
    }
    study.scheme = stack.scheme->name();
    study.overheadBits = stack.scheme->overheadBits();
    study.blockBits = config.blockBits;
    return study;
}

double
lifetimeImprovement(const PageStudy &study, const PageStudy &baseline)
{
    AEGIS_REQUIRE(baseline.pageLifetime.mean() > 0,
                  "baseline lifetime must be positive");
    return study.pageLifetime.mean() / baseline.pageLifetime.mean();
}

SurvivalCurve
runMemorySurvival(const ExperimentConfig &config,
                  const Workload &workload)
{
    const Stack stack(config);
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};
    const BlockSimulator block_sim(*stack.scheme, *stack.lifetime,
                                   config.wear, config.tracker);
    const PageSimulator page_sim(block_sim, geom.blocksPerPage(),
                                 config.batch);

    const Rng master(config.seed);
    Rng workload_rng = master.split(0xffffffffull);
    const std::vector<double> rates =
        workload.pageRates(config.pages, workload_rng);

    obs::ProgressReporter progress(
        "survival [" + stack.scheme->name() + "]", config.pages, "pages");
    beginStudyTimeline(stack.scheme->name(),
                       ("survival." + workload.name()).c_str(),
                       config.pages);
    SurvivalStudy study;
    try {
        study = runStudyUnit<SurvivalStudy>(
            config.pages, config.jobs, StudyKind::Survival,
            unitFingerprint(config, StudyKind::Survival, config.pages,
                            kDefaultGrain, workload.name()),
            [&](SurvivalStudy &acc, std::size_t p) {
                const obs::ThreadMark before = obs::mark();
                const Rng page_rng = master.split(p);
                const PageLifeResult life = page_sim.run(page_rng);
                AEGIS_ASSERT(rates[p] > 0, "page rate must be positive");
                acc.survival.addDeath(life.deathTime / rates[p]);
                acc.metrics.merge(obs::deltaSince(before));
                progress.tick();
            });
    } catch (const CancelledError &ex) {
        progress.close(cancelOutcomeLabel(ex.reason()));
        throw;
    }
    return study.survival;
}

} // namespace aegis::sim
