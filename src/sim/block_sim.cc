#include "sim/block_sim.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace aegis::sim {

BlockSimulator::BlockSimulator(const scheme::Scheme &scheme,
                               const pcm::LifetimeModel &lifetime_model,
                               const WearModel &wear_model,
                               const scheme::TrackerOptions &tracker_opts)
    : schemeProto(scheme), lifetime(lifetime_model), wear(wear_model),
      trackerOpts(tracker_opts)
{
    AEGIS_REQUIRE(wear_model.baseRate > 0,
                  "base wear rate must be positive");
}

BlockLifeResult
BlockSimulator::run(Rng &cell_rng, Rng &sim_rng) const
{
    // run() is const and invoked concurrently by parallelFor workers,
    // so the reusable scratch lives per thread.
    static thread_local BlockSimWorkspace ws;
    return run(cell_rng, sim_rng, ws);
}

BlockLifeResult
BlockSimulator::run(Rng &cell_rng, Rng &sim_rng,
                    BlockSimWorkspace &ws) const
{
    AEGIS_TRACE_SCOPE(obs::Scope::BlockLife);
    const std::size_t n = schemeProto.blockBits();

    // Draw the cell population first so it is identical for every
    // scheme simulated from the same cell_rng stream.
    std::vector<double> &remaining = ws.remaining;
    std::vector<char> &stuck_value = ws.stuckValue;
    remaining.resize(n);
    stuck_value.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        remaining[i] = lifetime.sample(cell_rng);
        stuck_value[i] = cell_rng.nextBool() ? 1 : 0;
    }

    std::vector<double> &rate = ws.rate;
    std::vector<char> &healthy = ws.healthy;
    rate.assign(n, wear.baseRate);
    healthy.assign(n, 1);

    return runEventLoop(sim_rng, remaining.data(), rate.data(),
                        stuck_value.data(), healthy.data(), n);
}

void
BlockSimulator::runBatch(std::span<Rng> cell_rngs,
                         std::span<Rng> sim_rngs,
                         std::span<BlockLifeResult> results,
                         BlockBatchWorkspace &ws) const
{
    const std::size_t lanes = cell_rngs.size();
    AEGIS_REQUIRE(sim_rngs.size() == lanes && results.size() == lanes,
                  "runBatch spans must agree on the lane count");
    const std::size_t n = schemeProto.blockBits();

    // Phase 1: fill every lane's cell population into the lane-major
    // planes. Lane l consumes cell_rngs[l] in ascending cell order
    // exactly as run() would, so populations are batch-invariant.
    ws.remaining.resize(lanes * n);
    ws.stuckValue.resize(lanes * n);
    ws.rate.resize(lanes * n);
    ws.healthy.resize(lanes * n);
    for (std::size_t l = 0; l < lanes; ++l) {
        double *remaining = ws.remaining.data() + l * n;
        char *stuck_value = ws.stuckValue.data() + l * n;
        for (std::size_t i = 0; i < n; ++i) {
            remaining[i] = lifetime.sample(cell_rngs[l]);
            stuck_value[i] = cell_rngs[l].nextBool() ? 1 : 0;
        }
    }

    // Phase 2: event loops, one lane at a time on that lane's
    // segments. Each life keeps its own sim stream, so results and
    // counter bump order match back-to-back run() calls.
    for (std::size_t l = 0; l < lanes; ++l) {
        AEGIS_TRACE_SCOPE(obs::Scope::BlockLife);
        const std::size_t off = l * n;
        std::fill_n(ws.rate.data() + off, n, wear.baseRate);
        std::fill_n(ws.healthy.data() + off, n, char{1});
        results[l] = runEventLoop(
            sim_rngs[l], ws.remaining.data() + off,
            ws.rate.data() + off, ws.stuckValue.data() + off,
            ws.healthy.data() + off, n);
    }
}

BlockLifeResult
BlockSimulator::runEventLoop(Rng &sim_rng, double *remaining,
                             double *rate, const char *stuck_value,
                             char *healthy, std::size_t n) const
{
    auto tracker = schemeProto.makeTracker(trackerOpts);
    BlockLifeResult result;
    double t = 0.0;

    for (;;) {
        // Next natural fault arrival under the current rates.
        double dt = std::numeric_limits<double>::infinity();
        std::size_t victim = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (healthy[i] == 0)
                continue;
            const double d = remaining[i] / rate[i];
            if (d < dt) {
                dt = d;
                victim = i;
            }
        }

        // Data-dependent failure before the next arrival?
        const double p = tracker->writeFailureProbability(sim_rng);
        if (p > 0.0) {
            const double death = static_cast<double>(
                sim_rng.nextGeometric(p));
            if (death <= dt || victim == n) {
                result.deathTime = t + death;
                result.faultsAtDeath =
                    static_cast<std::uint32_t>(tracker->faultCount());
                result.repartitions = tracker->repartitions();
                obs::bump(obs::Counter::BlockLives);
                return result;
            }
        } else if (victim == n) {
            // Every cell is stuck yet the scheme still stores all
            // data patterns: the block never dies. (Only reachable
            // for tiny blocks with generous schemes.)
            result.deathTime = std::numeric_limits<double>::infinity();
            result.immortal = true;
            result.faultsAtDeath =
                static_cast<std::uint32_t>(tracker->faultCount());
            result.repartitions = tracker->repartitions();
            obs::bump(obs::Counter::BlockLives);
            return result;
        }

        // Advance to the fault arrival.
        // aegis-lint: allow(DET-FLOAT per-life sequential fold; life order is fixed by the chunk grid)
        t += dt;
        for (std::size_t i = 0; i < n; ++i) {
            if (healthy[i] != 0)
                // aegis-lint: allow(DET-FLOAT per-life sequential fold; life order is fixed by the chunk grid)
                remaining[i] -= rate[i] * dt;
        }
        healthy[victim] = 0;
        result.faultTimes.push_back(t);
        obs::bump(obs::Counter::FaultArrivals);

        const pcm::Fault fault{static_cast<std::uint32_t>(victim),
                               stuck_value[victim] != 0};
        if (tracker->onFault(fault) == scheme::FaultVerdict::Dead) {
            result.deathTime = t;
            result.faultsAtDeath =
                static_cast<std::uint32_t>(tracker->faultCount());
            result.repartitions = tracker->repartitions();
            obs::bump(obs::Counter::BlockLives);
            return result;
        }

        // Refresh wear rates for the new configuration.
        std::fill_n(rate, n, wear.baseRate);
        for (std::uint32_t pos : tracker->amplifiedCells()) {
            if (healthy[pos] != 0)
                // aegis-lint: allow(DET-FLOAT per-life sequential fold; life order is fixed by the chunk grid)
                rate[pos] += wear.amplifiedExtra;
        }
    }
}

} // namespace aegis::sim
