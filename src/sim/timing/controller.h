/**
 * @file
 * A deterministic cycle-level memory-controller model.
 *
 * Requests (sim::MemRequest) are queued per bank and scheduled
 * FR-FCFS style: row-buffer hits first, then oldest-first, reads
 * prioritized over writes until a bank's write queue crosses the
 * drain threshold. A write's bank occupancy is derived from the
 * scheme's actual ancillary work (scheme::SchemeIoCost): each program
 * pulse, verify read and re-partition step of the iterative
 * program-and-verify loop occupies the bank, and fail-cache lookups /
 * updates serialize on a shared metadata bus as first-class events.
 *
 * Everything is integer tick arithmetic on state touched in a fixed
 * order, so a given request stream yields bit-identical latency
 * histograms on every run and every --jobs value.
 *
 * When the calling thread has an event-trace track bound
 * (obs::TraceTrackScope), the controller additionally emits the
 * scheduling timeline onto it: per-bank service spans ("read",
 * "write.pv" with a nested "write.repartition"), metadata-bus
 * occupancy spans on lane 0 ("meta.lookup"/"meta.update"), write-drain
 * hysteresis instants and per-bank queue-depth counters — all on
 * simulated ticks, so traces are deterministic too.
 */

#ifndef AEGIS_SIM_TIMING_CONTROLLER_H
#define AEGIS_SIM_TIMING_CONTROLLER_H

#include <cstdint>
#include <vector>

#include "pcm/address.h"
#include "scheme/scheme.h"
#include "sim/timing/clock.h"
#include "sim/timing/timing_config.h"
#include "sim/trace.h"
#include "util/histogram.h"

namespace aegis::sim::timing {

/** Event totals accumulated by one controller instance. */
struct ControllerTotals
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t programPasses = 0;
    std::uint64_t verifyReads = 0;
    std::uint64_t failCacheLookups = 0;
    std::uint64_t failCacheUpdates = 0;
    std::uint64_t repartitionStalls = 0;
    std::uint64_t rowMisses = 0;
};

class MemController
{
  public:
    MemController(const TimingConfig &config,
                  const pcm::Geometry &geometry);

    /**
     * Queue one request. @p io is the ancillary work the functional
     * layer performed for it (empty for reads). When the target
     * bank's queue is full the controller services queued requests
     * until a slot frees — submission never drops requests.
     */
    void submit(const MemRequest &request,
                const scheme::SchemeIoCost &io);

    /** Service every queued request. */
    void drain();

    /** Completed-request latency (completion - issue), in ticks. */
    const Histogram &readLatency() const { return readLat; }
    const Histogram &writeLatency() const { return writeLat; }

    const ControllerTotals &totals() const { return eventTotals; }

    /** Completion tick of the latest retired request. */
    Tick lastCompletion() const { return lastDone; }

    /** Requests currently queued across every bank. */
    std::size_t pendingRequests() const;

    /** Tick source for sim_clock::Binding: tracks the simulated time
     *  frontier as requests are submitted and retired. */
    const Tick *tickSource() const { return &nowTick; }

  private:
    struct Pending
    {
        MemRequest req;
        scheme::SchemeIoCost io;
        std::uint64_t seq = 0; ///< submission order (FCFS tiebreak)
    };

    struct Bank
    {
        std::vector<Pending> readQueue;
        std::vector<Pending> writeQueue;
        Tick freeAt = 0;
        std::uint64_t openPage = kNoOpenPage;
        bool draining = false; ///< write-drain hysteresis state
    };

    static constexpr std::uint64_t kNoOpenPage = ~0ull;

    std::size_t bankOf(std::uint64_t addr) const;

    /** Pick (FR-FCFS) and retire one request; false when idle. */
    bool serviceOne(std::size_t bank_index);

    /** Index of the scheduled entry in @p queue given the bank is
     *  free at @p free_at. */
    std::size_t pickFrom(const std::vector<Pending> &queue,
                         Tick free_at, std::uint64_t open_page) const;

    void retire(Bank &bank, std::size_t bank_index, const Pending &p);

    TimingConfig cfg;
    pcm::Geometry geom;
    std::vector<Bank> banks;
    Tick metaBusFreeAt = 0;
    Tick nowTick = 0;
    Tick lastDone = 0;
    std::uint64_t nextSeq = 0;
    Histogram readLat;
    Histogram writeLat;
    ControllerTotals eventTotals;
};

} // namespace aegis::sim::timing

#endif // AEGIS_SIM_TIMING_CONTROLLER_H
