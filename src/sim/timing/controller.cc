#include "sim/timing/controller.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace aegis::sim::timing {

MemController::MemController(const TimingConfig &config,
                             const pcm::Geometry &geometry)
    : cfg(config), geom(geometry), banks(config.banks)
{
    AEGIS_REQUIRE(cfg.banks > 0, "controller needs at least one bank");
    AEGIS_REQUIRE(cfg.queueDepth > 0, "queue depth must be positive");
    AEGIS_REQUIRE(cfg.writeDrainLow <= cfg.writeDrainHigh,
                  "write-drain low watermark above the high one");
    for (Bank &b : banks) {
        b.readQueue.reserve(cfg.queueDepth);
        b.writeQueue.reserve(cfg.queueDepth);
    }
}

std::size_t
MemController::bankOf(std::uint64_t addr) const
{
    // Block-interleaved banks: consecutive blocks hit different banks,
    // the standard layout for streaming bandwidth.
    return static_cast<std::size_t>(blockOfAddr(geom, addr) %
                                    cfg.banks);
}

void
MemController::submit(const MemRequest &request,
                      const scheme::SchemeIoCost &io)
{
    Bank &bank = banks[bankOf(request.addr)];
    std::vector<Pending> &queue =
        request.op == MemOp::Read ? bank.readQueue : bank.writeQueue;
    while (queue.size() >= cfg.queueDepth)
        serviceOne(bank);
    queue.push_back(Pending{request, io, nextSeq++});
    nowTick = std::max(nowTick, request.issueTick);
}

void
MemController::drain()
{
    for (Bank &bank : banks) {
        while (serviceOne(bank)) {
        }
    }
}

std::size_t
MemController::pickFrom(const std::vector<Pending> &queue, Tick free_at,
                        std::uint64_t open_page) const
{
    // FR-FCFS over the requests that have already arrived: row hits
    // first, then oldest (submission order). When nothing has arrived
    // yet, take the earliest arrival.
    std::size_t best = queue.size();
    bool best_arrived = false;
    bool best_hit = false;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Pending &p = queue[i];
        const bool arrived = p.req.issueTick <= free_at;
        const bool hit =
            pageOfAddr(geom, p.req.addr) == open_page;
        if (best == queue.size()) {
            best = i;
            best_arrived = arrived;
            best_hit = hit;
            continue;
        }
        const Pending &b = queue[best];
        bool better = false;
        if (arrived != best_arrived) {
            better = arrived;
        } else if (arrived) {
            if (hit != best_hit)
                better = hit;
            else
                better = p.seq < b.seq;
        } else {
            better = p.req.issueTick < b.req.issueTick ||
                     (p.req.issueTick == b.req.issueTick &&
                      p.seq < b.seq);
        }
        if (better) {
            best = i;
            best_arrived = arrived;
            best_hit = hit;
        }
    }
    return best;
}

bool
MemController::serviceOne(Bank &bank)
{
    // Write-drain hysteresis: reads have priority until the write
    // queue backs up past the high watermark, then writes drain until
    // the low watermark frees the bank for reads again.
    if (bank.writeQueue.size() >= cfg.writeDrainHigh)
        bank.draining = true;
    else if (bank.writeQueue.size() <= cfg.writeDrainLow)
        bank.draining = false;

    std::vector<Pending> *queue = nullptr;
    if (bank.draining && !bank.writeQueue.empty())
        queue = &bank.writeQueue;
    else if (!bank.readQueue.empty())
        queue = &bank.readQueue;
    else if (!bank.writeQueue.empty())
        queue = &bank.writeQueue;
    if (!queue)
        return false;

    const std::size_t idx =
        pickFrom(*queue, bank.freeAt, bank.openPage);
    const Pending p = (*queue)[idx];
    queue->erase(queue->begin() +
                 static_cast<std::ptrdiff_t>(idx));
    retire(bank, p);
    return true;
}

void
MemController::retire(Bank &bank, const Pending &p)
{
    Tick start = std::max(bank.freeAt, p.req.issueTick);

    // Writes probe the fail cache before touching the array; the
    // probes serialize on the shared metadata bus.
    if (p.req.op == MemOp::Write && p.io.metadataLookups > 0) {
        const Tick bus_start = std::max(start, metaBusFreeAt);
        metaBusFreeAt =
            bus_start + p.io.metadataLookups * cfg.tFailCacheLookup;
        start = metaBusFreeAt;
        eventTotals.failCacheLookups += p.io.metadataLookups;
        obs::bump(obs::Counter::TimingFailCacheLookups,
                  p.io.metadataLookups);
    }

    const std::uint64_t page = pageOfAddr(geom, p.req.addr);
    Tick occupancy = 0;
    if (page != bank.openPage) {
        occupancy += cfg.tRowMiss;
        ++eventTotals.rowMisses;
    }
    bank.openPage = page;

    if (p.req.op == MemOp::Read) {
        occupancy += cfg.tRead;
    } else {
        // Iterative program-and-verify: every pulse, verify read and
        // re-partition step of the functional write occupies the bank.
        const std::uint32_t passes =
            std::max<std::uint32_t>(1, p.io.programPasses);
        occupancy += passes * cfg.tProgramPass;
        occupancy += p.io.verifyReads * cfg.tVerifyRead;
        occupancy += p.io.repartitions * cfg.tRepartitionStall;
    }
    const Tick done = start + occupancy + cfg.tBusTransfer;

    if (p.req.op == MemOp::Read) {
        ++eventTotals.reads;
        obs::bump(obs::Counter::TimingReads);
        readLat.add(static_cast<std::int64_t>(done - p.req.issueTick));
    } else {
        ++eventTotals.writes;
        eventTotals.programPasses +=
            std::max<std::uint32_t>(1, p.io.programPasses);
        eventTotals.verifyReads += p.io.verifyReads;
        eventTotals.repartitionStalls += p.io.repartitions;
        obs::bump(obs::Counter::TimingWrites);
        obs::bump(obs::Counter::TimingVerifyReads, p.io.verifyReads);
        obs::bump(obs::Counter::TimingRepartitionStalls,
                  p.io.repartitions);
        writeLat.add(static_cast<std::int64_t>(done - p.req.issueTick));

        // Newly discovered faults post to the fail cache after the
        // write retires; they hold the metadata bus, not the bank.
        if (p.io.metadataUpdates > 0) {
            const Tick bus_start = std::max(done, metaBusFreeAt);
            metaBusFreeAt = bus_start +
                            p.io.metadataUpdates * cfg.tFailCacheUpdate;
            eventTotals.failCacheUpdates += p.io.metadataUpdates;
            obs::bump(obs::Counter::TimingFailCacheUpdates,
                      p.io.metadataUpdates);
        }
    }

    bank.freeAt = done;
    lastDone = std::max(lastDone, done);
    nowTick = std::max(nowTick, done);
}

} // namespace aegis::sim::timing
