#include "sim/timing/controller.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/error.h"

namespace aegis::sim::timing {

namespace {

/** Event-trace lane for bank @p bank_index (lane 0 is the shared
 *  metadata bus). */
std::uint32_t
bankLane(std::size_t bank_index)
{
    return static_cast<std::uint32_t>(bank_index) + 1;
}

} // namespace

MemController::MemController(const TimingConfig &config,
                             const pcm::Geometry &geometry)
    : cfg(config), geom(geometry), banks(config.banks)
{
    AEGIS_REQUIRE(cfg.banks > 0, "controller needs at least one bank");
    AEGIS_REQUIRE(cfg.queueDepth > 0, "queue depth must be positive");
    AEGIS_REQUIRE(cfg.writeDrainLow <= cfg.writeDrainHigh,
                  "write-drain low watermark above the high one");
    for (Bank &b : banks) {
        b.readQueue.reserve(cfg.queueDepth);
        b.writeQueue.reserve(cfg.queueDepth);
    }
}

std::size_t
MemController::bankOf(std::uint64_t addr) const
{
    // Block-interleaved banks: consecutive blocks hit different banks,
    // the standard layout for streaming bandwidth.
    return static_cast<std::size_t>(blockOfAddr(geom, addr) %
                                    cfg.banks);
}

void
MemController::submit(const MemRequest &request,
                      const scheme::SchemeIoCost &io)
{
    const std::size_t bank_index = bankOf(request.addr);
    Bank &bank = banks[bank_index];
    std::vector<Pending> &queue =
        request.op == MemOp::Read ? bank.readQueue : bank.writeQueue;
    while (queue.size() >= cfg.queueDepth)
        serviceOne(bank_index);
    queue.push_back(Pending{request, io, nextSeq++});
    nowTick = std::max(nowTick, request.issueTick);
    if (obs::traceTrackBound()) {
        obs::traceCounter(request.op == MemOp::Read ? "queue.read"
                                                    : "queue.write",
                          bankLane(bank_index), request.issueTick,
                          static_cast<std::int64_t>(queue.size()));
    }
}

void
MemController::drain()
{
    for (std::size_t i = 0; i < banks.size(); ++i) {
        while (serviceOne(i)) {
        }
    }
}

std::size_t
MemController::pendingRequests() const
{
    std::size_t n = 0;
    for (const Bank &bank : banks)
        n += bank.readQueue.size() + bank.writeQueue.size();
    return n;
}

std::size_t
MemController::pickFrom(const std::vector<Pending> &queue, Tick free_at,
                        std::uint64_t open_page) const
{
    // FR-FCFS over the requests that have already arrived: row hits
    // first, then oldest (submission order). When nothing has arrived
    // yet, take the earliest arrival.
    std::size_t best = queue.size();
    bool best_arrived = false;
    bool best_hit = false;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Pending &p = queue[i];
        const bool arrived = p.req.issueTick <= free_at;
        const bool hit =
            pageOfAddr(geom, p.req.addr) == open_page;
        if (best == queue.size()) {
            best = i;
            best_arrived = arrived;
            best_hit = hit;
            continue;
        }
        const Pending &b = queue[best];
        bool better = false;
        if (arrived != best_arrived) {
            better = arrived;
        } else if (arrived) {
            if (hit != best_hit)
                better = hit;
            else
                better = p.seq < b.seq;
        } else {
            better = p.req.issueTick < b.req.issueTick ||
                     (p.req.issueTick == b.req.issueTick &&
                      p.seq < b.seq);
        }
        if (better) {
            best = i;
            best_arrived = arrived;
            best_hit = hit;
        }
    }
    return best;
}

bool
MemController::serviceOne(std::size_t bank_index)
{
    Bank &bank = banks[bank_index];

    // Write-drain hysteresis: reads have priority until the write
    // queue backs up past the high watermark, then writes drain until
    // the low watermark frees the bank for reads again.
    const bool was_draining = bank.draining;
    if (bank.writeQueue.size() >= cfg.writeDrainHigh)
        bank.draining = true;
    else if (bank.writeQueue.size() <= cfg.writeDrainLow)
        bank.draining = false;
    if (bank.draining != was_draining && obs::traceTrackBound())
        obs::traceInstant(bank.draining ? "drain.enter" : "drain.exit",
                          bankLane(bank_index), nowTick);

    std::vector<Pending> *queue = nullptr;
    if (bank.draining && !bank.writeQueue.empty())
        queue = &bank.writeQueue;
    else if (!bank.readQueue.empty())
        queue = &bank.readQueue;
    else if (!bank.writeQueue.empty())
        queue = &bank.writeQueue;
    if (!queue)
        return false;

    const std::size_t idx =
        pickFrom(*queue, bank.freeAt, bank.openPage);
    const Pending p = (*queue)[idx];
    const bool was_read = queue == &bank.readQueue;
    queue->erase(queue->begin() +
                 static_cast<std::ptrdiff_t>(idx));
    retire(bank, bank_index, p);
    if (obs::traceTrackBound())
        obs::traceCounter(was_read ? "queue.read" : "queue.write",
                          bankLane(bank_index), bank.freeAt,
                          static_cast<std::int64_t>(queue->size()));
    return true;
}

void
MemController::retire(Bank &bank, std::size_t bank_index,
                      const Pending &p)
{
    const bool traced = obs::traceTrackBound();
    Tick start = std::max(bank.freeAt, p.req.issueTick);

    // Writes probe the fail cache before touching the array; the
    // probes serialize on the shared metadata bus.
    if (p.req.op == MemOp::Write && p.io.metadataLookups > 0) {
        const Tick bus_start = std::max(start, metaBusFreeAt);
        metaBusFreeAt =
            bus_start + p.io.metadataLookups * cfg.tFailCacheLookup;
        start = metaBusFreeAt;
        eventTotals.failCacheLookups += p.io.metadataLookups;
        obs::bump(obs::Counter::TimingFailCacheLookups,
                  p.io.metadataLookups);
        if (traced)
            obs::traceSpan("meta.lookup", 0, bus_start, metaBusFreeAt);
    }

    const std::uint64_t page = pageOfAddr(geom, p.req.addr);
    Tick occupancy = 0;
    if (page != bank.openPage) {
        occupancy += cfg.tRowMiss;
        ++eventTotals.rowMisses;
    }
    bank.openPage = page;

    if (p.req.op == MemOp::Read) {
        occupancy += cfg.tRead;
    } else {
        // Iterative program-and-verify: every pulse, verify read and
        // re-partition step of the functional write occupies the bank.
        const std::uint32_t passes =
            std::max<std::uint32_t>(1, p.io.programPasses);
        occupancy += passes * cfg.tProgramPass;
        occupancy += p.io.verifyReads * cfg.tVerifyRead;
        occupancy += p.io.repartitions * cfg.tRepartitionStall;
    }
    const Tick done = start + occupancy + cfg.tBusTransfer;

    if (p.req.op == MemOp::Read) {
        ++eventTotals.reads;
        obs::bump(obs::Counter::TimingReads);
        readLat.add(static_cast<std::int64_t>(done - p.req.issueTick));
        if (traced)
            obs::traceSpan("read", bankLane(bank_index), start, done);
    } else {
        ++eventTotals.writes;
        eventTotals.programPasses +=
            std::max<std::uint32_t>(1, p.io.programPasses);
        eventTotals.verifyReads += p.io.verifyReads;
        eventTotals.repartitionStalls += p.io.repartitions;
        obs::bump(obs::Counter::TimingWrites);
        obs::bump(obs::Counter::TimingVerifyReads, p.io.verifyReads);
        obs::bump(obs::Counter::TimingRepartitionStalls,
                  p.io.repartitions);
        writeLat.add(static_cast<std::int64_t>(done - p.req.issueTick));
        if (traced) {
            obs::traceSpan("write.pv", bankLane(bank_index), start,
                           done);
            if (p.io.repartitions > 0) {
                // The re-partition search stalls the tail of the bank
                // occupancy, after the pulses and verify reads (the
                // same order occupancy was summed above).
                const Tick stall_end = start + occupancy;
                const Tick stall_start =
                    stall_end -
                    p.io.repartitions * cfg.tRepartitionStall;
                obs::traceSpan("write.repartition",
                               bankLane(bank_index), stall_start,
                               stall_end);
            }
        }

        // Newly discovered faults post to the fail cache after the
        // write retires; they hold the metadata bus, not the bank.
        if (p.io.metadataUpdates > 0) {
            const Tick bus_start = std::max(done, metaBusFreeAt);
            metaBusFreeAt = bus_start +
                            p.io.metadataUpdates * cfg.tFailCacheUpdate;
            eventTotals.failCacheUpdates += p.io.metadataUpdates;
            obs::bump(obs::Counter::TimingFailCacheUpdates,
                      p.io.metadataUpdates);
            if (traced)
                obs::traceSpan("meta.update", 0, bus_start,
                               metaBusFreeAt);
        }
    }

    bank.freeAt = done;
    lastDone = std::max(lastDone, done);
    nowTick = std::max(nowTick, done);
}

} // namespace aegis::sim::timing
