/**
 * @file
 * Latency/occupancy parameters of the cycle-level controller model.
 *
 * All durations are in ticks of the virtual sim_clock. The defaults
 * follow the usual PCM modeling ratios (reads fast, program pulses an
 * order of magnitude slower, SRAM metadata traffic cheap) rather than
 * any particular device datasheet; benches expose them as flags so
 * studies can sweep them.
 */

#ifndef AEGIS_SIM_TIMING_TIMING_CONFIG_H
#define AEGIS_SIM_TIMING_TIMING_CONFIG_H

#include <cstdint>

#include "sim/timing/clock.h"

namespace aegis::sim::timing {

struct TimingConfig
{
    /** Independent banks; requests to different banks overlap. */
    std::uint32_t banks = 8;
    /** Per-bank, per-class (read/write) queue capacity. */
    std::uint32_t queueDepth = 32;

    /** Array read (decode) occupancy. */
    Tick tRead = 50;
    /** One program pulse of the iterative program-and-verify loop. */
    Tick tProgramPass = 500;
    /** One verification read inside the write loop. */
    Tick tVerifyRead = 50;
    /** Row-buffer miss penalty (open-row approximation). */
    Tick tRowMiss = 20;
    /** Data-bus transfer per retired request. */
    Tick tBusTransfer = 4;

    /** Fail-cache probe on the shared metadata bus. */
    Tick tFailCacheLookup = 8;
    /** Fail-cache insertion on the shared metadata bus. */
    Tick tFailCacheUpdate = 8;
    /** One re-partition step: metadata recompute + rewrite stall. */
    Tick tRepartitionStall = 100;

    /** Start draining writes when a bank's write queue reaches this. */
    std::uint32_t writeDrainHigh = 24;
    /** Stop draining when the write queue falls back to this. */
    std::uint32_t writeDrainLow = 8;
};

} // namespace aegis::sim::timing

#endif // AEGIS_SIM_TIMING_TIMING_CONFIG_H
