/**
 * @file
 * The timed simulation loop: a TraceSource drives the functional
 * device (real program-and-verify work per write) and the
 * cycle-level controller (when that work completes).
 *
 * Each write request goes through the scheme's actual write protocol
 * on a PcmDevice; the resulting SchemeIoCost — program pulses, verify
 * reads, fail-cache traffic, re-partition stalls — becomes the
 * request's bank occupancy and metadata-bus events in the
 * MemController. Read requests occupy their bank for the decode
 * latency only (functional decode correctness is covered by the
 * replay layer and the integration tests).
 *
 * The loop is single-threaded and fully seeded, so a (scheme, trace,
 * seed) triple produces bit-identical histograms everywhere; benches
 * parallelize across schemes, never inside one simulation.
 */

#ifndef AEGIS_SIM_TIMING_LATENCY_SIM_H
#define AEGIS_SIM_TIMING_LATENCY_SIM_H

#include <cstdint>
#include <string>

#include "obs/timeline.h"
#include "scheme/scheme.h"
#include "sim/timing/controller.h"
#include "sim/timing/timing_config.h"
#include "sim/trace.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace aegis::sim::timing {

/** traceTrack value meaning "do not bind an event-trace track". */
inline constexpr std::uint32_t kNoTraceTrack = 0xffffffffu;

struct LatencySimConfig
{
    TimingConfig timing;
    /** Trace spec for makeTrace (uniform / hotcold:... / file:...). */
    std::string traceSpec = "uniform";
    TraceShape shape;
    /** Write requests to retire (reads ride along per readFraction). */
    std::uint64_t writes = 1000;
    /** Stuck-at faults injected per 1000 block writes. */
    double faultsPerKwrite = 0.0;
    /** Sample controller totals into result.timeline every this many
     *  sim ticks (0 disables sampling). Purely tick-driven, so the
     *  sampled series is bit-identical across --jobs and reruns. */
    std::uint64_t timelineInterval = 0;
    /** Event-trace track to bind while the sim runs (see
     *  obs/trace_sink.h). Use a stable caller-chosen id — the benches
     *  use the cell index — so trace output is jobs-invariant.
     *  kNoTraceTrack (the default) records nothing. */
    std::uint32_t traceTrack = kNoTraceTrack;
    /** Perfetto process label for the bound track. */
    std::string traceLabel;
};

struct LatencySimResult
{
    Histogram readLatency;  ///< per-request read latency, ticks
    Histogram writeLatency; ///< per-request write latency, ticks
    ControllerTotals totals;
    Tick elapsedTicks = 0; ///< completion tick of the last request
    std::uint64_t failedWrites = 0;
    std::uint64_t deadBlocks = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t bytesWritten = 0;
    /** Sampled controller totals (cfg.timelineInterval > 0): columns
     *  tick, reads, writes, verify_reads, failcache_lookups,
     *  failcache_updates, repartition_stalls, queued. The name is left
     *  for the caller to fill. */
    obs::TimeSeries timeline;

    std::int64_t readP50() const;
    std::int64_t readP99() const;
    std::int64_t writeP50() const;
    std::int64_t writeP99() const;

    /** Sustained write bandwidth: data bytes retired per kilotick. */
    double writeBytesPerKilotick() const;
};

/**
 * Run one timed simulation of @p prototype (cloned into a device
 * shaped by cfg.shape) under cfg.traceSpec. @p stream is this
 * simulation's private Rng stream — split it from the master seed so
 * concurrent per-scheme simulations stay independent and
 * jobs-invariant.
 */
LatencySimResult runLatencySim(const scheme::Scheme &prototype,
                               const LatencySimConfig &cfg,
                               const Rng &stream);

} // namespace aegis::sim::timing

#endif // AEGIS_SIM_TIMING_LATENCY_SIM_H
