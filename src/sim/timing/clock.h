/**
 * @file
 * The simulation's virtual clock.
 *
 * Everything under sim/timing/ measures time in *ticks* of a
 * deterministic simulated clock — never in wall-clock time, which
 * would break the bit-identical --jobs contract. sim_clock mimics the
 * chrono clock shape (a static now()) so accidental real-clock usage
 * is mechanically distinguishable: aegis-lint's DET-CHRONO rule
 * allowlists sim_clock::now() while still rejecting any
 * std::chrono *_clock::now() in this directory.
 *
 * The clock is passive: it reads whatever tick source the running
 * simulation has bound on this thread (RAII via sim_clock::Binding),
 * and returns 0 when no simulation is active.
 */

#ifndef AEGIS_SIM_TIMING_CLOCK_H
#define AEGIS_SIM_TIMING_CLOCK_H

#include <cstdint>

namespace aegis::sim::timing {

/** Simulated time, in controller ticks. */
using Tick = std::uint64_t;

class sim_clock
{
  public:
    /** Current simulated tick of the thread's bound simulation
     *  (0 when no simulation is running on this thread). */
    static Tick now();

    /**
     * Binds @p source as the thread's tick source for the binding's
     * lifetime (nestable; the previous source is restored). The
     * source must outlive the binding.
     */
    class Binding
    {
      public:
        explicit Binding(const Tick *source);
        ~Binding();

        Binding(const Binding &) = delete;
        Binding &operator=(const Binding &) = delete;

      private:
        const Tick *previous;
    };
};

} // namespace aegis::sim::timing

#endif // AEGIS_SIM_TIMING_CLOCK_H
