#include "sim/timing/latency_sim.h"

#include <optional>
#include <string>

#include "obs/trace_sink.h"
#include "pcm/fail_cache.h"
#include "sim/device.h"
#include "sim/timing/clock.h"
#include "util/error.h"

namespace aegis::sim::timing {

namespace {

const char *const kTimelineColumns[] = {
    "tick",          "reads",
    "writes",        "verify_reads",
    "failcache_lookups", "failcache_updates",
    "repartition_stalls", "queued",
};

/** Append one sample row: totals as of now, stamped @p tick. */
void
sampleTimeline(obs::TimeSeries &ts, Tick tick,
               const MemController &controller)
{
    const ControllerTotals &t = controller.totals();
    ts.rows.push_back({tick, t.reads, t.writes, t.verifyReads,
                       t.failCacheLookups, t.failCacheUpdates,
                       t.repartitionStalls,
                       static_cast<std::uint64_t>(
                           controller.pendingRequests())});
}

} // namespace

std::int64_t
LatencySimResult::readP50() const
{
    return readLatency.total() ? readLatency.quantileKey(0.5) : 0;
}

std::int64_t
LatencySimResult::readP99() const
{
    return readLatency.total() ? readLatency.quantileKey(0.99) : 0;
}

std::int64_t
LatencySimResult::writeP50() const
{
    return writeLatency.total() ? writeLatency.quantileKey(0.5) : 0;
}

std::int64_t
LatencySimResult::writeP99() const
{
    return writeLatency.total() ? writeLatency.quantileKey(0.99) : 0;
}

double
LatencySimResult::writeBytesPerKilotick() const
{
    if (elapsedTicks == 0)
        return 0.0;
    return static_cast<double>(bytesWritten) * 1000.0 /
           static_cast<double>(elapsedTicks);
}

LatencySimResult
runLatencySim(const scheme::Scheme &prototype,
              const LatencySimConfig &cfg, const Rng &stream)
{
    AEGIS_REQUIRE(cfg.writes > 0, "latency sim needs at least one write");
    const pcm::Geometry geom{cfg.shape.blockBits, cfg.shape.pageBytes,
                             cfg.shape.pages};

    auto directory = std::make_shared<pcm::OracleFaultDirectory>();
    PcmDevice device(geom, prototype,
                     prototype.requiresDirectory() ? directory
                                                   : nullptr);

    // Independent sub-streams: trace addresses, write data, fault
    // placement. Splitting keeps each deterministic regardless of how
    // the others advance.
    auto trace = makeTrace(cfg.traceSpec, cfg.shape, stream.split(0));
    Rng dataRng = stream.split(1);
    Rng faultRng = stream.split(2);

    MemController controller(cfg.timing, geom);
    const sim_clock::Binding bind_clock(controller.tickSource());

    // Optional event-trace track: one simulated cell = one Perfetto
    // process; lane 0 is the metadata bus, lane 1+b is bank b.
    std::optional<obs::TraceTrackScope> track;
    if (cfg.traceTrack != kNoTraceTrack && obs::traceSinkArmed()) {
        track.emplace(cfg.traceTrack, cfg.traceLabel,
                      controller.tickSource());
        obs::nameTraceLane(0, "metadata-bus");
        for (std::uint32_t b = 0; b < cfg.timing.banks; ++b)
            obs::nameTraceLane(b + 1, "bank " + std::to_string(b));
    }

    LatencySimResult result;
    if (cfg.timelineInterval > 0)
        result.timeline.columns.assign(
            kTimelineColumns,
            kTimelineColumns + sizeof(kTimelineColumns) /
                                   sizeof(kTimelineColumns[0]));
    Tick next_sample = cfg.timelineInterval;
    BitVector data(geom.blockBits);
    double fault_debt = 0;
    const scheme::SchemeIoCost no_io;

    MemRequest req;
    std::uint64_t writes_done = 0;
    while (writes_done < cfg.writes && trace->next(req)) {
        if (req.op == MemOp::Read) {
            controller.submit(req, no_io);
            continue;
        }

        // aegis-lint: allow(DET-FLOAT single-threaded simulation; write order is the trace order)
        fault_debt += cfg.faultsPerKwrite / 1000.0;
        while (fault_debt >= 1.0) {
            device.injectRandomFaults(1, faultRng);
            ++result.faultsInjected;
            // aegis-lint: allow(DET-FLOAT single-threaded simulation; write order is the trace order)
            fault_debt -= 1.0;
        }

        const std::uint64_t block = blockOfAddr(geom, req.addr);
        data.randomize(dataRng);
        const scheme::WriteOutcome outcome =
            device.writeBlock(block, data);
        if (!outcome.ok)
            ++result.failedWrites;
        controller.submit(req, outcome.io);
        ++writes_done;

        // Tick-driven sampling: emit a row per interval boundary the
        // simulated frontier crossed since the last request. Stamped
        // with the nominal boundary tick, so the series depends only
        // on the (scheme, trace, seed) triple.
        while (cfg.timelineInterval > 0 &&
               sim_clock::now() >= next_sample) {
            sampleTimeline(result.timeline, next_sample, controller);
            next_sample += cfg.timelineInterval;
        }
    }
    controller.drain();
    if (cfg.timelineInterval > 0)
        sampleTimeline(result.timeline, sim_clock::now(), controller);

    result.readLatency = controller.readLatency();
    result.writeLatency = controller.writeLatency();
    result.totals = controller.totals();
    result.elapsedTicks = sim_clock::now();
    result.deadBlocks = device.stats().deadBlocks;
    result.bytesWritten =
        writes_done * (static_cast<std::uint64_t>(geom.blockBits) / 8);
    return result;
}

} // namespace aegis::sim::timing
