#include "sim/timing/latency_sim.h"

#include "pcm/fail_cache.h"
#include "sim/device.h"
#include "sim/timing/clock.h"
#include "util/error.h"

namespace aegis::sim::timing {

std::int64_t
LatencySimResult::readP50() const
{
    return readLatency.total() ? readLatency.quantileKey(0.5) : 0;
}

std::int64_t
LatencySimResult::readP99() const
{
    return readLatency.total() ? readLatency.quantileKey(0.99) : 0;
}

std::int64_t
LatencySimResult::writeP50() const
{
    return writeLatency.total() ? writeLatency.quantileKey(0.5) : 0;
}

std::int64_t
LatencySimResult::writeP99() const
{
    return writeLatency.total() ? writeLatency.quantileKey(0.99) : 0;
}

double
LatencySimResult::writeBytesPerKilotick() const
{
    if (elapsedTicks == 0)
        return 0.0;
    return static_cast<double>(bytesWritten) * 1000.0 /
           static_cast<double>(elapsedTicks);
}

LatencySimResult
runLatencySim(const scheme::Scheme &prototype,
              const LatencySimConfig &cfg, const Rng &stream)
{
    AEGIS_REQUIRE(cfg.writes > 0, "latency sim needs at least one write");
    const pcm::Geometry geom{cfg.shape.blockBits, cfg.shape.pageBytes,
                             cfg.shape.pages};

    auto directory = std::make_shared<pcm::OracleFaultDirectory>();
    PcmDevice device(geom, prototype,
                     prototype.requiresDirectory() ? directory
                                                   : nullptr);

    // Independent sub-streams: trace addresses, write data, fault
    // placement. Splitting keeps each deterministic regardless of how
    // the others advance.
    auto trace = makeTrace(cfg.traceSpec, cfg.shape, stream.split(0));
    Rng dataRng = stream.split(1);
    Rng faultRng = stream.split(2);

    MemController controller(cfg.timing, geom);
    const sim_clock::Binding bind_clock(controller.tickSource());

    LatencySimResult result;
    BitVector data(geom.blockBits);
    double fault_debt = 0;
    const scheme::SchemeIoCost no_io;

    MemRequest req;
    std::uint64_t writes_done = 0;
    while (writes_done < cfg.writes && trace->next(req)) {
        if (req.op == MemOp::Read) {
            controller.submit(req, no_io);
            continue;
        }

        // aegis-lint: allow(DET-FLOAT single-threaded simulation; write order is the trace order)
        fault_debt += cfg.faultsPerKwrite / 1000.0;
        while (fault_debt >= 1.0) {
            device.injectRandomFaults(1, faultRng);
            ++result.faultsInjected;
            // aegis-lint: allow(DET-FLOAT single-threaded simulation; write order is the trace order)
            fault_debt -= 1.0;
        }

        const std::uint64_t block = blockOfAddr(geom, req.addr);
        data.randomize(dataRng);
        const scheme::WriteOutcome outcome =
            device.writeBlock(block, data);
        if (!outcome.ok)
            ++result.failedWrites;
        controller.submit(req, outcome.io);
        ++writes_done;
    }
    controller.drain();

    result.readLatency = controller.readLatency();
    result.writeLatency = controller.writeLatency();
    result.totals = controller.totals();
    result.elapsedTicks = sim_clock::now();
    result.deadBlocks = device.stats().deadBlocks;
    result.bytesWritten =
        writes_done * (static_cast<std::uint64_t>(geom.blockBits) / 8);
    return result;
}

} // namespace aegis::sim::timing
