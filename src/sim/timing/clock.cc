#include "sim/timing/clock.h"

namespace aegis::sim::timing {

namespace {

thread_local const Tick *g_tickSource = nullptr;

} // namespace

Tick
sim_clock::now()
{
    return g_tickSource ? *g_tickSource : 0;
}

sim_clock::Binding::Binding(const Tick *source)
    : previous(g_tickSource)
{
    g_tickSource = source;
}

sim_clock::Binding::~Binding()
{
    g_tickSource = previous;
}

} // namespace aegis::sim::timing
