/**
 * @file
 * Synthetic write-trace generation and functional replay.
 *
 * Drives the byte-accurate PcmDevice with realistic address streams
 * so scheme overheads that only exist on the functional layer —
 * verification reads, inversion rewrites, re-partition passes — can
 * be measured under workload locality rather than uniform traffic.
 */

#ifndef AEGIS_SIM_TRACE_H
#define AEGIS_SIM_TRACE_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/device.h"
#include "util/rng.h"

namespace aegis::sim {

/** Address-stream generator over a device's pages. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Page index of the next write. */
    virtual std::uint32_t nextPage(Rng &rng) = 0;

    virtual std::string name() const = 0;
};

/** Uniformly random page addresses. */
class UniformTrace : public TraceGenerator
{
  public:
    explicit UniformTrace(std::uint32_t pages);
    std::uint32_t nextPage(Rng &rng) override;
    std::string name() const override { return "uniform"; }

  private:
    std::uint32_t pages;
};

/** Sequential sweep over the pages (streaming writes). */
class SequentialTrace : public TraceGenerator
{
  public:
    explicit SequentialTrace(std::uint32_t pages);
    std::uint32_t nextPage(Rng &rng) override;
    std::string name() const override { return "sequential"; }

  private:
    std::uint32_t pages;
    std::uint32_t cursor = 0;
};

/** Hot/cold: @p hot_fraction of pages receive @p hot_traffic of the
 *  writes (e.g. 10% of pages take 90% of traffic). */
class HotColdTrace : public TraceGenerator
{
  public:
    HotColdTrace(std::uint32_t pages, double hot_fraction,
                 double hot_traffic);
    std::uint32_t nextPage(Rng &rng) override;
    std::string name() const override;

  private:
    std::uint32_t pages;
    std::uint32_t hotPages;
    double hotTraffic;
};

/** Build "uniform", "sequential" or "hotcold:<frac>:<traffic>". */
std::unique_ptr<TraceGenerator> makeTrace(const std::string &spec,
                                          std::uint32_t pages);

/** Aggregate results of one trace replay. */
struct TraceReplayStats
{
    std::uint64_t pageWrites = 0;
    std::uint64_t blockWrites = 0;
    std::uint64_t failedWrites = 0;
    std::uint64_t cellPrograms = 0;
    std::uint64_t repartitions = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t deadBlocks = 0;
    std::uint64_t bitsWritten = 0;

    /** Cell programs per data bit written — the wear cost of the
     *  scheme under this workload (0.5 = ideal differential write of
     *  random data). */
    double programsPerBit() const;
};

/**
 * Replay @p page_writes writes from @p trace against @p device with
 * random data, injecting @p faults_per_kwrite random stuck-at faults
 * per thousand page writes (accelerated wear-out). Read-back is
 * verified after every successful write; decode mismatches throw.
 */
TraceReplayStats replayTrace(PcmDevice &device, TraceGenerator &trace,
                             std::uint64_t page_writes,
                             double faults_per_kwrite, Rng &rng);

} // namespace aegis::sim

#endif // AEGIS_SIM_TRACE_H
