/**
 * @file
 * The request/trace API: timed memory-request streams.
 *
 * A TraceSource produces MemRequests — (byte address, read/write,
 * issue tick) — consumed by two layers: the functional replay below
 * (scheme overheads under workload locality) and the cycle-level
 * memory-controller model in sim/timing/ (latency and bandwidth under
 * load). Synthetic generators (uniform / sequential / hotcold /
 * zipfian) and a file-backed reader for HybridSim-format CPU traces
 * implement the same interface, so every bench and example can swap
 * address streams freely.
 *
 * Constructor contract (restartability): a concrete source captures
 * its entire replay state at construction — shape parameters plus its
 * own Rng stream, split from the master seed by the caller — and
 * reset() restores that exact state. Two full replays of the same
 * source, or a replay after a checkpoint restore that re-creates and
 * re-winds the source, therefore produce identical request streams.
 */

#ifndef AEGIS_SIM_TRACE_H
#define AEGIS_SIM_TRACE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pcm/address.h"
#include "sim/device.h"
#include "util/rng.h"

namespace aegis::sim {

/** Request direction. */
enum class MemOp : std::uint8_t {
    Read, ///< decode one data block
    Write ///< program one data block
};

/**
 * One memory request. Addresses are byte addresses at data-block
 * granularity (one request touches one protected block, like the
 * 64-byte cache-line requests of a CPU trace); consumers fold them
 * into a device with pageOfAddr()/blockOfAddr().
 */
struct MemRequest
{
    std::uint64_t addr = 0;      ///< byte address
    MemOp op = MemOp::Write;     ///< read or write
    std::uint64_t issueTick = 0; ///< controller tick of arrival
};

/** Page index of @p addr folded into @p geom (wraps large traces). */
std::uint32_t pageOfAddr(const pcm::Geometry &geom, std::uint64_t addr);

/** Global block id of @p addr folded into @p geom; consistent with
 *  pageOfAddr (the block always lies in the returned page). */
std::uint64_t blockOfAddr(const pcm::Geometry &geom, std::uint64_t addr);

/**
 * Shape shared by the synthetic generators: the address range they
 * cover, the request mix and the arrival cadence.
 */
struct TraceShape
{
    std::uint32_t pages = 1;       ///< pages the stream covers
    std::uint32_t pageBytes = 4096;///< bytes per page
    std::uint32_t blockBits = 512; ///< request granularity (one block)
    double readFraction = 0.0;     ///< fraction of requests that read
    std::uint64_t arrivalGap = 1;  ///< ticks between request arrivals
};

/**
 * Abstract timed request stream.
 *
 * next() fills @p out and returns true, or returns false when the
 * source is exhausted (synthetic generators never exhaust; file
 * traces end). reset() rewinds to the just-constructed state — the
 * cursor, the issue-tick clock and the internal Rng stream all
 * restart, so the stream after reset() is bit-identical to the first.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next request; false when the trace is exhausted. */
    virtual bool next(MemRequest &out) = 0;

    /** Rewind to the initial state (see the class contract). */
    virtual void reset() = 0;

    virtual std::string name() const = 0;
};

/**
 * Base for the synthetic generators: owns the shape, the Rng stream
 * (with its pristine copy for reset), the arrival clock and the
 * page-to-address expansion. Subclasses supply the page-locality
 * model via nextPageIndex().
 */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(const TraceShape &shape, const Rng &stream);

    bool next(MemRequest &out) final;
    void reset() override;

  protected:
    /** Page index of the next request (may draw from rng()). */
    virtual std::uint32_t nextPageIndex() = 0;

    /** Restore subclass cursors to their initial state. */
    virtual void resetCursor() {}

    Rng &rng() { return stream; }
    const TraceShape &shape() const { return traceShape; }

  private:
    TraceShape traceShape;
    Rng initialStream;
    Rng stream;
    std::uint64_t tick = 0;
};

/** Uniformly random page addresses. */
class UniformTrace : public SyntheticTrace
{
  public:
    UniformTrace(const TraceShape &shape, const Rng &stream);
    std::string name() const override { return "uniform"; }

  protected:
    std::uint32_t nextPageIndex() override;
};

/** Sequential sweep over the pages (streaming writes). */
class SequentialTrace : public SyntheticTrace
{
  public:
    SequentialTrace(const TraceShape &shape, const Rng &stream);
    std::string name() const override { return "sequential"; }

  protected:
    std::uint32_t nextPageIndex() override;
    void resetCursor() override { cursor = 0; }

  private:
    std::uint32_t cursor = 0;
};

/** Hot/cold: @p hot_fraction of pages receive @p hot_traffic of the
 *  requests (e.g. 10% of pages take 90% of traffic). */
class HotColdTrace : public SyntheticTrace
{
  public:
    HotColdTrace(const TraceShape &shape, const Rng &stream,
                 double hot_fraction, double hot_traffic);
    std::string name() const override;

  protected:
    std::uint32_t nextPageIndex() override;

  private:
    std::uint32_t hotPages;
    double hotTraffic;
};

/**
 * Zipfian page popularity: page of rank i (0 = hottest) is drawn with
 * probability proportional to 1/(i+1)^theta. theta = 0 degenerates to
 * uniform; web/storage workloads are commonly modeled near 0.99.
 */
class ZipfianTrace : public SyntheticTrace
{
  public:
    ZipfianTrace(const TraceShape &shape, const Rng &stream,
                 double theta);
    std::string name() const override;

  protected:
    std::uint32_t nextPageIndex() override;

  private:
    double theta;
    /** cumulative[i] = P(rank <= i); binary-searched per draw. */
    std::vector<double> cumulative;
};

/**
 * File-backed reader for HybridSim-format CPU traces: one request per
 * line, whitespace-separated `<issue_tick> <R|W> <address>`, address
 * decimal or 0x-hex, '#' starts a comment. Ticks must be
 * non-decreasing. The whole file is parsed eagerly at construction
 * (malformed lines throw ConfigError with the line number), so replay
 * and reset() never touch the filesystem again.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    bool next(MemRequest &out) override;
    void reset() override { cursor = 0; }
    std::string name() const override;

    /** Parsed request count. */
    std::size_t size() const { return requests.size(); }

    /** The parsed requests, for golden tests. */
    const std::vector<MemRequest> &all() const { return requests; }

  private:
    std::string path;
    std::vector<MemRequest> requests;
    std::size_t cursor = 0;
};

/**
 * Build a source from a spec string: "uniform", "sequential",
 * "hotcold:<frac>:<traffic>", "zipfian[:<theta>]" (default 0.99) or
 * "file:<path>". @p stream seeds the synthetic generators; derive it
 * from the master seed with Rng::split so the request stream is
 * independent of every other consumer.
 */
std::unique_ptr<TraceSource> makeTrace(const std::string &spec,
                                       const TraceShape &shape,
                                       const Rng &stream);

/** Aggregate results of one functional trace replay. */
struct TraceReplayStats
{
    std::uint64_t pageWrites = 0;
    std::uint64_t pageReads = 0;
    std::uint64_t blockWrites = 0;
    std::uint64_t failedWrites = 0;
    std::uint64_t cellPrograms = 0;
    std::uint64_t repartitions = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t deadBlocks = 0;
    std::uint64_t bitsWritten = 0;

    /** Cell programs per data bit written — the wear cost of the
     *  scheme under this workload (0.5 = ideal differential write of
     *  random data). */
    double programsPerBit() const;
};

/**
 * Replay requests from @p trace against @p device until @p
 * page_writes write requests have been serviced (reads decode the
 * page and are tallied separately), with random data per write and @p
 * faults_per_kwrite random stuck-at faults injected per thousand page
 * writes (accelerated wear-out). Read-back is verified after every
 * successful write; decode mismatches throw. A source that exhausts
 * first ends the replay early.
 */
TraceReplayStats replayTrace(PcmDevice &device, TraceSource &trace,
                             std::uint64_t page_writes,
                             double faults_per_kwrite, Rng &rng);

} // namespace aegis::sim

#endif // AEGIS_SIM_TRACE_H
