#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace aegis::sim {

std::vector<double>
PerfectWearLeveling::pageRates(std::uint32_t pages, Rng &) const
{
    return std::vector<double>(pages, 1.0);
}

ResidualSkewWearLeveling::ResidualSkewWearLeveling(double skew)
    : spread(skew)
{
    AEGIS_REQUIRE(skew >= 0.0 && skew < 1.0,
                  "residual skew must be in [0, 1)");
}

std::vector<double>
ResidualSkewWearLeveling::pageRates(std::uint32_t pages, Rng &rng) const
{
    std::vector<double> rates(pages);
    for (double &r : rates)
        r = 1.0 - spread + 2.0 * spread * rng.nextDouble();
    // Renormalize so mean traffic is exactly 1.
    double sum = 0;
    for (double r : rates)
        // aegis-lint: allow(DET-FLOAT fold order is the fixed page order, identical on every run)
        sum += r;
    const double scale = static_cast<double>(pages) / sum;
    for (double &r : rates)
        r *= scale;
    return rates;
}

std::string
ResidualSkewWearLeveling::name() const
{
    return "skew:" + std::to_string(spread);
}

ZipfWorkload::ZipfWorkload(double zipf_exponent)
    : exponent(zipf_exponent)
{
    AEGIS_REQUIRE(zipf_exponent > 0.0,
                  "Zipf exponent must be positive");
}

std::vector<double>
ZipfWorkload::pageRates(std::uint32_t pages, Rng &rng) const
{
    std::vector<double> rates(pages);
    double sum = 0;
    for (std::uint32_t i = 0; i < pages; ++i) {
        rates[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
        // aegis-lint: allow(DET-FLOAT fold order is the fixed page order, identical on every run)
        sum += rates[i];
    }
    const double scale = static_cast<double>(pages) / sum;
    for (double &r : rates)
        r *= scale;
    // Popularity ranks land on random pages (Fisher-Yates).
    for (std::uint32_t i = pages; i > 1; --i) {
        const std::uint64_t j = rng.nextBounded(i);
        std::swap(rates[i - 1], rates[j]);
    }
    return rates;
}

std::string
ZipfWorkload::name() const
{
    return "zipf:" + std::to_string(exponent);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &spec)
{
    if (spec == "perfect")
        return std::make_unique<PerfectWearLeveling>();
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
        const std::string kind = spec.substr(0, colon);
        double param = 0;
        try {
            param = std::stod(spec.substr(colon + 1));
        } catch (const std::exception &) {
            throw ConfigError("bad workload parameter in `" + spec +
                              "'");
        }
        if (kind == "skew")
            return std::make_unique<ResidualSkewWearLeveling>(param);
        if (kind == "zipf")
            return std::make_unique<ZipfWorkload>(param);
    }
    throw ConfigError("unknown workload `" + spec +
                      "' (try perfect, skew:<s>, zipf:<s>)");
}

} // namespace aegis::sim
