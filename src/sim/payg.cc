#include "sim/payg.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "aegis/factory.h"
#include "pcm/address.h"
#include "pcm/lifetime_model.h"
#include "util/error.h"

namespace aegis::sim {

namespace {

/** One fault arrival somewhere in the memory. */
struct GlobalFault
{
    double time;
    std::uint32_t block;
    std::uint32_t pos;
    bool stuck;

    friend bool operator<(const GlobalFault &a, const GlobalFault &b)
    { return a.time < b.time; }
};

/** Per-block replay state. */
struct BlockState
{
    std::unique_ptr<scheme::LifetimeTracker> tracker;
    pcm::FaultSet active;    ///< faults the LEC must handle
};

} // namespace

PaygResult
runPaygStudy(const ExperimentConfig &config, const PaygConfig &payg)
{
    const pcm::Geometry geom{config.blockBits, config.pageBytes,
                             config.pages};
    const auto lec = core::makeScheme(config.schemeSpec(payg.lecScheme),
                                  config.blockBits);
    const auto lifetime = pcm::makeLifetimeModel(
        config.lifetimeKind, config.lifetimeMean, config.lifetimeParam);

    // PAYG composition is defined for data-independent LECs: the
    // replay loop never samples per-write failure probabilities.
    AEGIS_REQUIRE(lec->makeTracker(config.tracker)->dataIndependent(),
                  "PAYG requires a data-independent LEC scheme "
                  "(ECP, SAFER or basic Aegis)");

    // Generate every block's fault arrivals (base wear rate only) and
    // merge them into global time order: blocks compete for the pool.
    const auto total_blocks =
        static_cast<std::uint32_t>(geom.totalBlocks());
    // No LEC in this library survives anywhere near this many faults
    // in one block, so capping bounds memory without affecting
    // results.
    const std::uint32_t per_block_cap =
        std::min<std::uint32_t>(config.blockBits, 128);

    std::vector<GlobalFault> events;
    events.reserve(static_cast<std::size_t>(total_blocks) *
                   per_block_cap);
    const Rng master(config.seed);
    for (std::uint32_t b = 0; b < total_blocks; ++b) {
        Rng cell_rng = master.split(2ull * b);
        std::vector<std::pair<double, std::uint32_t>> arrivals;
        arrivals.reserve(config.blockBits);
        for (std::uint32_t pos = 0; pos < config.blockBits; ++pos) {
            const double t =
                lifetime->sample(cell_rng) / config.wear.baseRate;
            arrivals.emplace_back(t, pos);
        }
        std::sort(arrivals.begin(), arrivals.end());
        for (std::uint32_t i = 0; i < per_block_cap; ++i) {
            events.push_back(GlobalFault{arrivals[i].first, b,
                                         arrivals[i].second,
                                         cell_rng.nextBool()});
        }
    }
    std::sort(events.begin(), events.end());

    // Replay against the shared pool.
    std::vector<BlockState> blocks(total_blocks);
    PaygResult result;
    std::uint32_t pool_left = payg.gecEntries;

    const auto make_tracker = [&] {
        return lec->makeTracker(config.tracker);
    };

    for (const GlobalFault &event : events) {
        BlockState &blk = blocks[event.block];
        if (!blk.tracker)
            blk.tracker = make_tracker();

        const pcm::Fault fault{event.pos, event.stuck};
        if (blk.tracker->onFault(fault) ==
            scheme::FaultVerdict::Alive) {
            blk.active.push_back(fault);
            ++result.faultsAbsorbed;
            continue;
        }

        // The LEC is overwhelmed: shed the newest fault to a GEC
        // pointer entry (its replacement bit takes over the cell) and
        // rebuild the LEC state over the remaining faults.
        if (pool_left == 0) {
            result.firstFailure = event.time;
            break;
        }
        --pool_left;
        ++result.gecUsed;
        ++result.faultsAbsorbed;
        blk.tracker = make_tracker();
        for (const pcm::Fault &f : blk.active) {
            const auto verdict = blk.tracker->onFault(f);
            AEGIS_ASSERT(verdict == scheme::FaultVerdict::Alive,
                         "LEC rebuild over a previously-absorbed "
                         "fault set must succeed");
        }
    }
    if (result.firstFailure == 0.0 && !events.empty()) {
        // Memory survived every generated event (pool large enough);
        // report the horizon instead.
        result.firstFailure = events.back().time;
    }

    // Overhead: per-block LEC + 1 overflow flag, plus the pool (each
    // entry holds a global cell pointer and a replacement bit).
    std::uint32_t entry_bits = payg.gecEntryBits;
    if (entry_bits == 0) {
        entry_bits = static_cast<std::uint32_t>(
                         std::bit_width(geom.totalBits() - 1)) +
                     1;
    }
    result.overheadBits =
        static_cast<std::uint64_t>(total_blocks) *
            (lec->overheadBits() + 1) +
        static_cast<std::uint64_t>(payg.gecEntries) * entry_bits;
    return result;
}

} // namespace aegis::sim
