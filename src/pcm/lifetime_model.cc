#include "pcm/lifetime_model.h"

#include <cmath>

#include "util/error.h"

namespace aegis::pcm {

NormalLifetimeModel::NormalLifetimeModel(double mean, double cv)
    : mu(mean), sigma(mean * cv)
{
    AEGIS_REQUIRE(mean > 0, "mean lifetime must be positive");
    AEGIS_REQUIRE(cv >= 0, "coefficient of variation must be >= 0");
}

double
NormalLifetimeModel::sample(Rng &rng) const
{
    const double v = rng.nextGaussian(mu, sigma);
    return v < 1.0 ? 1.0 : v;
}

std::string
NormalLifetimeModel::name() const
{
    return "normal(mean=" + std::to_string(mu) +
           ",cv=" + std::to_string(sigma / mu) + ")";
}

LogNormalLifetimeModel::LogNormalLifetimeModel(double mean, double cv)
    : targetMean(mean)
{
    AEGIS_REQUIRE(mean > 0, "mean lifetime must be positive");
    AEGIS_REQUIRE(cv > 0, "coefficient of variation must be positive");
    // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
    // cv^2 = exp(sigma^2) - 1.
    const double s2 = std::log1p(cv * cv);
    sigma = std::sqrt(s2);
    mu = std::log(mean) - s2 / 2.0;
}

double
LogNormalLifetimeModel::sample(Rng &rng) const
{
    const double v = std::exp(rng.nextGaussian(mu, sigma));
    return v < 1.0 ? 1.0 : v;
}

std::string
LogNormalLifetimeModel::name() const
{
    return "lognormal(mean=" + std::to_string(targetMean) + ")";
}

WeibullLifetimeModel::WeibullLifetimeModel(double mean, double shape_k)
    : targetMean(mean), shape(shape_k)
{
    AEGIS_REQUIRE(mean > 0, "mean lifetime must be positive");
    AEGIS_REQUIRE(shape_k > 0, "Weibull shape must be positive");
    scale = mean / std::tgamma(1.0 + 1.0 / shape_k);
}

double
WeibullLifetimeModel::sample(Rng &rng) const
{
    double u;
    do {
        u = rng.nextDouble();
    } while (u <= 0.0);
    const double v = scale * std::pow(-std::log(u), 1.0 / shape);
    return v < 1.0 ? 1.0 : v;
}

std::string
WeibullLifetimeModel::name() const
{
    return "weibull(mean=" + std::to_string(targetMean) +
           ",k=" + std::to_string(shape) + ")";
}

UniformLifetimeModel::UniformLifetimeModel(double mean,
                                           double spread_frac)
    : mu(mean), spread(spread_frac)
{
    AEGIS_REQUIRE(mean > 0, "mean lifetime must be positive");
    AEGIS_REQUIRE(spread_frac >= 0 && spread_frac <= 1,
                  "uniform spread must be in [0, 1]");
}

double
UniformLifetimeModel::sample(Rng &rng) const
{
    const double v = mu * (1.0 - spread + 2.0 * spread * rng.nextDouble());
    return v < 1.0 ? 1.0 : v;
}

std::string
UniformLifetimeModel::name() const
{
    return "uniform(mean=" + std::to_string(mu) + ")";
}

std::unique_ptr<LifetimeModel>
makeLifetimeModel(const std::string &kind, double mean, double param)
{
    if (kind == "normal")
        return std::make_unique<NormalLifetimeModel>(mean, param);
    if (kind == "lognormal")
        return std::make_unique<LogNormalLifetimeModel>(mean, param);
    if (kind == "weibull")
        return std::make_unique<WeibullLifetimeModel>(mean, param);
    if (kind == "uniform")
        return std::make_unique<UniformLifetimeModel>(mean, param);
    throw ConfigError("unknown lifetime model `" + kind + "'");
}

std::unique_ptr<LifetimeModel>
makePaperLifetimeModel()
{
    return std::make_unique<NormalLifetimeModel>(1e8, 0.25);
}

} // namespace aegis::pcm
