#include "pcm/fail_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace aegis::pcm {

void
OracleFaultDirectory::record(std::uint64_t block, const Fault &fault)
{
    FaultSet &set = entries[block];
    for (const Fault &f : set) {
        if (f.pos == fault.pos)
            return;
    }
    set.push_back(fault);
    std::sort(set.begin(), set.end(),
              [](const Fault &a, const Fault &b) { return a.pos < b.pos; });
}

FaultSet
OracleFaultDirectory::lookup(std::uint64_t block) const
{
    const auto it = entries.find(block);
    if (it == entries.end())
        return FaultSet{};
    // The oracle never forgets: every recorded fault is a hit.
    obs::bump(obs::Counter::FailCacheHits, it->second.size());
    return it->second;
}

void
OracleFaultDirectory::lookupInto(std::uint64_t block,
                                 FaultSet &out) const
{
    out.clear();
    const auto it = entries.find(block);
    if (it == entries.end())
        return;
    obs::bump(obs::Counter::FailCacheHits, it->second.size());
    // vector::assign reuses out's capacity; per block the fault count
    // only grows, so steady-state probes never reallocate.
    out.assign(it->second.begin(), it->second.end());
}

std::size_t
OracleFaultDirectory::totalFaults() const
{
    // Enumerate keys, then fold in sorted order: hash order must not
    // reach any reported number, even an order-invariant sum.
    std::vector<std::uint64_t> blocks;
    blocks.reserve(entries.size());
    // aegis-lint: allow(DET-UNORD keys only; the fold below runs in sorted order)
    for (const auto &[block, set] : entries)
        blocks.push_back(block);
    std::sort(blocks.begin(), blocks.end());
    std::size_t n = 0;
    for (std::uint64_t block : blocks)
        n += entries.at(block).size();
    return n;
}

DirectMappedFailCache::DirectMappedFailCache(std::size_t num_sets)
    : sets(num_sets)
{
    AEGIS_REQUIRE(num_sets > 0, "fail cache needs at least one set");
}

std::size_t
DirectMappedFailCache::indexOf(std::uint64_t block, std::uint32_t pos) const
{
    // Cheap mix of block and offset; quality matters little for a
    // direct-mapped model but should avoid striding artifacts.
    std::uint64_t h = block * 0x9e3779b97f4a7c15ull + pos;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 32;
    return static_cast<std::size_t>(h % sets.size());
}

void
DirectMappedFailCache::record(std::uint64_t block, const Fault &fault)
{
    FaultSet &truth = recorded[block];
    bool known = false;
    for (const Fault &f : truth) {
        if (f.pos == fault.pos)
            known = true;
    }
    if (!known)
        truth.push_back(fault);

    Entry &e = sets[indexOf(block, fault.pos)];
    if (e.valid && (e.block != block || e.pos != fault.pos)) {
        ++numEvictions;
        obs::bump(obs::Counter::FailCacheEvictions);
    }
    if (!(e.valid && e.block == block && e.pos == fault.pos)) {
        ++numInsertions;
        obs::bump(obs::Counter::FailCacheInsertions);
    }
    e = Entry{true, block, fault.pos, fault.stuck};
}

void
DirectMappedFailCache::residentInto(std::uint64_t block,
                                    FaultSet &out) const
{
    // A real direct-mapped cache would probe per offset during the
    // pre-write check; the model reconstructs the same result from the
    // recorded ground truth filtered by residency.
    out.clear();
    const auto it = recorded.find(block);
    if (it == recorded.end())
        return;
    for (const Fault &f : it->second) {
        const Entry &e = sets[indexOf(block, f.pos)];
        if (e.valid && e.block == block && e.pos == f.pos)
            out.push_back(Fault{f.pos, e.stuck});
    }
}

FaultSet
DirectMappedFailCache::resident(std::uint64_t block) const
{
    FaultSet out;
    residentInto(block, out);
    return out;
}

FaultSet
DirectMappedFailCache::lookup(std::uint64_t block) const
{
    FaultSet out;
    lookupInto(block, out);
    return out;
}

void
DirectMappedFailCache::lookupInto(std::uint64_t block,
                                  FaultSet &out) const
{
    residentInto(block, out);
    const auto it = recorded.find(block);
    const std::size_t truth = it == recorded.end() ? 0 : it->second.size();
    obs::bump(obs::Counter::FailCacheHits, out.size());
    // A "miss" is a fault this block once recorded that a conflicting
    // insertion has since evicted — the knowledge the scheme lost.
    obs::bump(obs::Counter::FailCacheMisses, truth - out.size());
}

bool
DirectMappedFailCache::complete(std::uint64_t block) const
{
    const auto it = recorded.find(block);
    if (it == recorded.end())
        return true;
    return resident(block).size() == it->second.size();
}

double
DirectMappedFailCache::residency() const
{
    // Same key-enumeration discipline as OracleFaultDirectory::
    // totalFaults: fold in sorted block order, never hash order.
    std::vector<std::uint64_t> blocks;
    blocks.reserve(recorded.size());
    // aegis-lint: allow(DET-UNORD keys only; the fold below runs in sorted order)
    for (const auto &[block, truth] : recorded)
        blocks.push_back(block);
    std::sort(blocks.begin(), blocks.end());
    std::size_t total = 0, resident_faults = 0;
    for (std::uint64_t block : blocks) {
        total += recorded.at(block).size();
        resident_faults += resident(block).size();
    }
    return total == 0 ? 1.0
                      : static_cast<double>(resident_faults) /
                        static_cast<double>(total);
}

} // namespace aegis::pcm
