#include "pcm/start_gap.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace aegis::pcm {

StartGapMapper::StartGapMapper(std::uint64_t num_lines,
                               std::uint64_t gap_interval)
    : lines(num_lines), interval(gap_interval), gap(num_lines),
      wear(num_lines + 1, 0)
{
    AEGIS_REQUIRE(num_lines >= 2,
                  "Start-Gap needs at least two lines");
    AEGIS_REQUIRE(gap_interval >= 1, "gap interval must be positive");
}

std::uint64_t
StartGapMapper::physicalOf(std::uint64_t logical) const
{
    AEGIS_ASSERT(logical < lines, "logical line out of range");
    const std::uint64_t rotated = (logical + start) % lines;
    return rotated >= gap ? rotated + 1 : rotated;
}

void
StartGapMapper::moveGap()
{
    // The line above the gap slides into it; the copy is one write
    // to the gap's current slot.
    ++wear[gap];
    if (gap == 0) {
        gap = lines;
        start = (start + 1) % lines;
    } else {
        --gap;
    }
    ++moves;
}

std::uint64_t
StartGapMapper::onWrite(std::uint64_t logical)
{
    const std::uint64_t p = physicalOf(logical);
    ++wear[p];
    if (++sinceMove >= interval) {
        sinceMove = 0;
        moveGap();
    }
    return p;
}

double
StartGapMapper::wearImbalance() const
{
    std::uint64_t total = 0, peak = 0;
    for (std::uint64_t w : wear) {
        total += w;
        peak = std::max(peak, w);
    }
    if (total == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(wear.size());
    return static_cast<double>(peak) / mean;
}

AddressScrambler::AddressScrambler(std::uint64_t num_lines,
                                   std::uint64_t scramble_key)
    : lines(num_lines), key(scramble_key)
{
    AEGIS_REQUIRE(num_lines >= 2,
                  "scrambler needs at least two lines");
    // Feistel over an even number of bits covering [0, lines).
    auto bits =
        static_cast<std::uint32_t>(std::bit_width(num_lines - 1));
    if (bits % 2)
        ++bits;
    if (bits == 0)
        bits = 2;
    halfBits = bits / 2;
}

std::uint64_t
AddressScrambler::permuteOnce(std::uint64_t value, bool forward) const
{
    const std::uint64_t half_mask = (1ull << halfBits) - 1;
    std::uint64_t left = value >> halfBits;
    std::uint64_t right = value & half_mask;
    const auto round = [&](std::uint64_t r, std::uint32_t i) {
        std::uint64_t x = r + key + i * 0x9e3779b97f4a7c15ull;
        x ^= x >> 13;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 29;
        return x & half_mask;
    };
    if (forward) {
        for (std::uint32_t i = 0; i < 4; ++i) {
            const std::uint64_t next = left ^ round(right, i);
            left = right;
            right = next;
        }
    } else {
        for (std::uint32_t i = 4; i-- > 0;) {
            const std::uint64_t prev = right ^ round(left, i);
            right = left;
            left = prev;
        }
    }
    return (left << halfBits) | right;
}

std::uint64_t
AddressScrambler::scramble(std::uint64_t logical) const
{
    AEGIS_ASSERT(logical < lines, "line index out of range");
    // Cycle-walk: re-permute until the value lands back in range.
    std::uint64_t v = logical;
    do {
        v = permuteOnce(v, true);
    } while (v >= lines);
    return v;
}

std::uint64_t
AddressScrambler::unscramble(std::uint64_t physical) const
{
    AEGIS_ASSERT(physical < lines, "line index out of range");
    std::uint64_t v = physical;
    do {
        v = permuteOnce(v, false);
    } while (v >= lines);
    return v;
}

} // namespace aegis::pcm
