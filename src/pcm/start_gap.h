/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., ISCA 2009).
 *
 * The paper's §3.1 assumes perfect wear leveling "as techniques such
 * as Randomized Region-based Start-Gap ... have demonstrated an
 * effect close to this". This module implements the actual mechanism
 * so the assumption can be checked: N logical lines live in N+1
 * physical lines; a roving gap line moves one slot every psi writes,
 * slowly rotating the logical-to-physical mapping so hot logical
 * lines visit every physical line over time.
 *
 * Mapping (Start S, Gap G over N+1 physical slots):
 *   p' = (logical + S) mod N;  p = p' + 1 if p' >= G else p'
 * Physical slot G is the unused gap. Every psi serviced writes the
 * gap moves down one slot (one line copy); when it wraps, Start
 * advances: after N*(N+1) gap movements every logical line has
 * occupied every physical slot.
 *
 * The optional randomization stage (a fixed invertible address
 * scramble in front of the rotation) defends against adversarial
 * write patterns; we provide a Feistel-style scramble.
 */

#ifndef AEGIS_PCM_START_GAP_H
#define AEGIS_PCM_START_GAP_H

#include <cstdint>
#include <vector>

namespace aegis::pcm {

/** The Start-Gap logical-to-physical line mapper. */
class StartGapMapper
{
  public:
    /**
     * @param lines N logical lines (physical capacity is N+1).
     * @param gap_interval psi: serviced writes between gap moves.
     */
    StartGapMapper(std::uint64_t lines, std::uint64_t gap_interval);

    /** Physical slot of @p logical under the current rotation. */
    std::uint64_t physicalOf(std::uint64_t logical) const;

    /** Current gap slot (holds no data). */
    std::uint64_t gapSlot() const { return gap; }

    std::uint64_t startValue() const { return start; }

    /**
     * Service one write to @p logical: counts wear on the target
     * physical slot and advances the gap every psi writes (the gap
     * move itself costs one extra write to the gap's new location,
     * which is also counted).
     * @return the physical slot the write landed on.
     */
    std::uint64_t onWrite(std::uint64_t logical);

    /** Total gap movements so far. */
    std::uint64_t gapMoves() const { return moves; }

    /** Writes absorbed by each physical slot (wear map). */
    const std::vector<std::uint64_t> &physicalWrites() const
    { return wear; }

    /** Max-over-mean of the physical wear map (1.0 = perfectly
     *  level). Slots with zero writes are included in the mean. */
    double wearImbalance() const;

  private:
    void moveGap();

    std::uint64_t lines;          ///< N
    std::uint64_t interval;       ///< psi
    std::uint64_t start = 0;
    std::uint64_t gap;            ///< in [0, N]
    std::uint64_t sinceMove = 0;
    std::uint64_t moves = 0;
    std::vector<std::uint64_t> wear;
};

/**
 * Static address randomization: a 4-round Feistel network over the
 * line index domain, padded to an even bit width and cycle-walked
 * back into range. Bijective for any @p lines >= 2.
 */
class AddressScrambler
{
  public:
    AddressScrambler(std::uint64_t lines, std::uint64_t key);

    std::uint64_t scramble(std::uint64_t logical) const;

    /** Inverse permutation (for verification). */
    std::uint64_t unscramble(std::uint64_t physical) const;

  private:
    std::uint64_t permuteOnce(std::uint64_t value, bool forward) const;

    std::uint64_t lines;
    std::uint64_t key;
    std::uint32_t halfBits;
};

} // namespace aegis::pcm

#endif // AEGIS_PCM_START_GAP_H
