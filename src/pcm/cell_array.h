/**
 * @file
 * Functional model of a row of PCM cells (one protected data block).
 *
 * Each cell stores one bit and may carry a permanent stuck-at fault:
 * the stuck value is still readable but writes are silently ignored —
 * exactly the failure mode the paper targets. The array counts physical
 * cell programs so schemes' wear behaviour (extra inversion writes,
 * differential writes) can be measured.
 */

#ifndef AEGIS_PCM_CELL_ARRAY_H
#define AEGIS_PCM_CELL_ARRAY_H

#include <cstdint>
#include <vector>

#include "pcm/fault.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::pcm {

/** A fixed-size array of PCM cells with stuck-at fault injection. */
class CellArray
{
  public:
    /** Create @p n healthy cells storing 0. */
    explicit CellArray(std::size_t n);

    std::size_t size() const { return stored.size(); }

    /**
     * Program cell @p i to @p value. Counts one cell write. A stuck
     * cell ignores the new value (this is the physical behaviour; use
     * verification reads to detect it).
     */
    AEGIS_HOT void programBit(std::size_t i, bool value);

    /** Effective value of cell @p i (stuck value if faulty). */
    AEGIS_HOT bool readBit(std::size_t i) const;

    /** Effective values of all cells. Allocates; hot paths should
     *  prefer readInto. */
    BitVector read() const;

    /**
     * Effective values of all cells into @p out, word-parallel:
     * effective = (stored & ~stuckMask) | (stuckValue & stuckMask).
     * Reuses @p out's allocation once its width matches.
     */
    AEGIS_HOT void readInto(BitVector &out) const;

    /**
     * Differential write: reads the current contents and programs only
     * cells whose effective value differs from @p target (the
     * read-before-write wear reduction of [8, 18] in the paper).
     * @return the number of cells actually programmed.
     */
    AEGIS_HOT std::size_t writeDifferential(const BitVector &target);

    /**
     * Blind write: program every cell regardless of current contents.
     * @return the number of cells programmed (== size()).
     */
    AEGIS_HOT std::size_t writeBlind(const BitVector &target);

    /** Make cell @p i permanently stuck at @p stuck_value. */
    void injectFault(std::size_t i, bool stuck_value);

    /** Make cell @p i permanently stuck at its current effective value. */
    void injectFaultAtCurrentValue(std::size_t i);

    /** Remove a fault (test helper; real PCM cannot heal). */
    void clearFault(std::size_t i);

    bool isStuck(std::size_t i) const;

    /** All current faults in position order. */
    FaultSet faults() const;

    std::size_t faultCount() const { return numFaults; }

    /** Total cell programs since construction (wear proxy). */
    std::uint64_t totalCellWrites() const { return cellWrites; }

    /** Cell programs of one cell. */
    std::uint64_t cellWritesAt(std::size_t i) const;

    /**
     * Return the array to its as-constructed state (all cells healthy
     * and storing 0, wear counters zeroed) without releasing any
     * allocation, so simulators can reuse one array across block
     * lives instead of constructing a fresh one.
     */
    void reset();

  private:
    /** The batch container mirrors these planes lane-major and moves
     *  whole lanes in and out (extractLane/depositLane). */
    friend class CellArrayBatch;

    BitVector stored;
    BitVector stuckMask;
    BitVector stuckValue;
    BitVector diffScratch;
    std::vector<std::uint64_t> writesPerCell;
    std::size_t numFaults = 0;
    std::uint64_t cellWrites = 0;
};

} // namespace aegis::pcm

#endif // AEGIS_PCM_CELL_ARRAY_H
