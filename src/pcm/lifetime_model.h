/**
 * @file
 * Cell endurance (lifetime) models.
 *
 * The paper's Monte Carlo assigns each cell a lifetime — the number of
 * physical writes it absorbs before becoming stuck — drawn from a
 * normal distribution with mean 1e8 and 25% coefficient of variation,
 * with no spatial correlation (§3.1). We implement that model plus a
 * few alternatives (lognormal, Weibull, uniform) for sensitivity
 * studies; all are truncated to at least one write.
 */

#ifndef AEGIS_PCM_LIFETIME_MODEL_H
#define AEGIS_PCM_LIFETIME_MODEL_H

#include <memory>
#include <string>

#include "util/rng.h"

namespace aegis::pcm {

/** Interface: draw one cell lifetime (in cell writes). */
class LifetimeModel
{
  public:
    virtual ~LifetimeModel() = default;

    /** Sample one lifetime; always >= 1. */
    virtual double sample(Rng &rng) const = 0;

    /** Distribution mean (for normalization/reporting). */
    virtual double mean() const = 0;

    virtual std::string name() const = 0;
};

/** Normal(mean, cv*mean) truncated below at 1. The paper's model. */
class NormalLifetimeModel : public LifetimeModel
{
  public:
    NormalLifetimeModel(double mean, double cv);

    double sample(Rng &rng) const override;
    double mean() const override { return mu; }
    std::string name() const override;

  private:
    double mu;
    double sigma;
};

/** Lognormal parameterized by the target mean and cv of the lifetime. */
class LogNormalLifetimeModel : public LifetimeModel
{
  public:
    LogNormalLifetimeModel(double mean, double cv);

    double sample(Rng &rng) const override;
    double mean() const override { return targetMean; }
    std::string name() const override;

  private:
    double targetMean;
    double mu;
    double sigma;
};

/** Weibull with shape k, scaled to the target mean. */
class WeibullLifetimeModel : public LifetimeModel
{
  public:
    WeibullLifetimeModel(double mean, double shape);

    double sample(Rng &rng) const override;
    double mean() const override { return targetMean; }
    std::string name() const override;

  private:
    double targetMean;
    double shape;
    double scale;
};

/** Uniform on [mean*(1-spread), mean*(1+spread)]. */
class UniformLifetimeModel : public LifetimeModel
{
  public:
    UniformLifetimeModel(double mean, double spread);

    double sample(Rng &rng) const override;
    double mean() const override { return mu; }
    std::string name() const override;

  private:
    double mu;
    double spread;
};

/**
 * Build a model by name: "normal" (the paper default), "lognormal",
 * "weibull", "uniform". @p mean is the mean lifetime; @p param is the
 * cv (normal/lognormal), shape (weibull) or spread (uniform).
 */
std::unique_ptr<LifetimeModel> makeLifetimeModel(const std::string &kind,
                                                 double mean,
                                                 double param);

/** The paper's default: Normal(1e8, cv 0.25). */
std::unique_ptr<LifetimeModel> makePaperLifetimeModel();

} // namespace aegis::pcm

#endif // AEGIS_PCM_LIFETIME_MODEL_H
