/**
 * @file
 * Common fault vocabulary shared by cell models, recovery schemes and
 * the Monte-Carlo trackers.
 */

#ifndef AEGIS_PCM_FAULT_H
#define AEGIS_PCM_FAULT_H

#include <cstdint>
#include <vector>

namespace aegis::pcm {

/**
 * A permanent stuck-at fault: the cell at bit offset @ref pos inside a
 * data block always reads @ref stuck and ignores writes.
 */
struct Fault
{
    std::uint32_t pos;
    bool stuck;

    friend bool operator==(const Fault &a, const Fault &b)
    { return a.pos == b.pos && a.stuck == b.stuck; }
};

/** The set of known faults of one data block. */
using FaultSet = std::vector<Fault>;

/**
 * Per-write classification of a fault against the data being written
 * (paper §2.4): stuck-at-Wrong means the stuck value differs from the
 * data bit; stuck-at-Right means they agree.
 */
enum class FaultKind { Wrong, Right };

/** Classify @p f against the data bit @p data_bit being written. */
inline FaultKind
classify(const Fault &f, bool data_bit)
{
    return f.stuck != data_bit ? FaultKind::Wrong : FaultKind::Right;
}

} // namespace aegis::pcm

#endif // AEGIS_PCM_FAULT_H
