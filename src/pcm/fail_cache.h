/**
 * @file
 * Fail cache: an SRAM-side record of known stuck-at faults.
 *
 * The paper (following SAFER) assumes an optional direct-mapped cache
 * that stores the location and stuck value of recently detected
 * faults. With the cache, a scheme knows before a write which bits of
 * the target block are faulty and what they are stuck at, enabling the
 * Aegis-rw/-rw-p variants and SAFER-cache. The paper's evaluation
 * always supplies a "sufficiently large" cache; we model both that
 * oracle and a finite direct-mapped cache with conflict evictions so
 * the cost of the assumption can be quantified.
 */

#ifndef AEGIS_PCM_FAIL_CACHE_H
#define AEGIS_PCM_FAIL_CACHE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pcm/fault.h"

namespace aegis::pcm {

/** Interface for fault-knowledge providers. */
class FaultDirectory
{
  public:
    virtual ~FaultDirectory() = default;

    /** Record a fault detected in @p block at @p fault.pos. */
    virtual void record(std::uint64_t block, const Fault &fault) = 0;

    /**
     * Faults known for @p block. An oracle returns all recorded
     * faults; a finite cache may have evicted some.
     */
    virtual FaultSet lookup(std::uint64_t block) const = 0;

    /**
     * lookup() into @p out, reusing its allocation: the pre-write
     * probe sits on every directory-coupled scheme's hot path, so
     * steady-state calls with a warmed @p out must not allocate.
     * Implementations override the default, which copies.
     */
    virtual void lookupInto(std::uint64_t block, FaultSet &out) const
    {
        const FaultSet found = lookup(block);
        out.assign(found.begin(), found.end());
    }

    /** True when every recorded fault of @p block is still present. */
    virtual bool complete(std::uint64_t block) const = 0;
};

/** Ideal, unbounded directory — the paper's "sufficiently large" cache. */
class OracleFaultDirectory : public FaultDirectory
{
  public:
    void record(std::uint64_t block, const Fault &fault) override;
    FaultSet lookup(std::uint64_t block) const override;
    void lookupInto(std::uint64_t block, FaultSet &out) const override;
    bool complete(std::uint64_t) const override { return true; }

    std::size_t totalFaults() const;

  private:
    std::unordered_map<std::uint64_t, FaultSet> entries;
};

/**
 * Direct-mapped fail cache. Each entry holds one fault: the tag is
 * (block address, in-block offset) and the payload is the stuck value.
 * Index = hash(block, offset) % sets. Insertions evict on conflict.
 */
class DirectMappedFailCache : public FaultDirectory
{
  public:
    explicit DirectMappedFailCache(std::size_t num_sets);

    void record(std::uint64_t block, const Fault &fault) override;
    FaultSet lookup(std::uint64_t block) const override;
    void lookupInto(std::uint64_t block, FaultSet &out) const override;
    bool complete(std::uint64_t block) const override;

    std::size_t capacity() const { return sets.size(); }
    std::uint64_t insertions() const { return numInsertions; }
    std::uint64_t evictions() const { return numEvictions; }

    /** Fraction of recorded faults currently resident (global). */
    double residency() const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t block = 0;
        std::uint32_t pos = 0;
        bool stuck = false;
    };

    std::size_t indexOf(std::uint64_t block, std::uint32_t pos) const;

    /** lookup() without the hit/miss accounting, for the internal
     *  completeness/residency bookkeeping queries. */
    FaultSet resident(std::uint64_t block) const;

    /** resident() into @p out without allocating (hot-path core). */
    void residentInto(std::uint64_t block, FaultSet &out) const;

    std::vector<Entry> sets;
    /** Ground truth of what was recorded, for completeness checks. */
    std::unordered_map<std::uint64_t, FaultSet> recorded;
    std::uint64_t numInsertions = 0;
    std::uint64_t numEvictions = 0;
};

} // namespace aegis::pcm

#endif // AEGIS_PCM_FAIL_CACHE_H
