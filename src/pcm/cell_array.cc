#include "pcm/cell_array.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace aegis::pcm {

CellArray::CellArray(std::size_t n)
    : stored(n), stuckMask(n), stuckValue(n), writesPerCell(n, 0)
{
    AEGIS_REQUIRE(n > 0, "CellArray needs at least one cell");
}

AEGIS_HOT void
CellArray::programBit(std::size_t i, bool value)
{
    AEGIS_ASSERT(i < size(), "CellArray::programBit out of range");
    ++writesPerCell[i];
    ++cellWrites;
    if (!stuckMask.get(i))
        stored.set(i, value);
    // A stuck cell absorbs the program pulse but keeps its value.
}

AEGIS_HOT bool
CellArray::readBit(std::size_t i) const
{
    AEGIS_ASSERT(i < size(), "CellArray::readBit out of range");
    return stuckMask.get(i) ? stuckValue.get(i) : stored.get(i);
}

BitVector
CellArray::read() const
{
    BitVector out;
    readInto(out);
    return out;
}

AEGIS_HOT void
CellArray::readInto(BitVector &out) const
{
    // effective = (stored & ~stuck) | (stuckValue & stuck)
    out.assignSelect(stored, stuckValue, stuckMask);
}

AEGIS_HOT std::size_t
CellArray::writeDifferential(const BitVector &target)
{
    AEGIS_REQUIRE(target.size() == size(),
                  "write size must match the cell array");
    // diff = effective ^ target, computed per 64-bit word; every set
    // bit receives one program pulse.
    diffScratch.assignSelect(stored, stuckValue, stuckMask);
    diffScratch.xorAssign(target);
    const std::size_t programmed = diffScratch.popcount();
    diffScratch.forEachSetBit(
        [this](std::size_t i) { ++writesPerCell[i]; });
    cellWrites += programmed;
    // Stuck cells absorb the pulse but keep their value, so only the
    // healthy diff bits land in the stored plane.
    stored.xorAssignAndNot(diffScratch, stuckMask);
    obs::bump(obs::Counter::DiffWrites);
    obs::bump(obs::Counter::DiffBitsFlipped, programmed);
    return programmed;
}

AEGIS_HOT std::size_t
CellArray::writeBlind(const BitVector &target)
{
    AEGIS_REQUIRE(target.size() == size(),
                  "write size must match the cell array");
    for (auto &w : writesPerCell)
        ++w;
    cellWrites += size();
    stored.assignSelect(target, stored, stuckMask);
    obs::bump(obs::Counter::BlindWrites);
    return size();
}

void
CellArray::injectFault(std::size_t i, bool stuck_value)
{
    AEGIS_REQUIRE(i < size(), "fault position out of range");
    if (!stuckMask.get(i))
        ++numFaults;
    stuckMask.set(i, true);
    stuckValue.set(i, stuck_value);
}

void
CellArray::injectFaultAtCurrentValue(std::size_t i)
{
    injectFault(i, readBit(i));
}

void
CellArray::clearFault(std::size_t i)
{
    AEGIS_REQUIRE(i < size(), "fault position out of range");
    if (stuckMask.get(i)) {
        --numFaults;
        // The cell keeps reading the value it was stuck at.
        stored.set(i, stuckValue.get(i));
        stuckMask.set(i, false);
    }
}

bool
CellArray::isStuck(std::size_t i) const
{
    AEGIS_ASSERT(i < size(), "CellArray::isStuck out of range");
    return stuckMask.get(i);
}

FaultSet
CellArray::faults() const
{
    FaultSet out;
    out.reserve(numFaults);
    for (std::size_t i : stuckMask.setBits()) {
        out.push_back(Fault{static_cast<std::uint32_t>(i),
                            stuckValue.get(i)});
    }
    return out;
}

std::uint64_t
CellArray::cellWritesAt(std::size_t i) const
{
    AEGIS_ASSERT(i < size(), "CellArray::cellWritesAt out of range");
    return writesPerCell[i];
}

void
CellArray::reset()
{
    stored.fill(false);
    stuckMask.fill(false);
    stuckValue.fill(false);
    std::fill(writesPerCell.begin(), writesPerCell.end(), 0);
    numFaults = 0;
    cellWrites = 0;
}

} // namespace aegis::pcm
