#include "pcm/cell_array_batch.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/simd/simd.h"

namespace aegis::pcm {

namespace {

constexpr std::size_t kWordBits = BitVector::kWordBits;

std::size_t
wordCount(std::size_t bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

} // namespace

// ---------------------------------------------------------------------------
// LaneMatrix

void
LaneMatrix::resize(std::size_t bits_per_lane, std::size_t lanes)
{
    bitsLane = bits_per_lane;
    laneCount = lanes;
    wordsLane = wordCount(bits_per_lane);
    words.assign(wordsLane * lanes, 0);
}

AEGIS_HOT void
LaneMatrix::loadLane(std::size_t l, const BitVector &bits)
{
    AEGIS_ASSERT(l < laneCount, "LaneMatrix::loadLane lane out of range");
    AEGIS_ASSERT(bits.size() == bitsLane,
                 "LaneMatrix::loadLane width mismatch");
    std::uint64_t *dst = lane(l);
    for (std::size_t wi = 0; wi < wordsLane; ++wi)
        dst[wi] = bits.word(wi);
}

AEGIS_HOT void
LaneMatrix::storeLane(std::size_t l, BitVector &out) const
{
    AEGIS_ASSERT(l < laneCount, "LaneMatrix::storeLane lane out of range");
    if (out.size() != bitsLane)
        out = BitVector(bitsLane);
    const std::uint64_t *src = lane(l);
    for (std::size_t wi = 0; wi < wordsLane; ++wi)
        out.setWord(wi, src[wi]);
}

bool
LaneMatrix::getBit(std::size_t l, std::size_t i) const
{
    AEGIS_ASSERT(l < laneCount && i < bitsLane,
                 "LaneMatrix::getBit out of range");
    return (lane(l)[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

AEGIS_HOT void
LaneMatrix::setBit(std::size_t l, std::size_t i, bool value)
{
    AEGIS_ASSERT(l < laneCount && i < bitsLane,
                 "LaneMatrix::setBit out of range");
    const std::uint64_t mask = 1ull << (i % kWordBits);
    if (value)
        lane(l)[i / kWordBits] |= mask;
    else
        lane(l)[i / kWordBits] &= ~mask;
}

// ---------------------------------------------------------------------------
// CellArrayBatch

CellArrayBatch::CellArrayBatch(std::size_t cells_per_lane,
                               std::size_t lanes, WearTracking wear)
    : cells(cells_per_lane), laneCount(lanes),
      wordsLane(wordCount(cells_per_lane)), wearMode(wear),
      storedW(wordsLane * lanes, 0), stuckMaskW(wordsLane * lanes, 0),
      stuckValueW(wordsLane * lanes, 0), scratchW(wordsLane * lanes, 0),
      wearPerCell(wear == WearTracking::PerCell ? cells_per_lane * lanes
                                                : 0,
                  0),
      laneWrites(lanes, 0), laneFaults(lanes, 0)
{
    AEGIS_REQUIRE(cells_per_lane > 0,
                  "CellArrayBatch needs at least one cell per lane");
    AEGIS_REQUIRE(lanes > 0, "CellArrayBatch needs at least one lane");
}

void
CellArrayBatch::injectFault(std::size_t lane, std::size_t i,
                            bool stuck_value)
{
    AEGIS_REQUIRE(lane < laneCount && i < cells,
                  "CellArrayBatch::injectFault out of range");
    std::uint64_t *mask = stuckMaskW.data() + planeOffset(lane);
    std::uint64_t *value = stuckValueW.data() + planeOffset(lane);
    const std::size_t wi = i / kWordBits;
    const std::uint64_t bit = 1ull << (i % kWordBits);
    if ((mask[wi] & bit) == 0)
        ++laneFaults[lane];
    mask[wi] |= bit;
    if (stuck_value)
        value[wi] |= bit;
    else
        value[wi] &= ~bit;
}

bool
CellArrayBatch::isStuck(std::size_t lane, std::size_t i) const
{
    AEGIS_ASSERT(lane < laneCount && i < cells,
                 "CellArrayBatch::isStuck out of range");
    const std::uint64_t *mask = stuckMaskW.data() + planeOffset(lane);
    return (mask[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

bool
CellArrayBatch::readBit(std::size_t lane, std::size_t i) const
{
    AEGIS_ASSERT(lane < laneCount && i < cells,
                 "CellArrayBatch::readBit out of range");
    const std::size_t wi = planeOffset(lane) + i / kWordBits;
    const std::uint64_t bit = 1ull << (i % kWordBits);
    const std::uint64_t eff = (storedW[wi] & ~stuckMaskW[wi]) |
                              (stuckValueW[wi] & stuckMaskW[wi]);
    return (eff & bit) != 0;
}

FaultSet
CellArrayBatch::faults(std::size_t lane) const
{
    AEGIS_REQUIRE(lane < laneCount,
                  "CellArrayBatch::faults lane out of range");
    FaultSet out;
    out.reserve(laneFaults[lane]);
    const std::uint64_t *mask = stuckMaskW.data() + planeOffset(lane);
    const std::uint64_t *value = stuckValueW.data() + planeOffset(lane);
    for (std::size_t wi = 0; wi < wordsLane; ++wi) {
        std::uint64_t w = mask[wi];
        while (w != 0) {
            const std::size_t b =
                static_cast<std::size_t>(std::countr_zero(w));
            const std::size_t pos = wi * kWordBits + b;
            out.push_back(Fault{static_cast<std::uint32_t>(pos),
                                ((value[wi] >> b) & 1ull) != 0});
            w &= w - 1;
        }
    }
    return out;
}

std::uint64_t
CellArrayBatch::cellWritesAt(std::size_t lane, std::size_t i) const
{
    AEGIS_REQUIRE(wearMode == WearTracking::PerCell,
                  "per-cell wear requires WearTracking::PerCell");
    AEGIS_ASSERT(lane < laneCount && i < cells,
                 "CellArrayBatch::cellWritesAt out of range");
    return wearPerCell[lane * cells + i];
}

void
CellArrayBatch::reset()
{
    std::fill(storedW.begin(), storedW.end(), 0);
    std::fill(stuckMaskW.begin(), stuckMaskW.end(), 0);
    std::fill(stuckValueW.begin(), stuckValueW.end(), 0);
    std::fill(wearPerCell.begin(), wearPerCell.end(), 0);
    std::fill(laneWrites.begin(), laneWrites.end(), 0);
    std::fill(laneFaults.begin(), laneFaults.end(), 0);
}

AEGIS_HOT void
CellArrayBatch::readLaneInto(std::size_t lane, BitVector &out) const
{
    AEGIS_ASSERT(lane < laneCount,
                 "CellArrayBatch::readLaneInto lane out of range");
    if (out.size() != cells)
        out = BitVector(cells);
    const std::size_t off = planeOffset(lane);
    for (std::size_t wi = 0; wi < wordsLane; ++wi) {
        const std::uint64_t m = stuckMaskW[off + wi];
        out.setWord(wi, (storedW[off + wi] & ~m) |
                            (stuckValueW[off + wi] & m));
    }
}

AEGIS_HOT void
CellArrayBatch::readAllInto(LaneMatrix &out) const
{
    if (out.bitsPerLane() != cells || out.lanes() != laneCount) {
        // aegis-lint: allow(HOT-ALLOC grows only until the batch geometry stabilizes; steady state is a no-op)
        out.resize(cells, laneCount);
    }
    simd::selectWords(out.data(), storedW.data(), stuckValueW.data(),
                      stuckMaskW.data(), storedW.size());
}

AEGIS_HOT void
CellArrayBatch::writeDifferentialLanes(const LaneMatrix &targets,
                                       std::size_t first,
                                       std::size_t count,
                                       std::size_t *programmed)
{
    AEGIS_REQUIRE(targets.bitsPerLane() == cells &&
                      targets.lanes() == laneCount,
                  "batch write geometry mismatch");
    AEGIS_REQUIRE(first + count <= laneCount,
                  "batch write lane run out of range");
    if (count == 0)
        return;
    const std::size_t w0 = planeOffset(first);
    const std::size_t nw = count * wordsLane;
    // diff = effective ^ target over the whole contiguous lane run.
    simd::selectWords(scratchW.data() + w0, storedW.data() + w0,
                      stuckValueW.data() + w0, stuckMaskW.data() + w0,
                      nw);
    simd::xorWords(scratchW.data() + w0, targets.data() + w0, nw);
    simd::popcountLanes(scratchW.data() + w0, wordsLane, wordsLane,
                        count, programmed);
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
        total += programmed[i];
        laneWrites[first + i] += programmed[i];
    }
    if (wearMode == WearTracking::PerCell) {
        for (std::size_t i = 0; i < count; ++i) {
            std::uint64_t *wear =
                wearPerCell.data() + (first + i) * cells;
            const std::uint64_t *diff =
                scratchW.data() + planeOffset(first + i);
            for (std::size_t wi = 0; wi < wordsLane; ++wi) {
                std::uint64_t w = diff[wi];
                while (w != 0) {
                    ++wear[wi * kWordBits +
                           static_cast<std::size_t>(std::countr_zero(w))];
                    w &= w - 1;
                }
            }
        }
    }
    // Stuck cells absorb their pulse; only healthy diff bits land.
    simd::xorAndNotWords(storedW.data() + w0, scratchW.data() + w0,
                         stuckMaskW.data() + w0, nw);
    obs::bump(obs::Counter::DiffWrites, count);
    obs::bump(obs::Counter::DiffBitsFlipped, total);
}

AEGIS_HOT void
CellArrayBatch::speculativeMismatches(const LaneMatrix &targets,
                                      std::size_t *out) const
{
    AEGIS_REQUIRE(targets.bitsPerLane() == cells &&
                      targets.lanes() == laneCount,
                  "batch classify geometry mismatch");
    // scratch = select(target, stuckValue, stuckMask) differs from
    // target exactly at stuck cells whose value conflicts, so the
    // per-lane xor-popcount is the would-be verify mismatch count.
    simd::selectWords(scratchW.data(), targets.data(),
                      stuckValueW.data(), stuckMaskW.data(),
                      scratchW.size());
    simd::xorPopcountLanes(scratchW.data(), targets.data(), wordsLane,
                           wordsLane, laneCount, out);
}

void
CellArrayBatch::extractLane(std::size_t lane, CellArray &out) const
{
    AEGIS_REQUIRE(lane < laneCount,
                  "CellArrayBatch::extractLane lane out of range");
    AEGIS_REQUIRE(out.size() == cells,
                  "CellArrayBatch::extractLane size mismatch");
    const std::size_t off = planeOffset(lane);
    for (std::size_t wi = 0; wi < wordsLane; ++wi) {
        out.stored.setWord(wi, storedW[off + wi]);
        out.stuckMask.setWord(wi, stuckMaskW[off + wi]);
        out.stuckValue.setWord(wi, stuckValueW[off + wi]);
    }
    if (wearMode == WearTracking::PerCell) {
        const std::uint64_t *wear = wearPerCell.data() + lane * cells;
        std::copy(wear, wear + cells, out.writesPerCell.begin());
    } else {
        std::fill(out.writesPerCell.begin(), out.writesPerCell.end(),
                  0);
    }
    out.numFaults = laneFaults[lane];
    out.cellWrites = laneWrites[lane];
}

void
CellArrayBatch::depositLane(std::size_t lane, const CellArray &src)
{
    AEGIS_REQUIRE(lane < laneCount,
                  "CellArrayBatch::depositLane lane out of range");
    AEGIS_REQUIRE(src.size() == cells,
                  "CellArrayBatch::depositLane size mismatch");
    const std::size_t off = planeOffset(lane);
    for (std::size_t wi = 0; wi < wordsLane; ++wi) {
        storedW[off + wi] = src.stored.word(wi);
        stuckMaskW[off + wi] = src.stuckMask.word(wi);
        stuckValueW[off + wi] = src.stuckValue.word(wi);
    }
    if (wearMode == WearTracking::PerCell) {
        std::copy(src.writesPerCell.begin(), src.writesPerCell.end(),
                  wearPerCell.begin() +
                      static_cast<std::ptrdiff_t>(lane * cells));
    }
    laneFaults[lane] = static_cast<std::uint32_t>(src.numFaults);
    laneWrites[lane] = src.cellWrites;
}

} // namespace aegis::pcm
