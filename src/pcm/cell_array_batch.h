/**
 * @file
 * Structure-of-arrays batch of PCM data blocks.
 *
 * CellArrayBatch holds N block-lives ("lanes") with each bit plane —
 * stored values, stuck masks, stuck values — packed lane-major into
 * one contiguous word buffer, so batched operations run the SIMD
 * kernels (util/simd/) across many blocks per pass instead of
 * dispatching per-block virtual calls over scattered heap state.
 * Semantics per lane are exactly CellArray's: a stuck cell is readable
 * at its stuck value and silently absorbs program pulses.
 *
 * Wear accounting is selectable: per-lane program totals (the cheap
 * default for throughput work) or full per-cell counters (what
 * CellArray always keeps — the fuzz oracle uses this mode to demand
 * bit-identical wear against the per-block path).
 *
 * extractLane/depositLane bridge a lane to a scratch CellArray so the
 * per-block scheme path can service lanes the batched fast path cannot
 * (see Scheme::writeBatch) without any semantic drift.
 */

#ifndef AEGIS_PCM_CELL_ARRAY_BATCH_H
#define AEGIS_PCM_CELL_ARRAY_BATCH_H

#include <cstdint>
#include <vector>

#include "pcm/cell_array.h"
#include "pcm/fault.h"
#include "util/bit_vector.h"
#include "util/hot.h"

namespace aegis::pcm {

/**
 * Lane-major packed bit planes: @p lanes logical blocks of
 * @p bitsPerLane bits, lane l occupying words
 * [l * laneWords(), (l+1) * laneWords()). Tail bits of a lane's final
 * word are kept zero (the BitVector invariant), so whole-buffer kernel
 * passes are safe. This is the transfer type of the batched scheme
 * API: data in, decoded data out.
 */
class LaneMatrix
{
  public:
    LaneMatrix() = default;

    LaneMatrix(std::size_t bits_per_lane, std::size_t lanes)
    { resize(bits_per_lane, lanes); }

    /** Size for @p lanes lanes of @p bits_per_lane bits; zero-fills. */
    void resize(std::size_t bits_per_lane, std::size_t lanes);

    std::size_t lanes() const { return laneCount; }
    std::size_t bitsPerLane() const { return bitsLane; }
    std::size_t laneWords() const { return wordsLane; }
    std::size_t totalWords() const { return words.size(); }

    std::uint64_t *lane(std::size_t l)
    { return words.data() + l * wordsLane; }

    const std::uint64_t *lane(std::size_t l) const
    { return words.data() + l * wordsLane; }

    std::uint64_t *data() { return words.data(); }
    const std::uint64_t *data() const { return words.data(); }

    /** Copy @p bits (width bitsPerLane()) into lane @p l. */
    AEGIS_HOT void loadLane(std::size_t l, const BitVector &bits);

    /** Copy lane @p l into @p out, reusing its allocation when the
     *  width already matches. */
    AEGIS_HOT void storeLane(std::size_t l, BitVector &out) const;

    /** Bit @p i of lane @p l. */
    bool getBit(std::size_t l, std::size_t i) const;

    /** Set bit @p i of lane @p l to @p value. */
    AEGIS_HOT void setBit(std::size_t l, std::size_t i, bool value);

  private:
    std::size_t bitsLane = 0;
    std::size_t laneCount = 0;
    std::size_t wordsLane = 0;
    std::vector<std::uint64_t> words;
};

/** A batch of N same-sized PCM blocks as structure-of-arrays lanes. */
class CellArrayBatch
{
  public:
    /** Wear-accounting granularity (see file comment). */
    enum class WearTracking
    {
        PerLaneTotal,
        PerCell,
    };

    CellArrayBatch(std::size_t cells_per_lane, std::size_t lanes,
                   WearTracking wear = WearTracking::PerLaneTotal);

    std::size_t lanes() const { return laneCount; }
    std::size_t cellsPerLane() const { return cells; }
    std::size_t laneWords() const { return wordsLane; }
    WearTracking wearTracking() const { return wearMode; }

    /** Make cell @p i of lane @p lane permanently stuck at
     *  @p stuck_value. */
    void injectFault(std::size_t lane, std::size_t i, bool stuck_value);

    bool isStuck(std::size_t lane, std::size_t i) const;

    /** Effective value of cell @p i of lane @p lane. */
    bool readBit(std::size_t lane, std::size_t i) const;

    std::size_t faultCount(std::size_t lane) const
    { return laneFaults[lane]; }

    /** Lane @p lane's current faults in position order. */
    FaultSet faults(std::size_t lane) const;

    /** Total cell programs absorbed by lane @p lane. */
    std::uint64_t cellWrites(std::size_t lane) const
    { return laneWrites[lane]; }

    /** Cell programs of one cell (PerCell tracking only). */
    std::uint64_t cellWritesAt(std::size_t lane, std::size_t i) const;

    /** All lanes back to healthy, zeroed, wear cleared; keeps every
     *  allocation. */
    void reset();

    /** Effective values of lane @p lane into @p out (word-parallel). */
    AEGIS_HOT void readLaneInto(std::size_t lane, BitVector &out) const;

    /** Effective values of every lane into @p out (one kernel pass
     *  over the whole batch). */
    AEGIS_HOT void readAllInto(LaneMatrix &out) const;

    /**
     * Differential write of lanes [first, first + count) from the
     * matching lanes of @p targets: per lane, exactly
     * CellArray::writeDifferential — program the cells whose effective
     * value differs, stuck cells absorb their pulse — executed as
     * kernel passes over the contiguous lane run. programmed[i]
     * receives lane first+i's programmed-cell count; DiffWrites /
     * DiffBitsFlipped are bumped by the same totals the per-block path
     * would produce.
     */
    AEGIS_HOT void writeDifferentialLanes(const LaneMatrix &targets,
                                          std::size_t first,
                                          std::size_t count,
                                          std::size_t *programmed);

    /**
     * out[l] = number of stuck cells of lane l whose stuck value
     * conflicts with the lane's bits in @p targets — the count of
     * verify mismatches a differential write of @p targets would hit.
     * Zero means the lane commits clean in one pass: the speculative
     * classification the batched scheme fast paths are built on.
     */
    AEGIS_HOT void speculativeMismatches(const LaneMatrix &targets,
                                         std::size_t *out) const;

    /**
     * Copy lane @p lane's full state (planes, faults, wear) into
     * @p out, which must have cellsPerLane() cells. In PerLaneTotal
     * mode @p out's per-cell wear counters are zeroed and only the
     * total carries over.
     */
    void extractLane(std::size_t lane, CellArray &out) const;

    /** Copy @p src's full state back into lane @p lane (the inverse
     *  of extractLane). */
    void depositLane(std::size_t lane, const CellArray &src);

  private:
    std::size_t planeOffset(std::size_t lane) const
    { return lane * wordsLane; }

    std::size_t cells;
    std::size_t laneCount;
    std::size_t wordsLane;
    WearTracking wearMode;

    std::vector<std::uint64_t> storedW;
    std::vector<std::uint64_t> stuckMaskW;
    std::vector<std::uint64_t> stuckValueW;
    /** Diff/effective scratch for the batched operations; mutable so
     *  const classification can use it (batches are not shared across
     *  threads, like CellArray). */
    mutable std::vector<std::uint64_t> scratchW;

    std::vector<std::uint64_t> wearPerCell; ///< PerCell mode only
    std::vector<std::uint64_t> laneWrites;
    std::vector<std::uint32_t> laneFaults;
};

} // namespace aegis::pcm

#endif // AEGIS_PCM_CELL_ARRAY_BATCH_H
