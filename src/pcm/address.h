/**
 * @file
 * Address geometry helpers: memory -> pages -> data blocks -> bits.
 *
 * The paper distinguishes data blocks (the protection unit, 128-512
 * bits, a physical row) from memory blocks (the allocation unit, a 4KB
 * OS page or a 256B cache line). This header centralizes the airthmetic
 * between the levels.
 */

#ifndef AEGIS_PCM_ADDRESS_H
#define AEGIS_PCM_ADDRESS_H

#include <cstdint>

#include "util/error.h"

namespace aegis::pcm {

/** Geometry of one simulated PCM memory. */
struct Geometry
{
    /** Bits per protected data block (e.g. 256 or 512). */
    std::uint32_t blockBits = 512;
    /** Bytes per memory (allocation) block, e.g. 4096 for an OS page. */
    std::uint32_t pageBytes = 4096;
    /** Number of pages in the memory (8MB default / 4KB = 2048). */
    std::uint32_t pages = 2048;

    std::uint32_t pageBits() const { return pageBytes * 8; }

    std::uint32_t
    blocksPerPage() const
    {
        AEGIS_REQUIRE(pageBits() % blockBits == 0,
                      "page size must be a multiple of the block size");
        return pageBits() / blockBits;
    }

    std::uint64_t totalBlocks() const
    { return static_cast<std::uint64_t>(pages) * blocksPerPage(); }

    std::uint64_t totalBits() const
    { return static_cast<std::uint64_t>(pages) * pageBits(); }

    /** Global block id of block @p b of page @p p. */
    std::uint64_t
    blockId(std::uint32_t p, std::uint32_t b) const
    {
        AEGIS_ASSERT(p < pages && b < blocksPerPage(),
                     "block address out of range");
        return static_cast<std::uint64_t>(p) * blocksPerPage() + b;
    }

    std::uint32_t pageOfBlock(std::uint64_t block_id) const
    { return static_cast<std::uint32_t>(block_id / blocksPerPage()); }

    std::uint32_t blockInPage(std::uint64_t block_id) const
    { return static_cast<std::uint32_t>(block_id % blocksPerPage()); }
};

} // namespace aegis::pcm

#endif // AEGIS_PCM_ADDRESS_H
