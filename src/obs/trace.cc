#include "obs/trace.h"

namespace aegis::obs {

namespace detail {
bool g_tracingEnabled = false;
} // namespace detail

void
setTracingEnabled(bool on)
{
    detail::g_tracingEnabled = on;
}

} // namespace aegis::obs
