/**
 * @file
 * Deterministic time-series telemetry: named series of fixed-width
 * uint64 rows, embedded in run manifests as the `timeseries` section.
 *
 * Two producers fill these:
 *  - the timed latency sims sample controller totals at fixed
 *    sim-tick intervals (sim/timing/latency_sim.cc) — every column is
 *    simulated state, so the series is byte-identical across --jobs;
 *  - the Monte-Carlo study runners record one row per chunk of the
 *    fixed chunk grid through the process-wide TimelineRecorder here.
 *    Rows are indexed by chunk — never by completion order — so every
 *    column except the advisory wall_ms one is jobs-invariant
 *    (tools/compare_manifests.py --ignore-wallclock skips wall_ms).
 */

#ifndef AEGIS_OBS_TIMELINE_H
#define AEGIS_OBS_TIMELINE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aegis::obs {

/** One named series: column labels plus fixed-width uint64 rows. */
struct TimeSeries
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::uint64_t>> rows;
};

/** True while the Monte-Carlo chunk recorder accepts series. */
bool timelineEnabled();

/** Arm the chunk recorder (clears previously recorded series). */
void armTimeline();

/** Stop recording and drop any unharvested series. */
void disarmTimeline();

/**
 * Open a new chunk series named @p name with one pre-zeroed row per
 * chunk of the sweep's grid. Call from the driving thread between
 * sweeps (the study runners do); rows are then filled concurrently by
 * timelineChunkDone. No-op while the recorder is disarmed.
 */
void timelineBeginSeries(const std::string &name, std::size_t chunks);

/**
 * Fill the open series' row @p chunk from that chunk's accumulated
 * metrics delta: items finished, fault arrivals, program passes,
 * re-partitions (Aegis + SAFER), cells programmed, fail-cache
 * insertions, and an advisory wall-clock column (milliseconds since
 * the series opened; 0 for chunks restored from a checkpoint).
 * Thread-safe; called by the reducer's workers as chunks finish.
 */
void timelineChunkDone(std::size_t chunk, std::uint64_t items,
                       const Metrics &delta, bool restored = false);

/** Harvest every recorded series, in series-open order. */
std::vector<TimeSeries> takeTimelines();

} // namespace aegis::obs

#endif // AEGIS_OBS_TIMELINE_H
