/**
 * @file
 * Rate-limited progress/ETA reporting for long Monte-Carlo sweeps.
 *
 * Globally off by default so library consumers and tests stay silent;
 * the bench harness turns it on unless --quiet is given. Output goes
 * to stderr (carriage-return overwrite on a tty, one line per report
 * otherwise) so it never contaminates table/CSV/JSON output on
 * stdout.
 */

#ifndef AEGIS_OBS_PROGRESS_H
#define AEGIS_OBS_PROGRESS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace aegis::obs {

/** Whether ProgressReporter instances print anything. */
bool progressEnabled();

/** Turn progress reporting on or off process-wide. */
void setProgressEnabled(bool on);

/**
 * Print one whole line to stderr under the same lock the progress
 * reports hold, clearing any half-drawn tty progress line first — so
 * harness messages (cancellation notices, warnings) never tear into
 * or interleave with a concurrent progress report.
 */
void progressLine(const std::string &text);

/**
 * Tracks completion of @p total work items and periodically prints
 * "label: done/total unit (pct), rate/s, ETA" to stderr. tick() is
 * thread-safe and cheap: a relaxed fetch_add plus a rate-limit check;
 * only the thread that wins the rate-limit CAS formats and prints.
 * Nothing is printed for runs shorter than the first report interval.
 */
class ProgressReporter
{
  public:
    ProgressReporter(std::string label, std::uint64_t total,
                     std::string unit = "items");
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Mark @p n items complete; may print a rate-limited report. */
    void tick(std::uint64_t n = 1);

    /**
     * Print the final line now, stating the run's @p outcome
     * ("completed", "cancelled (signal)", "deadline exceeded"...).
     * Idempotent; the destructor closes with "completed" if nobody
     * closed first. Short runs that never reported stay silent.
     */
    void close(const std::string &outcome);

  private:
    void report(std::uint64_t done_now, bool final_line,
                const char *outcome = nullptr) const;

    std::string label;
    std::string unit;
    std::uint64_t total;
    bool enabled;
    bool tty;
    std::chrono::steady_clock::time_point start;
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::int64_t> nextReportMs;
    mutable std::atomic<bool> reported{false};
    std::atomic<bool> closed{false};
};

} // namespace aegis::obs

#endif // AEGIS_OBS_PROGRESS_H
