/**
 * @file
 * Scoped RAII wall-clock tracing: AEGIS_TRACE_SCOPE(obs::Scope::X)
 * times the enclosing block and records it into the metrics registry.
 *
 * Disabled (the default) the constructor is one non-atomic global
 * load and a branch — no clock read, no atomic traffic — so scopes
 * can sit on the scheme hot path (micro_scheme_throughput budget:
 * ≤ 2% regression). Enable with setTracingEnabled(true) or the
 * benches' --trace-timers flag.
 */

#ifndef AEGIS_OBS_TRACE_H
#define AEGIS_OBS_TRACE_H

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace aegis::obs {

namespace detail {
extern bool g_tracingEnabled;
} // namespace detail

/** Whether trace scopes currently record timings. */
inline bool
tracingEnabled()
{
    return detail::g_tracingEnabled;
}

/**
 * Turn trace recording on or off. Flip only while no traced code is
 * running concurrently (e.g. before starting a sweep): the flag is a
 * plain bool precisely so the disabled fast path stays free of atomic
 * traffic.
 */
void setTracingEnabled(bool on);

/**
 * Times its lifetime and records into @ref Scope's TimingStat. When
 * the calling thread additionally has an event-trace track bound
 * (TraceTrackScope, see obs/trace_sink.h) the same scope also emits a
 * span on the track's lane 0 in virtual trace_clock time, so one
 * AEGIS_TRACE_SCOPE feeds both the timer aggregates and the Perfetto
 * trace.
 */
class TraceScope
{
  public:
    explicit TraceScope(Scope s)
    {
        if (tracingEnabled()) {
            scope = s;
            armed = true;
            start = std::chrono::steady_clock::now();
        }
        // Check the plain global first: with no sink armed (every
        // run without --trace-out) this path never touches TLS.
        if (traceSinkArmed() && traceTrackBound()) {
            scope = s;
            sinkArmed = true;
            sinkStart = trace_clock::now();
        }
    }

    ~TraceScope()
    {
        if (armed) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            recordTiming(scope,
                         ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
        }
        if (sinkArmed)
            // Scope names are NUL-terminated string literals (see
            // kScopeNames), so .data() is a valid C string.
            traceSpan(scopeName(scope).data(), 0, sinkStart,
                      trace_clock::now());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    std::chrono::steady_clock::time_point start{};
    std::uint64_t sinkStart = 0;
    Scope scope{};
    bool armed = false;
    bool sinkArmed = false;
};

} // namespace aegis::obs

#define AEGIS_OBS_CONCAT2(a, b) a##b
#define AEGIS_OBS_CONCAT(a, b) AEGIS_OBS_CONCAT2(a, b)

/** Time the rest of the enclosing block under @p scope. */
#define AEGIS_TRACE_SCOPE(scope)                                        \
    const ::aegis::obs::TraceScope AEGIS_OBS_CONCAT(                    \
        aegis_trace_scope_, __LINE__)(scope)

#endif // AEGIS_OBS_TRACE_H
