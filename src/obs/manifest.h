/**
 * @file
 * Schema-versioned JSON run manifests: one machine-readable record
 * per bench invocation (config, seed, build provenance, per-phase
 * wall-clock, every metric, and the exact cells of every printed
 * table). tools/manifest_schema.json describes the format;
 * kSchemaVersion must be bumped on any breaking change.
 */

#ifndef AEGIS_OBS_MANIFEST_H
#define AEGIS_OBS_MANIFEST_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/build_info.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace aegis {
class TablePrinter;
} // namespace aegis

namespace aegis::obs {

/** Ordered key/value list — JSON object with deterministic order. */
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/**
 * One shard's outcome in a sharded sweep, as recorded by the sweep
 * supervisor and embedded in the merged manifest's `shards` section.
 */
struct ShardEntry
{
    std::uint32_t index = 0;
    std::string status;        ///< "ok" | "failed"
    std::uint32_t attempts = 0;///< spawns, including retries
    std::int32_t exitCode = 0; ///< last exit code (negated signal)
    double wallSeconds = 0.0;  ///< advisory: total wall-clock spent
    std::string detail;        ///< last failure reason, "" when ok
};

/** Accumulates one bench run's record and serializes it to JSON. */
class Manifest
{
  public:
    static constexpr int kSchemaVersion = 5;
    static constexpr std::string_view kSchemaName =
        "aegis-bench-manifest";

    /** @p program is the bench binary name, @p about its one-liner. */
    Manifest(std::string program, std::string about);

    /** Override build provenance (defaults to currentBuildInfo()). */
    void setBuildInfo(BuildInfo info);

    /** Pin the timestamp (defaults to wall clock at construction);
     *  golden tests use this for byte-exact output. */
    void setTimestampUtc(std::string iso8601);

    /** Record the master seed. */
    void setSeed(std::uint64_t master_seed);

    /**
     * Outcome of the run: "complete" (default) or "partial" — the
     * sweep was cancelled (signal/deadline) and the manifest records
     * only the work finished before the cancellation.
     */
    void setStatus(std::string value);

    /** Record one parsed flag value (insertion order preserved). */
    void addFlag(const std::string &name, JsonValue v);

    /** Record one experiment configuration (duplicates skipped). */
    void addConfig(JsonObject config);

    /** Record one timed phase of the run. */
    void addPhase(const std::string &name, double seconds);

    /** Capture @p table's title/header/cells verbatim, so the JSON can
     *  never diverge from what was printed. */
    void addTable(const TablePrinter &table);

    /** Set the metric snapshot embedded in the manifest (typically
     *  obs::processTotals() at the end of the run). */
    void setMetrics(const Metrics &m);

    /** Set the per-scope latency percentile estimates written next to
     *  each timer (typically obs::scopeQuantileEstimates()). Written
     *  as zeros when never set. */
    void setTimerQuantiles(
        const std::array<ScopeQuantiles, kScopeCount> &q);

    /** Append one telemetry series to the `timeseries` section. */
    void addTimeSeries(TimeSeries series);

    /** Record the per-shard outcomes of a sharded sweep. The section
     *  is always emitted (empty for single-process runs). */
    void setShards(std::vector<ShardEntry> entries);

    /** Serialize the manifest as pretty-printed JSON. */
    void write(std::ostream &os) const;

    /** write() into a string. */
    std::string toJson() const;

    /** write() into @p path (ConfigError on I/O failure). */
    void writeFile(const std::string &path) const;

  private:
    struct TableData
    {
        std::string title;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };

    std::string program;
    std::string description;
    std::string status = "complete";
    std::string timestampUtc;
    BuildInfo build;
    std::uint64_t seed = 0;
    std::vector<std::pair<std::string, JsonValue>> flags;
    std::vector<JsonObject> configs;
    std::vector<std::pair<std::string, double>> phases;
    std::vector<TableData> tables;
    Metrics metrics;
    std::array<ScopeQuantiles, kScopeCount> timerQuantiles{};
    std::vector<TimeSeries> timeseries;
    std::vector<ShardEntry> shards;
};

} // namespace aegis::obs

#endif // AEGIS_OBS_MANIFEST_H
