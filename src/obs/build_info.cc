#include "obs/build_info.h"

// The build system defines these; the fallbacks keep non-CMake builds
// (e.g. IDE single-file parses) compiling.
#ifndef AEGIS_GIT_SHA
#define AEGIS_GIT_SHA "unknown"
#endif
#ifndef AEGIS_BUILD_TYPE
#define AEGIS_BUILD_TYPE "unknown"
#endif
#ifndef AEGIS_COMPILER_ID
#define AEGIS_COMPILER_ID "unknown"
#endif
#ifndef AEGIS_CXX_FLAGS
#define AEGIS_CXX_FLAGS ""
#endif

namespace aegis::obs {

BuildInfo
currentBuildInfo()
{
    return BuildInfo{AEGIS_GIT_SHA, AEGIS_BUILD_TYPE, AEGIS_COMPILER_ID,
                     AEGIS_CXX_FLAGS};
}

} // namespace aegis::obs
