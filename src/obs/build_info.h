/**
 * @file
 * Build provenance embedded in every run manifest: git SHA, build
 * type, compiler and flags, captured at CMake configure time via
 * compile definitions on the obs library (see src/obs/CMakeLists.txt).
 */

#ifndef AEGIS_OBS_BUILD_INFO_H
#define AEGIS_OBS_BUILD_INFO_H

#include <string>

namespace aegis::obs {

/** Provenance of the running binary. */
struct BuildInfo
{
    std::string gitSha;    ///< commit the tree was configured at
    std::string buildType; ///< CMAKE_BUILD_TYPE
    std::string compiler;  ///< compiler id + version
    std::string flags;     ///< extra compile flags (sanitizers etc.)
};

/** The build info baked into this binary ("unknown" fields when the
 *  tree was configured outside git). */
BuildInfo currentBuildInfo();

} // namespace aegis::obs

#endif // AEGIS_OBS_BUILD_INFO_H
