/**
 * @file
 * Process-wide metrics registry: named event counters, max-gauges and
 * scope timers with a fixed slot per metric.
 *
 * Design constraints (see README "Observability"):
 *  - Allocation-free on the hot path: every metric is a fixed enum
 *    slot in a per-thread slab; bump() is an uncontended relaxed
 *    atomic add on the calling thread's own slab.
 *  - Deterministic aggregation: counter deltas captured around each
 *    Monte-Carlo item (mark()/deltaSince()) are folded into the
 *    parallel reducer's chunk accumulators and merged in chunk order,
 *    exactly like StudyResult::merge — so counter totals are
 *    bit-identical for every --jobs value.
 *  - Whole-process totals (processTotals()) additionally fold slabs
 *    of exited threads, serving benches that bypass the study
 *    runners (micro benches, the fail-cache ablation).
 */

#ifndef AEGIS_OBS_METRICS_H
#define AEGIS_OBS_METRICS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aegis {
class BinaryWriter;
class BinaryReader;
} // namespace aegis

namespace aegis::obs {

/**
 * Event counters. One slot per named event; the name (counterName)
 * doubles as the manifest JSON key. Counters are documented next to
 * the paper mechanism they expose — see README "Observability".
 */
enum class Counter : std::uint32_t {
    GroupInversions,     ///< scheme.group_inversions — groups written inverted (§2.2)
    ProgramPasses,       ///< scheme.program_passes — program+verify iterations
    VerifyMismatches,    ///< scheme.verify_mismatches — verify reads that disagreed
    AegisRepartitions,   ///< aegis.slope_repartitions — slope trials consumed (§2.4)
    SaferRepartitions,   ///< safer.repartitions — SAFER field re-partitions
    RdisSolves,          ///< rdis.solves — invertible-set solver invocations
    RdisRecursionLevels, ///< rdis.recursion_levels — recursion levels entered
    EcpPointersConsumed, ///< ecp.pointers_consumed — correction pointers allocated
    FailCacheHits,       ///< failcache.hits — fault lookups answered from the cache
    FailCacheMisses,     ///< failcache.misses — recorded faults lost to eviction
    FailCacheInsertions, ///< failcache.insertions — entries inserted
    FailCacheEvictions,  ///< failcache.evictions — entries evicted
    DiffWrites,          ///< pcm.diff_writes — differential write operations
    DiffBitsFlipped,     ///< pcm.diff_bits_flipped — cells actually programmed
    BlindWrites,         ///< pcm.blind_writes — non-differential write operations
    LabelingsSampled,    ///< tracker.labelings_sampled — W/R labeling samples drawn
    FaultArrivals,       ///< sim.fault_arrivals — stuck-at fault arrivals simulated
    BlockLives,          ///< sim.block_lives — block Monte-Carlo lives completed
    PageLives,           ///< sim.page_lives — page Monte-Carlo lives completed
    AuditChecks,         ///< audit.checks — invariant checks performed
    AuditViolations,     ///< audit.violations — invariant violations caught
    TimingReads,         ///< timing.reads — read requests retired by the controller
    TimingWrites,        ///< timing.writes — write requests retired by the controller
    TimingVerifyReads,   ///< timing.verify_reads — verify passes occupying a bank
    TimingFailCacheLookups, ///< timing.failcache_lookups — metadata-bus fail-cache lookups
    TimingFailCacheUpdates, ///< timing.failcache_updates — metadata-bus fail-cache updates
    TimingRepartitionStalls,///< timing.repartition_stalls — re-partition search bus stalls
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::TimingRepartitionStalls) + 1;

/** Max-gauges: merge takes the maximum instead of the sum. */
enum class Gauge : std::uint32_t {
    RdisMaxRecursionDepth, ///< rdis.max_recursion_depth — deepest solve
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::RdisMaxRecursionDepth) + 1;

/** Timed scopes recorded by AEGIS_TRACE_SCOPE (see obs/trace.h). */
enum class Scope : std::uint32_t {
    SchemeWrite,   ///< scheme.write — functional-layer block write
    SchemeRead,    ///< scheme.read — functional-layer block read
    SchemeRecover, ///< scheme.recover — re-partition search after a new fault
    BlockLife,     ///< sim.block_life — one block Monte-Carlo life
    PageLife,      ///< sim.page_life — one page Monte-Carlo life
};
inline constexpr std::size_t kScopeCount =
    static_cast<std::size_t>(Scope::PageLife) + 1;

/** Stable manifest key for @p c (e.g. "scheme.group_inversions"). */
std::string_view counterName(Counter c);
/** Stable manifest key for @p g. */
std::string_view gaugeName(Gauge g);
/** Stable manifest key for @p s. */
std::string_view scopeName(Scope s);

/** Aggregated wall-clock for one trace scope. */
struct TimingStat
{
    std::uint64_t count = 0;   ///< scope entries recorded
    std::uint64_t totalNs = 0; ///< summed wall-clock nanoseconds
    std::uint64_t maxNs = 0;   ///< slowest single entry

    void add(std::uint64_t ns);
    void merge(const TimingStat &other);
};

/**
 * A value snapshot of every metric: plain mergeable data, used both
 * as the per-study accumulator carried through StudyResult::merge and
 * as the process-total snapshot embedded in run manifests.
 */
struct Metrics
{
    std::array<std::uint64_t, kCounterCount> counters{};
    std::array<std::uint64_t, kGaugeCount> gauges{};
    std::array<TimingStat, kScopeCount> timers{};

    std::uint64_t counter(Counter c) const
    { return counters[static_cast<std::size_t>(c)]; }
    std::uint64_t gauge(Gauge g) const
    { return gauges[static_cast<std::size_t>(g)]; }
    const TimingStat &timer(Scope s) const
    { return timers[static_cast<std::size_t>(s)]; }

    /** Counters/timers add, gauges take the max. Commutative and
     *  associative, so chunk-order merging is jobs-invariant. */
    void merge(const Metrics &other);

    /** True when every slot is zero. */
    bool empty() const;

    /** Append every slot to @p w (checkpoint blobs). */
    void serialize(BinaryWriter &w) const;
    /** Restore state written by serialize(); false on short input. */
    bool deserialize(BinaryReader &r);
};

/**
 * Percentile estimates for one trace scope, derived from per-thread
 * log2-bucket latency histograms (each estimate is the upper bound of
 * the bucket containing the quantile, so values are exact to within a
 * factor of two and deterministic for a given set of samples). The
 * buckets live only in the slabs — Metrics, checkpoint blobs and the
 * per-item delta path are untouched.
 */
struct ScopeQuantiles
{
    std::uint64_t p50Ns = 0;
    std::uint64_t p95Ns = 0;
    std::uint64_t p99Ns = 0;
};

/**
 * Process-wide percentile estimates per scope (live slabs plus
 * retired threads), for the manifest `timers` section. All zeros for
 * scopes that never recorded (tracing off).
 */
std::array<ScopeQuantiles, kScopeCount> scopeQuantileEstimates();

/** Add @p n to counter @p c on the calling thread's slab. */
void bump(Counter c, std::uint64_t n = 1);

/** Raise gauge @p g to at least @p v on the calling thread's slab. */
void gaugeMax(Gauge g, std::uint64_t v);

/** Record one timed entry of scope @p s (used by TraceScope). */
void recordTiming(Scope s, std::uint64_t ns);

/**
 * A snapshot of the calling thread's slab, for attributing the events
 * of one Monte-Carlo item to its chunk accumulator.
 */
struct ThreadMark
{
    Metrics snapshot;
};

/** Snapshot the calling thread's slab. */
ThreadMark mark();

/**
 * Counters/timers accumulated on the calling thread since @p m.
 * Gauges are excluded (left zero): a running maximum has no exact
 * per-item delta, and including it would break jobs-invariance of
 * study metrics. Gauges still reach processTotals().
 */
Metrics deltaSince(const ThreadMark &m);

/**
 * Totals across every thread that ever recorded a metric: live slabs
 * plus the retained sums of exited threads.
 */
Metrics processTotals();

/**
 * Zero every slab and the retained totals. Only meaningful while no
 * worker threads are recording; intended for test isolation.
 */
void resetProcessMetrics();

} // namespace aegis::obs

#endif // AEGIS_OBS_METRICS_H
