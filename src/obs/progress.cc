#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include <unistd.h>

namespace aegis::obs {

namespace {

/** First report after 1s, then every 500ms: short runs stay silent. */
constexpr std::int64_t kFirstReportMs = 1000;
constexpr std::int64_t kReportIntervalMs = 500;

bool g_progressEnabled = false;

/** Serializes every stderr line this module emits (no tearing). */
std::mutex &
stderrMutex()
{
    static std::mutex mu;
    return mu;
}

std::string
formatDuration(double seconds)
{
    char buf[32];
    if (seconds < 0)
        seconds = 0;
    if (seconds < 60) {
        std::snprintf(buf, sizeof buf, "%.0fs", seconds);
    } else if (seconds < 3600) {
        const int m = static_cast<int>(seconds) / 60;
        const int s = static_cast<int>(seconds) % 60;
        std::snprintf(buf, sizeof buf, "%dm%02ds", m, s);
    } else {
        const int h = static_cast<int>(seconds) / 3600;
        const int m = (static_cast<int>(seconds) % 3600) / 60;
        std::snprintf(buf, sizeof buf, "%dh%02dm", h, m);
    }
    return buf;
}

} // namespace

bool
progressEnabled()
{
    return g_progressEnabled;
}

void
setProgressEnabled(bool on)
{
    g_progressEnabled = on;
}

void
progressLine(const std::string &text)
{
    const std::lock_guard<std::mutex> lock(stderrMutex());
    const bool tty = isatty(2) != 0;
    std::fprintf(stderr, "%s%s\n", tty ? "\r\033[K" : "", text.c_str());
}

ProgressReporter::ProgressReporter(std::string progress_label,
                                   std::uint64_t total_items,
                                   std::string unit_name)
    : label(std::move(progress_label)), unit(std::move(unit_name)),
      total(total_items), enabled(progressEnabled()),
      tty(isatty(2) != 0), start(std::chrono::steady_clock::now()),
      nextReportMs(kFirstReportMs)
{}

ProgressReporter::~ProgressReporter()
{
    close("completed");
}

void
ProgressReporter::close(const std::string &outcome)
{
    if (!enabled || closed.exchange(true, std::memory_order_relaxed))
        return;
    // Close out the line only if an intermediate report was printed;
    // otherwise the run was too short to be worth a message.
    if (!reported.load(std::memory_order_relaxed))
        return;
    report(done.load(std::memory_order_relaxed), true, outcome.c_str());
}

void
ProgressReporter::tick(std::uint64_t n)
{
    if (!enabled)
        return;
    const std::uint64_t done_now =
        done.fetch_add(n, std::memory_order_relaxed) + n;
    const std::int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::int64_t next = nextReportMs.load(std::memory_order_relaxed);
    if (elapsed_ms < next)
        return;
    // One thread wins the CAS and prints; the rest carry on.
    if (!nextReportMs.compare_exchange_strong(
            next, elapsed_ms + kReportIntervalMs,
            std::memory_order_relaxed))
        return;
    report(done_now, false);
}

void
ProgressReporter::report(std::uint64_t done_now, bool final_line,
                         const char *outcome) const
{
    reported.store(true, std::memory_order_relaxed);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double rate =
        elapsed_s > 1e-9 ? static_cast<double>(done_now) / elapsed_s : 0;
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(done_now) /
                        static_cast<double>(total)
                  : 0;
    const std::lock_guard<std::mutex> lock(stderrMutex());
    if (final_line) {
        std::fprintf(stderr,
                     "%s%s: %" PRIu64 "/%" PRIu64 " %s in %s (%.1f/s)"
                     " — %s\n",
                     tty ? "\r\033[K" : "", label.c_str(), done_now,
                     total, unit.c_str(), formatDuration(elapsed_s).c_str(),
                     rate, outcome != nullptr ? outcome : "completed");
        return;
    }
    const double remaining =
        rate > 1e-9 && done_now < total
            ? static_cast<double>(total - done_now) / rate
            : 0;
    std::fprintf(stderr,
                 "%s%s: %" PRIu64 "/%" PRIu64 " %s (%.0f%%), %.1f/s, "
                 "ETA %s%s",
                 tty ? "\r\033[K" : "", label.c_str(), done_now, total,
                 unit.c_str(), pct, rate,
                 formatDuration(remaining).c_str(), tty ? "" : "\n");
    if (tty)
        std::fflush(stderr);
}

} // namespace aegis::obs
