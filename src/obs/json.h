/**
 * @file
 * Minimal JSON emission for run manifests: a tagged scalar value and
 * a streaming writer with indentation and escaping. No external
 * dependencies; output is deterministic (keys are written in
 * insertion order, doubles use shortest round-trip formatting).
 */

#ifndef AEGIS_OBS_JSON_H
#define AEGIS_OBS_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace aegis::obs {

/** A JSON scalar with an explicit type tag. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Uint, Int, Double, String };

    JsonValue() = default;

    static JsonValue null() { return JsonValue{}; }
    static JsonValue boolean(bool v);
    static JsonValue uint(std::uint64_t v);
    static JsonValue integer(std::int64_t v);
    static JsonValue real(double v);
    static JsonValue str(std::string v);

    Kind kind() const { return tag; }

    /** Emit this value as JSON text. */
    void write(std::ostream &os) const;

  private:
    Kind tag = Kind::Null;
    bool b = false;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double d = 0;
    std::string s;
};

/**
 * Streaming JSON writer. The caller drives structure:
 * @code
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("answer").value(std::uint64_t{42});
 *   w.key("items").beginArray().value("a").value("b").endArray();
 *   w.endObject();
 * @endcode
 * Commas, newlines and indentation are handled by the writer.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent_width = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a key/value pair inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(const JsonValue &v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(double v);

    /** Escape and quote @p s per JSON string rules. */
    static std::string quote(std::string_view s);

    /** Shortest round-trip text for @p v ("null" if not finite). */
    static std::string number(double v);

  private:
    struct Level
    {
        bool array;
        bool any;
    };

    void beforeValue();
    void newlineIndent();

    std::ostream &os;
    int indentWidth;
    std::vector<Level> levels;
    bool afterKey = false;
};

} // namespace aegis::obs

#endif // AEGIS_OBS_JSON_H
