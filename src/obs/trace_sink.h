/**
 * @file
 * Structured event-trace sink: span/instant/counter events on virtual
 * simulation time, recorded into fixed-capacity per-track ring
 * buffers and flushed as Chrome trace-event JSON (loadable in
 * Perfetto / chrome://tracing).
 *
 * Design constraints:
 *  - Allocation-free recording: a track's event buffer is allocated
 *    once when the track opens (cold); traceSpan/traceInstant/
 *    traceCounter are index-stores into that buffer. When the buffer
 *    fills, further events are dropped and counted — never resized.
 *  - Deterministic output: events carry simulated ticks (never wall
 *    clock), tracks are keyed by caller-chosen stable ids (the
 *    latency benches use the cell index), and the flush orders tracks
 *    by id and events in recording order. A fixed-seed run therefore
 *    produces a byte-identical trace file for every --jobs value.
 *  - One writer per track: a track is bound to the recording thread
 *    with TraceTrackScope (RAII); the single-threaded latency sims
 *    each own one track. Flush and stats are for after the workers
 *    joined.
 *
 * Event names must be string literals (the sink stores the pointer).
 * The `lane` becomes the Chrome `tid` for spans/instants (one
 * Perfetto row per lane; name lanes with nameTraceLane) and a series
 * suffix for counters ("queue.write" on lane 3 -> "queue.write.b3").
 */

#ifndef AEGIS_OBS_TRACE_SINK_H
#define AEGIS_OBS_TRACE_SINK_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/hot.h"

namespace aegis::obs {

namespace detail {
struct TraceTrack;
extern thread_local TraceTrack *g_boundTrack;
extern thread_local const std::uint64_t *g_boundTicks;
/** Plain (non-TLS) armed flag: the disarmed fast path in TraceScope
 *  must stay one global load + branch, like tracingEnabled(). */
extern bool g_sinkArmed;
} // namespace detail

/** Event kinds a track records (Chrome ph "X", "i" and "C"). */
enum class TraceEventKind : std::uint8_t { Span, Instant, Counter };

/** One recorded event. POD — the ring buffer is a plain array. */
struct TraceEvent
{
    const char *name = "";       ///< static string literal
    std::uint64_t tick = 0;      ///< start (span) or timestamp
    std::uint64_t dur = 0;       ///< span duration, ticks
    std::int64_t value = 0;      ///< counter value
    std::uint32_t lane = 0;      ///< tid (span/instant), suffix (counter)
    TraceEventKind kind = TraceEventKind::Span;
};

/** True while the sink accepts track opens and records events. */
inline bool
traceSinkArmed()
{
    return detail::g_sinkArmed;
}

/**
 * Arm the sink: subsequent openTraceTrack calls allocate a buffer of
 * @p events_per_track events (drops are counted past that). Arm
 * before the worker threads start; arming twice resets the sink.
 */
void armTraceSink(std::size_t events_per_track);

/** Drop every track and stop recording. */
void disarmTraceSink();

/**
 * The virtual clock the sink records against: reads the tick source
 * bound by the innermost TraceTrackScope on this thread (0 when
 * unbound). Mirrors sim_clock's passive shape; aegis-lint's
 * DET-CHRONO rule allowlists it as a virtual clock.
 */
class trace_clock
{
  public:
    static std::uint64_t now()
    {
        return detail::g_boundTicks ? *detail::g_boundTicks : 0;
    }
};

/**
 * Open (or re-open) the track @p track_id and bind it — together with
 * @p tick_source, the recording simulation's tick counter — to the
 * calling thread for the scope's lifetime. Cold: allocates the event
 * buffer on first open. When the sink is disarmed the scope is a
 * no-op and recording stays off.
 */
class TraceTrackScope
{
  public:
    TraceTrackScope(std::uint32_t track_id, const std::string &label,
                    const std::uint64_t *tick_source);
    ~TraceTrackScope();

    TraceTrackScope(const TraceTrackScope &) = delete;
    TraceTrackScope &operator=(const TraceTrackScope &) = delete;

  private:
    detail::TraceTrack *previousTrack;
    const std::uint64_t *previousTicks;
};

/** Record a span [start, end) on the bound track. Allocation-free. */
AEGIS_HOT void traceSpan(const char *name, std::uint32_t lane,
                         std::uint64_t start, std::uint64_t end);

/** Record an instant event on the bound track. Allocation-free. */
AEGIS_HOT void traceInstant(const char *name, std::uint32_t lane,
                            std::uint64_t tick);

/** Record a counter sample on the bound track. Allocation-free. */
AEGIS_HOT void traceCounter(const char *name, std::uint32_t lane,
                            std::uint64_t tick, std::int64_t value);

/** True when a track is bound on this thread (events will record). */
inline bool
traceTrackBound()
{
    return detail::g_boundTrack != nullptr;
}

/**
 * Give @p lane of the calling thread's bound track a Perfetto row
 * name (cold; call once per lane after opening the track).
 */
void nameTraceLane(std::uint32_t lane, const std::string &name);

/** Whole-sink totals (read after the recording threads joined). */
struct TraceSinkStats
{
    std::uint64_t tracks = 0;   ///< tracks opened
    std::uint64_t recorded = 0; ///< events held in buffers
    std::uint64_t dropped = 0;  ///< events lost to full buffers
};

TraceSinkStats traceSinkStats();

/** The sink as Chrome trace-event JSON (tracks ordered by id). */
std::string traceToJson();

/** Write traceToJson() to @p path (ConfigError on I/O failure). */
void writeTraceFile(const std::string &path);

/**
 * Monotonic wall-clock nanoseconds. Lives here (src/obs is
 * DET-exempt) so deterministic layers can attach advisory wall-clock
 * readings — e.g. the Monte-Carlo chunk timelines' wall_ms column —
 * without reading std::chrono themselves.
 */
std::uint64_t monotonicNanos();

} // namespace aegis::obs

#endif // AEGIS_OBS_TRACE_SINK_H
