#include "obs/timeline.h"

#include <mutex>

#include "obs/trace_sink.h"

namespace aegis::obs {

namespace {

/**
 * The chunk-series columns. Fixed so schemas and diff tooling can
 * rely on them; wall_ms is the one advisory (nondeterministic)
 * column and is named so compare_manifests.py can skip it.
 */
const char *const kChunkColumns[] = {
    "chunk",           "items",          "faults",
    "program_passes",  "repartitions",   "cells_programmed",
    "failcache_inserts", "wall_ms",
};
constexpr std::size_t kChunkColumnCount =
    sizeof(kChunkColumns) / sizeof(kChunkColumns[0]);

struct Recorder
{
    std::mutex mu;
    bool armed = false;
    std::vector<TimeSeries> series;
    std::uint64_t seriesStartNs = 0;
};

Recorder &
recorder()
{
    static Recorder *r = new Recorder; // leaked: see metrics.cc
    return *r;
}

} // namespace

bool
timelineEnabled()
{
    return recorder().armed;
}

void
armTimeline()
{
    Recorder &r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.series.clear();
    r.armed = true;
}

void
disarmTimeline()
{
    Recorder &r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.series.clear();
    r.armed = false;
}

void
timelineBeginSeries(const std::string &name, std::size_t chunks)
{
    Recorder &r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (!r.armed)
        return;
    TimeSeries s;
    s.name = name;
    s.columns.assign(kChunkColumns, kChunkColumns + kChunkColumnCount);
    s.rows.assign(chunks,
                  std::vector<std::uint64_t>(kChunkColumnCount, 0));
    r.series.push_back(std::move(s));
    r.seriesStartNs = monotonicNanos();
}

void
timelineChunkDone(std::size_t chunk, std::uint64_t items,
                  const Metrics &delta, bool restored)
{
    Recorder &r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    if (!r.armed || r.series.empty())
        return;
    TimeSeries &s = r.series.back();
    if (chunk >= s.rows.size())
        return;
    std::vector<std::uint64_t> &row = s.rows[chunk];
    row[0] = chunk;
    row[1] = items;
    row[2] = delta.counter(Counter::FaultArrivals);
    row[3] = delta.counter(Counter::ProgramPasses);
    row[4] = delta.counter(Counter::AegisRepartitions) +
             delta.counter(Counter::SaferRepartitions);
    row[5] = delta.counter(Counter::DiffBitsFlipped);
    row[6] = delta.counter(Counter::FailCacheInsertions);
    // Advisory completion stamp: wall-clock ms since the series
    // opened. Restored chunks did their work in an earlier process.
    row[7] = restored ? 0
                      : (monotonicNanos() - r.seriesStartNs) / 1000000;
}

std::vector<TimeSeries>
takeTimelines()
{
    Recorder &r = recorder();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::vector<TimeSeries> out = std::move(r.series);
    r.series.clear();
    return out;
}

} // namespace aegis::obs
