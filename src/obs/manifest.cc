#include "obs/manifest.h"

#include <ctime>
#include <sstream>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/table_printer.h"

namespace aegis::obs {

namespace {

std::string
nowUtcIso8601()
{
    const std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
writeObject(JsonWriter &w, const JsonObject &object)
{
    w.beginObject();
    for (const auto &[k, v] : object)
        w.key(k).value(v);
    w.endObject();
}

std::string
serialized(const JsonObject &object)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    writeObject(w, object);
    return os.str();
}

} // namespace

Manifest::Manifest(std::string program_name, std::string about)
    : program(std::move(program_name)), description(std::move(about)),
      timestampUtc(nowUtcIso8601()), build(currentBuildInfo())
{}

void
Manifest::setBuildInfo(BuildInfo info)
{
    build = std::move(info);
}

void
Manifest::setTimestampUtc(std::string iso8601)
{
    timestampUtc = std::move(iso8601);
}

void
Manifest::setSeed(std::uint64_t master_seed)
{
    seed = master_seed;
}

void
Manifest::setStatus(std::string value)
{
    status = std::move(value);
}

void
Manifest::addFlag(const std::string &name, JsonValue v)
{
    flags.emplace_back(name, std::move(v));
}

void
Manifest::addConfig(JsonObject config)
{
    for (const JsonObject &existing : configs)
        if (serialized(existing) == serialized(config))
            return;
    configs.push_back(std::move(config));
}

void
Manifest::addPhase(const std::string &name, double seconds)
{
    phases.emplace_back(name, seconds);
}

void
Manifest::addTable(const TablePrinter &table)
{
    tables.push_back(
        TableData{table.tableTitle(), table.headerRow(), table.rowData()});
}

void
Manifest::setMetrics(const Metrics &m)
{
    metrics = m;
}

void
Manifest::setTimerQuantiles(
    const std::array<ScopeQuantiles, kScopeCount> &q)
{
    timerQuantiles = q;
}

void
Manifest::addTimeSeries(TimeSeries series)
{
    timeseries.push_back(std::move(series));
}

void
Manifest::setShards(std::vector<ShardEntry> entries)
{
    shards = std::move(entries);
}

void
Manifest::write(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(kSchemaName);
    w.key("schemaVersion")
        .value(static_cast<std::int64_t>(kSchemaVersion));
    w.key("program").value(program);
    w.key("description").value(description);
    w.key("status").value(status);
    w.key("timestampUtc").value(timestampUtc);

    w.key("build").beginObject();
    w.key("gitSha").value(build.gitSha);
    w.key("buildType").value(build.buildType);
    w.key("compiler").value(build.compiler);
    w.key("flags").value(build.flags);
    w.endObject();

    w.key("seed").value(seed);

    w.key("flags").beginObject();
    for (const auto &[name, v] : flags)
        w.key(name).value(v);
    w.endObject();

    w.key("configs").beginArray();
    for (const JsonObject &config : configs)
        writeObject(w, config);
    w.endArray();

    w.key("phases").beginArray();
    for (const auto &[name, seconds] : phases) {
        w.beginObject();
        w.key("name").value(name);
        w.key("seconds").value(seconds);
        w.endObject();
    }
    w.endArray();

    w.key("metrics").beginObject();
    w.key("counters").beginObject();
    for (std::size_t i = 0; i < kCounterCount; ++i)
        w.key(counterName(static_cast<Counter>(i)))
            .value(metrics.counters[i]);
    w.endObject();
    w.key("gauges").beginObject();
    for (std::size_t i = 0; i < kGaugeCount; ++i)
        w.key(gaugeName(static_cast<Gauge>(i))).value(metrics.gauges[i]);
    w.endObject();
    w.key("timers").beginObject();
    for (std::size_t i = 0; i < kScopeCount; ++i) {
        const TimingStat &t = metrics.timers[i];
        const ScopeQuantiles &q = timerQuantiles[i];
        w.key(scopeName(static_cast<Scope>(i))).beginObject();
        w.key("count").value(t.count);
        w.key("totalNs").value(t.totalNs);
        w.key("maxNs").value(t.maxNs);
        w.key("p50Ns").value(q.p50Ns);
        w.key("p95Ns").value(q.p95Ns);
        w.key("p99Ns").value(q.p99Ns);
        w.endObject();
    }
    w.endObject();
    w.endObject();

    w.key("tables").beginArray();
    for (const TableData &t : tables) {
        w.beginObject();
        w.key("title").value(t.title);
        w.key("header").beginArray();
        for (const std::string &cell : t.header)
            w.value(cell);
        w.endArray();
        w.key("rows").beginArray();
        for (const auto &row : t.rows) {
            w.beginArray();
            for (const std::string &cell : row)
                w.value(cell);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("timeseries").beginArray();
    for (const TimeSeries &ts : timeseries) {
        w.beginObject();
        w.key("name").value(ts.name);
        w.key("columns").beginArray();
        for (const std::string &c : ts.columns)
            w.value(c);
        w.endArray();
        w.key("rows").beginArray();
        for (const auto &row : ts.rows) {
            w.beginArray();
            for (const std::uint64_t v : row)
                w.value(v);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    // v5: per-shard outcomes of a sharded sweep. wallSeconds is
    // advisory wall-clock (like phases) — everything else is
    // reproducible given the same fault injection.
    w.key("shards").beginArray();
    for (const ShardEntry &s : shards) {
        w.beginObject();
        w.key("index").value(static_cast<std::uint64_t>(s.index));
        w.key("status").value(s.status);
        w.key("attempts").value(static_cast<std::uint64_t>(s.attempts));
        w.key("exitCode").value(static_cast<std::int64_t>(s.exitCode));
        w.key("wallSeconds").value(s.wallSeconds);
        w.key("detail").value(s.detail);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << "\n";
}

std::string
Manifest::toJson() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

void
Manifest::writeFile(const std::string &path) const
{
    // Crash-safe: a run killed mid-write must never leave a truncated
    // manifest where a valid one is expected.
    const Status s = atomicWriteFile(path, toJson());
    AEGIS_REQUIRE(s.ok(),
                  "failed writing manifest file `" + path + "': " +
                      s.error());
}

} // namespace aegis::obs
