#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "util/serialize.h"

namespace aegis::obs {

namespace {

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "scheme.group_inversions",
    "scheme.program_passes",
    "scheme.verify_mismatches",
    "aegis.slope_repartitions",
    "safer.repartitions",
    "rdis.solves",
    "rdis.recursion_levels",
    "ecp.pointers_consumed",
    "failcache.hits",
    "failcache.misses",
    "failcache.insertions",
    "failcache.evictions",
    "pcm.diff_writes",
    "pcm.diff_bits_flipped",
    "pcm.blind_writes",
    "tracker.labelings_sampled",
    "sim.fault_arrivals",
    "sim.block_lives",
    "sim.page_lives",
    "audit.checks",
    "audit.violations",
    "timing.reads",
    "timing.writes",
    "timing.verify_reads",
    "timing.failcache_lookups",
    "timing.failcache_updates",
    "timing.repartition_stalls",
};

constexpr std::array<std::string_view, kGaugeCount> kGaugeNames = {
    "rdis.max_recursion_depth",
};

constexpr std::array<std::string_view, kScopeCount> kScopeNames = {
    "scheme.write",
    "scheme.read",
    "scheme.recover",
    "sim.block_life",
    "sim.page_life",
};

/**
 * Log2 latency histogram resolution: bucket index is bit_width(ns)
 * (0ns -> 0, [2^(k-1), 2^k-1] -> k), clamped to the last bucket.
 * 64 buckets cover the full uint64 nanosecond range.
 */
constexpr std::size_t kTimingBucketCount = 64;

std::size_t
bucketIndex(std::uint64_t ns)
{
    std::size_t b = 0;
    while (ns >> b)
        ++b;
    return b < kTimingBucketCount ? b : kTimingBucketCount - 1;
}

/** Upper bound of bucket @p b — the quantile estimate reported. */
std::uint64_t
bucketUpperNs(std::size_t b)
{
    return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
}

using ScopeBuckets =
    std::array<std::array<std::uint64_t, kTimingBucketCount>,
               kScopeCount>;

/**
 * Per-thread metric storage. Slots are relaxed atomics so that
 * processTotals() may read a live slab from another thread without a
 * data race; the owning thread's writes stay uncontended (its slab is
 * never written by anyone else), so a bump costs one load + one store
 * on a cache line no other writer touches.
 */
struct Slab
{
    std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
    std::array<std::atomic<std::uint64_t>, kGaugeCount> gauges{};
    struct Timer
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> totalNs{0};
        std::atomic<std::uint64_t> maxNs{0};
    };
    std::array<Timer, kScopeCount> timers{};
    /** Latency histograms backing scopeQuantileEstimates(). Slab-only
     *  state: not part of Metrics, so checkpoint blobs and the
     *  per-item delta path are unchanged. */
    std::array<std::array<std::atomic<std::uint64_t>,
                          kTimingBucketCount>,
               kScopeCount>
        timerBuckets{};
};

Metrics
snapshot(const Slab &slab)
{
    Metrics m;
    for (std::size_t i = 0; i < kCounterCount; ++i)
        m.counters[i] = slab.counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kGaugeCount; ++i)
        m.gauges[i] = slab.gauges[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kScopeCount; ++i) {
        m.timers[i].count =
            slab.timers[i].count.load(std::memory_order_relaxed);
        m.timers[i].totalNs =
            slab.timers[i].totalNs.load(std::memory_order_relaxed);
        m.timers[i].maxNs =
            slab.timers[i].maxNs.load(std::memory_order_relaxed);
    }
    return m;
}

void
zero(Slab &slab)
{
    for (auto &c : slab.counters)
        c.store(0, std::memory_order_relaxed);
    for (auto &g : slab.gauges)
        g.store(0, std::memory_order_relaxed);
    for (auto &t : slab.timers) {
        t.count.store(0, std::memory_order_relaxed);
        t.totalNs.store(0, std::memory_order_relaxed);
        t.maxNs.store(0, std::memory_order_relaxed);
    }
    for (auto &scope : slab.timerBuckets)
        for (auto &b : scope)
            b.store(0, std::memory_order_relaxed);
}

/**
 * All slabs ever created: the live ones plus the folded totals of
 * exited threads (parallelFor joins its workers per call, so their
 * slabs retire into `retired` before the study returns).
 */
struct Registry
{
    std::mutex mu;
    std::vector<Slab *> live;
    Metrics retired;
    ScopeBuckets retiredBuckets{};
};

Registry &
registry()
{
    // Leaked on purpose: worker threads may retire their slabs during
    // static destruction, after a function-local static would already
    // be gone.
    static Registry *r = new Registry;
    return *r;
}

/** Registers the thread's slab for its lifetime. */
struct SlabHandle
{
    Slab slab;

    SlabHandle()
    {
        Registry &r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.live.push_back(&slab);
    }

    ~SlabHandle()
    {
        Registry &r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.retired.merge(snapshot(slab));
        for (std::size_t s = 0; s < kScopeCount; ++s)
            for (std::size_t b = 0; b < kTimingBucketCount; ++b)
                r.retiredBuckets[s][b] +=
                    slab.timerBuckets[s][b].load(
                        std::memory_order_relaxed);
        r.live.erase(std::remove(r.live.begin(), r.live.end(), &slab),
                     r.live.end());
    }
};

Slab &
threadSlab()
{
    thread_local SlabHandle handle;
    return handle.slab;
}

} // namespace

std::string_view
counterName(Counter c)
{
    return kCounterNames[static_cast<std::size_t>(c)];
}

std::string_view
gaugeName(Gauge g)
{
    return kGaugeNames[static_cast<std::size_t>(g)];
}

std::string_view
scopeName(Scope s)
{
    return kScopeNames[static_cast<std::size_t>(s)];
}

void
TimingStat::add(std::uint64_t ns)
{
    ++count;
    totalNs += ns;
    maxNs = std::max(maxNs, ns);
}

void
TimingStat::merge(const TimingStat &other)
{
    count += other.count;
    totalNs += other.totalNs;
    maxNs = std::max(maxNs, other.maxNs);
}

void
Metrics::merge(const Metrics &other)
{
    for (std::size_t i = 0; i < kCounterCount; ++i)
        counters[i] += other.counters[i];
    for (std::size_t i = 0; i < kGaugeCount; ++i)
        gauges[i] = std::max(gauges[i], other.gauges[i]);
    for (std::size_t i = 0; i < kScopeCount; ++i)
        timers[i].merge(other.timers[i]);
}

bool
Metrics::empty() const
{
    for (const std::uint64_t c : counters)
        if (c != 0)
            return false;
    for (const std::uint64_t g : gauges)
        if (g != 0)
            return false;
    for (const TimingStat &t : timers)
        if (t.count != 0)
            return false;
    return true;
}

void
Metrics::serialize(BinaryWriter &w) const
{
    for (const std::uint64_t c : counters)
        w.u64(c);
    for (const std::uint64_t g : gauges)
        w.u64(g);
    for (const TimingStat &t : timers) {
        w.u64(t.count);
        w.u64(t.totalNs);
        w.u64(t.maxNs);
    }
}

bool
Metrics::deserialize(BinaryReader &r)
{
    for (std::uint64_t &c : counters)
        c = r.u64();
    for (std::uint64_t &g : gauges)
        g = r.u64();
    for (TimingStat &t : timers) {
        t.count = r.u64();
        t.totalNs = r.u64();
        t.maxNs = r.u64();
    }
    return r.ok();
}

void
bump(Counter c, std::uint64_t n)
{
    std::atomic<std::uint64_t> &cell =
        threadSlab().counters[static_cast<std::size_t>(c)];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

void
gaugeMax(Gauge g, std::uint64_t v)
{
    std::atomic<std::uint64_t> &cell =
        threadSlab().gauges[static_cast<std::size_t>(g)];
    if (cell.load(std::memory_order_relaxed) < v)
        cell.store(v, std::memory_order_relaxed);
}

void
recordTiming(Scope s, std::uint64_t ns)
{
    Slab &slab = threadSlab();
    Slab::Timer &t = slab.timers[static_cast<std::size_t>(s)];
    t.count.store(t.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    t.totalNs.store(t.totalNs.load(std::memory_order_relaxed) + ns,
                    std::memory_order_relaxed);
    if (t.maxNs.load(std::memory_order_relaxed) < ns)
        t.maxNs.store(ns, std::memory_order_relaxed);
    std::atomic<std::uint64_t> &bucket =
        slab.timerBuckets[static_cast<std::size_t>(s)][bucketIndex(ns)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
}

ThreadMark
mark()
{
    return ThreadMark{snapshot(threadSlab())};
}

Metrics
deltaSince(const ThreadMark &m)
{
    const Metrics now = snapshot(threadSlab());
    Metrics delta;
    for (std::size_t i = 0; i < kCounterCount; ++i)
        delta.counters[i] = now.counters[i] - m.snapshot.counters[i];
    // Gauges stay zero: a running maximum has no exact per-item delta
    // (see header).
    for (std::size_t i = 0; i < kScopeCount; ++i) {
        delta.timers[i].count =
            now.timers[i].count - m.snapshot.timers[i].count;
        delta.timers[i].totalNs =
            now.timers[i].totalNs - m.snapshot.timers[i].totalNs;
        if (delta.timers[i].count > 0)
            delta.timers[i].maxNs = now.timers[i].maxNs;
    }
    return delta;
}

Metrics
processTotals()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    Metrics m = r.retired;
    for (const Slab *slab : r.live)
        m.merge(snapshot(*slab));
    return m;
}

std::array<ScopeQuantiles, kScopeCount>
scopeQuantileEstimates()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    ScopeBuckets folded = r.retiredBuckets;
    for (const Slab *slab : r.live)
        for (std::size_t s = 0; s < kScopeCount; ++s)
            for (std::size_t b = 0; b < kTimingBucketCount; ++b)
                folded[s][b] += slab->timerBuckets[s][b].load(
                    std::memory_order_relaxed);

    std::array<ScopeQuantiles, kScopeCount> out{};
    for (std::size_t s = 0; s < kScopeCount; ++s) {
        std::uint64_t total = 0;
        for (const std::uint64_t n : folded[s])
            total += n;
        if (total == 0)
            continue;
        const auto quantile = [&](std::uint64_t num,
                                  std::uint64_t den) {
            // Rank of the quantile sample, 1-based, rounded up.
            const std::uint64_t rank = (total * num + den - 1) / den;
            std::uint64_t seen = 0;
            for (std::size_t b = 0; b < kTimingBucketCount; ++b) {
                seen += folded[s][b];
                if (seen >= rank)
                    return bucketUpperNs(b);
            }
            return bucketUpperNs(kTimingBucketCount - 1);
        };
        out[s].p50Ns = quantile(50, 100);
        out[s].p95Ns = quantile(95, 100);
        out[s].p99Ns = quantile(99, 100);
    }
    return out;
}

void
resetProcessMetrics()
{
    Registry &r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.retired = Metrics{};
    r.retiredBuckets = ScopeBuckets{};
    for (Slab *slab : r.live)
        zero(*slab);
}

} // namespace aegis::obs
