#include "obs/trace_sink.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/json.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/hot.h"

namespace aegis::obs {

namespace detail {

/**
 * One track: a label, a fixed-capacity event array, and the drop
 * counter. Written by exactly one thread (the TraceTrackScope owner);
 * read at flush time after the writers joined, so the fields are
 * plain integers, not atomics.
 */
struct TraceTrack
{
    std::uint32_t id = 0;
    std::string label;
    std::unique_ptr<TraceEvent[]> events;
    std::size_t count = 0;
    std::size_t capacity = 0;
    std::uint64_t dropped = 0;
    std::vector<std::pair<std::uint32_t, std::string>> laneNames;
};

thread_local TraceTrack *g_boundTrack = nullptr;
thread_local const std::uint64_t *g_boundTicks = nullptr;
bool g_sinkArmed = false;

} // namespace detail

namespace {

using detail::TraceTrack;

/**
 * The sink registry. Tracks are keyed by their caller-chosen stable
 * id (std::map: the flush iterates in id order, so output never
 * depends on open order or thread interleaving). The mutex guards
 * open/flush only — recording touches the thread-bound track without
 * locking.
 */
struct Sink
{
    std::mutex mu;
    std::size_t capacity = 0;
    std::map<std::uint32_t, std::unique_ptr<TraceTrack>> tracks;
};

Sink &
sink()
{
    static Sink *s = new Sink; // leaked: see obs/metrics.cc registry()
    return *s;
}

/** The ring-buffer store every record path funnels through. */
AEGIS_HOT void
record(const TraceEvent &e)
{
    TraceTrack *t = detail::g_boundTrack;
    if (t == nullptr)
        return;
    if (t->count < t->capacity)
        t->events[t->count++] = e;
    else
        ++t->dropped;
}

} // namespace

void
armTraceSink(std::size_t events_per_track)
{
    AEGIS_REQUIRE(events_per_track > 0,
                  "trace sink capacity must be positive");
    Sink &s = sink();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.tracks.clear();
    s.capacity = events_per_track;
    detail::g_sinkArmed = true;
}

void
disarmTraceSink()
{
    Sink &s = sink();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.tracks.clear();
    s.capacity = 0;
    detail::g_sinkArmed = false;
}

TraceTrackScope::TraceTrackScope(std::uint32_t track_id,
                                 const std::string &label,
                                 const std::uint64_t *tick_source)
    : previousTrack(detail::g_boundTrack),
      previousTicks(detail::g_boundTicks)
{
    Sink &s = sink();
    const std::lock_guard<std::mutex> lock(s.mu);
    if (!detail::g_sinkArmed)
        return;
    std::unique_ptr<TraceTrack> &slot = s.tracks[track_id];
    if (slot == nullptr) {
        slot = std::make_unique<TraceTrack>();
        slot->id = track_id;
        slot->label = label;
        slot->capacity = s.capacity;
        slot->events = std::make_unique<TraceEvent[]>(s.capacity);
    }
    detail::g_boundTrack = slot.get();
    detail::g_boundTicks = tick_source;
}

TraceTrackScope::~TraceTrackScope()
{
    detail::g_boundTrack = previousTrack;
    detail::g_boundTicks = previousTicks;
}

AEGIS_HOT void
traceSpan(const char *name, std::uint32_t lane, std::uint64_t start,
          std::uint64_t end)
{
    TraceEvent e;
    e.name = name;
    e.tick = start;
    e.dur = end > start ? end - start : 0;
    e.lane = lane;
    e.kind = TraceEventKind::Span;
    record(e);
}

AEGIS_HOT void
traceInstant(const char *name, std::uint32_t lane, std::uint64_t tick)
{
    TraceEvent e;
    e.name = name;
    e.tick = tick;
    e.lane = lane;
    e.kind = TraceEventKind::Instant;
    record(e);
}

AEGIS_HOT void
traceCounter(const char *name, std::uint32_t lane, std::uint64_t tick,
             std::int64_t value)
{
    TraceEvent e;
    e.name = name;
    e.tick = tick;
    e.value = value;
    e.lane = lane;
    e.kind = TraceEventKind::Counter;
    record(e);
}

void
nameTraceLane(std::uint32_t lane, const std::string &name)
{
    TraceTrack *t = detail::g_boundTrack;
    if (t == nullptr)
        return;
    for (auto &[l, n] : t->laneNames)
        if (l == lane) {
            n = name;
            return;
        }
    t->laneNames.emplace_back(lane, name);
}

TraceSinkStats
traceSinkStats()
{
    Sink &s = sink();
    const std::lock_guard<std::mutex> lock(s.mu);
    TraceSinkStats stats;
    for (const auto &[id, t] : s.tracks) {
        ++stats.tracks;
        stats.recorded += t->count;
        stats.dropped += t->dropped;
    }
    return stats;
}

std::string
traceToJson()
{
    Sink &s = sink();
    const std::lock_guard<std::mutex> lock(s.mu);

    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    // Ticks are virtual time; Chrome interprets ts/dur as
    // microseconds, so one tick renders as one "µs" on the timeline.
    w.key("displayTimeUnit").value("ms");

    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    for (const auto &[id, t] : s.tracks) {
        recorded += t->count;
        dropped += t->dropped;
    }
    w.key("otherData").beginObject();
    w.key("generator").value("aegis trace sink");
    w.key("clock").value("sim ticks (1 tick rendered as 1us)");
    w.key("recordedEvents").value(recorded);
    w.key("droppedEvents").value(dropped);
    w.endObject();

    w.key("traceEvents").beginArray();
    for (const auto &[id, t] : s.tracks) {
        // pid 0 is reserved by some viewers; shift track ids by one.
        const std::uint64_t pid = static_cast<std::uint64_t>(id) + 1;
        w.beginObject();
        w.key("name").value("process_name");
        w.key("ph").value("M");
        w.key("pid").value(pid);
        w.key("args").beginObject();
        w.key("name").value(t->label);
        w.endObject();
        w.endObject();
        for (const auto &[lane, lane_name] : t->laneNames) {
            w.beginObject();
            w.key("name").value("thread_name");
            w.key("ph").value("M");
            w.key("pid").value(pid);
            w.key("tid").value(static_cast<std::uint64_t>(lane));
            w.key("args").beginObject();
            w.key("name").value(lane_name);
            w.endObject();
            w.endObject();
        }
        for (std::size_t i = 0; i < t->count; ++i) {
            const TraceEvent &e = t->events[i];
            w.beginObject();
            switch (e.kind) {
            case TraceEventKind::Span:
                w.key("name").value(e.name);
                w.key("ph").value("X");
                w.key("ts").value(e.tick);
                w.key("dur").value(e.dur);
                w.key("pid").value(pid);
                w.key("tid").value(static_cast<std::uint64_t>(e.lane));
                break;
            case TraceEventKind::Instant:
                w.key("name").value(e.name);
                w.key("ph").value("i");
                w.key("ts").value(e.tick);
                w.key("pid").value(pid);
                w.key("tid").value(static_cast<std::uint64_t>(e.lane));
                w.key("s").value("t");
                break;
            case TraceEventKind::Counter:
                // Counter tracks are per (pid, name): fold the lane
                // into the series name so per-bank series separate.
                w.key("name").value(std::string(e.name) + ".b" +
                                    std::to_string(e.lane));
                w.key("ph").value("C");
                w.key("ts").value(e.tick);
                w.key("pid").value(pid);
                w.key("args").beginObject();
                w.key("value").value(e.value);
                w.endObject();
                break;
            }
            w.endObject();
        }
        if (t->dropped > 0) {
            w.beginObject();
            w.key("name").value("trace.dropped_events");
            w.key("ph").value("C");
            w.key("ts").value(t->count > 0
                                  ? t->events[t->count - 1].tick
                                  : 0);
            w.key("pid").value(pid);
            w.key("args").beginObject();
            w.key("value").value(t->dropped);
            w.endObject();
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

void
writeTraceFile(const std::string &path)
{
    const Status s = atomicWriteFile(path, traceToJson());
    AEGIS_REQUIRE(s.ok(), "failed writing trace file `" + path +
                              "': " + s.error());
}

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace aegis::obs
