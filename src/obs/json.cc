#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace aegis::obs {

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue j;
    j.tag = Kind::Bool;
    j.b = v;
    return j;
}

JsonValue
JsonValue::uint(std::uint64_t v)
{
    JsonValue j;
    j.tag = Kind::Uint;
    j.u = v;
    return j;
}

JsonValue
JsonValue::integer(std::int64_t v)
{
    JsonValue j;
    j.tag = Kind::Int;
    j.i = v;
    return j;
}

JsonValue
JsonValue::real(double v)
{
    JsonValue j;
    j.tag = Kind::Double;
    j.d = v;
    return j;
}

JsonValue
JsonValue::str(std::string v)
{
    JsonValue j;
    j.tag = Kind::String;
    j.s = std::move(v);
    return j;
}

void
JsonValue::write(std::ostream &os) const
{
    switch (tag) {
    case Kind::Null:
        os << "null";
        break;
    case Kind::Bool:
        os << (b ? "true" : "false");
        break;
    case Kind::Uint:
        os << u;
        break;
    case Kind::Int:
        os << i;
        break;
    case Kind::Double:
        os << JsonWriter::number(d);
        break;
    case Kind::String:
        os << JsonWriter::quote(s);
        break;
    }
}

JsonWriter::JsonWriter(std::ostream &out, int indent_width)
    : os(out), indentWidth(indent_width)
{}

std::string
JsonWriter::quote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char raw : s) {
        const auto ch = static_cast<unsigned char>(raw);
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (ch < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(raw);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    const std::to_chars_result res =
        std::to_chars(buf, buf + sizeof buf, v);
    std::string out(buf, res.ptr);
    // Bare integers are valid JSON but keep a ".0" so consumers see a
    // float where the producer meant one.
    if (out.find_first_of(".eEnN") == std::string::npos)
        out += ".0";
    return out;
}

void
JsonWriter::newlineIndent()
{
    os << '\n';
    for (std::size_t i = 0; i < levels.size(); ++i)
        for (int k = 0; k < indentWidth; ++k)
            os << ' ';
}

void
JsonWriter::beforeValue()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (levels.empty())
        return; // top-level value
    Level &level = levels.back();
    AEGIS_ASSERT(level.array, "object member written without key()");
    if (level.any)
        os << ',';
    level.any = true;
    newlineIndent();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    AEGIS_ASSERT(!levels.empty() && !levels.back().array,
                 "key() outside of an object");
    AEGIS_ASSERT(!afterKey, "key() immediately after key()");
    if (levels.back().any)
        os << ',';
    levels.back().any = true;
    newlineIndent();
    os << quote(k) << ": ";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os << '{';
    levels.push_back(Level{false, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    AEGIS_ASSERT(!levels.empty() && !levels.back().array,
                 "endObject() without beginObject()");
    const bool any = levels.back().any;
    levels.pop_back();
    if (any)
        newlineIndent();
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os << '[';
    levels.push_back(Level{true, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    AEGIS_ASSERT(!levels.empty() && levels.back().array,
                 "endArray() without beginArray()");
    const bool any = levels.back().any;
    levels.pop_back();
    if (any)
        newlineIndent();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const JsonValue &v)
{
    beforeValue();
    v.write(os);
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os << quote(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    os << number(v);
    return *this;
}

} // namespace aegis::obs
