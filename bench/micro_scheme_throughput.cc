/**
 * @file
 * google-benchmark microbenchmarks: write- and read-path latency of
 * each recovery scheme on the functional layer, with and without
 * faults, plus masked-vs-naive micro-comparisons of the word-parallel
 * data plane (group-mask XOR inversion vs the per-bit groupOf scan).
 * These are software-model costs (useful for comparing the schemes'
 * algorithmic complexity), not PCM latencies.
 */

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "aegis/aegis_scheme.h"
#include "aegis/factory.h"
#include "aegis/partition.h"
#include "pcm/cell_array_batch.h"
#include "pcm/fail_cache.h"
#include "scheme/batch.h"
#include "scheme/inversion_driver.h"
#include "sim/device.h"
#include "util/rng.h"

namespace {

using namespace aegis;

void
writeLoop(benchmark::State &state, const std::string &name,
          std::size_t block_bits, std::size_t faults)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    auto scheme = core::makeScheme(name, block_bits);
    scheme->attachDirectory(dir.get(), 0);
    pcm::CellArray cells(block_bits);
    Rng rng(42);

    for (std::size_t f = 0; f < faults; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(
                rng.nextBounded(block_bits));
        } while (cells.isStuck(pos));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(0, {pos, stuck});
    }

    std::vector<BitVector> patterns;
    for (int i = 0; i < 64; ++i)
        patterns.push_back(BitVector::random(block_bits, rng));

    std::size_t i = 0;
    for (auto _ : state) {
        const auto outcome =
            scheme->write(cells, patterns[i++ % patterns.size()]);
        benchmark::DoNotOptimize(outcome.ok);
        if (!outcome.ok)
            state.SkipWithError("block died during benchmark");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_Write(benchmark::State &state, const std::string &name,
         std::size_t faults)
{
    writeLoop(state, name, 512, faults);
}

/** Decode latency through the allocation-free readInto hot path. */
void
BM_Read(benchmark::State &state, const std::string &name,
        std::size_t faults)
{
    constexpr std::size_t kBits = 512;
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    auto scheme = core::makeScheme(name, kBits);
    scheme->attachDirectory(dir.get(), 0);
    pcm::CellArray cells(kBits);
    Rng rng(42);

    for (std::size_t f = 0; f < faults; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(kBits));
        } while (cells.isStuck(pos));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(0, {pos, stuck});
    }
    if (!scheme->write(cells, BitVector::random(kBits, rng)).ok) {
        state.SkipWithError("seed write failed");
        return;
    }

    BitVector out;
    for (auto _ : state) {
        scheme->readInto(cells, out);
        benchmark::DoNotOptimize(out.words().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * The group-inversion composition step in isolation: word-parallel
 * mask XOR (the production path) vs the retained per-bit groupOf
 * reference, on the 9x61 formation with half the groups inverted.
 */
void
groupInversionLoop(benchmark::State &state, bool masked)
{
    constexpr std::size_t kBits = 512;
    core::AegisPartitionPolicy policy(core::Partition(9, 61, kBits));
    Rng rng(42);
    const BitVector data = BitVector::random(kBits, rng);
    BitVector inv(policy.groupCount());
    for (std::size_t g = 0; g < inv.size(); g += 2)
        inv.set(g, true);

    BitVector out;
    for (auto _ : state) {
        if (masked) {
            scheme::applyGroupInversionInto(data, policy, inv, out);
            benchmark::DoNotOptimize(out.words().data());
        } else {
            BitVector naive =
                scheme::applyGroupInversion(data, policy, inv);
            benchmark::DoNotOptimize(naive.words().data());
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_GroupInversionMasked(benchmark::State &state)
{
    groupInversionLoop(state, true);
}

void
BM_GroupInversionNaive(benchmark::State &state)
{
    groupInversionLoop(state, false);
}

/** Raw cell-array paths: word-parallel differential write + readInto. */
void
BM_CellArrayDiffWrite(benchmark::State &state)
{
    constexpr std::size_t kBits = 512;
    pcm::CellArray cells(kBits);
    Rng rng(42);
    std::vector<BitVector> patterns;
    for (int i = 0; i < 64; ++i)
        patterns.push_back(BitVector::random(kBits, rng));

    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cells.writeDifferential(patterns[i++ % patterns.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_CellArrayReadInto(benchmark::State &state)
{
    constexpr std::size_t kBits = 512;
    pcm::CellArray cells(kBits);
    Rng rng(42);
    for (int f = 0; f < 8; ++f)
        cells.injectFault(rng.nextBounded(kBits), rng.nextBool());
    cells.writeDifferential(BitVector::random(kBits, rng));

    BitVector out;
    for (auto _ : state) {
        cells.readInto(out);
        benchmark::DoNotOptimize(out.words().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * Batched SoA data plane: one Scheme::writeBatch / readBatch call
 * drives kBatchLanes block-lives per iteration, so per-block cost is
 * cpu_ns_per_iter / kBatchLanes (items_processed counts blocks and
 * makes items/sec directly comparable to BM_Write / BM_Read).
 */
constexpr std::size_t kBatchLanes = 16;

struct BatchRig
{
    std::shared_ptr<pcm::OracleFaultDirectory> dir;
    std::unique_ptr<scheme::Scheme> proto;
    pcm::CellArrayBatch cells;
    scheme::BatchWorkspace ws;
    std::vector<pcm::LaneMatrix> patterns;
    std::vector<scheme::WriteOutcome> outcomes;

    BatchRig(const std::string &name, std::size_t block_bits,
             std::size_t faults_per_lane)
        : dir(std::make_shared<pcm::OracleFaultDirectory>()),
          proto(core::makeScheme(name, block_bits)),
          cells(block_bits, kBatchLanes,
                pcm::CellArrayBatch::WearTracking::PerLaneTotal),
          outcomes(kBatchLanes)
    {
        ws.bind(*proto, kBatchLanes);
        Rng rng(42);
        for (std::size_t l = 0; l < kBatchLanes; ++l) {
            ws.laneScheme(l)->attachDirectory(dir.get(), l);
            for (std::size_t f = 0; f < faults_per_lane; ++f) {
                std::uint32_t pos;
                do {
                    pos = static_cast<std::uint32_t>(
                        rng.nextBounded(block_bits));
                } while (cells.isStuck(l, pos));
                const bool stuck = rng.nextBool();
                cells.injectFault(l, pos, stuck);
                dir->record(l, {pos, stuck});
            }
        }
        for (int i = 0; i < 8; ++i) {
            patterns.emplace_back(block_bits, kBatchLanes);
            for (std::size_t l = 0; l < kBatchLanes; ++l)
                patterns.back().loadLane(
                    l, BitVector::random(block_bits, rng));
        }
    }
};

void
BM_BatchWrite(benchmark::State &state, const std::string &name,
              std::size_t faults_per_lane)
{
    BatchRig rig(name, 512, faults_per_lane);
    std::size_t i = 0;
    for (auto _ : state) {
        rig.proto->writeBatch(rig.cells,
                              rig.patterns[i++ % rig.patterns.size()],
                              rig.outcomes, rig.ws);
        benchmark::DoNotOptimize(rig.outcomes.data());
        for (const auto &o : rig.outcomes) {
            if (!o.ok)
                state.SkipWithError("block died during benchmark");
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kBatchLanes));
}

void
BM_BatchRead(benchmark::State &state, const std::string &name,
             std::size_t faults_per_lane)
{
    BatchRig rig(name, 512, faults_per_lane);
    rig.proto->writeBatch(rig.cells, rig.patterns[0], rig.outcomes,
                          rig.ws);
    for (const auto &o : rig.outcomes) {
        if (!o.ok) {
            state.SkipWithError("seed write failed");
            return;
        }
    }
    pcm::LaneMatrix out;
    for (auto _ : state) {
        rig.proto->readBatch(rig.cells, out, rig.ws);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kBatchLanes));
}

} // namespace

BENCHMARK_CAPTURE(BM_Write, aegis_23x23_clean, "aegis-23x23", 0u);
BENCHMARK_CAPTURE(BM_Write, aegis_23x23_4faults, "aegis-23x23", 4u);
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_clean, "aegis-9x61", 0u);
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_8faults, "aegis-9x61", 8u);
// Auditor overhead: the same write path with every runtime invariant
// check enabled (read-back, metadata round-trip, budget accounting).
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_audit_8faults,
                  "aegis-9x61+audit", 8u);
BENCHMARK_CAPTURE(BM_Write, aegis_rw_23x23_4faults, "aegis-rw-23x23",
                  4u);
BENCHMARK_CAPTURE(BM_Write, aegis_rw_p4_23x23_4faults,
                  "aegis-rw-p4-23x23", 4u);
BENCHMARK_CAPTURE(BM_Write, safer32_clean, "safer32", 0u);
BENCHMARK_CAPTURE(BM_Write, safer32_4faults, "safer32", 4u);
BENCHMARK_CAPTURE(BM_Write, ecp6_4faults, "ecp6", 4u);
BENCHMARK_CAPTURE(BM_Write, rdis3_2faults, "rdis3", 2u);
BENCHMARK_CAPTURE(BM_Write, hamming_2faults, "hamming", 2u);

BENCHMARK_CAPTURE(BM_Read, aegis_9x61_8faults, "aegis-9x61", 8u);
BENCHMARK_CAPTURE(BM_Read, aegis_rw_23x23_4faults, "aegis-rw-23x23",
                  4u);
BENCHMARK_CAPTURE(BM_Read, aegis_rw_p4_23x23_4faults,
                  "aegis-rw-p4-23x23", 4u);
BENCHMARK_CAPTURE(BM_Read, safer32_4faults, "safer32", 4u);

// Batched SoA rows mirror the per-block captures (ns per block is
// cpu_ns_per_iter / 16): the word-parallel overrides, the cache
// variants that delegate to the default per-lane loop, and two
// default-loop schemes as the no-override reference.
BENCHMARK_CAPTURE(BM_BatchWrite, aegis_23x23_clean, "aegis-23x23", 0u);
BENCHMARK_CAPTURE(BM_BatchWrite, aegis_23x23_4faults, "aegis-23x23",
                  4u);
BENCHMARK_CAPTURE(BM_BatchWrite, aegis_9x61_clean, "aegis-9x61", 0u);
BENCHMARK_CAPTURE(BM_BatchWrite, aegis_9x61_8faults, "aegis-9x61", 8u);
BENCHMARK_CAPTURE(BM_BatchWrite, aegis_rw_23x23_4faults,
                  "aegis-rw-23x23", 4u);
BENCHMARK_CAPTURE(BM_BatchWrite, safer32_clean, "safer32", 0u);
BENCHMARK_CAPTURE(BM_BatchWrite, safer32_4faults, "safer32", 4u);
BENCHMARK_CAPTURE(BM_BatchWrite, ecp6_4faults, "ecp6", 4u);
BENCHMARK_CAPTURE(BM_BatchWrite, none_clean, "none", 0u);
BENCHMARK_CAPTURE(BM_BatchWrite, rdis3_2faults, "rdis3", 2u);
// One fault per lane: across 16 lanes the two-fault draw used by the
// per-block row lands an uncorrectable SEC pair in some lane.
BENCHMARK_CAPTURE(BM_BatchWrite, hamming_1fault, "hamming", 1u);

BENCHMARK_CAPTURE(BM_BatchRead, aegis_9x61_8faults, "aegis-9x61", 8u);
BENCHMARK_CAPTURE(BM_BatchRead, aegis_rw_23x23_4faults,
                  "aegis-rw-23x23", 4u);
// 8 faults rather than the per-block row's 4: more set inversion
// groups per lane keeps the row's magnitude large enough for the
// 25%-tolerance perf gate on noisy shared runners.
BENCHMARK_CAPTURE(BM_BatchRead, safer32_8faults, "safer32", 8u);

BENCHMARK(BM_GroupInversionMasked);
BENCHMARK(BM_GroupInversionNaive);
BENCHMARK(BM_CellArrayDiffWrite);
BENCHMARK(BM_CellArrayReadInto);

int
main(int argc, char **argv)
{
    return aegis::bench::microMain(
        argc, argv, "micro_scheme_throughput",
        "Write-path latency of each recovery scheme (functional layer)");
}
