/**
 * @file
 * google-benchmark microbenchmarks: write- and read-path latency of
 * each recovery scheme on the functional layer, with and without
 * faults, plus masked-vs-naive micro-comparisons of the word-parallel
 * data plane (group-mask XOR inversion vs the per-bit groupOf scan).
 * These are software-model costs (useful for comparing the schemes'
 * algorithmic complexity), not PCM latencies.
 */

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "aegis/aegis_scheme.h"
#include "aegis/factory.h"
#include "aegis/partition.h"
#include "pcm/fail_cache.h"
#include "scheme/inversion_driver.h"
#include "sim/device.h"
#include "util/rng.h"

namespace {

using namespace aegis;

void
writeLoop(benchmark::State &state, const std::string &name,
          std::size_t block_bits, std::size_t faults)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    auto scheme = core::makeScheme(name, block_bits);
    scheme->attachDirectory(dir.get(), 0);
    pcm::CellArray cells(block_bits);
    Rng rng(42);

    for (std::size_t f = 0; f < faults; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(
                rng.nextBounded(block_bits));
        } while (cells.isStuck(pos));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(0, {pos, stuck});
    }

    std::vector<BitVector> patterns;
    for (int i = 0; i < 64; ++i)
        patterns.push_back(BitVector::random(block_bits, rng));

    std::size_t i = 0;
    for (auto _ : state) {
        const auto outcome =
            scheme->write(cells, patterns[i++ % patterns.size()]);
        benchmark::DoNotOptimize(outcome.ok);
        if (!outcome.ok)
            state.SkipWithError("block died during benchmark");
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_Write(benchmark::State &state, const std::string &name,
         std::size_t faults)
{
    writeLoop(state, name, 512, faults);
}

/** Decode latency through the allocation-free readInto hot path. */
void
BM_Read(benchmark::State &state, const std::string &name,
        std::size_t faults)
{
    constexpr std::size_t kBits = 512;
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    auto scheme = core::makeScheme(name, kBits);
    scheme->attachDirectory(dir.get(), 0);
    pcm::CellArray cells(kBits);
    Rng rng(42);

    for (std::size_t f = 0; f < faults; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(kBits));
        } while (cells.isStuck(pos));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(0, {pos, stuck});
    }
    if (!scheme->write(cells, BitVector::random(kBits, rng)).ok) {
        state.SkipWithError("seed write failed");
        return;
    }

    BitVector out;
    for (auto _ : state) {
        scheme->readInto(cells, out);
        benchmark::DoNotOptimize(out.words().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/**
 * The group-inversion composition step in isolation: word-parallel
 * mask XOR (the production path) vs the retained per-bit groupOf
 * reference, on the 9x61 formation with half the groups inverted.
 */
void
groupInversionLoop(benchmark::State &state, bool masked)
{
    constexpr std::size_t kBits = 512;
    core::AegisPartitionPolicy policy(core::Partition(9, 61, kBits));
    Rng rng(42);
    const BitVector data = BitVector::random(kBits, rng);
    BitVector inv(policy.groupCount());
    for (std::size_t g = 0; g < inv.size(); g += 2)
        inv.set(g, true);

    BitVector out;
    for (auto _ : state) {
        if (masked) {
            scheme::applyGroupInversionInto(data, policy, inv, out);
            benchmark::DoNotOptimize(out.words().data());
        } else {
            BitVector naive =
                scheme::applyGroupInversion(data, policy, inv);
            benchmark::DoNotOptimize(naive.words().data());
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_GroupInversionMasked(benchmark::State &state)
{
    groupInversionLoop(state, true);
}

void
BM_GroupInversionNaive(benchmark::State &state)
{
    groupInversionLoop(state, false);
}

/** Raw cell-array paths: word-parallel differential write + readInto. */
void
BM_CellArrayDiffWrite(benchmark::State &state)
{
    constexpr std::size_t kBits = 512;
    pcm::CellArray cells(kBits);
    Rng rng(42);
    std::vector<BitVector> patterns;
    for (int i = 0; i < 64; ++i)
        patterns.push_back(BitVector::random(kBits, rng));

    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cells.writeDifferential(patterns[i++ % patterns.size()]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void
BM_CellArrayReadInto(benchmark::State &state)
{
    constexpr std::size_t kBits = 512;
    pcm::CellArray cells(kBits);
    Rng rng(42);
    for (int f = 0; f < 8; ++f)
        cells.injectFault(rng.nextBounded(kBits), rng.nextBool());
    cells.writeDifferential(BitVector::random(kBits, rng));

    BitVector out;
    for (auto _ : state) {
        cells.readInto(out);
        benchmark::DoNotOptimize(out.words().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(BM_Write, aegis_23x23_clean, "aegis-23x23", 0u);
BENCHMARK_CAPTURE(BM_Write, aegis_23x23_4faults, "aegis-23x23", 4u);
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_clean, "aegis-9x61", 0u);
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_8faults, "aegis-9x61", 8u);
// Auditor overhead: the same write path with every runtime invariant
// check enabled (read-back, metadata round-trip, budget accounting).
BENCHMARK_CAPTURE(BM_Write, aegis_9x61_audit_8faults,
                  "aegis-9x61+audit", 8u);
BENCHMARK_CAPTURE(BM_Write, aegis_rw_23x23_4faults, "aegis-rw-23x23",
                  4u);
BENCHMARK_CAPTURE(BM_Write, aegis_rw_p4_23x23_4faults,
                  "aegis-rw-p4-23x23", 4u);
BENCHMARK_CAPTURE(BM_Write, safer32_clean, "safer32", 0u);
BENCHMARK_CAPTURE(BM_Write, safer32_4faults, "safer32", 4u);
BENCHMARK_CAPTURE(BM_Write, ecp6_4faults, "ecp6", 4u);
BENCHMARK_CAPTURE(BM_Write, rdis3_2faults, "rdis3", 2u);
BENCHMARK_CAPTURE(BM_Write, hamming_2faults, "hamming", 2u);

BENCHMARK_CAPTURE(BM_Read, aegis_9x61_8faults, "aegis-9x61", 8u);
BENCHMARK_CAPTURE(BM_Read, aegis_rw_23x23_4faults, "aegis-rw-23x23",
                  4u);
BENCHMARK_CAPTURE(BM_Read, aegis_rw_p4_23x23_4faults,
                  "aegis-rw-p4-23x23", 4u);
BENCHMARK_CAPTURE(BM_Read, safer32_4faults, "safer32", 4u);

BENCHMARK(BM_GroupInversionMasked);
BENCHMARK(BM_GroupInversionNaive);
BENCHMARK(BM_CellArrayDiffWrite);
BENCHMARK(BM_CellArrayReadInto);

int
main(int argc, char **argv)
{
    return aegis::bench::microMain(
        argc, argv, "micro_scheme_throughput",
        "Write-path latency of each recovery scheme (functional layer)");
}
