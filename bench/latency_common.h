/**
 * @file
 * Shared plumbing for the timed latency benches (bench/latency_*):
 * translate the Timed flag set into a LatencySimConfig, record timed
 * configurations in the run manifest, and format result rows.
 *
 * The benches parallelize across schemes only — each (scheme, trace,
 * seed) simulation is single-threaded and seeded from its own
 * Rng::split stream — so every table and counter is bit-identical for
 * every --jobs value.
 */

#ifndef AEGIS_BENCH_LATENCY_COMMON_H
#define AEGIS_BENCH_LATENCY_COMMON_H

#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/manifest.h"
#include "sim/timing/latency_sim.h"
#include "util/cli.h"

namespace aegis::bench {

/** Split a comma-separated flag value, dropping empty items. */
inline std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        if (end > begin)
            out.push_back(list.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

/** The LatencySimConfig implied by the Timed flag set
 *  (kTimedFlagSpecs); fault injection stays at the caller's default. */
inline sim::timing::LatencySimConfig
latencyConfigFrom(const CliParser &cli)
{
    sim::timing::LatencySimConfig cfg;
    cfg.timing.banks =
        static_cast<std::uint32_t>(cli.getUint("banks"));
    cfg.timing.queueDepth =
        static_cast<std::uint32_t>(cli.getUint("queue-depth"));
    cfg.timing.tRead = cli.getUint("t-read");
    cfg.timing.tProgramPass = cli.getUint("t-program");
    cfg.timing.tVerifyRead = cli.getUint("t-verify");
    cfg.traceSpec = cli.getString("trace");
    cfg.shape.pages = static_cast<std::uint32_t>(cli.getUint("pages"));
    cfg.shape.readFraction = cli.getDouble("read-fraction");
    cfg.shape.arrivalGap = cli.getUint("arrival-gap");
    cfg.writes = cli.getUint("writes");
    if (cli.getBool("timeseries"))
        cfg.timelineInterval = cli.getUint("timeline-interval");
    return cfg;
}

/**
 * Move @p result's sampled timeline (when sampling was on) into the
 * manifest as @p name. Call in cell order after the sweep so the
 * `timeseries` section is ordered by cell index, not completion.
 */
inline void
emitLatencyTimeline(BenchRunner &runner, const std::string &name,
                    sim::timing::LatencySimResult &result)
{
    if (result.timeline.columns.empty())
        return;
    result.timeline.name = name;
    runner.manifest().addTimeSeries(std::move(result.timeline));
}

/** One timed simulation as a manifest "configs" entry. */
inline obs::JsonObject
latencyConfigJson(const std::string &scheme,
                  const sim::timing::LatencySimConfig &cfg,
                  std::uint64_t seed)
{
    using obs::JsonValue;
    obs::JsonObject o;
    o.emplace_back("scheme", JsonValue::str(scheme));
    o.emplace_back("blockBits", JsonValue::uint(cfg.shape.blockBits));
    o.emplace_back("pages", JsonValue::uint(cfg.shape.pages));
    o.emplace_back("seed", JsonValue::uint(seed));
    o.emplace_back("trace", JsonValue::str(cfg.traceSpec));
    o.emplace_back("writes", JsonValue::uint(cfg.writes));
    o.emplace_back("readFraction",
                   JsonValue::real(cfg.shape.readFraction));
    o.emplace_back("arrivalGap",
                   JsonValue::uint(cfg.shape.arrivalGap));
    o.emplace_back("faultsPerKwrite",
                   JsonValue::real(cfg.faultsPerKwrite));
    o.emplace_back("banks", JsonValue::uint(cfg.timing.banks));
    o.emplace_back("queueDepth",
                   JsonValue::uint(cfg.timing.queueDepth));
    o.emplace_back("tRead", JsonValue::uint(cfg.timing.tRead));
    o.emplace_back("tProgramPass",
                   JsonValue::uint(cfg.timing.tProgramPass));
    o.emplace_back("tVerifyRead",
                   JsonValue::uint(cfg.timing.tVerifyRead));
    return o;
}

} // namespace aegis::bench

#endif // AEGIS_BENCH_LATENCY_COMMON_H
