/**
 * @file
 * Reproduces Figure 12: 4KB-page lifetime improvement (percent over
 * an unprotected page) for Aegis, Aegis-rw and Aegis-rw-p across the
 * paper's formations. Expected shape: Aegis-rw largest, Aegis-rw-p
 * consistently above basic Aegis (it avoids the extra inversion
 * writes), both variants' edge smaller than their fault-count edge
 * in Figure 11.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

std::string
rwpName(const std::string &formation)
{
    if (formation == "23x23")
        return "aegis-rw-p4-23x23";
    if (formation == "17x31")
        return "aegis-rw-p5-17x31";
    if (formation == "9x61")
        return "aegis-rw-p9-9x61";
    return "aegis-rw-p9-8x71";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig12_variants_lifetime",
                  "Reproduce Figure 12 (lifetime improvement: Aegis "
                  "vs rw vs rw-p)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> formations{"23x23", "17x31",
                                                  "9x61", "8x71"};

        sim::ExperimentConfig base = bench::configFrom(cli, 512);
        base.scheme = "none";
        const sim::PageStudy baseline = bench::pageStudy(base);

        TablePrinter t("Figure 12 — page lifetime improvement % over "
                       "no protection, 512-bit blocks");
        t.setHeader({"formation", "aegis (bits)", "improvement %",
                     "aegis-rw (bits)", "improvement %",
                     "aegis-rw-p (bits)", "improvement %"});
        for (const std::string &formation : formations) {
            sim::ExperimentConfig cfg = base;

            const auto improvement = [&](const std::string &scheme,
                                         std::size_t &bits) {
                cfg.scheme = scheme;
                const sim::PageStudy study = bench::pageStudy(cfg);
                bits = study.overheadBits;
                return 100.0 *
                       (sim::lifetimeImprovement(study, baseline) -
                        1.0);
            };
            std::size_t b1 = 0, b2 = 0, b3 = 0;
            const double basic =
                improvement("aegis-" + formation, b1);
            const double rw =
                improvement("aegis-rw-" + formation, b2);
            const double rwp = improvement(rwpName(formation), b3);
            t.addRow({formation, std::to_string(b1),
                      TablePrinter::num(basic, 0),
                      std::to_string(b2), TablePrinter::num(rw, 0),
                      std::to_string(b3), TablePrinter::num(rwp, 0)});
        }
        bench::emit(t, cli);
    });
}
