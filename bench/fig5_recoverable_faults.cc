/**
 * @file
 * Reproduces Figure 5: average number of recoverable faults in a 4KB
 * page (before its first data block becomes unrecoverable) for
 * 256-bit and 512-bit data blocks, with each scheme's overhead bits.
 */

#include <map>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

/** Fault counts quoted in §3.2 for the 2048-page runs. */
double
paperFaults(const std::string &scheme, std::uint32_t block_bits)
{
    static const std::map<std::pair<std::string, std::uint32_t>, double>
        quoted{{{"aegis-9x61", 512}, 711},   {{"aegis-17x31", 512}, 364},
               {{"safer64", 512}, 293},      {{"safer128", 512}, 465},
               {{"rdis3", 512}, 342},        {{"aegis-12x23", 256}, 474},
               {{"ecp6", 256}, 264}};
    const auto it = quoted.find({scheme, block_bits});
    return it == quoted.end() ? 0.0 : it->second;
}

void
runBlockSize(std::uint32_t block_bits, const CliParser &cli)
{
    TablePrinter t("Figure 5 — recoverable faults per 4KB page (" +
                   std::to_string(block_bits) + "-bit blocks, " +
                   std::to_string(cli.getUint("pages")) + " pages)");
    t.setHeader({"scheme", "overhead bits", "overhead %",
                 "faults/page", "ci95", "paper"});
    for (const std::string &name :
         core::paperSchemeNames(block_bits)) {
        sim::ExperimentConfig cfg =
            bench::configFrom(cli, block_bits);
        cfg.scheme = name;
        const sim::PageStudy study = bench::pageStudy(cfg);
        std::vector<std::string> row = bench::studyCells(study);
        row.insert(row.end(),
                   {TablePrinter::num(100 * study.overheadFraction(),
                                      1),
                    TablePrinter::num(study.recoverableFaults.mean(),
                                      0),
                    TablePrinter::num(study.recoverableFaults.ci95(),
                                      0),
                    bench::paperRef(paperFaults(name, block_bits))});
        t.addRow(row);
    }
    bench::emit(t, cli);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig5_recoverable_faults",
                  "Reproduce Figure 5 (recoverable faults per page)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        runner.phase("512-bit blocks");
        runBlockSize(512, cli);
        runner.phase("256-bit blocks");
        runBlockSize(256, cli);
    });
}
