/**
 * @file
 * Extension experiment: dynamic pairing of faulty pages (§4).
 *
 * The paper's related-work argument: OS-level schemes like dynamic
 * pairing slow down page loss, but a stronger in-block scheme delays
 * the loss in the first place. This bench shows both effects —
 * pairing stretches the capacity tail of every scheme, and Aegis
 * needs it later than ECP does.
 */

#include <vector>

#include "bench/bench_common.h"
#include "sim/pairing.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ext_dynamic_pairing",
                  "Dynamic pairing of faulty pages (§4 extension)");
    static constexpr FlagSpec kFlags[] = {
        {"points", FlagKind::Uint, "12",
         "sample points along the capacity curve"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> schemes{"ecp4", "safer32",
                                               "aegis-17x31",
                                               "aegis-9x61"};
        const auto points =
            static_cast<std::size_t>(cli.getUint("points"));

        TablePrinter t("Dynamic pairing — memory capacity (pages "
                       "alive or paired) over time, 512-bit blocks, " +
                       std::to_string(cli.getUint("pages")) +
                       " pages");
        std::vector<std::string> header{"scheme", "mode"};
        for (std::size_t i = 2; i <= points; i += 2)
            header.push_back("t" + std::to_string(i));
        header.push_back("50%-capacity time (M)");
        t.setHeader(header);

        for (const std::string &scheme : schemes) {
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
            cfg.scheme = scheme;
            const sim::PairingStudy study =
                sim::runPairingStudy(cfg, points);

            const auto row = [&](bool paired) {
                const auto &curve = paired ? study.withPairing
                                           : study.withoutPairing;
                std::vector<std::string> cells{
                    scheme, paired ? "paired" : "retire"};
                for (std::size_t i = 2; i <= points; i += 2) {
                    cells.push_back(
                        TablePrinter::num(curve[i].second, 0));
                }
                cells.push_back(TablePrinter::num(
                    study.timeToCapacity(0.5, paired) / 1e6, 1));
                t.addRow(cells);
            };
            row(false);
            row(true);
        }
        bench::emit(t, cli);
    });
}
