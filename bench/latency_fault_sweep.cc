/**
 * @file
 * Latency degradation vs fault rate: sweep the fault-injection rate
 * and watch each scheme's write tail and bandwidth respond as its
 * recovery machinery (extra program passes, verify rework,
 * re-partition stalls) starts doing real work.
 *
 * The interesting contrast is the *shape*: ECP's latency is flat
 * until its pointers exhaust and blocks die, while partition-based
 * schemes degrade gradually — each fault costs re-partition stalls
 * and inversion rework on the banks, visible here as a rising p99
 * long before anything fails.
 */

#include <memory>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "bench_common.h"
#include "latency_common.h"
#include "sim/timing/latency_sim.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace aegis;

int
main(int argc, char **argv)
{
    bench::BenchRunner runner(
        "latency_fault_sweep",
        "Write-latency degradation vs stuck-at fault rate under the "
        "cycle-level controller",
        bench::BenchRunner::Flags::Timed);
    static constexpr FlagSpec kFlags[] = {
        {"fault-rates", FlagKind::String, "0,50,200,800",
         "comma-separated fault-injection rates to sweep, in stuck-at "
         "faults per 1000 block writes"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> schemes =
            bench::splitList(cli.getString("schemes"));
        AEGIS_REQUIRE(!schemes.empty(),
                      "--schemes must name at least one scheme");
        const std::vector<std::string> rateSpecs =
            bench::splitList(cli.getString("fault-rates"));
        AEGIS_REQUIRE(!rateSpecs.empty(),
                      "--fault-rates must name at least one rate");
        std::vector<double> rates;
        for (const std::string &spec : rateSpecs) {
            try {
                rates.push_back(std::stod(spec));
            } catch (const std::exception &) {
                throw ConfigError("--fault-rates: `" + spec +
                                  "' is not a number");
            }
        }

        const sim::timing::LatencySimConfig base =
            bench::latencyConfigFrom(cli);
        std::vector<std::unique_ptr<scheme::Scheme>> protos;
        for (const std::string &name : schemes)
            protos.push_back(
                core::makeScheme(name, base.shape.blockBits));

        // One cell per (scheme, rate); the flat cell index seeds the
        // cell's private Rng stream, so results are independent of
        // both --jobs and the sweep order.
        runner.phase("timed simulations");
        const std::size_t cells = schemes.size() * rates.size();
        const Rng master(cli.getUint("seed"));
        std::vector<sim::timing::LatencySimResult> results(cells);
        parallelFor(
            cells, static_cast<unsigned>(cli.getUint("jobs")),
            [&](std::size_t cell) {
                const std::size_t s = cell / rates.size();
                sim::timing::LatencySimConfig cfg = base;
                cfg.faultsPerKwrite = rates[cell % rates.size()];
                // The cell index doubles as the event-trace track id:
                // stable across --jobs, so --trace-out output is too.
                cfg.traceTrack = static_cast<std::uint32_t>(cell);
                cfg.traceLabel = schemes[s] + "@" +
                                 rateSpecs[cell % rates.size()] +
                                 "/kw";
                results[cell] = sim::timing::runLatencySim(
                    *protos[s], cfg, master.split(cell));
            });

        runner.phase("report");
        TablePrinter t("Fault sweep — trace " + base.traceSpec + ", " +
                       std::to_string(base.writes) +
                       " writes per cell");
        t.setHeader({"scheme", "faults/kw", "injected", "dead",
                     "wr p50", "wr p99", "wrB/ktick", "fc lookups",
                     "repart stalls"});
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            sim::timing::LatencySimConfig cfg = base;
            for (std::size_t j = 0; j < rates.size(); ++j) {
                const sim::timing::LatencySimResult &r =
                    results[s * rates.size() + j];
                t.addRow({schemes[s], TablePrinter::num(rates[j], 0),
                          std::to_string(r.faultsInjected),
                          std::to_string(r.deadBlocks),
                          std::to_string(r.writeP50()),
                          std::to_string(r.writeP99()),
                          TablePrinter::num(r.writeBytesPerKilotick(),
                                            1),
                          std::to_string(r.totals.failCacheLookups),
                          std::to_string(r.totals.repartitionStalls)});
            }
            cfg.faultsPerKwrite = rates.back();
            runner.manifest().addConfig(bench::latencyConfigJson(
                schemes[s], cfg, cli.getUint("seed")));
        }
        bench::emit(t, cli);
        for (std::size_t cell = 0; cell < cells; ++cell)
            bench::emitLatencyTimeline(
                runner,
                schemes[cell / rates.size()] + "@" +
                    rateSpecs[cell % rates.size()] + ".controller",
                results[cell]);
    });
}
