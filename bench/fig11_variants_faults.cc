/**
 * @file
 * Reproduces Figure 11: recoverable faults per 4KB page (512-bit
 * blocks) for Aegis vs Aegis-rw vs Aegis-rw-p across the four paper
 * formations. The paper reports Aegis-rw recovering +52/+41/+33/+28%
 * more faults than basic Aegis for 23x23 / 17x31 / 9x61 / 8x71, and
 * Aegis-rw-p dropping back near basic Aegis once its overhead falls
 * below Aegis-rw's.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

/** The representative pointer budgets of §3.3. */
std::string
rwpName(const std::string &formation)
{
    if (formation == "23x23")
        return "aegis-rw-p4-23x23";
    if (formation == "17x31")
        return "aegis-rw-p5-17x31";
    if (formation == "9x61")
        return "aegis-rw-p9-9x61";
    return "aegis-rw-p9-8x71";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig11_variants_faults",
                  "Reproduce Figure 11 (recoverable faults: Aegis vs "
                  "rw vs rw-p)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> formations{"23x23", "17x31",
                                                  "9x61", "8x71"};
        const double paper_rw_gain[4] = {52, 41, 33, 28};

        TablePrinter t("Figure 11 — recoverable faults per 4KB page, "
                       "512-bit blocks (" +
                       std::to_string(cli.getUint("pages")) +
                       " pages)");
        t.setHeader({"formation", "aegis (bits)", "faults",
                     "aegis-rw (bits)", "faults", "gain %",
                     "paper gain %", "aegis-rw-p (bits)", "faults"});
        for (std::size_t i = 0; i < formations.size(); ++i) {
            const std::string &formation = formations[i];
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);

            cfg.scheme = "aegis-" + formation;
            const sim::PageStudy basic = bench::pageStudy(cfg);
            cfg.scheme = "aegis-rw-" + formation;
            const sim::PageStudy rw = bench::pageStudy(cfg);
            cfg.scheme = rwpName(formation);
            const sim::PageStudy rwp = bench::pageStudy(cfg);

            const double gain =
                100.0 * (rw.recoverableFaults.mean() /
                             basic.recoverableFaults.mean() -
                         1.0);
            t.addRow({formation, std::to_string(basic.overheadBits),
                      TablePrinter::num(basic.recoverableFaults.mean(),
                                        0),
                      std::to_string(rw.overheadBits),
                      TablePrinter::num(rw.recoverableFaults.mean(), 0),
                      TablePrinter::num(gain, 0),
                      TablePrinter::num(paper_rw_gain[i], 0),
                      std::to_string(rwp.overheadBits),
                      TablePrinter::num(rwp.recoverableFaults.mean(),
                                        0)});
        }
        bench::emit(t, cli);
    });
}
