/**
 * @file
 * Reproduces Figure 6: improvement of a 4KB page's lifetime (number
 * of page writes before the first unrecoverable fault) over an
 * unprotected page, for 256-bit and 512-bit data blocks.
 */

#include <map>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

/** Improvement factors quoted in §3.2 (512-bit blocks). */
double
paperImprovement(const std::string &scheme, std::uint32_t block_bits)
{
    static const std::map<std::pair<std::string, std::uint32_t>, double>
        quoted{{{"aegis-9x61", 512}, 10.7},
               {{"aegis-17x31", 512}, 9.0},
               {{"aegis-23x23", 512}, 8.3},
               {{"ecp4", 512}, 6.3}};
    const auto it = quoted.find({scheme, block_bits});
    return it == quoted.end() ? 0.0 : it->second;
}

void
runBlockSize(std::uint32_t block_bits, const CliParser &cli)
{
    sim::ExperimentConfig base = bench::configFrom(cli, block_bits);
    base.scheme = "none";
    const sim::PageStudy baseline = bench::pageStudy(base);

    TablePrinter t("Figure 6 — page lifetime improvement over no "
                   "protection (" +
                   std::to_string(block_bits) + "-bit blocks)");
    t.setHeader({"scheme", "overhead bits", "lifetime (page writes)",
                 "improvement", "paper"});
    t.addRow({"none", "0",
              TablePrinter::intNum(static_cast<long long>(
                  baseline.pageLifetime.mean())),
              "1.00x", "1x"});
    for (const std::string &name :
         core::paperSchemeNames(block_bits)) {
        sim::ExperimentConfig cfg = base;
        cfg.scheme = name;
        const sim::PageStudy study = bench::pageStudy(cfg);
        const double gain = sim::lifetimeImprovement(study, baseline);
        const double paper = paperImprovement(name, block_bits);
        std::vector<std::string> row = bench::studyCells(study);
        row.insert(row.end(),
                   {TablePrinter::intNum(static_cast<long long>(
                        study.pageLifetime.mean())),
                    TablePrinter::num(gain, 2) + "x",
                    paper > 0 ? TablePrinter::num(paper, 1) + "x"
                              : "-"});
        t.addRow(row);
    }
    bench::emit(t, cli);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig6_lifetime_improvement",
                  "Reproduce Figure 6 (page lifetime improvement)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        runner.phase("512-bit blocks");
        runBlockSize(512, cli);
        runner.phase("256-bit blocks");
        runBlockSize(256, cli);
    });
}
