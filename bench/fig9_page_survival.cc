/**
 * @file
 * Reproduces Figure 9: fraction of 4KB pages still alive after a
 * given number of page writes (512-bit blocks, perfect wear leveling
 * over the whole memory), plus the paper's "half lifetime" metric —
 * the write count at which half the pages have failed. Headline
 * checks: Aegis 17x31 extends SAFER32's half lifetime (the paper
 * reports +16%) and Aegis 9x61 roughly matches SAFER128-cache with
 * 42% of its overhead bits and no cache.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"
#include "util/error.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig9_page_survival",
                  "Reproduce Figure 9 (page survival vs page writes, "
                  "512-bit blocks)");
    static constexpr FlagSpec kFlags[] = {
        {"curve-points", FlagKind::Uint, "8",
         "sampled points per survival curve"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> schemes{
            "ecp6",        "safer32",      "safer32-cache",
            "safer64",     "safer128",     "safer128-cache",
            "rdis3",       "aegis-23x23",  "aegis-17x31",
            "aegis-9x61"};

        std::vector<sim::PageStudy> studies;
        double tmax = 0;
        for (const std::string &name : schemes) {
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
            cfg.scheme = name;
            studies.push_back(bench::pageStudy(cfg));
            tmax = std::max(tmax,
                            studies.back().survival.timeToFraction(0.0));
        }

        // Survival matrix at evenly spaced write counts.
        const auto points =
            static_cast<std::size_t>(cli.getUint("curve-points"));
        TablePrinter t("Figure 9 — fraction of pages alive vs page "
                       "writes (512-bit blocks, " +
                       std::to_string(cli.getUint("pages")) +
                       " pages)");
        std::vector<std::string> header{"scheme"};
        for (std::size_t i = 1; i <= points; ++i) {
            header.push_back(TablePrinter::num(
                static_cast<double>(i) / points * tmax / 1e6, 1) +
                "M");
        }
        header.push_back("half lifetime (M writes)");
        t.setHeader(header);
        for (const sim::PageStudy &study : studies) {
            std::vector<std::string> row{study.scheme};
            for (std::size_t i = 1; i <= points; ++i) {
                const double when =
                    static_cast<double>(i) / points * tmax;
                row.push_back(TablePrinter::num(
                    study.survival.aliveFraction(when), 2));
            }
            row.push_back(TablePrinter::num(
                study.survival.timeToFraction(0.5) / 1e6, 2));
            t.addRow(row);
        }
        bench::emit(t, cli);

        // The paper's headline half-lifetime comparisons.
        const auto find = [&](const std::string &n) -> const
            sim::PageStudy & {
            for (const auto &s : studies) {
                if (s.scheme == n)
                    return s;
            }
            throw ConfigError("missing study " + n);
        };
        const double aegis_17x31 =
            find("aegis-17x31").survival.timeToFraction(0.5);
        const double safer32 =
            find("safer32").survival.timeToFraction(0.5);
        const double aegis_9x61 =
            find("aegis-9x61").survival.timeToFraction(0.5);
        const double safer128c =
            find("safer128-cache").survival.timeToFraction(0.5);
        std::cout << "Half-lifetime checks:\n"
                  << "  aegis-17x31 vs safer32:       "
                  << TablePrinter::num(
                         100.0 * (aegis_17x31 / safer32 - 1.0), 1)
                  << "% (paper: +16%)\n"
                  << "  aegis-9x61 vs safer128-cache: "
                  << TablePrinter::num(
                         100.0 * (aegis_9x61 / safer128c - 1.0), 1)
                  << "% (paper: ~0%, with 42% of the overhead bits)\n\n";
    });
}
