/**
 * @file
 * Ablation: the paper assumes *perfect* wear leveling across pages
 * (§3.1). This bench quantifies what the assumption is worth. Two
 * metrics per workload: the onset of page loss (time until 10% of
 * pages are dead — what wear leveling protects) and the half
 * lifetime (the paper's Figure 9 metric). Skewed traffic makes hot
 * pages die far earlier (onset collapses) while cold pages coast, so
 * the survival curve loses its perfect-leveling "precipice" shape
 * the paper points out in §3.2.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"
#include "sim/workload.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ablation_wear_leveling",
                  "Memory lifetime vs wear-leveling quality");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> workloads{
            "perfect", "skew:0.3", "zipf:0.5", "zipf:1.0"};
        const std::vector<std::string> schemes{"ecp6", "aegis-17x31",
                                               "aegis-9x61"};

        TablePrinter t("Ablation — page-loss onset (10% dead) and "
                       "half lifetime, M page writes of memory time, "
                       "512-bit blocks");
        std::vector<std::string> header{"scheme"};
        for (const auto &w : workloads) {
            header.push_back(w + " p10");
            header.push_back(w + " half");
        }
        header.push_back("onset loss perfect->zipf:1");
        t.setHeader(header);

        for (const std::string &scheme : schemes) {
            std::vector<std::string> row{scheme};
            double perfect_onset = 0, zipf_onset = 0;
            for (const std::string &spec : workloads) {
                sim::ExperimentConfig cfg =
                    bench::configFrom(cli, 512);
                cfg.scheme = scheme;
                const auto workload = sim::makeWorkload(spec);
                const SurvivalCurve curve =
                    bench::memorySurvival(cfg, *workload);
                const double onset = curve.timeToFraction(0.9);
                const double half = curve.timeToFraction(0.5);
                if (spec == "perfect")
                    perfect_onset = onset;
                if (spec == "zipf:1.0")
                    zipf_onset = onset;
                row.push_back(TablePrinter::num(onset / 1e6, 1));
                row.push_back(TablePrinter::num(half / 1e6, 1));
            }
            row.push_back(TablePrinter::num(
                              100.0 * (1.0 - zipf_onset / perfect_onset),
                              1) +
                          "%");
            t.addRow(row);
        }
        bench::emit(t, cli);
    });
}
