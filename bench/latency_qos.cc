/**
 * @file
 * Latency QoS per scheme: p50/p99 read and write latency plus
 * sustained write bandwidth under the cycle-level controller model,
 * with the scheme's metadata traffic (fail-cache lookups/updates,
 * re-partition stalls) reported as distinct columns.
 *
 * Every write request runs the scheme's real program-and-verify
 * protocol on a functional device; the resulting SchemeIoCost shapes
 * that request's bank occupancy and metadata-bus events. Overhead
 * bits buy different amounts of tail latency: ECP pays nothing until
 * pointers run out, SAFER's fail cache adds bus traffic on every
 * write, and Aegis re-partitions stall the bank but only on fault
 * arrival.
 */

#include <memory>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "bench_common.h"
#include "latency_common.h"
#include "sim/timing/latency_sim.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace aegis;

int
main(int argc, char **argv)
{
    bench::BenchRunner runner(
        "latency_qos",
        "Per-scheme read/write latency percentiles and write "
        "bandwidth under the cycle-level controller",
        bench::BenchRunner::Flags::Timed);
    static constexpr FlagSpec kFlags[] = {
        {"faults-per-kwrite", FlagKind::Double, "20",
         "stuck-at faults injected per 1000 block writes"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> schemes =
            bench::splitList(cli.getString("schemes"));
        AEGIS_REQUIRE(!schemes.empty(),
                      "--schemes must name at least one scheme");
        sim::timing::LatencySimConfig cfg =
            bench::latencyConfigFrom(cli);
        cfg.faultsPerKwrite = cli.getDouble("faults-per-kwrite");

        // Prototypes are built up front (unknown names fail before
        // any simulation runs) and each worker clones its own device.
        std::vector<std::unique_ptr<scheme::Scheme>> protos;
        for (const std::string &name : schemes) {
            protos.push_back(
                core::makeScheme(name, cfg.shape.blockBits));
            runner.manifest().addConfig(bench::latencyConfigJson(
                name, cfg, cli.getUint("seed")));
        }

        runner.phase("timed simulations");
        const Rng master(cli.getUint("seed"));
        std::vector<sim::timing::LatencySimResult> results(
            schemes.size());
        parallelFor(
            schemes.size(),
            static_cast<unsigned>(cli.getUint("jobs")),
            [&](std::size_t i) {
                // The cell index doubles as the event-trace track id:
                // stable across --jobs, so --trace-out output is too.
                sim::timing::LatencySimConfig cell = cfg;
                cell.traceTrack = static_cast<std::uint32_t>(i);
                cell.traceLabel = schemes[i];
                results[i] = sim::timing::runLatencySim(
                    *protos[i], cell, master.split(i));
            });

        runner.phase("report");
        TablePrinter t("Latency QoS — trace " + cfg.traceSpec + ", " +
                       std::to_string(cfg.writes) + " writes, " +
                       std::to_string(cfg.timing.banks) + " banks");
        t.setHeader({"scheme", "bits", "reads", "writes", "rd p50",
                     "rd p99", "wr p50", "wr p99", "wrB/ktick",
                     "fc lookups", "repart stalls"});
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const sim::timing::LatencySimResult &r = results[i];
            t.addRow({schemes[i],
                      std::to_string(protos[i]->overheadBits()),
                      std::to_string(r.totals.reads),
                      std::to_string(r.totals.writes),
                      std::to_string(r.readP50()),
                      std::to_string(r.readP99()),
                      std::to_string(r.writeP50()),
                      std::to_string(r.writeP99()),
                      TablePrinter::num(r.writeBytesPerKilotick(), 1),
                      std::to_string(r.totals.failCacheLookups),
                      std::to_string(r.totals.repartitionStalls)});
        }
        bench::emit(t, cli);
        for (std::size_t i = 0; i < schemes.size(); ++i)
            bench::emitLatencyTimeline(
                runner, schemes[i] + ".controller", results[i]);
    });
}
