/**
 * @file
 * Ablation: sensitivity of the headline result (Aegis > SAFER > ECP
 * in page lifetime) to the cell-lifetime distribution. The paper
 * evaluates only Normal(1e8, 25% cv); a robust conclusion should
 * survive lognormal/Weibull/uniform endurance models with the same
 * mean.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ablation_lifetime_models",
                  "Lifetime-distribution sensitivity of the Figure 6 "
                  "ordering");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        struct Model
        {
            const char *kind;
            double param;
            const char *label;
        };
        const std::vector<Model> models{
            {"normal", 0.25, "normal cv=0.25 (paper)"},
            {"lognormal", 0.25, "lognormal cv=0.25"},
            {"weibull", 2.0, "weibull k=2"},
            {"uniform", 0.5, "uniform +/-50%"}};
        const std::vector<std::string> schemes{
            "ecp6", "safer64", "rdis3", "aegis-17x31", "aegis-9x61"};

        TablePrinter t("Ablation — page lifetime improvement over "
                       "'none' across endurance models (512-bit "
                       "blocks)");
        std::vector<std::string> header{"scheme"};
        for (const Model &m : models)
            header.push_back(m.label);
        t.setHeader(header);

        // Baselines per model.
        std::vector<sim::PageStudy> baselines;
        for (const Model &m : models) {
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
            cfg.scheme = "none";
            cfg.lifetimeKind = m.kind;
            cfg.lifetimeParam = m.param;
            baselines.push_back(bench::pageStudy(cfg));
        }

        for (const std::string &name : schemes) {
            std::vector<std::string> row{name};
            for (std::size_t i = 0; i < models.size(); ++i) {
                sim::ExperimentConfig cfg =
                    bench::configFrom(cli, 512);
                cfg.scheme = name;
                cfg.lifetimeKind = models[i].kind;
                cfg.lifetimeParam = models[i].param;
                const sim::PageStudy study = bench::pageStudy(cfg);
                row.push_back(
                    TablePrinter::num(
                        sim::lifetimeImprovement(study, baselines[i]),
                        1) +
                    "x");
            }
            t.addRow(row);
        }
        bench::emit(t, cli);
    });
}
