/**
 * @file
 * Reproduces Figure 7: each overhead bit's contribution to the page
 * lifetime improvement of Figure 6 (improvement factor divided by
 * the per-block overhead bits). The paper's qualitative findings:
 * ECP decays slowest with rising FTC, but the Aegis formations beat
 * every other scheme's per-bit contribution in both block sizes.
 */

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

void
runBlockSize(std::uint32_t block_bits, const CliParser &cli)
{
    sim::ExperimentConfig base = bench::configFrom(cli, block_bits);
    base.scheme = "none";
    const sim::PageStudy baseline = bench::pageStudy(base);

    TablePrinter t("Figure 7 — per-overhead-bit contribution to "
                   "lifetime improvement (" +
                   std::to_string(block_bits) + "-bit blocks)");
    t.setHeader({"scheme", "overhead bits", "improvement",
                 "improvement / bit"});
    for (const std::string &name :
         core::paperSchemeNames(block_bits)) {
        sim::ExperimentConfig cfg = base;
        cfg.scheme = name;
        const sim::PageStudy study = bench::pageStudy(cfg);
        const double gain = sim::lifetimeImprovement(study, baseline);
        std::vector<std::string> row = bench::studyCells(study);
        row.insert(row.end(),
                   {TablePrinter::num(gain, 2) + "x",
                    TablePrinter::num(
                        gain /
                            static_cast<double>(study.overheadBits),
                        4)});
        t.addRow(row);
    }
    bench::emit(t, cli);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig7_perbit_contribution",
                  "Reproduce Figure 7 (per-bit lifetime contribution)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        runner.phase("512-bit blocks");
        runBlockSize(512, cli);
        runner.phase("256-bit blocks");
        runBlockSize(256, cli);
    });
}
