/**
 * @file
 * Reproduces Figure 13: each overhead bit's contribution to the
 * lifetime improvement of Figure 12 for Aegis, Aegis-rw and
 * Aegis-rw-p. Expected shape: the variants use their (smaller or
 * equal) overhead more efficiently, with Aegis-rw-p's per-bit
 * contribution able to exceed Aegis-rw's — while remembering the
 * variants also rely on a fail cache whose SRAM is not in these
 * numbers (§3.3).
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

std::string
rwpName(const std::string &formation)
{
    if (formation == "23x23")
        return "aegis-rw-p4-23x23";
    if (formation == "17x31")
        return "aegis-rw-p5-17x31";
    if (formation == "9x61")
        return "aegis-rw-p9-9x61";
    return "aegis-rw-p9-8x71";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig13_variants_perbit",
                  "Reproduce Figure 13 (per-bit contribution: Aegis "
                  "vs rw vs rw-p)");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> formations{"23x23", "17x31",
                                                  "9x61", "8x71"};

        sim::ExperimentConfig base = bench::configFrom(cli, 512);
        base.scheme = "none";
        const sim::PageStudy baseline = bench::pageStudy(base);

        TablePrinter t("Figure 13 — lifetime improvement % per "
                       "overhead bit, 512-bit blocks");
        t.setHeader({"formation", "aegis", "aegis-rw", "aegis-rw-p"});
        for (const std::string &formation : formations) {
            sim::ExperimentConfig cfg = base;
            const auto perbit = [&](const std::string &scheme) {
                cfg.scheme = scheme;
                const sim::PageStudy study = bench::pageStudy(cfg);
                const double pct =
                    100.0 *
                    (sim::lifetimeImprovement(study, baseline) - 1.0);
                return TablePrinter::num(
                    pct / static_cast<double>(study.overheadBits), 1);
            };
            t.addRow({formation, perbit("aegis-" + formation),
                      perbit("aegis-rw-" + formation),
                      perbit(rwpName(formation))});
        }
        bench::emit(t, cli);
    });
}
