/**
 * @file
 * Shared main() for the google-benchmark microbenchmarks.
 *
 * The micros speak google-benchmark's own CLI, so the observability
 * flags every bench supports (--json/--quiet/--trace-timers) are
 * stripped
 * here before benchmark::Initialize sees them. After the benchmarks
 * finish, --json writes the same schema-versioned run manifest the
 * figure benches emit (build provenance, wall-clock, process metric
 * totals) plus a per-benchmark timing table captured through a
 * collecting reporter, so a committed manifest doubles as a perf
 * baseline that tools/compare_manifests.py can diff.
 */

#ifndef AEGIS_BENCH_MICRO_COMMON_H
#define AEGIS_BENCH_MICRO_COMMON_H

#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table_printer.h"

namespace aegis::bench {

/**
 * Console reporter that additionally records each benchmark's
 * per-iteration timings so microMain can embed them in the JSON run
 * manifest.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        std::string name;
        double realNs;
        double cpuNs;
        std::int64_t iterations;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred ||
                run.run_type != Run::RT_Iteration)
                continue;
            rows.push_back({run.benchmark_name(),
                            run.GetAdjustedRealTime(),
                            run.GetAdjustedCPUTime(),
                            static_cast<std::int64_t>(run.iterations)});
        }
        ConsoleReporter::ReportRuns(runs);
    }

    const std::vector<Row> &results() const { return rows; }

  private:
    std::vector<Row> rows;
};

inline int
microMain(int argc, char **argv, const std::string &program,
          const std::string &about)
{
    try {
        std::string json_path;
        bool trace = false;
        std::vector<char *> rest;
        rest.push_back(argv[0]);
        for (int i = 1; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg == "--trace-timers") {
                trace = true;
            } else if (arg == "--quiet") {
                // Accepted for CLI uniformity; the micros print no
                // progress reports to begin with.
            } else if (arg == "--json" && i + 1 < argc) {
                json_path = argv[++i];
            } else if (arg.rfind("--json=", 0) == 0) {
                json_path = std::string(arg.substr(7));
            } else {
                rest.push_back(argv[i]);
            }
        }
        obs::setTracingEnabled(trace);

        int rest_argc = static_cast<int>(rest.size());
        benchmark::Initialize(&rest_argc, rest.data());
        if (benchmark::ReportUnrecognizedArguments(rest_argc,
                                                   rest.data()))
            return 1;

        const auto start = std::chrono::steady_clock::now();
        CollectingReporter reporter;
        benchmark::RunSpecifiedBenchmarks(&reporter);
        benchmark::Shutdown();

        if (!json_path.empty()) {
            obs::Manifest manifest(program, about);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - start;
            manifest.addPhase("benchmarks", dt.count());
            manifest.addFlag("trace-timers",
                             obs::JsonValue::boolean(trace));

            TablePrinter table("microbenchmarks");
            table.setHeader({"benchmark", "real_ns_per_iter",
                             "cpu_ns_per_iter", "iterations"});
            for (const auto &row : reporter.results()) {
                table.addRow({row.name, TablePrinter::num(row.realNs),
                              TablePrinter::num(row.cpuNs),
                              TablePrinter::intNum(row.iterations)});
            }
            manifest.addTable(table);
            manifest.setMetrics(obs::processTotals());
            manifest.writeFile(json_path);
        }
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}

} // namespace aegis::bench

#endif // AEGIS_BENCH_MICRO_COMMON_H
