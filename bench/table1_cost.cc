/**
 * @file
 * Reproduces Table 1 of the paper: per-512-bit-block hardware cost
 * (bits) needed to guarantee a given hard FTC, for ECP, SAFER, Aegis,
 * Aegis-rw and Aegis-rw-p. Purely analytic.
 */

#include <iostream>

#include "aegis/cost.h"
#include "bench/bench_common.h"
#include "scheme/ecp.h"
#include "scheme/rdis.h"
#include "scheme/safer.h"

namespace {

using namespace aegis;

void
printTable(std::uint32_t block_bits, const CliParser &cli)
{
    // The paper's published Table 1 values (512-bit blocks), used to
    // annotate deviations.
    const std::uint64_t paper_rw[10] = {23, 24, 25, 26, 27,
                                        27, 28, 28, 28, 28};

    TablePrinter t("Table 1 — bits per " + std::to_string(block_bits) +
                   "-bit block to guarantee a hard FTC");
    t.setHeader({"Hard FTC", "ECP", "SAFER", "N(SAFER)", "Aegis",
                 "AxB", "Aegis-rw", "Aegis-rw-p"});
    for (std::uint32_t f = 1; f <= 10; ++f) {
        const std::size_t n_safer = 1ull << (f - 1);
        const core::CostPoint basic =
            core::minimalCostBasic(block_bits, f);
        const core::CostPoint rw = core::minimalCostRw(block_bits, f);
        const core::CostPoint rwp =
            core::minimalCostRwP(block_bits, f);

        std::string rw_cell = std::to_string(rw.bits);
        if (block_bits == 512 && rw.bits != paper_rw[f - 1]) {
            rw_cell += " (paper: " + std::to_string(paper_rw[f - 1]) +
                       ")";
        }
        t.addRow({std::to_string(f),
                  std::to_string(
                      scheme::EcpScheme::costBits(block_bits, f)),
                  std::to_string(
                      scheme::SaferScheme::costBits(block_bits,
                                                    n_safer)),
                  std::to_string(n_safer),
                  std::to_string(basic.bits),
                  std::to_string(basic.a) + "x" +
                      std::to_string(basic.b),
                  rw_cell, std::to_string(rwp.bits)});
    }
    bench::emit(t, cli);

    std::cout << "Reference overheads: RDIS-3 = "
              << scheme::RdisScheme::costBits(block_bits, 16, 3)
              << " bits ("
              << TablePrinter::num(
                     100.0 *
                         static_cast<double>(scheme::RdisScheme::costBits(
                             block_bits, 16, 3)) /
                         block_bits,
                     1)
              << "%), (72,64) Hamming = " << (block_bits / 64) * 8
              << " bits (12.5%).\n"
              << "Note: at hard FTC 10 the paper lists 28 bits for "
                 "Aegis-rw, but its own bound needs 26 > 23 slopes; "
                 "the formula-faithful cost (B = 29) is printed "
                 "alongside. See EXPERIMENTS.md.\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    aegis::bench::BenchRunner runner(
        "table1_cost",
        "Reproduce Table 1 (hardware cost vs hard FTC)",
        aegis::bench::BenchRunner::Flags::Minimal);
    static constexpr aegis::FlagSpec kFlags[] = {
        {"also-256", aegis::FlagKind::Bool, "true",
         "print the 256-bit variant after the paper's 512-bit table"},
    };
    aegis::CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        runner.phase("512-bit table");
        printTable(512, cli);
        if (cli.getBool("also-256")) {
            runner.phase("256-bit table");
            printTable(256, cli);
        }
    });
}
