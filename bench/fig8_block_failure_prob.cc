/**
 * @file
 * Reproduces Figure 8: probability that a 512-bit data block has
 * failed once a given number of faults has occurred in it. Includes
 * the cache-assisted SAFER variants and RDIS-3, exactly as the
 * paper's figure does. Every curve is 0 through the scheme's hard
 * FTC; ECP curves rise vertically right after it; Aegis degrades
 * gracefully and Aegis 9x61 tracks SAFER64-cache despite using no
 * cache.
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig8_block_failure_prob",
                  "Reproduce Figure 8 (block failure probability vs "
                  "fault count, 512-bit blocks)");
    static constexpr FlagSpec kFlags[] = {
        {"max-faults", FlagKind::Uint, "32",
         "largest fault count column"},
        {"fault-step", FlagKind::Uint, "2",
         "fault-count column stride"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> schemes{
            "ecp6",           "ecp8",
            "safer64",        "safer64-cache",
            "safer128",       "safer128-cache",
            "rdis3",          "aegis-23x23",
            "aegis-17x31",    "aegis-9x61"};
        const auto blocks =
            static_cast<std::uint32_t>(cli.getUint("blocks"));
        const auto max_faults =
            static_cast<std::int64_t>(cli.getUint("max-faults"));
        const auto step =
            static_cast<std::int64_t>(cli.getUint("fault-step"));

        TablePrinter t("Figure 8 — P(block failed | j faults "
                       "occurred), 512-bit blocks, " +
                       std::to_string(blocks) + " blocks/scheme");
        std::vector<std::string> header{"scheme", "hardFTC", "bits"};
        for (std::int64_t j = 2; j <= max_faults; j += step)
            header.push_back("j=" + std::to_string(j));
        t.setHeader(header);

        for (const std::string &name : schemes) {
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
            cfg.scheme = name;
            const sim::BlockStudy study =
                bench::blockStudy(cfg, blocks);
            auto scheme = core::makeScheme(name, 512);
            std::vector<std::string> row = bench::studyCells(study);
            row.insert(row.begin() + 1,
                       std::to_string(scheme->hardFtc()));
            for (std::int64_t j = 2; j <= max_faults; j += step) {
                row.push_back(TablePrinter::num(
                    study.failureProbabilityAt(j), 2));
            }
            t.addRow(row);
        }
        bench::emit(t, cli);
    });
}
