/**
 * @file
 * Ablation: how much lifetime do the extra inversion writes of
 * cache-less partition schemes really cost? Sweeps the amplification
 * term of the wear model (0 = ideal single-pass writes, 0.5 = the
 * default expected extra program per write in fault groups, 1.0 =
 * pessimistic double writes) for basic Aegis and SAFER. This
 * quantifies the wear half of the fail cache's benefit discussed in
 * §2.4/§3.3 of the paper (Aegis-rw removes these writes entirely).
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ablation_wear_amplification",
                  "Inversion-write wear cost for cache-less schemes");
    CliParser &cli = runner.cli();
    return runner.run(argc, argv, [&] {
        const std::vector<double> extras{0.0, 0.25, 0.5, 1.0};
        const std::vector<std::string> schemes{
            "safer32", "safer64", "aegis-23x23", "aegis-17x31",
            "aegis-9x61"};

        TablePrinter t("Ablation — mean page lifetime (M writes) vs "
                       "inversion-write amplification (512-bit "
                       "blocks)");
        std::vector<std::string> header{"scheme"};
        for (double e : extras)
            header.push_back("+" + TablePrinter::num(e, 2) +
                             " writes");
        header.push_back("cost of default vs ideal");
        t.setHeader(header);

        for (const std::string &name : schemes) {
            std::vector<std::string> row{name};
            double ideal = 0, def = 0;
            for (double e : extras) {
                sim::ExperimentConfig cfg =
                    bench::configFrom(cli, 512);
                cfg.scheme = name;
                cfg.wear.amplifiedExtra = e;
                const sim::PageStudy study = bench::pageStudy(cfg);
                const double life = study.pageLifetime.mean();
                if (e == 0.0)
                    ideal = life;
                if (e == 0.5)
                    def = life;
                row.push_back(TablePrinter::num(life / 1e6, 1));
            }
            row.push_back(
                TablePrinter::num(100.0 * (1.0 - def / ideal), 1) +
                "%");
            t.addRow(row);
        }
        bench::emit(t, cli);
    });
}
