/**
 * @file
 * Ablation: the paper grants Aegis-rw / RDIS / SAFER-cache an
 * *unbounded* fail cache ("sufficiently large"). This experiment
 * measures what a finite direct-mapped cache actually delivers on
 * the functional layer: as capacity shrinks, conflict evictions hide
 * faults, every hidden fault costs extra verify-and-rewrite passes
 * (wear + latency), and residency drops.
 *
 * Runs real writes against CellArrays with fast-wearing cells so the
 * whole endurance story plays out in a few thousand writes.
 */

#include <memory>
#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"
#include "pcm/lifetime_model.h"
#include "util/rng.h"

namespace {

using namespace aegis;

struct CacheResult
{
    double meanPasses = 0;       // program passes per write
    double residency = 1.0;      // fraction of faults resident at end
    double lifetime = 0;         // writes until the block died
};

CacheResult
runWithCache(const std::string &scheme_name, std::size_t cache_sets,
             std::uint32_t blocks, std::uint64_t seed)
{
    auto model = pcm::makeLifetimeModel("normal", 2000.0, 0.25);
    CacheResult out;
    double passes = 0, writes = 0, lifetimes = 0, residency = 0;

    for (std::uint32_t b = 0; b < blocks; ++b) {
        std::shared_ptr<pcm::FaultDirectory> dir;
        std::shared_ptr<pcm::DirectMappedFailCache> finite;
        if (cache_sets == 0) {
            dir = std::make_shared<pcm::OracleFaultDirectory>();
        } else {
            finite =
                std::make_shared<pcm::DirectMappedFailCache>(cache_sets);
            dir = finite;
        }
        auto scheme = core::makeScheme(scheme_name, 512);
        scheme->attachDirectory(dir.get(), b);
        pcm::CellArray cells(512);
        Rng rng(seed + b);
        std::vector<double> life(512);
        for (double &l : life)
            l = model->sample(rng);

        double w = 0;
        for (;;) {
            const BitVector data = BitVector::random(512, rng);
            const auto outcome = scheme->write(cells, data);
            w += 1;
            passes += outcome.programPasses;
            writes += 1;
            if (!outcome.ok)
                break;
            for (std::size_t i = 0; i < 512; ++i) {
                if (!cells.isStuck(i) &&
                    static_cast<double>(cells.cellWritesAt(i)) >=
                        life[i]) {
                    cells.injectFaultAtCurrentValue(i);
                }
            }
        }
        lifetimes += w;
        residency += finite ? finite->residency() : 1.0;
    }
    out.meanPasses = passes / writes;
    out.residency = residency / blocks;
    out.lifetime = lifetimes / blocks;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ablation_fail_cache",
                              "Finite fail cache vs the paper's oracle "
                              "assumption (functional layer, "
                              "fast-wearing cells)",
                              bench::BenchRunner::Flags::Minimal);
    static constexpr FlagSpec kFlags[] = {
        {"blocks", FlagKind::Uint, "24", "blocks per configuration"},
        {"seed", FlagKind::Uint, "1", "random seed"},
        {"scheme", FlagKind::String, "aegis-rw-23x23",
         "cache-using scheme"},
        {"audit", FlagKind::Bool, "false",
         "wrap the scheme in the runtime invariant auditor"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::size_t> capacities{0, 4096, 256, 64,
                                                  16, 4};
        const auto blocks =
            static_cast<std::uint32_t>(cli.getUint("blocks"));
        const std::string scheme =
            bench::schemeSpec(cli, cli.getString("scheme")).str();

        TablePrinter t("Ablation — " + scheme +
                       " with a finite direct-mapped fail cache "
                       "(512-bit blocks, mean endurance 2000 "
                       "writes)");
        t.setHeader({"cache entries", "fault residency",
                     "program passes/write", "block lifetime (writes)"});
        for (std::size_t sets : capacities) {
            const CacheResult r = runWithCache(
                scheme, sets, blocks, cli.getUint("seed"));
            t.addRow({sets == 0 ? "oracle (paper)"
                                : std::to_string(sets),
                      TablePrinter::num(100 * r.residency, 1) + "%",
                      TablePrinter::num(r.meanPasses, 3),
                      TablePrinter::num(r.lifetime, 0)});
        }
        bench::emit(t, cli);
    });
}
