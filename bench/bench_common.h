/**
 * @file
 * Shared plumbing for the figure-reproduction benchmark binaries.
 *
 * Every bench accepts the same Monte-Carlo flags and prints a table
 * with a "paper" column (where §3 of the paper quotes a number) next
 * to the measured value. Absolute agreement is not expected — the
 * paper ran 2048 pages, we default to fewer for speed — but ordering,
 * ratios and crossovers should match (EXPERIMENTS.md records both).
 *
 * BenchRunner adds the observability surface every bench shares:
 * --json writes a schema-versioned run manifest, --quiet silences the
 * progress/ETA reports, --trace records scoped wall-clock timers.
 * The study wrappers (pageStudy/blockStudy/memorySurvival) and emit()
 * feed the active runner, so a bench body needs no manifest plumbing
 * of its own.
 */

#ifndef AEGIS_BENCH_BENCH_COMMON_H
#define AEGIS_BENCH_BENCH_COMMON_H

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/workload.h"
#include "util/atomic_file.h"
#include "util/cancel.h"
#include "util/chaos.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/table_printer.h"

namespace aegis::bench {

/** Register the flags shared by all figure benches. */
inline void
addCommonFlags(CliParser &cli)
{
    cli.addUint("pages", 64, "4KB pages per Monte-Carlo run "
                             "(paper: 2048 = 8MB)");
    cli.addUint("blocks", 512, "blocks for block-level studies");
    cli.addUint("seed", 1, "master random seed");
    cli.addDouble("lifetime-mean", 1e8, "mean cell lifetime in writes");
    cli.addDouble("lifetime-cv", 0.25, "lifetime coefficient of "
                                       "variation");
    cli.addString("lifetime-kind", "normal",
                  "lifetime distribution: normal|lognormal|weibull|"
                  "uniform");
    cli.addUint("labelings", 256,
                "W/R labeling samples for data-dependent schemes");
    cli.addBool("csv", false, "emit CSV instead of aligned tables");
    cli.addBool("audit", false,
                "wrap every scheme in the runtime invariant auditor "
                "(slow; aborts on the first violation)");
    cli.addUint("jobs", 0,
                "Monte-Carlo worker threads (0 = one per hardware "
                "thread); output is identical for every value");
}

/** Build the experiment config implied by the parsed flags. */
inline sim::ExperimentConfig
configFrom(const CliParser &cli, std::uint32_t block_bits)
{
    sim::ExperimentConfig cfg;
    cfg.blockBits = block_bits;
    cfg.pages = static_cast<std::uint32_t>(cli.getUint("pages"));
    cfg.seed = cli.getUint("seed");
    cfg.lifetimeKind = cli.getString("lifetime-kind");
    cfg.lifetimeMean = cli.getDouble("lifetime-mean");
    cfg.lifetimeParam = cli.getDouble("lifetime-cv");
    cfg.tracker.labelingSamples =
        static_cast<std::uint32_t>(cli.getUint("labelings"));
    cfg.audit = cli.getBool("audit");
    cfg.jobs = static_cast<std::uint32_t>(cli.getUint("jobs"));
    return cfg;
}

/**
 * Structured factory spec for a scheme honouring --audit, for benches
 * that build schemes directly instead of through an ExperimentConfig.
 */
inline core::SchemeSpec
schemeSpec(const CliParser &cli, const std::string &name)
{
    core::SchemeSpec spec = core::SchemeSpec::parse(name);
    spec.audit = spec.audit || cli.getBool("audit");
    return spec;
}

/**
 * The leading table cells every per-scheme row shares: the scheme
 * label and its overhead-bit budget.
 */
inline std::vector<std::string>
studyCells(const sim::StudyResult &study)
{
    return {study.scheme, std::to_string(study.overheadBits)};
}

/** An ExperimentConfig as a manifest "configs" entry. */
inline obs::JsonObject
configJson(const sim::ExperimentConfig &cfg)
{
    using obs::JsonValue;
    obs::JsonObject o;
    o.emplace_back("scheme", JsonValue::str(cfg.scheme));
    o.emplace_back("blockBits", JsonValue::uint(cfg.blockBits));
    o.emplace_back("pageBytes", JsonValue::uint(cfg.pageBytes));
    o.emplace_back("pages", JsonValue::uint(cfg.pages));
    o.emplace_back("seed", JsonValue::uint(cfg.seed));
    o.emplace_back("lifetimeKind", JsonValue::str(cfg.lifetimeKind));
    o.emplace_back("lifetimeMean", JsonValue::real(cfg.lifetimeMean));
    o.emplace_back("lifetimeParam", JsonValue::real(cfg.lifetimeParam));
    o.emplace_back("wearBaseRate", JsonValue::real(cfg.wear.baseRate));
    o.emplace_back("wearAmplifiedExtra",
                   JsonValue::real(cfg.wear.amplifiedExtra));
    o.emplace_back("labelingSamples",
                   JsonValue::uint(cfg.tracker.labelingSamples));
    o.emplace_back("audit", JsonValue::boolean(cfg.audit));
    o.emplace_back("jobs", JsonValue::uint(cfg.jobs));
    return o;
}

/** A parsed flag as its natural JSON type. */
inline obs::JsonValue
flagJson(const CliParser::FlagValue &f)
{
    switch (f.kind) {
    case CliParser::FlagKind::Uint:
        return obs::JsonValue::uint(std::stoull(f.value));
    case CliParser::FlagKind::Double:
        return obs::JsonValue::real(std::stod(f.value));
    case CliParser::FlagKind::Bool:
        return obs::JsonValue::boolean(f.value == "true" ||
                                       f.value == "1" ||
                                       f.value == "yes");
    case CliParser::FlagKind::String:
        break;
    }
    return obs::JsonValue::str(f.value);
}

/**
 * One bench invocation: flag registration, progress/trace switches,
 * phase timing and the JSON run manifest.
 *
 * Exactly one instance exists per bench process; it registers itself
 * so the free helpers below (emit(), pageStudy(), ...) can feed the
 * manifest without every call site carrying a runner reference.
 */
class BenchRunner
{
  public:
    enum class Flags {
        MonteCarlo, ///< full Monte-Carlo flag set (addCommonFlags)
        Minimal     ///< analytic benches: --csv only
    };

    BenchRunner(const std::string &program, const std::string &about,
                Flags flag_set = Flags::MonteCarlo)
        : cliParser(program, about), record(program, about),
          monteCarlo(flag_set == Flags::MonteCarlo),
          programName(program)
    {
        if (monteCarlo) {
            addCommonFlags(cliParser);
        } else {
            cliParser.addBool("csv", false,
                              "emit CSV instead of aligned tables");
        }
        cliParser.addString("json", "",
                            "write a JSON run manifest to this path");
        cliParser.addBool("quiet", false,
                          "suppress progress/ETA reports on stderr");
        cliParser.addBool("trace", false,
                          "record scoped wall-clock timers (scheme "
                          "read/write/recover, block/page lives) in "
                          "the manifest");
        cliParser.addString("checkpoint", "",
                            "periodically snapshot sweep state to "
                            "this path (atomic replace; resumable "
                            "with --resume)");
        cliParser.addBool("resume", false,
                          "restore prior progress from the "
                          "--checkpoint file; the resumed run is "
                          "bit-identical to an uninterrupted one");
        cliParser.addUint("checkpoint-every", 8,
                          "snapshot cadence in finished chunks "
                          "(0 = only at sweep boundaries)");
        cliParser.addDouble("deadline", 0,
                            "cancel gracefully after this many "
                            "seconds of wall clock (0 = none); a "
                            "cancelled run exits 124 and can be "
                            "resumed");
        AEGIS_REQUIRE(current_ == nullptr,
                      "one BenchRunner per process");
        current_ = this;
    }

    ~BenchRunner() { current_ = nullptr; }

    BenchRunner(const BenchRunner &) = delete;
    BenchRunner &operator=(const BenchRunner &) = delete;

    CliParser &cli() { return cliParser; }
    const CliParser &cli() const { return cliParser; }

    /** The manifest under construction, for bench-specific extras. */
    obs::Manifest &manifest() { return record; }

    /**
     * Close the open phase (recording its wall-clock) and open a new
     * one. A bench that never calls this gets a single "run" phase
     * spanning the whole body.
     */
    void
    phase(const std::string &name)
    {
        closePhase();
        phaseName = name;
        phaseStart = std::chrono::steady_clock::now();
        phaseOpen = true;
    }

    /** Record one experiment configuration (duplicates skipped). */
    void
    noteConfig(const sim::ExperimentConfig &cfg)
    {
        record.addConfig(configJson(cfg));
    }

    /** Record a printed table's cells verbatim. */
    void noteTable(const TablePrinter &table) { record.addTable(table); }

    /**
     * Parse flags, run @p body, then finalize/write the manifest.
     *
     * Exit codes: 0 success, 1 runtime/configuration error, 2 usage
     * error (bad flags, rejected before any work), 130/124/3 when the
     * sweep was cancelled by a signal / the --deadline watchdog / an
     * injected cancellation (the manifest is still written, marked
     * "status": "partial", and a final checkpoint is saved).
     */
    template <typename Fn>
    int
    run(int argc, const char *const *argv, Fn body)
    {
        const Expected<CliParser::ParseResult> parsed =
            cliParser.tryParse(argc, argv);
        if (!parsed.ok()) {
            std::cerr << "error: " << parsed.error() << "\n";
            return 2;
        }
        if (parsed.value() == CliParser::ParseResult::Help)
            return 0;
        if (monteCarlo && cliParser.isSet("jobs") &&
            cliParser.getUint("jobs") == 0) {
            std::cerr << "error: --jobs must be at least 1 (omit the "
                         "flag for one worker per hardware thread)\n";
            return 2;
        }
        if (cliParser.getBool("resume") &&
            cliParser.getString("checkpoint").empty()) {
            std::cerr << "error: --resume requires --checkpoint "
                         "<path>\n";
            return 2;
        }

        try {
            obs::setProgressEnabled(!cliParser.getBool("quiet"));
            obs::setTracingEnabled(cliParser.getBool("trace"));
            (void)chaosConfig(); // malformed AEGIS_CHAOS fails here

            // Fail fast on unwritable output paths: a sweep must not
            // run for hours only to lose its results at the end.
            const std::string jsonPath = cliParser.getString("json");
            if (!jsonPath.empty()) {
                const Status w = probeWritable(jsonPath);
                AEGIS_REQUIRE(w.ok(), "--json path is not writable: " +
                                          w.error());
            }

            CancelToken &cancel = processCancelToken();
            installSignalCancellation();
            const double deadline = cliParser.getDouble("deadline");
            if (deadline > 0)
                cancel.setDeadlineAfter(deadline);

            const std::string ckptPath =
                cliParser.getString("checkpoint");
            if (!ckptPath.empty()) {
                const Status w = probeWritable(ckptPath);
                AEGIS_REQUIRE(w.ok(),
                              "--checkpoint path is not writable: " +
                                  w.error());
                session = std::make_unique<sim::CheckpointSession>(
                    ckptPath, programName, flagsFingerprint(),
                    masterSeed());
                session->setSnapshotEveryChunks(
                    static_cast<std::uint32_t>(
                        cliParser.getUint("checkpoint-every")));
                if (cliParser.getBool("resume")) {
                    const Status r = session->resume();
                    AEGIS_REQUIRE(r.ok(), r.error());
                }
            }

            const sim::ScopedRunContext scope(
                sim::RunContext{session.get(), &cancel});
            runStart = std::chrono::steady_clock::now();
            body();
            finish("complete");
            return 0;
        } catch (const CancelledError &ex) {
            obs::progressLine(std::string(programName) + ": " +
                              cancelOutcomeLabel(ex.reason()) +
                              (session != nullptr
                                   ? "; progress saved to `" +
                                         session->path() +
                                         "' (rerun with --resume)"
                                   : ""));
            try {
                finish("partial");
            } catch (const std::exception &nested) {
                std::cerr << "error: " << nested.what() << "\n";
                return 1;
            }
            return cancelExitCode(ex.reason());
        } catch (const std::exception &ex) {
            std::cerr << "error: " << ex.what() << "\n";
            return 1;
        }
    }

    /** The active runner, or nullptr outside BenchRunner::run. */
    static BenchRunner *current() { return current_; }

  private:
    void
    closePhase()
    {
        if (!phaseOpen)
            return;
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - phaseStart;
        record.addPhase(phaseName, dt.count());
        ++phasesRecorded;
        phaseOpen = false;
    }

    /** The master seed a checkpoint must match (0 for analytic
     *  benches, which have no seed flag). */
    std::uint64_t
    masterSeed() const
    {
        return monteCarlo ? cliParser.getUint("seed") : 0;
    }

    /**
     * Fingerprint of the result-affecting flags, recorded in
     * checkpoints so a resume under different parameters is rejected.
     * Output/robustness flags are excluded — resuming with a
     * different --jobs, --json path, cadence or deadline is exactly
     * the point — and --seed is excluded because the session checks
     * it separately (with a friendlier message).
     */
    std::uint64_t
    flagsFingerprint() const
    {
        static constexpr std::string_view excluded[] = {
            "seed",       "jobs",   "json",
            "quiet",      "trace",  "csv",
            "checkpoint", "resume", "checkpoint-every",
            "deadline"};
        BinaryWriter w;
        for (const CliParser::FlagValue &f : cliParser.values()) {
            bool skip = false;
            for (const std::string_view name : excluded)
                skip = skip || f.name == name;
            if (skip)
                continue;
            w.str(f.name);
            w.str(f.value);
        }
        return fnv1a64(w.data());
    }

    void
    finish(const std::string &status)
    {
        closePhase();
        if (phasesRecorded == 0) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - runStart;
            record.addPhase("run", dt.count());
        }
        record.setStatus(status);
        for (const CliParser::FlagValue &f : cliParser.values()) {
            if (f.name == "seed" && f.kind == CliParser::FlagKind::Uint)
                record.setSeed(std::stoull(f.value));
            record.addFlag(f.name, flagJson(f));
        }
        // Work restored from a checkpoint ran in an earlier process;
        // folding its recorded metrics back in keeps a resumed run's
        // counters byte-equal to an uninterrupted run's.
        obs::Metrics totals = obs::processTotals();
        if (session != nullptr)
            totals.merge(session->restoredMetrics());
        record.setMetrics(totals);
        const std::string &path = cliParser.getString("json");
        if (!path.empty())
            record.writeFile(path);
    }

    static inline BenchRunner *current_ = nullptr;

    CliParser cliParser;
    obs::Manifest record;
    bool monteCarlo;
    std::string programName;
    std::unique_ptr<sim::CheckpointSession> session;
    std::chrono::steady_clock::time_point runStart{};
    std::chrono::steady_clock::time_point phaseStart{};
    std::string phaseName;
    bool phaseOpen = false;
    std::size_t phasesRecorded = 0;
};

/** Print @p table as text or CSV per the --csv flag, and record its
 *  cells in the active runner's manifest. */
inline void
emit(const TablePrinter &table, const CliParser &cli)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteTable(table);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

/** runPageStudy, recording @p cfg in the active runner's manifest. */
inline sim::PageStudy
pageStudy(const sim::ExperimentConfig &cfg)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runPageStudy(cfg);
}

/** runBlockStudy, recording @p cfg in the active runner's manifest. */
inline sim::BlockStudy
blockStudy(const sim::ExperimentConfig &cfg, std::uint32_t blocks)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runBlockStudy(cfg, blocks);
}

/** runMemorySurvival, recording @p cfg in the manifest. */
inline SurvivalCurve
memorySurvival(const sim::ExperimentConfig &cfg,
               const sim::Workload &workload)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runMemorySurvival(cfg, workload);
}

/** Wrap main-body logic with uniform error reporting: usage errors
 *  exit 2 before any work runs, runtime errors exit 1. */
template <typename Fn>
int
runBench(int argc, const char *const *argv, CliParser &cli, Fn body)
{
    const Expected<CliParser::ParseResult> parsed =
        cli.tryParse(argc, argv);
    if (!parsed.ok()) {
        std::cerr << "error: " << parsed.error() << "\n";
        return 2;
    }
    if (parsed.value() == CliParser::ParseResult::Help)
        return 0;
    try {
        body();
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}

/** A paper-quoted reference value, or "-" when the text gives none. */
inline std::string
paperRef(double value)
{
    return value > 0 ? TablePrinter::num(value, 0) : "-";
}

} // namespace aegis::bench

#endif // AEGIS_BENCH_BENCH_COMMON_H
