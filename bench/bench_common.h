/**
 * @file
 * Shared plumbing for the figure-reproduction benchmark binaries.
 *
 * Every bench accepts the same Monte-Carlo flags and prints a table
 * with a "paper" column (where §3 of the paper quotes a number) next
 * to the measured value. Absolute agreement is not expected — the
 * paper ran 2048 pages, we default to fewer for speed — but ordering,
 * ratios and crossovers should match (EXPERIMENTS.md records both).
 */

#ifndef AEGIS_BENCH_BENCH_COMMON_H
#define AEGIS_BENCH_BENCH_COMMON_H

#include <iostream>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "sim/experiment.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/table_printer.h"

namespace aegis::bench {

/** Register the flags shared by all figure benches. */
inline void
addCommonFlags(CliParser &cli)
{
    cli.addUint("pages", 64, "4KB pages per Monte-Carlo run "
                             "(paper: 2048 = 8MB)");
    cli.addUint("blocks", 512, "blocks for block-level studies");
    cli.addUint("seed", 1, "master random seed");
    cli.addDouble("lifetime-mean", 1e8, "mean cell lifetime in writes");
    cli.addDouble("lifetime-cv", 0.25, "lifetime coefficient of "
                                       "variation");
    cli.addString("lifetime-kind", "normal",
                  "lifetime distribution: normal|lognormal|weibull|"
                  "uniform");
    cli.addUint("labelings", 256,
                "W/R labeling samples for data-dependent schemes");
    cli.addBool("csv", false, "emit CSV instead of aligned tables");
    cli.addBool("audit", false,
                "wrap every scheme in the runtime invariant auditor "
                "(slow; aborts on the first violation)");
    cli.addUint("jobs", 0,
                "Monte-Carlo worker threads (0 = one per hardware "
                "thread); output is identical for every value");
}

/** Build the experiment config implied by the parsed flags. */
inline sim::ExperimentConfig
configFrom(const CliParser &cli, std::uint32_t block_bits)
{
    sim::ExperimentConfig cfg;
    cfg.blockBits = block_bits;
    cfg.pages = static_cast<std::uint32_t>(cli.getUint("pages"));
    cfg.seed = cli.getUint("seed");
    cfg.lifetimeKind = cli.getString("lifetime-kind");
    cfg.lifetimeMean = cli.getDouble("lifetime-mean");
    cfg.lifetimeParam = cli.getDouble("lifetime-cv");
    cfg.tracker.labelingSamples =
        static_cast<std::uint32_t>(cli.getUint("labelings"));
    cfg.audit = cli.getBool("audit");
    cfg.jobs = static_cast<std::uint32_t>(cli.getUint("jobs"));
    return cfg;
}

/**
 * Structured factory spec for a scheme honouring --audit, for benches
 * that build schemes directly instead of through an ExperimentConfig.
 */
inline core::SchemeSpec
schemeSpec(const CliParser &cli, const std::string &name)
{
    core::SchemeSpec spec = core::SchemeSpec::parse(name);
    spec.audit = spec.audit || cli.getBool("audit");
    return spec;
}

/**
 * The leading table cells every per-scheme row shares: the scheme
 * label and its overhead-bit budget.
 */
inline std::vector<std::string>
studyCells(const sim::StudyResult &study)
{
    return {study.scheme, std::to_string(study.overheadBits)};
}

/** Print @p table as text or CSV per the --csv flag. */
inline void
emit(const TablePrinter &table, const CliParser &cli)
{
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

/** Wrap main-body logic with uniform error reporting. */
template <typename Fn>
int
runBench(int argc, const char *const *argv, CliParser &cli, Fn body)
{
    try {
        if (!cli.parse(argc, argv))
            return 0;
        body();
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}

/** A paper-quoted reference value, or "-" when the text gives none. */
inline std::string
paperRef(double value)
{
    return value > 0 ? TablePrinter::num(value, 0) : "-";
}

} // namespace aegis::bench

#endif // AEGIS_BENCH_BENCH_COMMON_H
