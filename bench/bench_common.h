/**
 * @file
 * Shared plumbing for the figure-reproduction benchmark binaries.
 *
 * Every bench accepts the same Monte-Carlo flags and prints a table
 * with a "paper" column (where §3 of the paper quotes a number) next
 * to the measured value. Absolute agreement is not expected — the
 * paper ran 2048 pages, we default to fewer for speed — but ordering,
 * ratios and crossovers should match (EXPERIMENTS.md records both).
 *
 * BenchRunner adds the observability surface every bench shares:
 * --json writes a schema-versioned run manifest, --quiet silences the
 * progress/ETA reports, --trace-timers records scoped wall-clock
 * timers (with log2-bucket percentile estimates), --trace-out writes
 * a Perfetto-loadable event trace on simulated time, --timeseries
 * embeds deterministic telemetry series in the manifest. Flags are
 * declared as FlagSpec tables (util/cli.h), so each
 * binary's surface is one readable table and --help is generated from
 * the same source of truth.
 * The study wrappers (pageStudy/blockStudy/memorySurvival) and emit()
 * feed the active runner, so a bench body needs no manifest plumbing
 * of its own.
 */

#ifndef AEGIS_BENCH_BENCH_COMMON_H
#define AEGIS_BENCH_BENCH_COMMON_H

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "sim/shard.h"
#include "sim/workload.h"
#include "sweep/shard_report.h"
#include "util/atomic_file.h"
#include "util/cancel.h"
#include "util/chaos.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/serialize.h"
#include "util/table_printer.h"

namespace aegis::bench {

/** The flags shared by all Monte-Carlo figure benches. */
inline constexpr FlagSpec kCommonFlagSpecs[] = {
    {"pages", FlagKind::Uint, "64",
     "4KB pages per Monte-Carlo run (paper: 2048 = 8MB)"},
    {"blocks", FlagKind::Uint, "512", "blocks for block-level studies"},
    {"seed", FlagKind::Uint, "1", "master random seed"},
    {"lifetime-mean", FlagKind::Double, "1e8",
     "mean cell lifetime in writes"},
    {"lifetime-cv", FlagKind::Double, "0.25",
     "lifetime coefficient of variation"},
    {"lifetime-kind", FlagKind::String, "normal",
     "lifetime distribution: normal|lognormal|weibull|uniform"},
    {"labelings", FlagKind::Uint, "256",
     "W/R labeling samples for data-dependent schemes"},
    {"csv", FlagKind::Bool, "false",
     "emit CSV instead of aligned tables"},
    {"audit", FlagKind::Bool, "false",
     "wrap every scheme in the runtime invariant auditor (slow; "
     "aborts on the first violation)"},
    {"timeseries", FlagKind::Bool, "false",
     "record a per-chunk telemetry row grid in the manifest's "
     "timeseries section (jobs-invariant except the wall_ms column)"},
    {"jobs", FlagKind::Uint, "0",
     "Monte-Carlo worker threads (0 = one per hardware thread); "
     "output is identical for every value"},
    {"batch", FlagKind::Uint, "8",
     "block lives simulated per structure-of-arrays batch; "
     "output is identical for every value"},
    {"shard", FlagKind::String, "",
     "compute only chunk-grid shard <index>/<count> (0-based) and "
     "record it in the --checkpoint file for aegis-sweep to merge; "
     "requires --checkpoint"},
};

/** The flags shared by the timed latency benches (bench/latency_*):
 *  workload shape plus the controller's timing-model knobs. */
inline constexpr FlagSpec kTimedFlagSpecs[] = {
    {"schemes", FlagKind::String, "none,ecp6,safer64-cache,aegis-9x61",
     "comma-separated schemes to simulate"},
    {"trace", FlagKind::String, "uniform",
     "request stream: uniform|sequential|hotcold:<f>:<t>|"
     "zipfian[:<theta>]|file:<path>"},
    {"pages", FlagKind::Uint, "16", "4KB pages the trace covers"},
    {"writes", FlagKind::Uint, "2000",
     "write requests to retire per scheme"},
    {"read-fraction", FlagKind::Double, "0.5",
     "fraction of synthetic requests that read"},
    {"arrival-gap", FlagKind::Uint, "40",
     "ticks between synthetic request arrivals"},
    {"seed", FlagKind::Uint, "1", "master random seed"},
    {"banks", FlagKind::Uint, "8", "independent memory banks"},
    {"queue-depth", FlagKind::Uint, "32",
     "per-bank, per-class request queue depth"},
    {"t-read", FlagKind::Uint, "50", "array read latency, ticks"},
    {"t-program", FlagKind::Uint, "500",
     "one program pulse of program-and-verify, ticks"},
    {"t-verify", FlagKind::Uint, "50",
     "one in-loop verification read, ticks"},
    {"csv", FlagKind::Bool, "false",
     "emit CSV instead of aligned tables"},
    {"timeline-interval", FlagKind::Uint, "2000",
     "sim-tick interval between timeseries samples when --timeseries "
     "is on (0 disables sampling)"},
    {"timeseries", FlagKind::Bool, "false",
     "record each simulation's sampled controller totals in the "
     "manifest's timeseries section (bit-identical across --jobs)"},
    {"jobs", FlagKind::Uint, "0",
     "scheme-level worker threads (0 = one per hardware thread); "
     "output is identical for every value"},
};

/** The observability/robustness flags every BenchRunner registers. */
inline constexpr FlagSpec kRunnerFlagSpecs[] = {
    {"json", FlagKind::String, "",
     "write a JSON run manifest to this path"},
    {"quiet", FlagKind::Bool, "false",
     "suppress progress/ETA reports on stderr"},
    {"trace-timers", FlagKind::Bool, "false",
     "record scoped wall-clock timers (scheme read/write/recover, "
     "block/page lives) in the manifest"},
    {"checkpoint", FlagKind::String, "",
     "periodically snapshot sweep state to this path (atomic "
     "replace; resumable with --resume)"},
    {"resume", FlagKind::Bool, "false",
     "restore prior progress from the --checkpoint file; the "
     "resumed run is bit-identical to an uninterrupted one"},
    {"checkpoint-every", FlagKind::Uint, "8",
     "snapshot cadence in finished chunks (0 = only at sweep "
     "boundaries)"},
    {"deadline", FlagKind::Double, "0",
     "cancel gracefully after this many seconds of wall clock "
     "(0 = none); a cancelled run exits 124 and can be resumed"},
    {"trace-out", FlagKind::String, "",
     "write a Chrome trace-event JSON file (Perfetto-loadable) of "
     "the run's simulated-time events to this path"},
    {"trace-capacity", FlagKind::Uint, "65536",
     "event-trace ring capacity per track; past it events are "
     "dropped and counted"},
    {"finalize-partial", FlagKind::Bool, "false",
     "restore-only run: rebuild every result from the --checkpoint "
     "file (typically a merged sharded sweep) without computing new "
     "chunks; requires --resume"},
    {"shards-report", FlagKind::String, "",
     "embed the per-shard outcomes from this aegis-sweep report file "
     "in the manifest's `shards` section"},
};

/** Register the flags shared by all figure benches. */
inline void
addCommonFlags(CliParser &cli)
{
    cli.addAll(kCommonFlagSpecs);
}

/** Build the experiment config implied by the parsed flags. */
inline sim::ExperimentConfig
configFrom(const CliParser &cli, std::uint32_t block_bits)
{
    sim::ExperimentConfig cfg;
    cfg.blockBits = block_bits;
    cfg.pages = static_cast<std::uint32_t>(cli.getUint("pages"));
    cfg.seed = cli.getUint("seed");
    cfg.lifetimeKind = cli.getString("lifetime-kind");
    cfg.lifetimeMean = cli.getDouble("lifetime-mean");
    cfg.lifetimeParam = cli.getDouble("lifetime-cv");
    cfg.tracker.labelingSamples =
        static_cast<std::uint32_t>(cli.getUint("labelings"));
    cfg.audit = cli.getBool("audit");
    cfg.jobs = static_cast<std::uint32_t>(cli.getUint("jobs"));
    cfg.batch = static_cast<std::uint32_t>(cli.getUint("batch"));
    return cfg;
}

/**
 * Structured factory spec for a scheme honouring --audit, for benches
 * that build schemes directly instead of through an ExperimentConfig.
 */
inline core::SchemeSpec
schemeSpec(const CliParser &cli, const std::string &name)
{
    core::SchemeSpec spec = core::SchemeSpec::parse(name);
    spec.audit = spec.audit || cli.getBool("audit");
    return spec;
}

/**
 * The leading table cells every per-scheme row shares: the scheme
 * label and its overhead-bit budget.
 */
inline std::vector<std::string>
studyCells(const sim::StudyResult &study)
{
    return {study.scheme, std::to_string(study.overheadBits)};
}

/** An ExperimentConfig as a manifest "configs" entry. */
inline obs::JsonObject
configJson(const sim::ExperimentConfig &cfg)
{
    using obs::JsonValue;
    obs::JsonObject o;
    o.emplace_back("scheme", JsonValue::str(cfg.scheme));
    o.emplace_back("blockBits", JsonValue::uint(cfg.blockBits));
    o.emplace_back("pageBytes", JsonValue::uint(cfg.pageBytes));
    o.emplace_back("pages", JsonValue::uint(cfg.pages));
    o.emplace_back("seed", JsonValue::uint(cfg.seed));
    o.emplace_back("lifetimeKind", JsonValue::str(cfg.lifetimeKind));
    o.emplace_back("lifetimeMean", JsonValue::real(cfg.lifetimeMean));
    o.emplace_back("lifetimeParam", JsonValue::real(cfg.lifetimeParam));
    o.emplace_back("wearBaseRate", JsonValue::real(cfg.wear.baseRate));
    o.emplace_back("wearAmplifiedExtra",
                   JsonValue::real(cfg.wear.amplifiedExtra));
    o.emplace_back("labelingSamples",
                   JsonValue::uint(cfg.tracker.labelingSamples));
    o.emplace_back("audit", JsonValue::boolean(cfg.audit));
    o.emplace_back("jobs", JsonValue::uint(cfg.jobs));
    o.emplace_back("batch", JsonValue::uint(cfg.batch));
    return o;
}

/** A parsed flag as its natural JSON type. */
inline obs::JsonValue
flagJson(const CliParser::FlagValue &f)
{
    switch (f.kind) {
    case CliParser::FlagKind::Uint:
        return obs::JsonValue::uint(std::stoull(f.value));
    case CliParser::FlagKind::Double:
        return obs::JsonValue::real(std::stod(f.value));
    case CliParser::FlagKind::Bool:
        return obs::JsonValue::boolean(f.value == "true" ||
                                       f.value == "1" ||
                                       f.value == "yes");
    case CliParser::FlagKind::String:
        break;
    }
    return obs::JsonValue::str(f.value);
}

/**
 * One bench invocation: flag registration, progress/trace switches,
 * phase timing and the JSON run manifest.
 *
 * Exactly one instance exists per bench process; it registers itself
 * so the free helpers below (emit(), pageStudy(), ...) can feed the
 * manifest without every call site carrying a runner reference.
 */
class BenchRunner
{
  public:
    enum class Flags {
        MonteCarlo, ///< full Monte-Carlo flag set (kCommonFlagSpecs)
        Timed,      ///< latency benches: workload + timing model knobs
        Minimal     ///< analytic benches: --csv only
    };

    BenchRunner(const std::string &program, const std::string &about,
                Flags flag_set = Flags::MonteCarlo)
        : cliParser(program, about), record(program, about),
          flagSet(flag_set), programName(program)
    {
        static constexpr FlagSpec kCsvOnly[] = {
            {"csv", FlagKind::Bool, "false",
             "emit CSV instead of aligned tables"},
        };
        switch (flagSet) {
        case Flags::MonteCarlo:
            cliParser.addAll(kCommonFlagSpecs);
            break;
        case Flags::Timed:
            cliParser.addAll(kTimedFlagSpecs);
            break;
        case Flags::Minimal:
            cliParser.addAll(kCsvOnly);
            break;
        }
        cliParser.addAll(kRunnerFlagSpecs);
        AEGIS_REQUIRE(current_ == nullptr,
                      "one BenchRunner per process");
        current_ = this;
    }

    ~BenchRunner() { current_ = nullptr; }

    BenchRunner(const BenchRunner &) = delete;
    BenchRunner &operator=(const BenchRunner &) = delete;

    CliParser &cli() { return cliParser; }
    const CliParser &cli() const { return cliParser; }

    /** The manifest under construction, for bench-specific extras. */
    obs::Manifest &manifest() { return record; }

    /**
     * Close the open phase (recording its wall-clock) and open a new
     * one. A bench that never calls this gets a single "run" phase
     * spanning the whole body.
     */
    void
    phase(const std::string &name)
    {
        closePhase();
        phaseName = name;
        phaseStart = std::chrono::steady_clock::now();
        phaseOpen = true;
    }

    /** Record one experiment configuration (duplicates skipped). */
    void
    noteConfig(const sim::ExperimentConfig &cfg)
    {
        record.addConfig(configJson(cfg));
    }

    /** Record a printed table's cells verbatim. */
    void noteTable(const TablePrinter &table) { record.addTable(table); }

    /**
     * Parse flags, run @p body, then finalize/write the manifest.
     *
     * Exit codes: 0 success, 1 runtime/configuration error, 2 usage
     * error (bad flags, rejected before any work), 130/124/3 when the
     * sweep was cancelled by a signal / the --deadline watchdog / an
     * injected cancellation (the manifest is still written, marked
     * "status": "partial", and a final checkpoint is saved).
     */
    template <typename Fn>
    int
    run(int argc, const char *const *argv, Fn body)
    {
        const Expected<CliParser::ParseResult> parsed =
            cliParser.tryParse(argc, argv);
        if (!parsed.ok()) {
            std::cerr << "error: " << parsed.error() << "\n";
            return 2;
        }
        if (parsed.value() == CliParser::ParseResult::Help)
            return 0;
        if (flagSet != Flags::Minimal && cliParser.isSet("jobs") &&
            cliParser.getUint("jobs") == 0) {
            std::cerr << "error: --jobs must be at least 1 (omit the "
                         "flag for one worker per hardware thread)\n";
            return 2;
        }
        if (flagSet == Flags::MonteCarlo && cliParser.isSet("batch") &&
            cliParser.getUint("batch") == 0) {
            std::cerr << "error: --batch must be at least 1\n";
            return 2;
        }
        if (cliParser.getBool("resume") &&
            cliParser.getString("checkpoint").empty()) {
            std::cerr << "error: --resume requires --checkpoint "
                         "<path>\n";
            return 2;
        }
        if (flagSet == Flags::MonteCarlo &&
            !cliParser.getString("shard").empty()) {
            const Expected<sim::ShardSpec> parsedShard =
                sim::ShardSpec::parse(cliParser.getString("shard"));
            if (!parsedShard.ok()) {
                std::cerr << "error: " << parsedShard.error() << "\n";
                return 2;
            }
            shardSpec = *parsedShard;
        }
        if (shardSpec.active() &&
            cliParser.getString("checkpoint").empty()) {
            std::cerr << "error: --shard requires --checkpoint "
                         "<path> (the shard's partial results live "
                         "there)\n";
            return 2;
        }
        const bool finalizePartial =
            cliParser.getBool("finalize-partial");
        if (finalizePartial && !cliParser.getBool("resume")) {
            std::cerr << "error: --finalize-partial requires "
                         "--resume (it only restores prior work)\n";
            return 2;
        }
        if (finalizePartial && shardSpec.active()) {
            std::cerr << "error: --finalize-partial restores the "
                         "whole grid and cannot be combined with "
                         "--shard\n";
            return 2;
        }

        try {
            obs::setProgressEnabled(!cliParser.getBool("quiet"));
            obs::setTracingEnabled(cliParser.getBool("trace-timers"));
            (void)chaosConfig(); // malformed AEGIS_CHAOS fails here

            // Fail fast on unwritable output paths: a sweep must not
            // run for hours only to lose its results at the end.
            const std::string jsonPath = cliParser.getString("json");
            if (!jsonPath.empty()) {
                const Status w = probeWritable(jsonPath);
                AEGIS_REQUIRE(w.ok(), "--json path is not writable: " +
                                          w.error());
            }
            const std::string tracePath =
                cliParser.getString("trace-out");
            if (!tracePath.empty()) {
                const Status w = probeWritable(tracePath);
                AEGIS_REQUIRE(w.ok(),
                              "--trace-out path is not writable: " +
                                  w.error());
                obs::armTraceSink(static_cast<std::size_t>(
                    cliParser.getUint("trace-capacity")));
            }
            if (flagSet != Flags::Minimal &&
                cliParser.getBool("timeseries"))
                obs::armTimeline();

            CancelToken &cancel = processCancelToken();
            installSignalCancellation();
            const double deadline = cliParser.getDouble("deadline");
            if (deadline > 0)
                cancel.setDeadlineAfter(deadline);

            const std::string ckptPath =
                cliParser.getString("checkpoint");
            if (!ckptPath.empty()) {
                const Status w = probeWritable(ckptPath);
                AEGIS_REQUIRE(w.ok(),
                              "--checkpoint path is not writable: " +
                                  w.error());
                session = std::make_unique<sim::CheckpointSession>(
                    ckptPath, programName, flagsFingerprint(),
                    masterSeed(), shardSpec);
                session->setSnapshotEveryChunks(
                    static_cast<std::uint32_t>(
                        cliParser.getUint("checkpoint-every")));
                if (cliParser.getBool("resume")) {
                    const Status r = session->resume();
                    AEGIS_REQUIRE(r.ok(), r.error());
                }
                // The finalize pass must leave the merged checkpoint
                // exactly as the merge wrote it: it is the sweep's
                // artifact of record, and a crash mid-finalize must
                // not clobber it with a half-restored snapshot.
                if (finalizePartial)
                    session->setReadOnly(true);
            }

            const std::string &reportPath =
                cliParser.getString("shards-report");
            if (!reportPath.empty()) {
                const Expected<std::vector<obs::ShardEntry>> entries =
                    sweep::loadShardReportFile(reportPath);
                AEGIS_REQUIRE(entries.ok(), entries.error());
                for (const obs::ShardEntry &e : *entries)
                    anyShardFailed =
                        anyShardFailed || e.status != "ok";
                record.setShards(*entries);
            }

            const sim::ScopedRunContext scope(sim::RunContext{
                session.get(), &cancel, shardSpec, finalizePartial});
            runStart = std::chrono::steady_clock::now();
            body();
            // A shard worker computed only its slice, and a merged
            // sweep missing chunks (failed shard) restored only what
            // survived — either way the record is honest about being
            // a subset.
            const bool subset =
                shardSpec.active() || anyShardFailed ||
                (session != nullptr && session->skippedChunks() > 0);
            finish(subset ? "partial" : "complete");
            return 0;
        } catch (const CancelledError &ex) {
            obs::progressLine(std::string(programName) + ": " +
                              cancelOutcomeLabel(ex.reason()) +
                              (session != nullptr
                                   ? "; progress saved to `" +
                                         session->path() +
                                         "' (rerun with --resume)"
                                   : ""));
            try {
                finish("partial");
            } catch (const std::exception &nested) {
                std::cerr << "error: " << nested.what() << "\n";
                return 1;
            }
            return cancelExitCode(ex.reason());
        } catch (const std::exception &ex) {
            std::cerr << "error: " << ex.what() << "\n";
            return 1;
        }
    }

    /** The active runner, or nullptr outside BenchRunner::run. */
    static BenchRunner *current() { return current_; }

  private:
    void
    closePhase()
    {
        if (!phaseOpen)
            return;
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - phaseStart;
        record.addPhase(phaseName, dt.count());
        ++phasesRecorded;
        phaseOpen = false;
    }

    /** The master seed a checkpoint must match (0 for analytic
     *  benches, which have no seed flag). */
    std::uint64_t
    masterSeed() const
    {
        return flagSet != Flags::Minimal ? cliParser.getUint("seed")
                                         : 0;
    }

    /**
     * Fingerprint of the result-affecting flags, recorded in
     * checkpoints so a resume under different parameters is rejected.
     * Output/robustness flags are excluded — resuming with a
     * different --jobs, --json path, cadence or deadline is exactly
     * the point — and --seed is excluded because the session checks
     * it separately (with a friendlier message).
     */
    std::uint64_t
    flagsFingerprint() const
    {
        static constexpr std::string_view excluded[] = {
            "seed",       "jobs",   "batch", "json",
            "quiet",      "trace-timers", "csv",
            "checkpoint", "resume", "checkpoint-every",
            "deadline",   "trace-out", "trace-capacity",
            "timeseries", "timeline-interval",
            // Shard identity is checked structurally by the
            // checkpoint codec/merge, not via the fingerprint: every
            // shard of one sweep must share the fingerprint so the
            // merged file resumes cleanly.
            "shard",      "shards-report", "finalize-partial"};
        BinaryWriter w;
        for (const CliParser::FlagValue &f : cliParser.values()) {
            bool skip = false;
            for (const std::string_view name : excluded)
                skip = skip || f.name == name;
            if (skip)
                continue;
            w.str(f.name);
            w.str(f.value);
        }
        return fnv1a64(w.data());
    }

    void
    finish(const std::string &status)
    {
        closePhase();
        if (phasesRecorded == 0) {
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - runStart;
            record.addPhase("run", dt.count());
        }
        record.setStatus(status);
        for (const CliParser::FlagValue &f : cliParser.values()) {
            if (f.name == "seed" && f.kind == CliParser::FlagKind::Uint)
                record.setSeed(std::stoull(f.value));
            record.addFlag(f.name, flagJson(f));
        }
        // Work restored from a checkpoint ran in an earlier process;
        // folding its recorded metrics back in keeps a resumed run's
        // counters byte-equal to an uninterrupted run's.
        obs::Metrics totals = obs::processTotals();
        if (session != nullptr)
            totals.merge(session->restoredMetrics());
        record.setMetrics(totals);
        record.setTimerQuantiles(obs::scopeQuantileEstimates());
        // Harvest the Monte-Carlo chunk recorder's series; the timed
        // benches add their per-cell series directly via manifest().
        for (obs::TimeSeries &ts : obs::takeTimelines())
            record.addTimeSeries(std::move(ts));
        obs::disarmTimeline();
        const std::string &path = cliParser.getString("json");
        if (!path.empty())
            record.writeFile(path);
        const std::string &tracePath = cliParser.getString("trace-out");
        if (!tracePath.empty()) {
            const obs::TraceSinkStats stats = obs::traceSinkStats();
            obs::writeTraceFile(tracePath);
            obs::disarmTraceSink();
            if (stats.dropped > 0)
                obs::progressLine(
                    std::string(programName) + ": trace ring full, " +
                    std::to_string(stats.dropped) +
                    " events dropped (raise --trace-capacity)");
        }
    }

    static inline BenchRunner *current_ = nullptr;

    CliParser cliParser;
    obs::Manifest record;
    Flags flagSet;
    std::string programName;
    sim::ShardSpec shardSpec;
    bool anyShardFailed = false;
    std::unique_ptr<sim::CheckpointSession> session;
    std::chrono::steady_clock::time_point runStart{};
    std::chrono::steady_clock::time_point phaseStart{};
    std::string phaseName;
    bool phaseOpen = false;
    std::size_t phasesRecorded = 0;
};

/** Print @p table as text or CSV per the --csv flag, and record its
 *  cells in the active runner's manifest. */
inline void
emit(const TablePrinter &table, const CliParser &cli)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteTable(table);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

/** runPageStudy, recording @p cfg in the active runner's manifest. */
inline sim::PageStudy
pageStudy(const sim::ExperimentConfig &cfg)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runPageStudy(cfg);
}

/** runBlockStudy, recording @p cfg in the active runner's manifest. */
inline sim::BlockStudy
blockStudy(const sim::ExperimentConfig &cfg, std::uint32_t blocks)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runBlockStudy(cfg, blocks);
}

/** runMemorySurvival, recording @p cfg in the manifest. */
inline SurvivalCurve
memorySurvival(const sim::ExperimentConfig &cfg,
               const sim::Workload &workload)
{
    if (BenchRunner::current() != nullptr)
        BenchRunner::current()->noteConfig(cfg);
    return sim::runMemorySurvival(cfg, workload);
}

/** Wrap main-body logic with uniform error reporting: usage errors
 *  exit 2 before any work runs, runtime errors exit 1. */
template <typename Fn>
int
runBench(int argc, const char *const *argv, CliParser &cli, Fn body)
{
    const Expected<CliParser::ParseResult> parsed =
        cli.tryParse(argc, argv);
    if (!parsed.ok()) {
        std::cerr << "error: " << parsed.error() << "\n";
        return 2;
    }
    if (parsed.value() == CliParser::ParseResult::Help)
        return 0;
    try {
        body();
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}

/** A paper-quoted reference value, or "-" when the text gives none. */
inline std::string
paperRef(double value)
{
    return value > 0 ? TablePrinter::num(value, 0) : "-";
}

} // namespace aegis::bench

#endif // AEGIS_BENCH_BENCH_COMMON_H
