/**
 * @file
 * google-benchmark microbenchmarks for the Aegis partition math: the
 * per-access group computation (the "pre-wired logic" of Fig. 3),
 * collision-slope resolution, collision-ROM construction, the
 * re-partition search, and the RDIS invertible-set solver.
 */

#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "aegis/collision_rom.h"
#include "aegis/partition.h"
#include "aegis/trackers.h"
#include "scheme/rdis.h"
#include "util/rng.h"

namespace {

using namespace aegis;
using core::CollisionRom;
using core::Partition;

void
BM_GroupOf(benchmark::State &state)
{
    const Partition part = Partition::forHeight(61, 512);
    std::uint32_t pos = 0, k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(part.groupOf(pos, k));
        pos = (pos + 97) % 512;
        k = (k + 1) % 61;
    }
}
BENCHMARK(BM_GroupOf);

void
BM_CollisionSlope(benchmark::State &state)
{
    const Partition part = Partition::forHeight(61, 512);
    std::uint32_t i = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(part.collisionSlope(0, i));
        i = 1 + (i + 96) % 511;
    }
}
BENCHMARK(BM_CollisionSlope);

void
BM_CollisionRomBuild(benchmark::State &state)
{
    const Partition part = Partition::forHeight(
        static_cast<std::uint32_t>(state.range(0)), 512);
    for (auto _ : state) {
        CollisionRom rom(part);
        benchmark::DoNotOptimize(rom.sizeBits());
    }
}
BENCHMARK(BM_CollisionRomBuild)->Arg(23)->Arg(61);

void
BM_CollisionRomLookup(benchmark::State &state)
{
    const Partition part = Partition::forHeight(61, 512);
    const CollisionRom rom(part);
    std::uint32_t i = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rom.lookup(0, i));
        i = 1 + (i + 96) % 511;
    }
}
BENCHMARK(BM_CollisionRomLookup);

void
BM_RepartitionSearch(benchmark::State &state)
{
    // Cost of finding a separating slope with `faults` faults present
    // (the dominant tracker operation in the Monte Carlo).
    const Partition part = Partition::forHeight(61, 512);
    const auto faults = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    for (auto _ : state) {
        state.PauseTiming();
        auto tracker = core::makeAegisTracker(part, {});
        pcm::FaultSet set;
        std::vector<bool> used(512, false);
        state.ResumeTiming();
        bool alive = true;
        for (std::size_t f = 0; f < faults && alive; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
            } while (used[pos]);
            used[pos] = true;
            alive = tracker->onFault({pos, false}) ==
                    scheme::FaultVerdict::Alive;
        }
        benchmark::DoNotOptimize(alive);
    }
}
BENCHMARK(BM_RepartitionSearch)->Arg(4)->Arg(12)->Arg(20);

void
BM_RdisSolve(benchmark::State &state)
{
    const scheme::RdisSolver solver(16, 32, 3);
    const auto faults = static_cast<std::size_t>(state.range(0));
    Rng rng(11);
    std::vector<std::uint32_t> wrong, right;
    for (std::size_t f = 0; f < faults; ++f)
        (rng.nextBool() ? wrong : right)
            .push_back(static_cast<std::uint32_t>(
                rng.nextBounded(512)));
    scheme::RdisMarks marks;
    for (auto _ : state)
        benchmark::DoNotOptimize(solver.solve(wrong, right, marks));
}
BENCHMARK(BM_RdisSolve)->Arg(3)->Arg(10)->Arg(24);

} // namespace

int
main(int argc, char **argv)
{
    return aegis::bench::microMain(
        argc, argv, "micro_partition_math",
        "Partition arithmetic and solver microbenchmarks");
}
