/**
 * @file
 * Reproduces Figure 10: lifetime of a 512-bit data block under
 * Aegis-rw-p as the pointer budget p grows, for the four A x B
 * formations the paper sweeps (23x23, 17x31, 9x61, 8x71). Expected
 * shape: rapid growth at small p, then a plateau at the lifetime of
 * the corresponding Aegis-rw scheme; the plateau rises with B (the
 * paper reports +24% from B = 23 to B = 71).
 */

#include <vector>

#include "aegis/factory.h"
#include "bench/bench_common.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("fig10_rwp_pointer_sweep",
                  "Reproduce Figure 10 (Aegis-rw-p block lifetime vs "
                  "pointer count)");
    static constexpr FlagSpec kFlags[] = {
        {"max-pointers", FlagKind::Uint, "15",
         "largest pointer budget"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        const std::vector<std::string> formations{"23x23", "17x31",
                                                  "9x61", "8x71"};
        const auto blocks =
            static_cast<std::uint32_t>(cli.getUint("blocks"));
        const auto max_p =
            static_cast<std::uint32_t>(cli.getUint("max-pointers"));

        TablePrinter t("Figure 10 — Aegis-rw-p 512-bit block lifetime "
                       "(M block writes) vs pointer budget, " +
                       std::to_string(blocks) + " blocks/point");
        std::vector<std::string> header{"formation"};
        for (std::uint32_t p = 1; p <= max_p; p += 2)
            header.push_back("p=" + std::to_string(p));
        header.push_back("aegis-rw (plateau)");
        t.setHeader(header);

        for (const std::string &formation : formations) {
            std::vector<std::string> row{formation};
            for (std::uint32_t p = 1; p <= max_p; p += 2) {
                sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
                cfg.scheme = "aegis-rw-p" + std::to_string(p) + "-" +
                             formation;
                const sim::BlockStudy study =
                    bench::blockStudy(cfg, blocks);
                row.push_back(TablePrinter::num(
                    study.blockLifetime.mean() / 1e6, 2));
            }
            // The plateau reference: the un-pointered Aegis-rw.
            sim::ExperimentConfig cfg = bench::configFrom(cli, 512);
            cfg.scheme = "aegis-rw-" + formation;
            const sim::BlockStudy plateau =
                bench::blockStudy(cfg, blocks);
            row.push_back(TablePrinter::num(
                plateau.blockLifetime.mean() / 1e6, 2));
            t.addRow(row);
        }
        bench::emit(t, cli);
    });
}
