/**
 * @file
 * Extension experiments from §4 of the paper (related-work systems
 * the authors position Aegis within):
 *
 *  1. PAYG composition — a small per-block LEC backed by a global
 *     pool. The paper: "Aegis complements PAYG with its strong fault
 *     tolerance capability and its space efficiency." We compare
 *     uniform provisioning against PAYG with ECP and with Aegis LECs
 *     at matched bit budgets.
 *  2. FREE-p remapping — dead blocks are remapped to spares; a
 *     stronger in-block scheme delays the first remap and drains the
 *     spare pool more slowly.
 */

#include <vector>

#include "bench/bench_common.h"
#include "sim/payg.h"
#include "sim/remap.h"

namespace {

using namespace aegis;

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchRunner runner("ext_payg_freep",
                  "PAYG and FREE-p extension experiments (§4)");
    static constexpr FlagSpec kFlags[] = {
        {"spares", FlagKind::Uint, "32",
         "spare blocks for the remap study"},
    };
    CliParser &cli = runner.cli();
    cli.addAll(kFlags);
    return runner.run(argc, argv, [&] {
        sim::ExperimentConfig cfg = bench::configFrom(cli, 512);

        // ---- PAYG ----
        struct PaygRow
        {
            const char *label;
            const char *lec;
            std::uint32_t pool;
        };
        const std::vector<PaygRow> rows{
            {"flat ecp6 (uniform)", "ecp6", 0},
            {"flat aegis-17x31 (uniform)", "aegis-17x31", 0},
            {"payg: ecp1 + pool", "ecp1", 1024},
            {"payg: ecp2 + pool", "ecp2", 512},
            {"payg: aegis-23x23 + pool", "aegis-23x23", 512},
            {"payg: aegis-17x31 + pool", "aegis-17x31", 256},
        };

        const std::uint64_t blocks =
            static_cast<std::uint64_t>(cfg.pages) *
            (cfg.pageBytes * 8 / cfg.blockBits);

        TablePrinter payg_table(
            "PAYG — memory-first-failure time vs provisioning "
            "(512-bit blocks, " +
            std::to_string(cfg.pages) + " pages)");
        payg_table.setHeader({"configuration", "bits/block",
                              "first failure (M writes)", "GEC used",
                              "faults absorbed"});
        for (const PaygRow &row : rows) {
            sim::PaygConfig payg;
            payg.lecScheme = row.lec;
            payg.gecEntries = row.pool;
            const sim::PaygResult r = sim::runPaygStudy(cfg, payg);
            payg_table.addRow(
                {row.label,
                 TablePrinter::num(r.overheadBitsPerBlock(blocks), 1),
                 TablePrinter::num(r.firstFailure / 1e6, 1),
                 std::to_string(r.gecUsed),
                 TablePrinter::intNum(
                     static_cast<long long>(r.faultsAbsorbed))});
        }
        bench::emit(payg_table, cli);

        // ---- FREE-p ----
        const auto spares =
            static_cast<std::uint32_t>(cli.getUint("spares"));
        TablePrinter remap_table(
            "FREE-p — remapped-memory lifetime with " +
            std::to_string(spares) + " spare blocks");
        remap_table.setHeader({"in-block scheme",
                               "first remap (M writes)",
                               "spares exhausted (M writes)",
                               "gain"});
        for (const char *scheme :
             {"ecp6", "safer32", "aegis-23x23", "aegis-9x61"}) {
            sim::ExperimentConfig rcfg = cfg;
            rcfg.scheme = scheme;
            const sim::RemapResult r =
                sim::runRemapStudy(rcfg, spares);
            remap_table.addRow(
                {scheme,
                 TablePrinter::num(r.firstRemapTime / 1e6, 1),
                 TablePrinter::num(r.exhaustionTime / 1e6, 1),
                 TablePrinter::num(r.gain(), 2) + "x"});
        }
        bench::emit(remap_table, cli);
    });
}
