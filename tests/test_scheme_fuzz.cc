/**
 * @file
 * Cross-scheme fuzzing: long random interleavings of writes, fault
 * injections, metadata export/import and cloning, with one global
 * invariant — every read after a successful write returns exactly the
 * data written, and a scheme that reports a failed write never
 * silently corrupts earlier state (the failure is the signal to
 * retire the block).
 *
 * Every fuzzed scheme runs wrapped in the runtime invariant auditor
 * (audit::SchemeAuditor), so each random step also exercises the
 * theorem, budget and directory cross-checks. The differential
 * harness at the bottom drives all schemes through one identical
 * scripted fault/write sequence and validates their recoverability
 * claims against brute-force oracles reimplemented here,
 * independently of both the schemes and the auditor.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "aegis/aegis_scheme.h"
#include "aegis/factory.h"
#include "aegis/partition.h"
#include "obs/metrics.h"
#include "pcm/cell_array.h"
#include "pcm/cell_array_batch.h"
#include "pcm/fail_cache.h"
#include "scheme/batch.h"
#include "scheme/inversion_driver.h"
#include "scheme/safer.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/simd/simd.h"

namespace aegis {
namespace {

struct FuzzCase
{
    const char *name;
    std::size_t blockBits;
    int steps;
};

class SchemeFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(SchemeFuzz, LongRandomInterleaving)
{
    const auto &param = GetParam();
    Rng rng(std::string(param.name).size() * 7919 + param.blockBits);

    for (int trial = 0; trial < 4; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        auto scheme =
            core::makeAuditedScheme(param.name, param.blockBits);
        scheme->attachDirectory(dir.get(), trial);
        pcm::CellArray cells(param.blockBits);

        bool have_data = false;
        BitVector last(param.blockBits);
        bool retired = false;

        for (int step = 0; step < param.steps && !retired; ++step) {
            const auto dice = rng.nextBounded(10);
            if (dice < 6) {
                // Write random data.
                last = BitVector::random(param.blockBits, rng);
                const auto outcome = scheme->write(cells, last);
                if (!outcome.ok) {
                    retired = true;
                    break;
                }
                have_data = true;
                ASSERT_EQ(scheme->read(cells), last)
                    << param.name << " step " << step;
            } else if (dice < 8) {
                // Inject a fault at a random healthy cell; the next
                // writes must cope or report failure.
                std::uint32_t pos;
                int guard = 0;
                do {
                    pos = static_cast<std::uint32_t>(
                        rng.nextBounded(param.blockBits));
                } while (cells.isStuck(pos) && ++guard < 64);
                if (!cells.isStuck(pos)) {
                    // Cells stick at their current value (the
                    // physically accurate model), so stored data is
                    // intact until a later write wants the opposite.
                    const bool stuck = cells.readBit(pos);
                    cells.injectFaultAtCurrentValue(pos);
                    dir->record(trial, {pos, stuck});
                }
            } else if (dice == 8) {
                // Metadata round-trip through a fresh instance.
                const BitVector image = scheme->exportMetadata();
                auto fresh =
                    core::makeAuditedScheme(param.name, param.blockBits);
                fresh->attachDirectory(dir.get(), trial);
                fresh->importMetadata(image);
                if (have_data) {
                    ASSERT_EQ(fresh->read(cells), last)
                        << param.name << " metadata step " << step;
                }
                scheme = std::move(fresh);
            } else {
                // Clone and continue with the copy.
                auto copy = scheme->clone();
                copy->attachDirectory(dir.get(), trial);
                if (have_data) {
                    ASSERT_EQ(copy->read(cells), last)
                        << param.name << " clone step " << step;
                }
                scheme = std::move(copy);
            }
        }
        // If the block retired, that is legitimate — but it must have
        // happened with faults present, not on a healthy block.
        if (retired) {
            EXPECT_GT(cells.faultCount(), scheme->hardFtc())
                << param.name << " retired too early";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeFuzz,
    ::testing::Values(FuzzCase{"ecp6", 512, 120},
                      FuzzCase{"ecp4", 256, 120},
                      FuzzCase{"safer32", 512, 120},
                      FuzzCase{"safer64", 512, 120},
                      FuzzCase{"safer16-cache", 256, 120},
                      FuzzCase{"rdis3", 512, 120},
                      FuzzCase{"rdis3", 256, 120},
                      FuzzCase{"hamming", 512, 120},
                      FuzzCase{"aegis-23x23", 512, 150},
                      FuzzCase{"aegis-17x31", 512, 150},
                      FuzzCase{"aegis-9x61", 512, 150},
                      FuzzCase{"aegis-12x23", 256, 150},
                      FuzzCase{"aegis-cache-23x23", 512, 150},
                      FuzzCase{"aegis-rw-23x23", 512, 150},
                      FuzzCase{"aegis-rw-17x31", 512, 150},
                      FuzzCase{"aegis-rw-p4-23x23", 512, 150},
                      FuzzCase{"aegis-rw-p9-9x61", 512, 150}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        std::string n = info.param.name;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::to_string(info.param.blockBits);
    });

// ---------------------------------------------------------------------
// Differential harness: one scripted fault/write sequence, all schemes.
// ---------------------------------------------------------------------

/** One scripted step: optionally inject a fault, then write @ref data. */
struct ScriptStep
{
    bool inject = false;
    std::uint32_t pos = 0;
    bool stuck = false;
    BitVector data;
};

/** Pre-generate a script so every scheme sees the exact same events. */
std::vector<ScriptStep>
makeScript(std::size_t block_bits, int rounds, Rng &rng)
{
    std::vector<ScriptStep> script;
    std::vector<bool> used(block_bits, false);
    for (int round = 0; round < rounds; ++round) {
        ScriptStep step;
        if (round > 2 && round % 3 == 0) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(
                    rng.nextBounded(block_bits));
            } while (used[pos]);
            used[pos] = true;
            step.inject = true;
            step.pos = pos;
            step.stuck = rng.nextBool();
        }
        step.data = BitVector::random(block_bits, rng);
        script.push_back(std::move(step));
    }
    return script;
}

/** Parse "AxB" out of an Aegis factory name; false for non-Aegis. */
bool
parseFormation(const std::string &name, std::uint32_t &a_out,
               std::uint32_t &b_out)
{
    const auto x = name.rfind('x');
    if (name.rfind("aegis-", 0) != 0 || x == std::string::npos)
        return false;
    auto digits_start = x;
    while (digits_start > 0 &&
           std::isdigit(static_cast<unsigned char>(
               name[digits_start - 1])) != 0)
        --digits_start;
    a_out = static_cast<std::uint32_t>(
        std::stoul(name.substr(digits_start, x - digits_start)));
    b_out = static_cast<std::uint32_t>(std::stoul(name.substr(x + 1)));
    return true;
}

/** Group of bit @p pos in formation AxB under slope @p k (paper §2.2). */
std::uint32_t
groupOf(std::uint32_t pos, std::uint32_t b, std::uint32_t k)
{
    const std::uint32_t column = pos / b;
    const std::uint32_t y = pos % b;
    return (y + b - (column * k) % b) % b;
}

/** True when slope @p k puts every fault in its own group. */
bool
slopeSeparates(const pcm::FaultSet &faults, std::uint32_t b,
               std::uint32_t k)
{
    std::vector<int> count(b, 0);
    for (const auto &f : faults) {
        if (++count[groupOf(f.pos, b, k)] > 1)
            return false;
    }
    return true;
}

/**
 * True when slope @p k leaves some group with a stuck-at-Wrong /
 * stuck-at-Right mixture for @p data — the only unwritable pattern
 * for Aegis-rw (paper §2.4).
 */
bool
slopeMixed(const pcm::FaultSet &faults, const BitVector &data,
           std::uint32_t b, std::uint32_t k)
{
    std::vector<signed char> seen(b, 0);    // 0 none, +1 W, -1 R
    for (const auto &f : faults) {
        const signed char kind =
            pcm::classify(f, data.get(f.pos)) == pcm::FaultKind::Wrong
                ? static_cast<signed char>(1)
                : static_cast<signed char>(-1);
        auto &slot = seen[groupOf(f.pos, b, k)];
        if (slot == -kind)
            return true;
        slot = kind;
    }
    return false;
}

TEST(DifferentialFuzz, IdenticalSequencesAcrossAllSchemes)
{
    constexpr std::size_t kBits = 256;
    const std::vector<std::string> schemes = {
        "none",          "hamming",
        "ecp4",          "safer32",
        "safer16-cache", "rdis3",
        "aegis-12x23",   "aegis-9x31",
        "aegis-cache-12x23", "aegis-rw-12x23",
        "aegis-rw-p4-12x23",
    };

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 0x9e3779b9ull);
        const auto script = makeScript(kBits, 90, rng);

        for (const auto &name : schemes) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " " + name);
            auto scheme = core::makeAuditedScheme(name, kBits);
            pcm::OracleFaultDirectory dir;
            scheme->attachDirectory(&dir, seed);
            pcm::CellArray cells(kBits);

            std::uint32_t a = 0;
            std::uint32_t b = 0;
            const bool is_aegis = parseFormation(name, a, b);
            const bool is_rw_p = name.rfind("aegis-rw-p", 0) == 0;
            const bool is_rw = !is_rw_p &&
                               name.rfind("aegis-rw-", 0) == 0;

            for (const auto &step : script) {
                if (step.inject && !cells.isStuck(step.pos)) {
                    cells.injectFault(step.pos, step.stuck);
                    dir.record(seed, {step.pos, step.stuck});
                }
                const auto outcome = scheme->write(cells, step.data);
                if (outcome.ok) {
                    ASSERT_EQ(scheme->read(cells), step.data);
                    continue;
                }

                // The hard FTC is a guarantee over all placements and
                // data patterns: failing within it is a scheme bug.
                EXPECT_GT(cells.faultCount(), scheme->hardFtc())
                    << "retired with only " << cells.faultCount()
                    << " faults";

                // Brute-force recoverability oracles for the Aegis
                // family (rw-p may also die of pointer exhaustion, so
                // no slope-level claim applies to it).
                if (is_aegis && !is_rw && !is_rw_p) {
                    const auto faults = cells.faults();
                    for (std::uint32_t k = 0; k < b; ++k) {
                        EXPECT_FALSE(slopeSeparates(faults, b, k))
                            << "slope " << k
                            << " separates all faults, yet the "
                               "scheme reported failure";
                    }
                }
                if (is_rw) {
                    const auto faults = cells.faults();
                    for (std::uint32_t k = 0; k < b; ++k) {
                        EXPECT_TRUE(
                            slopeMixed(faults, step.data, b, k))
                            << "slope " << k
                            << " has no W/R mixture for this data, "
                               "yet the scheme reported failure";
                    }
                }
                break;    // block retired
            }
        }
    }
}

/**
 * The positive side of the oracle: as long as some slope separates
 * every injected fault, a basic Aegis write can never fail (Theorem 2
 * guarantees such a slope exists while faults are in distinct
 * columns, and the implementation searches all slopes).
 */
TEST(DifferentialFuzz, BasicAegisNeverFailsWhileASlopeSeparates)
{
    constexpr std::size_t kBits = 256;
    constexpr std::uint32_t kB = 23;
    Rng rng(99);
    auto scheme = core::makeAuditedScheme("aegis-12x23", kBits);
    pcm::CellArray cells(kBits);

    for (int round = 0; round < 200; ++round) {
        if (round % 4 == 1) {
            const auto pos = static_cast<std::uint32_t>(
                rng.nextBounded(kBits));
            if (!cells.isStuck(pos))
                cells.injectFault(pos, rng.nextBool());
        }
        bool separable = false;
        const auto faults = cells.faults();
        for (std::uint32_t k = 0; k < kB && !separable; ++k)
            separable = slopeSeparates(faults, kB, k);

        const auto outcome =
            scheme->write(cells, BitVector::random(kBits, rng));
        if (separable) {
            ASSERT_TRUE(outcome.ok)
                << "a separating slope exists but the write failed "
                   "with "
                << faults.size() << " faults";
            ASSERT_EQ(scheme->read(cells).size(), kBits);
        }
        if (!outcome.ok)
            break;
    }
}

// ---------------------------------------------------------------------
// Masked vs naive: the word-parallel data plane (group masks, XOR
// inversion, word-level differential writes) cross-checked against the
// retained per-bit reference paths over randomized fault sets, data
// patterns and block geometries.
// ---------------------------------------------------------------------

struct Formation
{
    std::uint32_t a;
    std::uint32_t b;
    std::uint32_t bits;
};

constexpr Formation kFormations[] = {{23, 23, 512}, {17, 31, 512},
                                     {9, 61, 512},  {12, 23, 256},
                                     {6, 43, 256},  {4, 67, 256}};

TEST(MaskedVsNaive, GroupMasksMatchGroupOfAndPartitionTheBlock)
{
    for (const Formation &f : kFormations) {
        SCOPED_TRACE(std::to_string(f.a) + "x" + std::to_string(f.b) +
                     "/" + std::to_string(f.bits));
        const core::Partition part(f.a, f.b, f.bits);
        core::GroupMaskCache cache;
        for (std::uint32_t k = 0; k < part.slopes(); ++k) {
            cache.rebuild(part, k);
            BitVector covered(f.bits);
            for (std::uint32_t g = 0; g < part.groups(); ++g) {
                const BitVector &mask = cache.mask(g);
                ASSERT_EQ(mask.size(), f.bits);
                for (std::uint32_t pos = 0; pos < f.bits; ++pos) {
                    ASSERT_EQ(mask.get(pos), part.groupOf(pos, k) == g)
                        << "slope " << k << " group " << g << " pos "
                        << pos;
                }
                // Masks of one slope must be pairwise disjoint...
                BitVector overlap = covered;
                overlap.andAssign(mask);
                ASSERT_TRUE(overlap.none())
                    << "slope " << k << " group " << g
                    << " overlaps an earlier group";
                covered.orAssign(mask);
            }
            // ...and together cover every bit (Theorem 1 again, this
            // time through the materialized masks).
            ASSERT_EQ(covered.popcount(), f.bits) << "slope " << k;
        }
    }
}

TEST(MaskedVsNaive, AegisMaskedInversionMatchesNaive)
{
    Rng rng(2026);
    for (const Formation &f : kFormations) {
        SCOPED_TRACE(std::to_string(f.a) + "x" + std::to_string(f.b) +
                     "/" + std::to_string(f.bits));
        core::AegisPartitionPolicy policy(
            core::Partition(f.a, f.b, f.bits));
        for (int trial = 0; trial < 16; ++trial) {
            policy.setSlope(
                static_cast<std::uint32_t>(rng.nextBounded(f.b)));
            const BitVector inv =
                BitVector::random(policy.groupCount(), rng);
            const BitVector data = BitVector::random(f.bits, rng);
            BitVector masked;
            scheme::applyGroupInversionInto(data, policy, inv, masked);
            ASSERT_EQ(masked,
                      scheme::applyGroupInversion(data, policy, inv))
                << "slope " << policy.currentSlope() << " trial "
                << trial;
        }
    }
}

TEST(MaskedVsNaive, SaferMaskedInversionMatchesNaive)
{
    Rng rng(77);
    for (const std::size_t bits : {std::size_t{256}, std::size_t{512}}) {
        SCOPED_TRACE(bits);
        scheme::SaferPartition part(bits, 5, true);
        for (int trial = 0; trial < 16; ++trial) {
            // Drive the field selection through random separations so
            // the masks are exercised across many configurations.
            pcm::FaultSet faults;
            std::vector<bool> used(bits, false);
            for (int i = 0; i < trial % 5; ++i) {
                std::uint32_t pos;
                do {
                    pos = static_cast<std::uint32_t>(
                        rng.nextBounded(bits));
                } while (used[pos]);
                used[pos] = true;
                faults.push_back({pos, rng.nextBool()});
            }
            std::uint32_t repartitions = 0;
            ASSERT_TRUE(part.separate(faults, repartitions));

            const BitVector inv =
                BitVector::random(part.groupCount(), rng);
            const BitVector data = BitVector::random(bits, rng);
            BitVector masked;
            scheme::applyGroupInversionInto(data, part, inv, masked);
            ASSERT_EQ(masked,
                      scheme::applyGroupInversion(data, part, inv))
                << "trial " << trial;
        }
    }
}

TEST(MaskedVsNaive, DifferentialWriteMatchesBitwiseReference)
{
    Rng rng(4242);
    for (const std::size_t bits :
         {std::size_t{1}, std::size_t{3}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{127},
          std::size_t{128}, std::size_t{256}, std::size_t{512}}) {
        SCOPED_TRACE(bits);
        pcm::CellArray cells(bits);

        // Independent bitwise reference model of the cell row.
        std::vector<bool> stored(bits, false);
        std::vector<bool> stuck(bits, false);
        std::vector<bool> stuck_val(bits, false);
        std::vector<std::uint64_t> writes(bits, 0);
        std::uint64_t total = 0;

        for (int round = 0; round < 24; ++round) {
            if (round % 3 == 1) {
                const auto pos = rng.nextBounded(bits);
                if (!stuck[pos]) {
                    const bool v = rng.nextBool();
                    cells.injectFault(pos, v);
                    stuck[pos] = true;
                    stuck_val[pos] = v;
                }
            }
            const BitVector target = BitVector::random(bits, rng);
            const bool blind = round % 5 == 4;
            const std::size_t programmed =
                blind ? cells.writeBlind(target)
                      : cells.writeDifferential(target);

            std::size_t expected = 0;
            for (std::size_t i = 0; i < bits; ++i) {
                const bool effective =
                    stuck[i] ? stuck_val[i] : stored[i];
                const bool pulse = blind || effective != target.get(i);
                if (pulse) {
                    ++expected;
                    ++writes[i];
                    if (!stuck[i])
                        stored[i] = target.get(i);
                }
            }
            total += expected;

            ASSERT_EQ(programmed, expected) << "round " << round;
            ASSERT_EQ(cells.totalCellWrites(), total)
                << "round " << round;
            for (std::size_t i = 0; i < bits; ++i) {
                ASSERT_EQ(cells.readBit(i),
                          stuck[i] ? stuck_val[i] : stored[i])
                    << "round " << round << " pos " << i;
                ASSERT_EQ(cells.cellWritesAt(i), writes[i])
                    << "round " << round << " pos " << i;
            }
        }
    }
}

TEST(MaskedVsNaive, ReadIntoMatchesPerBitReadBit)
{
    Rng rng(31337);
    for (const std::size_t bits :
         {std::size_t{1}, std::size_t{3}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{127},
          std::size_t{128}, std::size_t{256}, std::size_t{512}}) {
        SCOPED_TRACE(bits);
        pcm::CellArray cells(bits);
        BitVector out;
        for (int round = 0; round < 10; ++round) {
            if (round % 2 == 1) {
                const auto pos = rng.nextBounded(bits);
                if (!cells.isStuck(pos))
                    cells.injectFault(pos, rng.nextBool());
            }
            cells.writeDifferential(BitVector::random(bits, rng));
            cells.readInto(out);
            ASSERT_EQ(out.size(), bits);
            for (std::size_t i = 0; i < bits; ++i) {
                ASSERT_EQ(out.get(i), cells.readBit(i))
                    << "round " << round << " pos " << i;
            }
            ASSERT_EQ(out, cells.read());
        }
    }
}

// ---------------------------------------------------------------------
// Batch oracle: the batched SoA data plane (pcm::CellArrayBatch +
// Scheme::writeBatch/readBatch) driven against per-block reference
// instances through one identical interleaving of fault injections and
// writes. The contract is total: effective cell state, fault sets,
// per-cell wear, decoded reads, exported metadata, per-write outcomes
// and the obs counter deltas must all be bit-identical, for the
// word-parallel overrides and for the default per-lane loop alike.
// ---------------------------------------------------------------------

struct BatchCase
{
    const char *name;
    std::size_t bits;
    std::size_t lanes;
    int rounds;
};

void
runBatchOracle(const BatchCase &bc, std::uint64_t seed)
{
    Rng rng(seed);
    auto proto = core::makeScheme(bc.name, bc.bits);

    pcm::OracleFaultDirectory refDir;
    pcm::OracleFaultDirectory batchDir;

    std::vector<std::unique_ptr<scheme::Scheme>> ref;
    std::vector<pcm::CellArray> refCells;
    for (std::size_t l = 0; l < bc.lanes; ++l) {
        ref.push_back(core::makeScheme(bc.name, bc.bits));
        ref.back()->attachDirectory(&refDir, l);
        refCells.emplace_back(bc.bits);
    }

    pcm::CellArrayBatch batch(bc.bits, bc.lanes,
                              pcm::CellArrayBatch::WearTracking::PerCell);
    scheme::BatchWorkspace ws;
    ws.bind(*proto, bc.lanes);
    for (std::size_t l = 0; l < bc.lanes; ++l)
        ws.laneScheme(l)->attachDirectory(&batchDir, l);

    pcm::LaneMatrix data(bc.bits, bc.lanes);
    pcm::LaneMatrix decoded;
    std::vector<scheme::WriteOutcome> refOutcomes(bc.lanes);
    std::vector<scheme::WriteOutcome> outcomes(bc.lanes);
    BitVector laneScratch;
    BitVector refScratch;
    pcm::CellArray stateScratch(bc.bits);
    obs::Metrics refDelta;
    obs::Metrics batchDelta;

    for (int round = 0; round < bc.rounds; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        // Inject the same fault on both sides of the oracle.
        if (round > 1 && round % 3 == 0) {
            const auto lane = rng.nextBounded(bc.lanes);
            const auto pos =
                static_cast<std::uint32_t>(rng.nextBounded(bc.bits));
            const bool stuck = rng.nextBool();
            if (!refCells[lane].isStuck(pos)) {
                refCells[lane].injectFault(pos, stuck);
                batch.injectFault(lane, pos, stuck);
                refDir.record(lane, {pos, stuck});
                batchDir.record(lane, {pos, stuck});
            }
        }
        for (std::size_t l = 0; l < bc.lanes; ++l) {
            laneScratch = BitVector::random(bc.bits, rng);
            data.loadLane(l, laneScratch);
        }

        const auto refBefore = obs::mark();
        for (std::size_t l = 0; l < bc.lanes; ++l) {
            data.storeLane(l, laneScratch);
            refOutcomes[l] = ref[l]->write(refCells[l], laneScratch);
        }
        refDelta.merge(obs::deltaSince(refBefore));

        const auto batchBefore = obs::mark();
        proto->writeBatch(batch, data, outcomes, ws);
        batchDelta.merge(obs::deltaSince(batchBefore));

        for (std::size_t l = 0; l < bc.lanes; ++l) {
            SCOPED_TRACE("lane " + std::to_string(l));
            ASSERT_EQ(outcomes[l].ok, refOutcomes[l].ok);
            ASSERT_EQ(outcomes[l].programPasses,
                      refOutcomes[l].programPasses);
            ASSERT_EQ(outcomes[l].repartitions,
                      refOutcomes[l].repartitions);
            ASSERT_EQ(outcomes[l].newFaults, refOutcomes[l].newFaults);
            ASSERT_EQ(outcomes[l].io.programPasses,
                      refOutcomes[l].io.programPasses);
            ASSERT_EQ(outcomes[l].io.verifyReads,
                      refOutcomes[l].io.verifyReads);
            ASSERT_EQ(outcomes[l].io.metadataLookups,
                      refOutcomes[l].io.metadataLookups);
            ASSERT_EQ(outcomes[l].io.metadataUpdates,
                      refOutcomes[l].io.metadataUpdates);
            ASSERT_EQ(outcomes[l].io.repartitions,
                      refOutcomes[l].io.repartitions);

            // Cell-state identity: effective plane, faults, wear.
            batch.readLaneInto(l, laneScratch);
            refCells[l].readInto(refScratch);
            ASSERT_EQ(laneScratch, refScratch);
            ASSERT_EQ(batch.faults(l), refCells[l].faults());
            ASSERT_EQ(batch.cellWrites(l),
                      refCells[l].totalCellWrites());
            batch.extractLane(l, stateScratch);
            for (std::size_t i = 0; i < bc.bits; ++i) {
                ASSERT_EQ(stateScratch.cellWritesAt(i),
                          refCells[l].cellWritesAt(i))
                    << "pos " << i;
            }

            // Metadata identity (inversion vectors, slopes, entries).
            ASSERT_EQ(ws.laneScheme(l)->exportMetadata(),
                      ref[l]->exportMetadata());
        }

        // Decoded reads.
        proto->readBatch(batch, decoded, ws);
        for (std::size_t l = 0; l < bc.lanes; ++l) {
            decoded.storeLane(l, laneScratch);
            ref[l]->readInto(refCells[l], refScratch);
            ASSERT_EQ(laneScratch, refScratch)
                << "decoded lane " << l;
        }
    }

    // Counter identity across the whole interleaving (timers are
    // wall-clock and gauges maxima; both are excluded by design).
    for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
        EXPECT_EQ(batchDelta.counters[c], refDelta.counters[c])
            << "counter "
            << obs::counterName(static_cast<obs::Counter>(c));
    }
}

struct BatchFuzz : ::testing::TestWithParam<BatchCase>
{};

TEST_P(BatchFuzz, BatchedPathMatchesPerBlockReference)
{
    runBatchOracle(GetParam(), 0xB417C4ull);
}

TEST_P(BatchFuzz, BatchedPathMatchesPerBlockReferenceOnScalarBackend)
{
    const std::string before = simd::backendName();
    ASSERT_TRUE(simd::selectBackend("scalar"));
    runBatchOracle(GetParam(), 0x5CA1A7ull);
    ASSERT_TRUE(simd::selectBackend(before));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchFuzz,
    ::testing::Values(
        // Word-parallel overrides.
        BatchCase{"none", 256, 8, 30},
        BatchCase{"ecp4", 256, 8, 30},
        BatchCase{"safer32", 256, 8, 30},
        BatchCase{"aegis-12x23", 256, 8, 30},
        BatchCase{"aegis-9x31", 256, 7, 30},
        BatchCase{"aegis-9x61", 512, 5, 24},
        // Default per-lane loop (no override / cache variants that
        // delegate to it).
        BatchCase{"hamming", 256, 5, 20},
        BatchCase{"rdis3", 256, 5, 20},
        BatchCase{"safer16-cache", 256, 6, 24},
        BatchCase{"aegis-cache-12x23", 256, 6, 24}),
    [](const ::testing::TestParamInfo<BatchCase> &info) {
        std::string n = info.param.name;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::to_string(info.param.bits) + "_" +
               std::to_string(info.param.lanes);
    });

/**
 * Backend invariance of the batched plane itself: the same scripted
 * batch run under the dispatched backend and under the forced scalar
 * backend must end in bit-identical lane state, metadata and counter
 * deltas. (Together with the oracle above this closes the triangle
 * scalar == SIMD == per-block.)
 */
TEST(BatchFuzz, ScalarAndDispatchedBackendsBitIdentical)
{
    const BatchCase bc{"aegis-12x23", 256, 6, 24};

    const auto capture = [&bc](const char *backend) {
        const std::string before = simd::backendName();
        EXPECT_TRUE(simd::selectBackend(backend));
        Rng rng(0xD15BA7C4ull);
        auto proto = core::makeScheme(bc.name, bc.bits);
        pcm::CellArrayBatch batch(
            bc.bits, bc.lanes,
            pcm::CellArrayBatch::WearTracking::PerCell);
        scheme::BatchWorkspace ws;
        pcm::LaneMatrix data(bc.bits, bc.lanes);
        pcm::LaneMatrix decoded;
        std::vector<scheme::WriteOutcome> outcomes(bc.lanes);
        BitVector laneScratch;

        const auto before_metrics = obs::mark();
        for (int round = 0; round < bc.rounds; ++round) {
            if (round > 1 && round % 3 == 0) {
                const auto lane = rng.nextBounded(bc.lanes);
                const auto pos = static_cast<std::uint32_t>(
                    rng.nextBounded(bc.bits));
                batch.injectFault(lane, pos, rng.nextBool());
            }
            for (std::size_t l = 0; l < bc.lanes; ++l) {
                laneScratch = BitVector::random(bc.bits, rng);
                data.loadLane(l, laneScratch);
            }
            proto->writeBatch(batch, data, outcomes, ws);
        }
        proto->readBatch(batch, decoded, ws);
        const obs::Metrics delta = obs::deltaSince(before_metrics);

        std::string fp;
        for (std::size_t l = 0; l < bc.lanes; ++l) {
            decoded.storeLane(l, laneScratch);
            fp += laneScratch.toString();
            fp += ws.laneScheme(l)->exportMetadata().toString();
            fp += std::to_string(batch.cellWrites(l)) + ";";
            for (const auto &f : batch.faults(l)) {
                fp += std::to_string(f.pos) +
                      (f.stuck ? "W" : "R");
            }
            fp += "|";
            fp += std::to_string(outcomes[l].ok) + ",";
        }
        for (std::size_t c = 0; c < obs::kCounterCount; ++c)
            fp += std::to_string(delta.counters[c]) + ",";
        EXPECT_TRUE(simd::selectBackend(before));
        return fp;
    };

    const std::string scalar = capture("scalar");
    const std::string dispatched = capture("auto");
    EXPECT_EQ(scalar, dispatched);
}

} // namespace
} // namespace aegis
