/**
 * @file
 * Cross-scheme fuzzing: long random interleavings of writes, fault
 * injections, metadata export/import and cloning, with one global
 * invariant — every read after a successful write returns exactly the
 * data written, and a scheme that reports a failed write never
 * silently corrupts earlier state (the failure is the signal to
 * retire the block).
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "pcm/fail_cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

struct FuzzCase
{
    const char *name;
    std::size_t blockBits;
    int steps;
};

class SchemeFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(SchemeFuzz, LongRandomInterleaving)
{
    const auto &param = GetParam();
    Rng rng(std::string(param.name).size() * 7919 + param.blockBits);

    for (int trial = 0; trial < 4; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        auto scheme = core::makeScheme(param.name, param.blockBits);
        scheme->attachDirectory(dir.get(), trial);
        pcm::CellArray cells(param.blockBits);

        bool have_data = false;
        BitVector last(param.blockBits);
        bool retired = false;

        for (int step = 0; step < param.steps && !retired; ++step) {
            const auto dice = rng.nextBounded(10);
            if (dice < 6) {
                // Write random data.
                last = BitVector::random(param.blockBits, rng);
                const auto outcome = scheme->write(cells, last);
                if (!outcome.ok) {
                    retired = true;
                    break;
                }
                have_data = true;
                ASSERT_EQ(scheme->read(cells), last)
                    << param.name << " step " << step;
            } else if (dice < 8) {
                // Inject a fault at a random healthy cell; the next
                // writes must cope or report failure.
                std::uint32_t pos;
                int guard = 0;
                do {
                    pos = static_cast<std::uint32_t>(
                        rng.nextBounded(param.blockBits));
                } while (cells.isStuck(pos) && ++guard < 64);
                if (!cells.isStuck(pos)) {
                    // Cells stick at their current value (the
                    // physically accurate model), so stored data is
                    // intact until a later write wants the opposite.
                    const bool stuck = cells.readBit(pos);
                    cells.injectFaultAtCurrentValue(pos);
                    dir->record(trial, {pos, stuck});
                }
            } else if (dice == 8) {
                // Metadata round-trip through a fresh instance.
                const BitVector image = scheme->exportMetadata();
                auto fresh =
                    core::makeScheme(param.name, param.blockBits);
                fresh->attachDirectory(dir.get(), trial);
                fresh->importMetadata(image);
                if (have_data) {
                    ASSERT_EQ(fresh->read(cells), last)
                        << param.name << " metadata step " << step;
                }
                scheme = std::move(fresh);
            } else {
                // Clone and continue with the copy.
                auto copy = scheme->clone();
                copy->attachDirectory(dir.get(), trial);
                if (have_data) {
                    ASSERT_EQ(copy->read(cells), last)
                        << param.name << " clone step " << step;
                }
                scheme = std::move(copy);
            }
        }
        // If the block retired, that is legitimate — but it must have
        // happened with faults present, not on a healthy block.
        if (retired) {
            EXPECT_GT(cells.faultCount(), scheme->hardFtc())
                << param.name << " retired too early";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeFuzz,
    ::testing::Values(FuzzCase{"ecp6", 512, 120},
                      FuzzCase{"ecp4", 256, 120},
                      FuzzCase{"safer32", 512, 120},
                      FuzzCase{"safer64", 512, 120},
                      FuzzCase{"safer16-cache", 256, 120},
                      FuzzCase{"rdis3", 512, 120},
                      FuzzCase{"rdis3", 256, 120},
                      FuzzCase{"hamming", 512, 120},
                      FuzzCase{"aegis-23x23", 512, 150},
                      FuzzCase{"aegis-17x31", 512, 150},
                      FuzzCase{"aegis-9x61", 512, 150},
                      FuzzCase{"aegis-12x23", 256, 150},
                      FuzzCase{"aegis-cache-23x23", 512, 150},
                      FuzzCase{"aegis-rw-23x23", 512, 150},
                      FuzzCase{"aegis-rw-17x31", 512, 150},
                      FuzzCase{"aegis-rw-p4-23x23", 512, 150},
                      FuzzCase{"aegis-rw-p9-9x61", 512, 150}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        std::string n = info.param.name;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::to_string(info.param.blockBits);
    });

} // namespace
} // namespace aegis
