/**
 * @file
 * Tests for the PAYG composition and the FREE-p remapping layer.
 */

#include <gtest/gtest.h>

#include "sim/payg.h"
#include "sim/remap.h"
#include "util/error.h"

namespace aegis::sim {
namespace {

ExperimentConfig
smallConfig(const std::string &scheme)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.pages = 8;
    cfg.pageBytes = 1024;    // 16 blocks of 512 bits
    cfg.blockBits = 512;
    cfg.lifetimeMean = 1e6;
    return cfg;
}

TEST(Payg, Deterministic)
{
    PaygConfig payg;
    payg.lecScheme = "ecp1";
    payg.gecEntries = 32;
    const PaygResult a = runPaygStudy(smallConfig("unused"), payg);
    const PaygResult b = runPaygStudy(smallConfig("unused"), payg);
    EXPECT_EQ(a.firstFailure, b.firstFailure);
    EXPECT_EQ(a.gecUsed, b.gecUsed);
    EXPECT_EQ(a.faultsAbsorbed, b.faultsAbsorbed);
}

TEST(Payg, EmptyPoolEqualsFlatLec)
{
    // With zero GEC entries, PAYG dies exactly when the weakest
    // block's LEC does.
    PaygConfig flat;
    flat.lecScheme = "ecp2";
    flat.gecEntries = 0;
    const PaygResult r = runPaygStudy(smallConfig("unused"), flat);
    EXPECT_GT(r.firstFailure, 0.0);
    EXPECT_EQ(r.gecUsed, 0u);
}

TEST(Payg, PoolExtendsLifetimeMonotonically)
{
    PaygConfig payg;
    payg.lecScheme = "ecp1";
    double last = 0.0;
    for (std::uint32_t entries : {0u, 16u, 64u, 256u}) {
        payg.gecEntries = entries;
        const PaygResult r =
            runPaygStudy(smallConfig("unused"), payg);
        EXPECT_GE(r.firstFailure, last) << entries << " entries";
        last = r.firstFailure;
    }
}

TEST(Payg, PoolEntriesAreActuallyConsumed)
{
    PaygConfig payg;
    payg.lecScheme = "ecp1";
    payg.gecEntries = 64;
    const PaygResult r = runPaygStudy(smallConfig("unused"), payg);
    EXPECT_GT(r.gecUsed, 0u);
    EXPECT_LE(r.gecUsed, 64u);
}

TEST(Payg, AegisLecComposes)
{
    // The Aegis paper's suggestion: Aegis as the PAYG component. The
    // LEC rebuild over shed faults must hold up for the partition
    // scheme too.
    PaygConfig payg;
    payg.lecScheme = "aegis-23x23";
    payg.gecEntries = 32;
    const PaygResult r = runPaygStudy(smallConfig("unused"), payg);
    EXPECT_GT(r.firstFailure, 0.0);
    EXPECT_GT(r.faultsAbsorbed, 0u);
    EXPECT_GT(r.overheadBits, 0u);
}

TEST(Payg, OverheadAccounting)
{
    PaygConfig payg;
    payg.lecScheme = "ecp1";    // 11 bits for 512-bit blocks
    payg.gecEntries = 10;
    payg.gecEntryBits = 20;
    const ExperimentConfig cfg = smallConfig("unused");
    const PaygResult r = runPaygStudy(cfg, payg);
    const std::uint64_t blocks = 8ull * (1024 * 8 / 512);
    EXPECT_EQ(r.overheadBits, blocks * (11 + 1) + 10 * 20);
}

TEST(Payg, RejectsDataDependentLec)
{
    PaygConfig payg;
    payg.lecScheme = "rdis3";
    EXPECT_THROW(runPaygStudy(smallConfig("unused"), payg),
                 ConfigError);
}

TEST(Remap, Deterministic)
{
    const RemapResult a = runRemapStudy(smallConfig("ecp4"), 8);
    const RemapResult b = runRemapStudy(smallConfig("ecp4"), 8);
    EXPECT_EQ(a.exhaustionTime, b.exhaustionTime);
    EXPECT_EQ(a.sparesUsed, b.sparesUsed);
}

TEST(Remap, ZeroSparesDieAtFirstBlockDeath)
{
    const RemapResult r = runRemapStudy(smallConfig("ecp4"), 0);
    EXPECT_EQ(r.sparesUsed, 0u);
    EXPECT_DOUBLE_EQ(r.exhaustionTime, r.firstRemapTime);
}

TEST(Remap, SparesExtendLifetimeMonotonically)
{
    double last = 0.0;
    for (std::uint32_t spares : {0u, 4u, 16u, 64u}) {
        const RemapResult r =
            runRemapStudy(smallConfig("aegis-23x23"), spares);
        EXPECT_GE(r.exhaustionTime, last) << spares << " spares";
        EXPECT_EQ(r.sparesUsed, spares);
        last = r.exhaustionTime;
    }
}

TEST(Remap, StrongerSchemeDelaysFirstRemap)
{
    const RemapResult weak = runRemapStudy(smallConfig("ecp1"), 8);
    const RemapResult strong =
        runRemapStudy(smallConfig("aegis-9x61"), 8);
    EXPECT_GT(strong.firstRemapTime, weak.firstRemapTime);
    EXPECT_GT(strong.exhaustionTime, weak.exhaustionTime);
}

} // namespace
} // namespace aegis::sim
