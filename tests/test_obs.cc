/**
 * @file
 * Tests for the observability layer: metrics registry semantics,
 * jobs-invariant counter aggregation through the study runners, and
 * the zero-cost disabled trace path.
 */

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace aegis {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Scope;

/** The fast config the parallel determinism tests use. */
sim::ExperimentConfig
smallConfig(const std::string &scheme)
{
    sim::ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.pages = 48;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;
    return cfg;
}

TEST(Metrics, BumpMarkDelta)
{
    const obs::ThreadMark m0 = obs::mark();
    obs::bump(Counter::GroupInversions, 3);
    obs::bump(Counter::GroupInversions);
    const obs::Metrics d = obs::deltaSince(m0);
    EXPECT_EQ(d.counter(Counter::GroupInversions), 4u);
    EXPECT_EQ(d.counter(Counter::ProgramPasses), 0u);

    // A fresh mark sees none of the earlier events.
    const obs::ThreadMark m1 = obs::mark();
    EXPECT_TRUE(obs::deltaSince(m1).empty());
}

TEST(Metrics, DeltaExcludesGauges)
{
    const obs::ThreadMark m0 = obs::mark();
    obs::gaugeMax(Gauge::RdisMaxRecursionDepth, 7);
    const obs::Metrics d = obs::deltaSince(m0);
    // A running maximum has no exact per-item delta; gauges only
    // reach processTotals().
    EXPECT_EQ(d.gauge(Gauge::RdisMaxRecursionDepth), 0u);
    EXPECT_GE(obs::processTotals().gauge(Gauge::RdisMaxRecursionDepth),
              7u);
}

TEST(Metrics, MergeAddsCountersAndMaxesGauges)
{
    obs::Metrics a, b;
    a.counters[0] = 5;
    b.counters[0] = 7;
    a.gauges[0] = 3;
    b.gauges[0] = 2;
    a.timers[0].add(10);
    b.timers[0].add(30);
    a.merge(b);
    EXPECT_EQ(a.counters[0], 12u);
    EXPECT_EQ(a.gauges[0], 3u);
    EXPECT_EQ(a.timers[0].count, 2u);
    EXPECT_EQ(a.timers[0].totalNs, 40u);
    EXPECT_EQ(a.timers[0].maxNs, 30u);
}

TEST(Metrics, ResetClearsProcessTotals)
{
    obs::bump(Counter::BlindWrites, 9);
    EXPECT_GE(obs::processTotals().counter(Counter::BlindWrites), 9u);
    obs::resetProcessMetrics();
    EXPECT_TRUE(obs::processTotals().empty());
}

TEST(Metrics, CounterNamesAreStable)
{
    EXPECT_EQ(obs::counterName(Counter::GroupInversions),
              "scheme.group_inversions");
    EXPECT_EQ(obs::counterName(Counter::AuditViolations),
              "audit.violations");
    EXPECT_EQ(obs::gaugeName(Gauge::RdisMaxRecursionDepth),
              "rdis.max_recursion_depth");
    EXPECT_EQ(obs::scopeName(Scope::PageLife), "sim.page_life");
}

/**
 * The tentpole determinism guarantee: study-attributed counters are
 * folded into the parallel reducer's chunk accumulators, so totals
 * are bit-identical for every --jobs value.
 */
TEST(MetricsDeterminism, PageStudyCountersJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("aegis-23x23");
    cfg.jobs = 1;
    const sim::PageStudy serial = sim::runPageStudy(cfg);
    cfg.jobs = 8;
    const sim::PageStudy parallel = sim::runPageStudy(cfg);

    EXPECT_EQ(serial.metrics.counters, parallel.metrics.counters);
    // The sweep actually exercised the instrumented paths.
    EXPECT_GT(serial.metrics.counter(Counter::FaultArrivals), 0u);
    EXPECT_GT(serial.metrics.counter(Counter::BlockLives), 0u);
    EXPECT_EQ(serial.metrics.counter(Counter::PageLives), cfg.pages);
    EXPECT_GT(serial.metrics.counter(Counter::AegisRepartitions), 0u);
}

TEST(MetricsDeterminism, RdisCountersJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("rdis3");
    cfg.pages = 16;
    cfg.jobs = 1;
    const sim::PageStudy serial = sim::runPageStudy(cfg);
    cfg.jobs = 5;
    const sim::PageStudy parallel = sim::runPageStudy(cfg);

    EXPECT_EQ(serial.metrics.counters, parallel.metrics.counters);
    EXPECT_GT(serial.metrics.counter(Counter::RdisSolves), 0u);
    EXPECT_GT(serial.metrics.counter(Counter::LabelingsSampled), 0u);
}

TEST(MetricsDeterminism, BlockStudyCountersJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("ecp6");
    cfg.jobs = 1;
    const sim::BlockStudy serial = sim::runBlockStudy(cfg, 96);
    cfg.jobs = 6;
    const sim::BlockStudy parallel = sim::runBlockStudy(cfg, 96);

    EXPECT_EQ(serial.metrics.counters, parallel.metrics.counters);
    EXPECT_GT(serial.metrics.counter(Counter::EcpPointersConsumed), 0u);
    EXPECT_EQ(serial.metrics.counter(Counter::BlockLives), 96u);
}

TEST(MetricsDeterminism, StudyMergeAddsMetrics)
{
    sim::ExperimentConfig cfg = smallConfig("safer32");
    cfg.pages = 24;
    const sim::PageStudy a = sim::runPageStudy(cfg);
    EXPECT_GT(a.metrics.counter(Counter::SaferRepartitions), 0u);

    sim::PageStudy sum = a;
    sum.merge(a);
    EXPECT_EQ(sum.metrics.counter(Counter::FaultArrivals),
              2 * a.metrics.counter(Counter::FaultArrivals));
}

TEST(Trace, DisabledScopeRecordsNothing)
{
    obs::resetProcessMetrics();
    obs::setTracingEnabled(false);
    {
        AEGIS_TRACE_SCOPE(Scope::SchemeWrite);
    }
    EXPECT_EQ(obs::processTotals().timer(Scope::SchemeWrite).count, 0u);

    // A Monte-Carlo sweep with tracing off records no timings either:
    // the scopes in the scheme/sim hot paths all stay dormant.
    const sim::PageStudy study =
        sim::runPageStudy(smallConfig("aegis-23x23"));
    const obs::Metrics totals = obs::processTotals();
    for (std::size_t s = 0; s < obs::kScopeCount; ++s)
        EXPECT_EQ(totals.timers[s].count, 0u) << "scope " << s;
    EXPECT_GT(totals.counter(Counter::FaultArrivals), 0u);
}

TEST(Trace, EnabledScopeRecordsTimings)
{
    obs::resetProcessMetrics();
    obs::setTracingEnabled(true);
    {
        AEGIS_TRACE_SCOPE(Scope::SchemeWrite);
    }
    obs::setTracingEnabled(false);
    const obs::Metrics totals = obs::processTotals();
    const obs::TimingStat &t = totals.timer(Scope::SchemeWrite);
    EXPECT_EQ(t.count, 1u);
    EXPECT_GE(t.maxNs, 0u);
}

TEST(Trace, SweepWithTracingTimesLives)
{
    obs::resetProcessMetrics();
    obs::setTracingEnabled(true);
    sim::ExperimentConfig cfg = smallConfig("aegis-23x23");
    cfg.pages = 8;
    (void)sim::runPageStudy(cfg);
    obs::setTracingEnabled(false);

    const obs::Metrics totals = obs::processTotals();
    EXPECT_EQ(totals.timer(Scope::PageLife).count, 8u);
    EXPECT_GT(totals.timer(Scope::BlockLife).count, 0u);
    EXPECT_GT(totals.timer(Scope::BlockLife).totalNs, 0u);
}

} // namespace
} // namespace aegis
