/**
 * @file
 * Tests for the Start-Gap wear-leveling mechanism: mapping
 * bijectivity through every rotation state, gap mechanics, and the
 * headline property — a pathologically hot line's wear gets spread
 * across all physical slots. Also covers the Feistel address
 * scrambler (bijectivity, inverse, diffusion).
 */

#include <set>

#include <gtest/gtest.h>

#include "pcm/start_gap.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::pcm {
namespace {

TEST(StartGap, InitialMappingIsIdentity)
{
    StartGapMapper sg(8, 100);
    EXPECT_EQ(sg.gapSlot(), 8u);
    for (std::uint64_t l = 0; l < 8; ++l)
        EXPECT_EQ(sg.physicalOf(l), l);
}

TEST(StartGap, MappingStaysBijectiveThroughFullRotation)
{
    constexpr std::uint64_t kLines = 7;
    StartGapMapper sg(kLines, 1);    // gap moves every write
    // Drive through several complete rotations.
    for (int step = 0; step < 200; ++step) {
        std::set<std::uint64_t> physical;
        for (std::uint64_t l = 0; l < kLines; ++l) {
            const std::uint64_t p = sg.physicalOf(l);
            EXPECT_LE(p, kLines);
            EXPECT_NE(p, sg.gapSlot());
            EXPECT_TRUE(physical.insert(p).second)
                << "two logical lines share slot " << p;
        }
        sg.onWrite(static_cast<std::uint64_t>(step) % kLines);
    }
    EXPECT_EQ(sg.gapMoves(), 200u);
}

TEST(StartGap, GapWrapAdvancesStart)
{
    constexpr std::uint64_t kLines = 4;
    StartGapMapper sg(kLines, 1);
    const std::uint64_t before = sg.startValue();
    // N+1 gap moves bring the gap back to the top and bump start.
    for (std::uint64_t i = 0; i <= kLines; ++i)
        sg.onWrite(0);
    EXPECT_EQ(sg.startValue(), (before + 1) % kLines);
    EXPECT_EQ(sg.gapSlot(), kLines);
}

TEST(StartGap, HotLineWearIsSpread)
{
    // Hammer one logical line; with the gap rotating, its writes
    // must land on every physical slot over time.
    constexpr std::uint64_t kLines = 16;
    StartGapMapper sg(kLines, 4);
    for (int i = 0; i < 20000; ++i)
        sg.onWrite(3);
    // All slots absorbed a meaningful share (imbalance far below the
    // unleveled worst case of slots*mean).
    EXPECT_LT(sg.wearImbalance(), 2.0);
    for (std::uint64_t w : sg.physicalWrites())
        EXPECT_GT(w, 0u);
}

TEST(StartGap, UniformTrafficStaysLevel)
{
    StartGapMapper sg(32, 8);
    Rng rng(5);
    for (int i = 0; i < 50000; ++i)
        sg.onWrite(rng.nextBounded(32));
    EXPECT_LT(sg.wearImbalance(), 1.2);
}

TEST(StartGap, RejectsBadConfig)
{
    EXPECT_THROW(StartGapMapper(1, 10), ConfigError);
    EXPECT_THROW(StartGapMapper(8, 0), ConfigError);
}

TEST(Scrambler, IsABijectionWithInverse)
{
    for (std::uint64_t lines : {2ull, 7ull, 64ull, 100ull, 1000ull}) {
        const AddressScrambler s(lines, 0xdeadbeef);
        std::set<std::uint64_t> seen;
        for (std::uint64_t l = 0; l < lines; ++l) {
            const std::uint64_t p = s.scramble(l);
            ASSERT_LT(p, lines);
            ASSERT_TRUE(seen.insert(p).second) << lines << ":" << l;
            ASSERT_EQ(s.unscramble(p), l);
        }
    }
}

TEST(Scrambler, KeysProduceDifferentPermutations)
{
    const AddressScrambler a(256, 1), b(256, 2);
    int same = 0;
    for (std::uint64_t l = 0; l < 256; ++l)
        same += a.scramble(l) == b.scramble(l);
    EXPECT_LT(same, 16);
}

TEST(Scrambler, BreaksSequentialLocality)
{
    // Adjacent logical lines should rarely stay adjacent — that is
    // the whole point of the randomization stage.
    const AddressScrambler s(1024, 42);
    int adjacent = 0;
    for (std::uint64_t l = 0; l + 1 < 1024; ++l) {
        const auto d = static_cast<std::int64_t>(s.scramble(l + 1)) -
                       static_cast<std::int64_t>(s.scramble(l));
        adjacent += d == 1 || d == -1;
    }
    EXPECT_LT(adjacent, 32);
}

TEST(StartGapWithScrambler, EndToEndLeveling)
{
    // Randomized Start-Gap: scramble then rotate. A strided attack
    // pattern still ends up level.
    constexpr std::uint64_t kLines = 64;
    const AddressScrambler scramble(kLines, 7);
    StartGapMapper sg(kLines, 8);
    for (int i = 0; i < 60000; ++i)
        sg.onWrite(scramble.scramble((i * 8) % kLines));
    EXPECT_LT(sg.wearImbalance(), 1.6);
}

} // namespace
} // namespace aegis::pcm
