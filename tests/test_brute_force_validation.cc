/**
 * @file
 * Methodology validation: the event-driven Monte Carlo must agree
 * with a brute-force per-write simulation of the functional layer.
 *
 * The brute-force reference actually performs every write against a
 * CellArray, wears cells out according to sampled lifetimes (cells
 * stick at their stored value once their program budget is used up),
 * and lets the real scheme fight for survival. Differential writes
 * produce the 0.5 base wear rate and inversion rewrites produce the
 * amplification *naturally* here — so this test validates both the
 * wear model and the tracker logic of the fast layer.
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "sim/block_sim.h"
#include "util/error.h"
#include "util/stats.h"

namespace aegis {
namespace {

struct BruteForceResult
{
    double lifetime;            // block writes until failure
    std::uint32_t faults;       // faults present at failure
};

/** Run one functional block to death, wearing cells per @p life. */
BruteForceResult
bruteForceRun(scheme::Scheme &scheme, const std::vector<double> &life,
              Rng &rng)
{
    const std::size_t n = scheme.blockBits();
    pcm::CellArray cells(n);
    scheme.reset();

    double writes = 0;
    while (writes < 1e7) {
        const BitVector data = BitVector::random(n, rng);
        const auto outcome = scheme.write(cells, data);
        writes += 1;
        if (!outcome.ok) {
            return {writes,
                    static_cast<std::uint32_t>(cells.faultCount())};
        }
        // Cells whose program budget is exhausted stick at whatever
        // they currently hold.
        for (std::size_t i = 0; i < n; ++i) {
            if (!cells.isStuck(i) &&
                static_cast<double>(cells.cellWritesAt(i)) >=
                    life[i]) {
                cells.injectFaultAtCurrentValue(i);
            }
        }
    }
    throw InternalError("brute force did not terminate");
}

BruteForceResult
bruteForce(scheme::Scheme &scheme, const pcm::LifetimeModel &model,
           std::uint64_t seed)
{
    Rng cell_rng(seed);
    std::vector<double> life(scheme.blockBits());
    for (double &l : life)
        l = model.sample(cell_rng);
    Rng write_rng(seed ^ 0xabcdef);
    return bruteForceRun(scheme, life, write_rng);
}

class BruteForceAgreement
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(BruteForceAgreement, MeanLifetimeAndFaultsMatch)
{
    const std::string name = GetParam();
    constexpr std::size_t kBits = 32;
    constexpr int kTrials = 150;
    auto model = pcm::makeLifetimeModel("normal", 400.0, 0.25);

    // Brute force (functional layer, real wear).
    auto scheme = core::makeScheme(name, kBits);
    RunningStat bf_life, bf_faults;
    for (int t = 0; t < kTrials; ++t) {
        const BruteForceResult r =
            bruteForce(*scheme, *model, 1000 + t);
        bf_life.add(r.lifetime);
        bf_faults.add(r.faults);
    }

    // Event-driven layer.
    const sim::BlockSimulator fast(*scheme, *model, {}, {});
    RunningStat ev_life, ev_faults;
    for (int t = 0; t < kTrials; ++t) {
        Rng cell_rng(5000 + t), sim_rng(9000 + t);
        const sim::BlockLifeResult r = fast.run(cell_rng, sim_rng);
        ev_life.add(r.deathTime);
        ev_faults.add(r.faultsAtDeath);
    }

    // Two independent Monte Carlos of different fidelity: means must
    // agree within a modest tolerance.
    EXPECT_NEAR(ev_life.mean() / bf_life.mean(), 1.0, 0.15)
        << name << ": event " << ev_life.mean() << " vs brute "
        << bf_life.mean();
    EXPECT_NEAR(ev_faults.mean() / bf_faults.mean(), 1.0, 0.25)
        << name << ": event " << ev_faults.mean() << " vs brute "
        << bf_faults.mean();
}

INSTANTIATE_TEST_SUITE_P(Schemes, BruteForceAgreement,
                         ::testing::Values("none", "ecp3",
                                           "aegis-5x7", "safer8"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

} // namespace
} // namespace aegis
