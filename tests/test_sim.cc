/**
 * @file
 * Tests for the event-driven Monte-Carlo engine (block, page and
 * experiment layers).
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "obs/metrics.h"
#include "sim/experiment.h"
#include "sim/page_sim.h"

namespace aegis::sim {
namespace {

/** A small deterministic lifetime for fast tests. */
std::unique_ptr<pcm::LifetimeModel>
testLifetime()
{
    return pcm::makeLifetimeModel("normal", 1e6, 0.25);
}

TEST(BlockSim, DeterministicPerSeed)
{
    auto scheme = core::makeScheme("aegis-23x23", 512);
    auto lifetime = testLifetime();
    const BlockSimulator sim(*scheme, *lifetime, {}, {});

    Rng c1(1), s1(2), c2(1), s2(2);
    const BlockLifeResult a = sim.run(c1, s1);
    const BlockLifeResult b = sim.run(c2, s2);
    EXPECT_EQ(a.deathTime, b.deathTime);
    EXPECT_EQ(a.faultsAtDeath, b.faultsAtDeath);
    EXPECT_EQ(a.faultTimes, b.faultTimes);
}

TEST(BlockSim, FaultTimesAreAscendingAndPositive)
{
    auto scheme = core::makeScheme("safer32", 512);
    auto lifetime = testLifetime();
    const BlockSimulator sim(*scheme, *lifetime, {}, {});
    Rng c(3), s(4);
    const BlockLifeResult r = sim.run(c, s);
    ASSERT_FALSE(r.faultTimes.empty());
    EXPECT_GT(r.faultTimes.front(), 0.0);
    for (std::size_t i = 1; i < r.faultTimes.size(); ++i)
        EXPECT_GT(r.faultTimes[i], r.faultTimes[i - 1]);
    EXPECT_GE(r.deathTime, r.faultTimes.back());
    EXPECT_EQ(r.faultsAtDeath, r.faultTimes.size());
}

TEST(BlockSim, NoneDiesAtFirstFault)
{
    auto scheme = core::makeScheme("none", 512);
    auto lifetime = testLifetime();
    const BlockSimulator sim(*scheme, *lifetime, {}, {});
    Rng c(5), s(6);
    const BlockLifeResult r = sim.run(c, s);
    EXPECT_EQ(r.faultsAtDeath, 1u);
    EXPECT_EQ(r.deathTime, r.faultTimes.front());
    // With rate 0.5 the earliest of 512 N(1e6, 25%) lifetimes fails
    // around 2e6 * (1 - ~3.2 sigma * 0.25) block writes; sanity-bound
    // it loosely.
    EXPECT_GT(r.deathTime, 1e5);
    EXPECT_LT(r.deathTime, 2e6);
}

TEST(BlockSim, EcpDiesAtEntryBudgetPlusOne)
{
    auto scheme = core::makeScheme("ecp4", 512);
    auto lifetime = testLifetime();
    const BlockSimulator sim(*scheme, *lifetime, {}, {});
    Rng c(7), s(8);
    const BlockLifeResult r = sim.run(c, s);
    EXPECT_EQ(r.faultsAtDeath, 5u);
    EXPECT_EQ(r.deathTime, r.faultTimes.back());
}

TEST(BlockSim, SameCellsDifferentSchemesOrdering)
{
    // On identical cell populations ECP6 must outlive ECP1, and basic
    // Aegis must outlive both (it tolerates far more faults).
    auto lifetime = testLifetime();
    auto ecp1 = core::makeScheme("ecp1", 512);
    auto ecp6 = core::makeScheme("ecp6", 512);
    auto aegis = core::makeScheme("aegis-9x61", 512);
    const BlockSimulator s1(*ecp1, *lifetime, {}, {});
    const BlockSimulator s6(*ecp6, *lifetime, {}, {});
    const BlockSimulator sa(*aegis, *lifetime, {}, {});

    int ecp_ok = 0, aegis_ok = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng c1(seed), c2(seed), c3(seed), s(seed + 999);
        Rng sA(seed + 999), sB(seed + 999);
        const double d1 = s1.run(c1, s).deathTime;
        const double d6 = s6.run(c2, sA).deathTime;
        const double da = sa.run(c3, sB).deathTime;
        ecp_ok += d6 > d1;
        aegis_ok += da > d6;
    }
    EXPECT_EQ(ecp_ok, 20);
    EXPECT_GE(aegis_ok, 19);    // allow one statistical accident
}

TEST(BlockSim, WearAmplificationShortensLifetime)
{
    // Basic Aegis with the inversion-write amplification must not
    // outlive the same scheme with amplification disabled.
    auto scheme = core::makeScheme("aegis-17x31", 512);
    auto lifetime = testLifetime();
    WearModel amplified;            // 0.5 + 0.5
    WearModel ideal{0.5, 0.0};      // no extra wear
    const BlockSimulator sim_a(*scheme, *lifetime, amplified, {});
    const BlockSimulator sim_i(*scheme, *lifetime, ideal, {});
    double sum_a = 0, sum_i = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng c1(seed), c2(seed), sa(seed + 7), si(seed + 7);
        sum_a += sim_a.run(c1, sa).deathTime;
        sum_i += sim_i.run(c2, si).deathTime;
    }
    EXPECT_LT(sum_a, sum_i);
}

TEST(BlockSim, BatchMatchesSequentialLives)
{
    // One SoA batch must reproduce back-to-back run() calls exactly:
    // per-life results and the obs counter totals.
    auto scheme = core::makeScheme("aegis-12x23", 256);
    auto lifetime = testLifetime();
    const BlockSimulator sim(*scheme, *lifetime, {}, {});

    constexpr std::size_t kLanes = 5;
    std::vector<BlockLifeResult> ref(kLanes);
    const obs::ThreadMark ref_mark = obs::mark();
    for (std::size_t l = 0; l < kLanes; ++l) {
        Rng c(100 + l), s(200 + l);
        ref[l] = sim.run(c, s);
    }
    const obs::Metrics ref_delta = obs::deltaSince(ref_mark);

    std::vector<Rng> cell_rngs, sim_rngs;
    for (std::size_t l = 0; l < kLanes; ++l) {
        cell_rngs.emplace_back(100 + l);
        sim_rngs.emplace_back(200 + l);
    }
    std::vector<BlockLifeResult> got(kLanes);
    BlockBatchWorkspace ws;
    const obs::ThreadMark got_mark = obs::mark();
    sim.runBatch(cell_rngs, sim_rngs, got, ws);
    const obs::Metrics got_delta = obs::deltaSince(got_mark);

    for (std::size_t l = 0; l < kLanes; ++l) {
        EXPECT_EQ(ref[l].deathTime, got[l].deathTime) << "lane " << l;
        EXPECT_EQ(ref[l].faultsAtDeath, got[l].faultsAtDeath);
        EXPECT_EQ(ref[l].faultTimes, got[l].faultTimes);
        EXPECT_EQ(ref[l].repartitions, got[l].repartitions);
        EXPECT_EQ(ref[l].immortal, got[l].immortal);
    }
    for (std::size_t c = 0; c < obs::kCounterCount; ++c)
        EXPECT_EQ(ref_delta.counters[c], got_delta.counters[c])
            << obs::counterName(static_cast<obs::Counter>(c));
}

TEST(PageSim, BatchWidthInvariance)
{
    // 8 blocks per page over widths that divide, exceed and straddle
    // the page: every width must yield the same page life.
    auto scheme = core::makeScheme("safer32", 512);
    auto lifetime = testLifetime();
    const BlockSimulator block_sim(*scheme, *lifetime, {}, {});
    const Rng page_rng(42);

    const PageSimulator base(block_sim, 8, 1);
    std::vector<BlockLifeResult> base_blocks;
    const PageLifeResult want = base.runDetailed(page_rng, base_blocks);

    for (const std::uint32_t width : {0u, 3u, 8u, 16u}) {
        const PageSimulator batched(block_sim, 8, width);
        std::vector<BlockLifeResult> blocks;
        const PageLifeResult got = batched.runDetailed(page_rng, blocks);
        EXPECT_EQ(want.deathTime, got.deathTime) << "width " << width;
        EXPECT_EQ(want.faultsRecovered, got.faultsRecovered);
        EXPECT_EQ(want.repartitions, got.repartitions);
        ASSERT_EQ(base_blocks.size(), blocks.size());
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            EXPECT_EQ(base_blocks[b].deathTime, blocks[b].deathTime);
            EXPECT_EQ(base_blocks[b].faultTimes, blocks[b].faultTimes);
        }
    }
}

TEST(Experiment, StudiesAreBatchInvariant)
{
    // --batch is a throughput knob: studies (stats and counter
    // slots alike) are bit-identical for every value, including
    // widths that straddle the grain-16 chunk grid.
    ExperimentConfig cfg;
    cfg.scheme = "aegis-12x23";
    cfg.blockBits = 256;
    cfg.pages = 12;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;

    cfg.batch = 1;
    const PageStudy page_a = runPageStudy(cfg);
    const BlockStudy block_a = runBlockStudy(cfg, 40);
    cfg.batch = 5;
    const PageStudy page_b = runPageStudy(cfg);
    const BlockStudy block_b = runBlockStudy(cfg, 40);

    EXPECT_EQ(page_a.pageLifetime.mean(), page_b.pageLifetime.mean());
    EXPECT_EQ(page_a.recoverableFaults.mean(),
              page_b.recoverableFaults.mean());
    EXPECT_EQ(page_a.repartitions.mean(), page_b.repartitions.mean());
    EXPECT_EQ(block_a.blockLifetime.mean(), block_b.blockLifetime.mean());
    EXPECT_EQ(block_a.blockLifetime.count(),
              block_b.blockLifetime.count());
    for (std::int64_t f = 0; f <= 32; ++f)
        EXPECT_EQ(block_a.failureProbabilityAt(f),
                  block_b.failureProbabilityAt(f));
    for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
        EXPECT_EQ(page_a.metrics.counters[c], page_b.metrics.counters[c])
            << obs::counterName(static_cast<obs::Counter>(c));
        EXPECT_EQ(block_a.metrics.counters[c],
                  block_b.metrics.counters[c])
            << obs::counterName(static_cast<obs::Counter>(c));
    }
}

TEST(PageSim, DeathIsMinOfBlocksAndCountsPriorFaults)
{
    auto scheme = core::makeScheme("ecp2", 512);
    auto lifetime = testLifetime();
    const BlockSimulator block_sim(*scheme, *lifetime, {}, {});
    const PageSimulator page_sim(block_sim, 8);

    const Rng page_rng(11);
    const PageLifeResult page = page_sim.run(page_rng);

    // Recompute by hand from the block results.
    double death = std::numeric_limits<double>::infinity();
    std::uint64_t faults = 0;
    std::vector<BlockLifeResult> blocks;
    for (std::uint32_t b = 0; b < 8; ++b) {
        Rng c = page_rng.split(2ull * b);
        Rng s = page_rng.split(2ull * b + 1);
        blocks.push_back(block_sim.run(c, s));
        death = std::min(death, blocks.back().deathTime);
    }
    for (const auto &blk : blocks) {
        for (double t : blk.faultTimes)
            faults += t < death;
    }
    EXPECT_EQ(page.deathTime, death);
    EXPECT_EQ(page.faultsRecovered, faults);
}

TEST(Experiment, PageStudyBasics)
{
    ExperimentConfig cfg;
    cfg.scheme = "ecp4";
    cfg.pages = 16;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;
    const PageStudy study = runPageStudy(cfg);
    EXPECT_EQ(study.scheme, "ecp4");
    EXPECT_EQ(study.recoverableFaults.count(), 16u);
    EXPECT_GT(study.pageLifetime.mean(), 0.0);
    EXPECT_EQ(study.survival.population(), 16u);
    EXPECT_GT(study.overheadBits, 0u);
    // ECP4 pages recover at most 4 faults per block but usually die
    // on the first block to exceed it; still more than zero faults.
    EXPECT_GT(study.recoverableFaults.mean(), 0.0);
}

TEST(Experiment, SeedReproducibility)
{
    ExperimentConfig cfg;
    cfg.scheme = "aegis-23x23";
    cfg.pages = 8;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;
    const PageStudy a = runPageStudy(cfg);
    const PageStudy b = runPageStudy(cfg);
    EXPECT_EQ(a.pageLifetime.mean(), b.pageLifetime.mean());
    EXPECT_EQ(a.recoverableFaults.mean(), b.recoverableFaults.mean());
}

TEST(Experiment, ImprovementOverUnprotectedExceedsOne)
{
    ExperimentConfig cfg;
    cfg.pages = 24;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;

    cfg.scheme = "none";
    const PageStudy baseline = runPageStudy(cfg);
    cfg.scheme = "ecp4";
    const PageStudy ecp = runPageStudy(cfg);
    cfg.scheme = "aegis-17x31";
    const PageStudy aegis = runPageStudy(cfg);

    const double ecp_gain = lifetimeImprovement(ecp, baseline);
    const double aegis_gain = lifetimeImprovement(aegis, baseline);
    EXPECT_GT(ecp_gain, 1.5);
    EXPECT_GT(aegis_gain, ecp_gain);
}

TEST(Experiment, BlockStudyFailureCdfIsMonotone)
{
    ExperimentConfig cfg;
    cfg.scheme = "aegis-23x23";
    cfg.lifetimeMean = 1e6;
    const BlockStudy study = runBlockStudy(cfg, 64);
    EXPECT_EQ(study.blockLifetime.count(), 64u);
    // Failure probability is 0 through the hard FTC and reaches 1.
    EXPECT_DOUBLE_EQ(study.failureProbabilityAt(7), 0.0);
    double last = 0.0;
    for (std::int64_t f = 0; f <= 64; ++f) {
        const double p = study.failureProbabilityAt(f);
        EXPECT_GE(p, last);
        last = p;
    }
    EXPECT_DOUBLE_EQ(study.failureProbabilityAt(64), 1.0);
}

TEST(Experiment, HalfLifetimeOrdering)
{
    ExperimentConfig cfg;
    cfg.pages = 24;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;
    cfg.scheme = "safer32";
    const PageStudy safer = runPageStudy(cfg);
    cfg.scheme = "aegis-17x31";
    const PageStudy aegis = runPageStudy(cfg);
    // Fig 9's headline: Aegis 17x31 beats SAFER32's half lifetime.
    EXPECT_GT(aegis.survival.timeToFraction(0.5),
              safer.survival.timeToFraction(0.5));
}

} // namespace
} // namespace aegis::sim
