/**
 * @file
 * The error-handling primitives: exception taxonomy, file:line
 * diagnostics, expression capture, and the audit macro's lazily
 * evaluated state dump.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/error.h"
#include "util/expected.h"

namespace aegis {
namespace {

TEST(ErrorMacros, AssertPassesWhenConditionHolds)
{
    EXPECT_NO_THROW(AEGIS_ASSERT(2 + 2 == 4, "arithmetic works"));
}

TEST(ErrorMacros, AssertThrowsInternalErrorWithDiagnostics)
{
    int line = 0;
    try {
        line = __LINE__ + 1;
        AEGIS_ASSERT(1 == 2, "impossible arithmetic");
        FAIL() << "AEGIS_ASSERT did not throw";
    } catch (const InternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("test_error.cc:" + std::to_string(line)),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
        EXPECT_NE(what.find("impossible arithmetic"),
                  std::string::npos)
            << what;
    }
}

TEST(ErrorMacros, InternalErrorIsALogicError)
{
    // Panic-class failures are library bugs: catchable as logic_error
    // so harnesses can distinguish them from user mistakes.
    EXPECT_THROW(AEGIS_ASSERT(false, "bug"), std::logic_error);
    EXPECT_THROW(AEGIS_ASSERT(false, "bug"), InternalError);
}

TEST(ErrorMacros, RequirePassesWhenConditionHolds)
{
    EXPECT_NO_THROW(AEGIS_REQUIRE(true, "fine"));
}

TEST(ErrorMacros, RequireThrowsConfigErrorWithDiagnostics)
{
    int line = 0;
    try {
        line = __LINE__ + 1;
        AEGIS_REQUIRE(false, "bad user configuration");
        FAIL() << "AEGIS_REQUIRE did not throw";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("test_error.cc:" + std::to_string(line)),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("bad user configuration"),
                  std::string::npos)
            << what;
    }
}

TEST(ErrorMacros, ConfigErrorIsAnInvalidArgument)
{
    EXPECT_THROW(AEGIS_REQUIRE(false, "nope"), std::invalid_argument);
    EXPECT_THROW(AEGIS_REQUIRE(false, "nope"), ConfigError);
}

TEST(ErrorMacros, RequireAndAssertAreDistinctTypes)
{
    // A ConfigError must not be caught as an InternalError and vice
    // versa — callers rely on the taxonomy to assign blame.
    EXPECT_FALSE((std::is_base_of_v<InternalError, ConfigError>));
    EXPECT_FALSE((std::is_base_of_v<ConfigError, InternalError>));
}

TEST(ErrorMacros, AuditThrowsInternalErrorWithStreamedDump)
{
    const int slope = 17;
    const std::string name = "aegis-9x61";
    int line = 0;
    try {
        line = __LINE__ + 1;
        AEGIS_AUDIT(slope < 10, "scheme=" << name << " slope=" << slope);
        FAIL() << "AEGIS_AUDIT did not throw";
    } catch (const InternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("test_error.cc:" + std::to_string(line)),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("slope < 10"), std::string::npos) << what;
        EXPECT_NE(what.find("[audit]"), std::string::npos) << what;
        EXPECT_NE(what.find("scheme=aegis-9x61 slope=17"),
                  std::string::npos)
            << what;
    }
}

TEST(ErrorMacros, AuditDumpIsLazilyEvaluated)
{
    // The dump expression must cost nothing on the happy path.
    int evaluations = 0;
    const auto expensive = [&evaluations] {
        ++evaluations;
        return std::string("dump");
    };
    AEGIS_AUDIT(true, expensive());
    EXPECT_EQ(evaluations, 0);
    EXPECT_THROW(AEGIS_AUDIT(false, expensive()), InternalError);
    EXPECT_EQ(evaluations, 1);
}

TEST(Expected, StatusDefaultsToSuccess)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_TRUE(s.error().empty());
}

TEST(Expected, StatusFailureCarriesTheMessage)
{
    const Status s = Status::failure("disk full");
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(static_cast<bool>(s));
    EXPECT_EQ(s.error(), "disk full");
}

TEST(Expected, ValueSideBehavesLikeTheValue)
{
    const Expected<int> e = 42;    // implicit success conversion
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(*e, 42);
    EXPECT_EQ(e.valueOr(7), 42);
    EXPECT_TRUE(e.error().empty());
}

TEST(Expected, FailureSideCarriesMessageAndGuardsValue)
{
    const Expected<std::string> e =
        Expected<std::string>::failure("bad checkpoint");
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error(), "bad checkpoint");
    EXPECT_EQ(e.valueOr("fallback"), "fallback");
    // Touching the value of a failure is a library bug, not UB.
    EXPECT_THROW((void)e.value(), InternalError);
}

TEST(Expected, ArrowOperatorReachesMembers)
{
    Expected<std::string> e = std::string("abc");
    EXPECT_EQ(e->size(), 3u);
    e->push_back('d');
    EXPECT_EQ(*e, "abcd");
}

TEST(ErrorMacros, ConditionEvaluatedExactlyOnce)
{
    int calls = 0;
    const auto once = [&calls] {
        ++calls;
        return true;
    };
    AEGIS_ASSERT(once(), "side effects must not repeat");
    EXPECT_EQ(calls, 1);
    calls = 0;
    AEGIS_AUDIT(once(), "side effects must not repeat");
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace aegis
